// The paper's §2.4 execution scenario, reproduced end to end.
//
// Two sites: s1 serves client c1 and stores d1 (people); s2 serves client
// c2 and stores both d1 and d2 (products). Three transactions:
//
//   t1 (c1 @ s1): query the client with id 4           (reads d1 everywhere)
//                 insert product Mouse, id 13, 10.30    (writes d2)
//   t2 (c2 @ s2): query all products                   (reads d2)
//                 insert person Patricia, id 22         (writes d1 everywhere)
//   t3 (c2 @ s2): query product id 14; insert product Keyboard id 32.
//
// Submitted concurrently, t1 and t2 interleave into the paper's distributed
// deadlock: t1's insert needs IX on d2's DataGuide where t2 holds ST, and
// t2's insert needs IX on d1's where t1 holds ST. Each site sees only half
// of the wait-for cycle; the periodic detector unions the graphs and aborts
// the most recent transaction (t2). t1 then commits, the client discards t2
// (per the paper) and runs t3, which executes cleanly.
//
// The scenario is timing-dependent (as in the paper): if the inserts do not
// overlap just so, a transaction simply waits and both commit. The demo
// retries until the deadlock materializes, then narrates it.
#include <cstdio>

#include "client/client.hpp"
#include "dtx/cluster.hpp"
#include "lock/protocol.hpp"

namespace {

using namespace dtx;

constexpr const char* kPeopleD1 =
    "<site><people>"
    "<person id=\"4\"><name>Carlos</name></person>"
    "<person id=\"7\"><name>Maria</name></person>"
    "</people></site>";

constexpr const char* kProductsD2 =
    "<site><regions><europe>"
    "<item id=\"14\"><name>Monitor</name><price>120.00</price></item>"
    "<item id=\"15\"><name>Printer</name><price>55.00</price></item>"
    "</europe></regions></site>";

util::Result<client::PreparedTxn> t1_txn(int round) {
  return client::TxnBuilder()
      // t1op1: query of the client with identifier 4 (d1 at both sites).
      .query("d1", "/site/people/person[@id='4']/name")
      // t1op2: insert of product Mouse, price 10.30, id 13.
      .insert("d2", "/site/regions/europe",
              "<item id=\"13-" + std::to_string(round) +
                  "\"><name>Mouse</name><price>10.30</price></item>")
      .build();
}

util::Result<client::PreparedTxn> t2_txn(int round) {
  return client::TxnBuilder()
      // t2op1: query that recovers all the store's products.
      .query("d2", "/site/regions/europe/item/name")
      // t2op2: insert of client Patricia with identifier 22.
      .insert("d1", "/site/people",
              "<person id=\"22-" + std::to_string(round) +
                  "\"><name>Patricia</name></person>")
      .build();
}

}  // namespace

int main() {
  core::ClusterOptions options;
  options.site_count = 2;
  // The article's conservative XDGL behaviour (its §2.4 example conflicts
  // on the shared DataGuide nodes regardless of predicate values).
  options.protocol = lock::ProtocolKind::kXdglPlain;
  options.network.latency = std::chrono::microseconds(200);
  options.site.detect_period = std::chrono::microseconds(5'000);
  core::Cluster cluster(options);

  // Fig. 4 placement: d1 at both sites, d2 only at s2.
  cluster.load_document("d1", kPeopleD1, {0, 1});
  cluster.load_document("d2", kProductsD2, {1});
  if (util::Status status = cluster.start(); !status) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }

  std::printf("sites: s1 {d1}, s2 {d1, d2} — clients c1@s1, c2@s2\n\n");

  // Client c1 is a session pinned to s1, c2 to s2 (the paper's model).
  client::Client dtx_client(cluster);
  client::Session c1 = dtx_client.session(
      {client::RoutingPolicy::explicit_site(0), {}, {}});
  client::Session c2 = dtx_client.session(
      {client::RoutingPolicy::explicit_site(1), {}, {}});

  bool saw_deadlock = false;
  for (int round = 0; round < 40 && !saw_deadlock; ++round) {
    auto txn1 = t1_txn(round);
    auto txn2 = t2_txn(round);
    if (!txn1 || !txn2) return 1;
    auto h1 = c1.submit(txn1.value());  // c1 submits t1 at s1
    auto h2 = c2.submit(txn2.value());  // c2 submits t2 at s2
    if (!h1 || !h2) return 1;
    const txn::TxnResult r1 = h1.value().await();
    const txn::TxnResult r2 = h2.value().await();

    if (r1.deadlock_victim || r2.deadlock_victim) {
      saw_deadlock = true;
      const txn::TxnResult& victim = r1.deadlock_victim ? r1 : r2;
      const txn::TxnResult& survivor = r1.deadlock_victim ? r2 : r1;
      std::printf("round %d: deadlock!\n", round);
      std::printf("  t1 holds ST on d1's guide at both sites, needs IX on "
                  "d2's;\n  t2 holds ST on d2's guide, needs IX on d1's.\n");
      // With d1 replicated at s2 (the paper's Fig. 4 placement), both wait
      // edges usually land at s2 and Alg. 3's local cycle check fires when
      // the second insert tries to lock; a cycle split across the sites is
      // instead found by the periodic detector's graph union (Alg. 4),
      // which rolls back the most recent transaction.
      bool local = false;
      for (net::SiteId site = 0; site < 2; ++site) {
        if (cluster.site(site).stats().lock_manager.local_deadlocks > 0) {
          local = true;
        }
      }
      std::printf("  detected %s\n",
                  local ? "locally at the shared site (Alg. 3 l. 9)"
                        : "by the distributed wait-for-graph union (Alg. 4)");
      std::printf("  victim  : txn %llu -> %s (%s)\n",
                  static_cast<unsigned long long>(victim.id),
                  txn::txn_state_name(victim.state),
                  txn::abort_reason_name(victim.reason));
      std::printf("  survivor: txn %llu -> %s (%.2f ms)\n",
                  static_cast<unsigned long long>(survivor.id),
                  txn::txn_state_name(survivor.state), survivor.response_ms);
    } else {
      std::printf("round %d: no overlap (t1 %s, t2 %s) — retrying\n", round,
                  txn::txn_state_name(r1.state), txn::txn_state_name(r2.state));
    }
  }

  if (!saw_deadlock) {
    std::printf("\nno deadlock materialized — the interleaving never "
                "overlapped; rerun the demo.\n");
  }

  // "The client discards transaction t2 and decides to execute t3."
  auto txn3 = client::TxnBuilder()
                  .query("d2", "/site/regions/europe/item[@id='14']/name")
                  .insert("d2", "/site/regions/europe",
                          "<item id=\"32\"><name>Keyboard</name>"
                          "<price>9.90</price></item>")
                  .query("d2", "/site/regions/europe/item[@id='32']/price")
                  .build();
  if (!txn3) return 1;
  auto t3 = c2.execute(txn3.value());
  if (!t3) return 1;
  std::printf("\nt3: %s — product 14 is '%s', inserted Keyboard at %s\n",
              txn::txn_state_name(t3.value().state),
              t3.value().rows[0][0].c_str(), t3.value().rows[2][0].c_str());

  const core::ClusterStats stats = cluster.stats();
  std::printf("\ntotals: committed=%llu aborted=%llu deadlock_aborts=%llu\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted),
              static_cast<unsigned long long>(stats.deadlock_aborts));
  return 0;
}
