// Deadlock anatomy demo: shows the pieces of Algorithm 4 in isolation —
// per-site wait-for graphs that are each acyclic, their union exposing the
// distributed cycle, and the newest-transaction victim rule — then runs the
// same situation live on a two-site cluster and prints what the detector
// actually did.
#include <cstdio>

#include "client/client.hpp"
#include "dtx/cluster.hpp"
#include "wfg/wait_for_graph.hpp"

namespace {

using namespace dtx;

void anatomy() {
  std::printf("=== Algorithm 4 on paper ===\n");
  // t1 (begun first, coordinated by s1) and t2 (newer, coordinated by s2).
  const lock::TxnId t1 = txn::make_txn_id(/*begin_micros=*/1000, /*site=*/0);
  const lock::TxnId t2 = txn::make_txn_id(/*begin_micros=*/2000, /*site=*/1);

  wfg::WaitForGraph site1;  // at s1: t2's insert waits for t1's ST
  site1.add_edge(t2, t1);
  wfg::WaitForGraph site2;  // at s2: t1's insert waits for t2's ST
  site2.add_edge(t1, t2);

  std::printf("site s1 graph: %s", site1.to_string().c_str());
  std::printf("  cycle? %s\n", site1.has_cycle() ? "yes" : "no");
  std::printf("site s2 graph: %s", site2.to_string().c_str());
  std::printf("  cycle? %s\n", site2.has_cycle() ? "yes" : "no");

  wfg::WaitForGraph merged;
  merged.merge(site1);
  merged.merge(site2);
  std::printf("union:\n%s", merged.to_string().c_str());
  std::printf("  cycle? %s — victim (newest) = t%llu (t2, begun later)\n\n",
              merged.has_cycle() ? "yes" : "no",
              static_cast<unsigned long long>(merged.newest_on_cycle()));
}

}  // namespace

int main() {
  anatomy();

  std::printf("=== and live ===\n");
  core::ClusterOptions options;
  options.site_count = 2;
  options.protocol = lock::ProtocolKind::kXdglPlain;  // conservative locks
  options.network.latency = std::chrono::microseconds(200);
  options.site.detect_period = std::chrono::microseconds(5'000);
  core::Cluster cluster(options);
  // Disjoint placement: document a lives only at site 0, b only at site 1.
  // Each site then records only half of any wait cycle, so resolution can
  // come only from Algorithm 4's distributed graph union.
  cluster.load_document(
      "a", "<site><people><person id=\"1\"><name>x</name></person></people></site>",
      {0});
  cluster.load_document(
      "b", "<site><people><person id=\"2\"><name>y</name></person></people></site>",
      {1});
  if (!cluster.start()) return 1;

  // Two client sessions, one per site, submitting asynchronously through
  // the typed API. The transactions are built once and resubmitted as-is
  // every round.
  client::Client dtx_client(cluster);
  client::Session c1 = dtx_client.session(
      {client::RoutingPolicy::explicit_site(0), {}, {}});
  client::Session c2 = dtx_client.session(
      {client::RoutingPolicy::explicit_site(1), {}, {}});
  auto t1 = client::TxnBuilder()
                .query("a", "/site/people/person/name")
                .insert("b", "/site/people", "<person id=\"n1\"/>")
                .build();
  auto t2 = client::TxnBuilder()
                .query("b", "/site/people/person/name")
                .insert("a", "/site/people", "<person id=\"n2\"/>")
                .build();
  if (!t1 || !t2) return 1;

  std::size_t deadlocks = 0;
  int rounds = 0;
  for (; rounds < 50 && deadlocks == 0; ++rounds) {
    // Opposite lock orders across two documents — the canonical cycle.
    auto h1 = c1.submit(t1.value());
    auto h2 = c2.submit(t2.value());
    if (!h1 || !h2) return 1;
    (void)h1.value().await();
    (void)h2.value().await();
    deadlocks = cluster.stats().deadlock_aborts;
  }
  const core::ClusterStats stats = cluster.stats();
  std::printf("after %d adversarial rounds: %llu deadlock victim(s) aborted, "
              "%llu committed, %llu wait episodes\n",
              rounds, static_cast<unsigned long long>(stats.deadlock_aborts),
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.wait_episodes));
  std::uint64_t distributed_cycles = 0;
  for (net::SiteId site = 0; site < 2; ++site) {
    distributed_cycles += cluster.site(site).stats().distributed_cycles_found;
  }
  std::printf("distributed cycles found by the Alg. 4 union: %llu\n",
              static_cast<unsigned long long>(distributed_cycles));
  std::printf("every transaction terminated: %s\n",
              stats.committed + stats.aborted + stats.failed ==
                      static_cast<std::uint64_t>(2 * rounds)
                  ? "yes"
                  : "no");
  return 0;
}
