// dtxsh — a tiny interactive shell over a DTX cluster, for poking at the
// system by hand. Reads commands from stdin (or a here-doc):
//
//   load <doc> <site[,site...]> <xml...>   place a document before 'start'
//   start                                   spin up the sites
//   q <doc> <xpath>                         run a one-query transaction
//   u <doc> <update-op>                     run a one-update transaction
//   txn                                     begin collecting operations
//   +q <doc> <xpath> | +u <doc> <op>        add an operation to the txn
//   run                                     execute the collected txn
//   stats                                   cluster statistics
//   inspect                                 detailed per-site state
//   quit
//
// Example session:
//   ./build/examples/dtxsh <<'EOF'
//   load d1 0,1 <site><people><person id="p1"><name>Ana</name></person></people></site>
//   start
//   q d1 /site/people/person[@id='p1']/name
//   u d1 change /site/people/person[@id='p1']/name ::= Anna
//   q d1 /site/people/person[@id='p1']/name
//   stats
//   EOF
//
// Remote mode: `dtxsh --connect=host:port` skips the in-process cluster and
// drives a live dtxd site over TCP with the same q/u/txn/+q/+u/run surface
// (load/start/inspect/stats are cluster-side and unavailable remotely).
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "client/remote_session.hpp"
#include "dtx/cluster.hpp"
#include "dtx/inspector.hpp"
#include "util/flags.hpp"
#include "util/strings.hpp"

namespace {

using namespace dtx;

void print_result(const util::Result<txn::TxnResult>& result) {
  if (!result) {
    std::printf("error: %s\n", result.status().to_string().c_str());
    return;
  }
  const txn::TxnResult& txn = result.value();
  std::printf("%s (%.2f ms)", txn::txn_state_name(txn.state),
              txn.response_ms);
  if (txn.state != txn::TxnState::kCommitted) {
    std::printf(" — %s%s%s", txn::abort_reason_name(txn.reason),
                txn.detail.empty() ? "" : ": ", txn.detail.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < txn.rows.size(); ++i) {
    for (const std::string& row : txn.rows[i]) {
      std::printf("  [%zu] %s\n", i, row.c_str());
    }
  }
}

void print_remote_result(const util::Result<client::RemoteResult>& result) {
  if (!result) {
    std::printf("error: %s\n", result.status().to_string().c_str());
    return;
  }
  const client::RemoteResult& txn = result.value();
  if (!txn.accepted) {
    std::printf("rejected — %s\n", txn.detail.c_str());
    return;
  }
  std::printf("%s (%.2f ms)", txn::txn_state_name(txn.state),
              txn.response_ms);
  if (txn.state != txn::TxnState::kCommitted) {
    std::printf(" — %s%s%s", txn::abort_reason_name(txn.reason),
                txn.detail.empty() ? "" : ": ", txn.detail.c_str());
  }
  std::printf("\n");
  for (std::size_t i = 0; i < txn.rows.size(); ++i) {
    for (const std::string& row : txn.rows[i]) {
      std::printf("  [%zu] %s\n", i, row.c_str());
    }
  }
}

int run_remote(const std::string& address) {
  client::RemoteSession session;
  const util::Status connected = session.connect(address);
  if (!connected) {
    std::fprintf(stderr, "%s\n", connected.to_string().c_str());
    return 1;
  }
  std::printf("dtxsh — connected to site %u at %s. Type commands "
              "('quit' ends).\n",
              session.site(), address.c_str());
  std::vector<std::string> pending_txn;
  bool collecting = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream in{std::string(trimmed)};
    std::string command;
    in >> command;

    if (command == "quit" || command == "exit") break;
    if (command == "q" || command == "u") {
      std::string rest;
      std::getline(in, rest);
      const std::string op =
          std::string(command == "q" ? "query" : "update") + " " +
          std::string(util::trim(rest));
      print_remote_result(session.execute_text({op}));
      continue;
    }
    if (command == "txn") {
      collecting = true;
      pending_txn.clear();
      std::printf("collecting — add with +q/+u, execute with 'run'\n");
      continue;
    }
    if (command == "+q" || command == "+u") {
      if (!collecting) {
        std::printf("no open transaction — use 'txn' first\n");
        continue;
      }
      std::string rest;
      std::getline(in, rest);
      pending_txn.push_back(
          std::string(command == "+q" ? "query" : "update") + " " +
          std::string(util::trim(rest)));
      std::printf("  op %zu staged\n", pending_txn.size());
      continue;
    }
    if (command == "run") {
      if (!collecting || pending_txn.empty()) {
        std::printf("nothing staged\n");
        continue;
      }
      print_remote_result(session.execute_text(pending_txn));
      collecting = false;
      pending_txn.clear();
      continue;
    }
    std::printf("unknown remote command '%s' (q/u/txn/+q/+u/run/quit)\n",
                command.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  if (flags.has("connect")) {
    return run_remote(flags.get_string("connect", ""));
  }

  core::ClusterOptions options;
  options.site_count =
      static_cast<std::size_t>(flags.get_int("sites", 2));
  auto protocol =
      lock::parse_protocol_kind(flags.get_string("protocol", "xdgl"));
  if (!protocol) {
    std::fprintf(stderr, "%s\n", protocol.status().to_string().c_str());
    return 1;
  }
  options.protocol = protocol.value();
  options.storage_dir = flags.get_string("storage_dir", "");
  core::Cluster cluster(options);

  const auto home_site = static_cast<net::SiteId>(flags.get_int("site", 0));
  bool started = false;
  std::vector<std::string> pending_txn;
  bool collecting = false;

  std::printf("dtxsh — %zu sites, protocol %s. Type commands ('quit' ends).\n",
              options.site_count, lock::protocol_kind_name(options.protocol));
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream in{std::string(trimmed)};
    std::string command;
    in >> command;

    if (command == "quit" || command == "exit") break;

    if (command == "load") {
      std::string doc, site_list;
      in >> doc >> site_list;
      std::string xml;
      std::getline(in, xml);
      std::vector<net::SiteId> sites;
      for (const std::string& piece : util::split(site_list, ',')) {
        sites.push_back(static_cast<net::SiteId>(std::stoul(piece)));
      }
      const util::Status status =
          cluster.load_document(doc, std::string(util::trim(xml)), sites);
      std::printf("%s\n", status.to_string().c_str());
      continue;
    }
    if (command == "start") {
      const util::Status status = cluster.start();
      started = status.is_ok();
      std::printf("%s\n", status.to_string().c_str());
      continue;
    }
    if (!started && command != "stats") {
      std::printf("not started — 'load' documents then 'start'\n");
      continue;
    }
    if (command == "q" || command == "u") {
      std::string rest;
      std::getline(in, rest);
      const std::string op =
          std::string(command == "q" ? "query" : "update") + " " +
          std::string(util::trim(rest));
      print_result(cluster.execute_text(home_site, {op}));
      continue;
    }
    if (command == "txn") {
      collecting = true;
      pending_txn.clear();
      std::printf("collecting — add with +q/+u, execute with 'run'\n");
      continue;
    }
    if (command == "+q" || command == "+u") {
      if (!collecting) {
        std::printf("no open transaction — use 'txn' first\n");
        continue;
      }
      std::string rest;
      std::getline(in, rest);
      pending_txn.push_back(
          std::string(command == "+q" ? "query" : "update") + " " +
          std::string(util::trim(rest)));
      std::printf("  op %zu staged\n", pending_txn.size());
      continue;
    }
    if (command == "run") {
      if (!collecting || pending_txn.empty()) {
        std::printf("nothing staged\n");
        continue;
      }
      print_result(cluster.execute_text(home_site, pending_txn));
      collecting = false;
      pending_txn.clear();
      continue;
    }
    if (command == "inspect") {
      std::printf("%s", core::describe_cluster(cluster).c_str());
      continue;
    }
    if (command == "stats") {
      const core::ClusterStats stats = cluster.stats();
      std::printf("committed=%llu aborted=%llu failed=%llu "
                  "deadlock_aborts=%llu locks=%llu conflicts=%llu "
                  "messages=%llu\n",
                  static_cast<unsigned long long>(stats.committed),
                  static_cast<unsigned long long>(stats.aborted),
                  static_cast<unsigned long long>(stats.failed),
                  static_cast<unsigned long long>(stats.deadlock_aborts),
                  static_cast<unsigned long long>(stats.lock_acquisitions),
                  static_cast<unsigned long long>(stats.lock_conflicts),
                  static_cast<unsigned long long>(stats.network.messages_sent));
      continue;
    }
    std::printf("unknown command '%s'\n", command.c_str());
  }
  return 0;
}
