// Auction-site demo: the paper's full evaluation pipeline at a glance —
// generate an XMark-like base, fragment it Kurita-style, place the
// fragments over four sites with partial replication, and drive the system
// with the DTXTester client simulator under a mixed read/update workload.
//
//   ./build/examples/auction_site [--doc_kb=200] [--clients=20]
//                                 [--protocol=xdgl|xdgl-plain|node2pl|doclock]
//                                 [--routing=explicit|round-robin|affinity]
#include <cstdio>

#include "client/client.hpp"
#include "dtx/cluster.hpp"
#include "util/flags.hpp"
#include "workload/dtx_tester.hpp"
#include "workload/fragmentation.hpp"
#include "workload/xmark.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  util::Flags flags(argc, argv);

  // 1. Generate the base.
  workload::XmarkOptions xmark;
  xmark.target_bytes =
      static_cast<std::size_t>(flags.get_int("doc_kb", 200)) * 1024;
  const workload::XmarkData data = workload::generate_xmark(xmark);
  std::printf("XMark base: %zu persons, %zu open auctions, %zu closed, "
              "%zu categories\n",
              data.person_ids.size(), data.open_auction_ids.size(),
              data.closed_auction_ids.size(), data.category_ids.size());

  // 2. Fragment and place (partial replication, 2 copies per fragment).
  const std::size_t sites = 4;
  const auto fragments = workload::fragment_xmark(data, 2 * sites);
  const auto placements = workload::place_fragments(
      fragments, sites, workload::Replication::kPartial, 2);
  std::printf("fragments: %zu\n", fragments.size());
  for (const auto& fragment : fragments) {
    std::printf("  %-4s %-16s %-10s %6zu bytes, %zu entities\n",
                fragment.doc_name.c_str(), fragment.section.c_str(),
                fragment.continent.empty() ? "-" : fragment.continent.c_str(),
                fragment.bytes, fragment.ids.size());
  }

  // 3. Build the cluster.
  auto protocol =
      lock::parse_protocol_kind(flags.get_string("protocol", "xdgl"));
  if (!protocol) {
    std::fprintf(stderr, "%s\n", protocol.status().to_string().c_str());
    return 1;
  }
  core::ClusterOptions options;
  options.site_count = sites;
  options.protocol = protocol.value();
  options.network.latency = std::chrono::microseconds(100);
  core::Cluster cluster(options);
  for (const auto& placement : placements) {
    for (const auto& fragment : fragments) {
      if (fragment.doc_name == placement.doc) {
        cluster.load_document(placement.doc, fragment.xml, placement.sites);
        break;
      }
    }
  }
  if (util::Status status = cluster.start(); !status) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }

  // 4. Drive it with DTXTester (paper defaults: 5 txns x 5 ops per client,
  //    20 % update transactions).
  workload::WorkloadOptions workload_options;
  workload_options.ops_per_transaction = 5;
  workload_options.update_txn_fraction = 0.2;
  workload::TesterOptions tester;
  tester.clients = static_cast<std::size_t>(flags.get_int("clients", 20));
  tester.txns_per_client = 5;
  const auto routing =
      client::parse_routing_kind(flags.get_string("routing", "explicit"));
  if (!routing) {
    std::fprintf(stderr, "--routing: %s\n",
                 routing.status().to_string().c_str());
    return 1;
  }
  tester.routing = routing.value();
  const workload::TesterReport report =
      workload::run_tester(cluster, fragments, workload_options, tester);

  std::printf("\n%zu transactions: %zu committed, %zu aborted, %zu failed "
              "(%zu deadlock victims)\n",
              report.submitted, report.committed, report.aborted,
              report.failed, report.deadlock_victims);
  std::printf("committed response time: %s\n",
              report.response_ms.summary("ms").c_str());
  std::printf("makespan: %.2f s\n", report.makespan_s);

  std::printf("\nthroughput timeline (committed per interval):\n");
  for (const auto& [t, commits] :
       report.throughput_timeline(report.makespan_s / 8)) {
    std::printf("  up to %6.2f s : %zu\n", t, commits);
  }

  const core::ClusterStats stats = cluster.stats();
  std::printf("\nprotocol=%s routing=%s lock_acquisitions=%llu "
              "conflicts=%llu deadlock_aborts=%llu messages=%llu\n",
              lock::protocol_kind_name(options.protocol),
              client::routing_kind_name(tester.routing),
              static_cast<unsigned long long>(stats.lock_acquisitions),
              static_cast<unsigned long long>(stats.lock_conflicts),
              static_cast<unsigned long long>(stats.deadlock_aborts),
              static_cast<unsigned long long>(stats.network.messages_sent));
  return 0;
}
