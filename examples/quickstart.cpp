// Quickstart: a two-site DTX deployment in ~60 lines.
//
//   * site 0 stores d1 (people), site 1 stores d2 (products);
//   * a client connected to site 0 runs one distributed transaction that
//     reads d1 locally, updates d2 remotely, and reads its own write back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "dtx/cluster.hpp"

int main() {
  using namespace dtx;

  // 1. Configure a cluster: 2 sites, XDGL concurrency control, ~100 us LAN.
  core::ClusterOptions options;
  options.site_count = 2;
  options.protocol = lock::ProtocolKind::kXdgl;
  options.network.latency = std::chrono::microseconds(100);
  core::Cluster cluster(options);

  // 2. Place documents (name, XML, hosting sites).
  cluster.load_document("d1",
                        "<site><people>"
                        "<person id=\"p1\"><name>Ana</name></person>"
                        "<person id=\"p2\"><name>Bruno</name></person>"
                        "</people></site>",
                        {0});
  cluster.load_document("d2",
                        "<site><regions><europe>"
                        "<item id=\"i1\"><name>Clock</name><price>10.30</price></item>"
                        "</europe></regions></site>",
                        {1});

  // 3. Start the sites (Listener + Scheduler + LockManager per site).
  if (util::Status status = cluster.start(); !status) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }

  // 4. A client submits one transaction at site 0. Operations are textual:
  //    "query <doc> <xpath>" / "update <doc> <update-op>".
  auto result = cluster.execute(
      /*site=*/0,
      {
          "query d1 /site/people/person[@id='p1']/name",
          "update d2 change /site/regions/europe/item[@id='i1']/price "
          "::= 12.50",
          "query d2 /site/regions/europe/item[@id='i1']/price",
      });
  if (!result) {
    std::fprintf(stderr, "execute failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  const txn::TxnResult& txn = result.value();
  std::printf("transaction %s in %.2f ms\n", txn::txn_state_name(txn.state),
              txn.response_ms);
  std::printf("  person p1 name   : %s\n", txn.rows[0][0].c_str());
  std::printf("  new price of i1  : %s\n", txn.rows[2][0].c_str());

  const core::ClusterStats stats = cluster.stats();
  std::printf("cluster: %llu committed, %llu messages on the wire\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.network.messages_sent));
  return 0;
}
