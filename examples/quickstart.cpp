// Quickstart: a two-site DTX deployment driven through the typed client
// API in ~70 lines.
//
//   * site 0 stores d1 (people), site 1 stores d2 (products);
//   * a client session routed by catalog affinity runs one distributed
//     transaction that reads d1, updates d2, and reads its own write back.
//
// Build & run:  ./build/quickstart
#include <cstdio>

#include "client/client.hpp"
#include "dtx/cluster.hpp"

int main() {
  using namespace dtx;

  // 1. Configure a cluster: 2 sites, XDGL concurrency control, ~100 us LAN.
  core::ClusterOptions options;
  options.site_count = 2;
  options.protocol = lock::ProtocolKind::kXdgl;
  options.network.latency = std::chrono::microseconds(100);
  core::Cluster cluster(options);

  // 2. Place documents (name, XML, hosting sites).
  cluster.load_document("d1",
                        "<site><people>"
                        "<person id=\"p1\"><name>Ana</name></person>"
                        "<person id=\"p2\"><name>Bruno</name></person>"
                        "</people></site>",
                        {0});
  cluster.load_document("d2",
                        "<site><regions><europe>"
                        "<item id=\"i1\"><name>Clock</name><price>10.30</price></item>"
                        "</europe></regions></site>",
                        {1});

  // 3. Start the sites (Listener + Scheduler + LockManager per site).
  if (util::Status status = cluster.start(); !status) {
    std::fprintf(stderr, "start failed: %s\n", status.to_string().c_str());
    return 1;
  }

  // 4. Open a client session: route each transaction to the site hosting
  //    most of its documents, retry deadlock victims twice.
  client::Client dtx_client(cluster);
  client::SessionOptions session_options;
  session_options.routing = client::RoutingPolicy::catalog_affinity();
  session_options.retry.max_deadlock_retries = 2;
  client::Session session = dtx_client.session(session_options);

  // 5. Build the transaction once (each operation parses and validates
  //    here), then execute the immutable PreparedTxn.
  auto txn = client::TxnBuilder()
                 .query("d1", "/site/people/person[@id='p1']/name")
                 .change("d2", "/site/regions/europe/item[@id='i1']/price",
                         "12.50")
                 .query("d2", "/site/regions/europe/item[@id='i1']/price")
                 .build();
  if (!txn) {
    std::fprintf(stderr, "bad transaction: %s\n",
                 txn.status().to_string().c_str());
    return 1;
  }
  auto result = session.execute(txn.value());
  if (!result) {
    std::fprintf(stderr, "execute failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  const txn::TxnResult& outcome = result.value();
  std::printf("transaction %s in %.2f ms",
              txn::txn_state_name(outcome.state), outcome.response_ms);
  if (outcome.state != txn::TxnState::kCommitted) {
    // Aborted operations have no rows to print.
    std::printf(" (%s: %s)\n", txn::abort_reason_name(outcome.reason),
                outcome.detail.c_str());
    return 1;
  }
  std::printf("\n");
  std::printf("  person p1 name   : %s\n", outcome.rows[0][0].c_str());
  std::printf("  new price of i1  : %s\n", outcome.rows[2][0].c_str());

  const core::ClusterStats stats = cluster.stats();
  std::printf("cluster: %llu committed, %llu messages on the wire\n",
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.network.messages_sent));
  return 0;
}
