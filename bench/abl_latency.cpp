// Ablation A2 — network latency sweep (LAN -> WAN): the paper's future
// work asks how DTX behaves in WAN environments. The coordinator waits for
// every participant on every distributed operation, so response time should
// scale with the per-message latency times the operation fan-out.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  base.clients = 10;  // latency dominates; few clients keep the sweep quick
  apply_common_flags(flags, base);

  print_header("Ablation: network latency (LAN -> WAN)", "latency_us");
  for (const std::int64_t latency_us : {100, 1000, 5000, 20000}) {
    for (const auto protocol :
         {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
          lock::ProtocolKind::kNode2pl}) {
      ExperimentConfig config = base;
      config.latency = std::chrono::microseconds(latency_us);
      config.protocol = protocol;
      const ExperimentResult result = run_experiment(config);
      print_row(std::to_string(latency_us),
                lock::protocol_kind_name(protocol), result);
    }
  }
  return 0;
}
