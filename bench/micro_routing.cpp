// Routing hot-path micro-bench: the cost of resolving a document's hosting
// set per operation. Compares the legacy cold-path accessor
// `Catalog::sites_of` (mutex + a fresh vector copy per call — what the
// coordinator used to do for EVERY remote operation) against the view API
// (`catalog.view()` once per routing decision, then `view->sites_of(doc)`
// by const reference). Plain chrono timing — no external benchmark dep.
//
//   micro_routing [--docs=64] [--sites=8] [--replication=3] [--iters=2000000]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "dtx/catalog.hpp"
#include "util/flags.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double bench_ns_per_op(std::uint64_t iters, std::uint64_t& sink,
                       const std::function<std::uint64_t(std::size_t)>& body) {
  const Clock::time_point begin = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += body(static_cast<std::size_t>(i));
  }
  const std::chrono::nanoseconds elapsed = Clock::now() - begin;
  return static_cast<double>(elapsed.count()) / static_cast<double>(iters);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtx;
  util::Flags flags(argc, argv);
  const std::size_t doc_count =
      static_cast<std::size_t>(flags.get_int("docs", 64));
  const std::size_t sites = static_cast<std::size_t>(flags.get_int("sites", 8));
  const std::size_t replication =
      static_cast<std::size_t>(flags.get_int("replication", 3));
  const std::uint64_t iters =
      static_cast<std::uint64_t>(flags.get_int("iters", 2'000'000));

  std::vector<net::SiteId> members;
  for (std::size_t s = 0; s < sites; ++s) {
    members.push_back(static_cast<net::SiteId>(s));
  }
  core::Catalog catalog;
  std::vector<std::string> names;
  for (std::size_t d = 0; d < doc_count; ++d) {
    std::string name = "doc" + std::to_string(d);
    const std::vector<net::SiteId> hosts = placement::assign_sites(
        placement::PlacementPolicy::kHashRing, d, name, members, replication);
    if (util::Status placed = catalog.add_document(name, hosts); !placed) {
      std::fprintf(stderr, "%s\n", placed.to_string().c_str());
      return 1;
    }
    names.push_back(std::move(name));
  }

  std::uint64_t sink = 0;
  // Baseline: mutex + shared_ptr bump + vector copy on EVERY resolution.
  const double copy_ns = bench_ns_per_op(iters, sink, [&](std::size_t i) {
    return catalog.sites_of(names[i % names.size()]).size();
  });
  // View pinned once per "transaction" of 8 operations, reads by const ref
  // — the coordinator's actual routing pattern.
  core::Catalog::View view = catalog.view();
  std::size_t cursor = 0;
  const double view_ns = bench_ns_per_op(iters, sink, [&](std::size_t) {
    if (cursor % 8 == 0) view = catalog.view();
    return view->sites_of(names[cursor++ % names.size()]).size();
  });

  std::printf("# micro_routing: hosting-set resolution, %zu docs x %zu sites "
              "(replication %zu), %llu iters\n",
              doc_count, sites, replication,
              static_cast<unsigned long long>(iters));
  std::printf("%-28s %10.1f ns/op\n", "sites_of (copy per call)", copy_ns);
  std::printf("%-28s %10.1f ns/op\n", "view()->sites_of (const ref)", view_ns);
  std::printf("{\"figure\":\"micro_routing\",\"docs\":%zu,\"sites\":%zu,"
              "\"replication\":%zu,\"copy_ns_per_op\":%.1f,"
              "\"view_ns_per_op\":%.1f,\"speedup\":%.2f}\n",
              doc_count, sites, replication, copy_ns, view_ns,
              view_ns > 0.0 ? copy_ns / view_ns : 0.0);
  return sink == 0 ? 0 : 0;  // sink defeats dead-code elimination
}
