// Chaos soak — the failure-scenario counterpart of the fig benches: drives
// the fig9-shaped workload while a seeded schedule crashes sites, cuts
// links and degrades the LAN, then audits the consistency invariants
// (see workload/chaos.hpp). JSONL on stdout so nightly runs are diffable;
// the process exits non-zero when any invariant is violated.
//
//   chaos_soak --seed=7 --sites=3 --rounds=6 --clients=4
//              --drop_pct=2 --dup_pct=1 --traffic_ms=150 --hold_ms=150
//
// The fault schedule and workload streams are pure functions of --seed.
#include <cstdio>

#include "util/flags.hpp"
#include "workload/chaos.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  util::Flags flags(argc, argv);

  workload::ChaosOptions options;
  options.jsonl = stdout;
  options.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  options.sites = static_cast<std::size_t>(flags.get_int("sites", 3));
  options.rounds = static_cast<std::size_t>(flags.get_int("rounds", 6));
  options.clients = static_cast<std::size_t>(flags.get_int("clients", 4));
  options.traffic_window =
      std::chrono::milliseconds(flags.get_int("traffic_ms", 150));
  options.fault_hold = std::chrono::milliseconds(flags.get_int("hold_ms", 150));
  options.crash_probability =
      flags.get_double("crash_pct", 70.0) / 100.0;
  options.partition_probability =
      flags.get_double("partition_pct", 70.0) / 100.0;
  options.background_fault.drop_probability =
      flags.get_double("drop_pct", 1.0) / 100.0;
  options.background_fault.duplicate_probability =
      flags.get_double("dup_pct", 1.0) / 100.0;
  options.background_fault.extra_delay =
      std::chrono::microseconds(flags.get_int("extra_delay_us", 0));
  // Redo-log compaction cadence: 0 = never (pure log replay), 1 ≈ the
  // historical snapshot-per-commit durability, default 8 keeps crashes
  // landing around live compactions.
  options.checkpoint_interval = static_cast<std::size_t>(flags.get_int(
      "checkpoint_interval",
      static_cast<std::int64_t>(options.checkpoint_interval)));
  // Read-heavy mixes (--read_pct=80) soak the MVCC snapshot path across
  // crash / recovery; every read-only transaction doubles as a torn-read
  // probe (see ChaosOptions::read_fraction).
  options.read_fraction = flags.get_double("read_pct", 20.0) / 100.0;
  options.snapshot_reads = flags.get_int("snapshot_reads", 1) != 0;
  // Elastic membership soak: alternate rounds add a site (replica
  // migration under load + link faults) and decommission it again.
  options.membership_churn = flags.get_int("membership_churn", 0) != 0;

  const workload::ChaosReport report = workload::run_chaos(options);
  for (const std::string& violation : report.violations) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", violation.c_str());
  }
  return report.invariants_ok ? 0 : 1;
}
