// Figure 11(a) — "Variation in the size of the base": 50 clients, 20 %
// update transactions, partial replication; the base grows 50..200 MB in
// the paper, scaled here to 100..800 KB (override with --scale_kb).
//
// Expected shape (paper): XDGL's response time stays flat (its DataGuide
// lock structure barely grows with the base) while tree locks climb —
// their per-instance-node lock counts grow with the document. Deadlocks:
// XDGL higher; tree locks get *slower*, lowering their concurrency and
// with it their conflict rate.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  apply_common_flags(flags, base);

  // Paper points: 50, 100, 150, 200 MB -> scaled by --scale_kb per 50 MB.
  const std::int64_t scale_kb = flags.get_int("scale_kb", 100);

  print_header("Figure 11(a): variation in the size of the base", "base");
  for (std::int64_t mb = 50; mb <= 200; mb += 50) {
    for (const auto protocol :
         {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
          lock::ProtocolKind::kNode2pl}) {
      ExperimentConfig config = base;
      config.doc_bytes =
          static_cast<std::size_t>(mb / 50 * scale_kb) * 1024;
      config.protocol = protocol;
      const ExperimentResult result = run_experiment(config);
      print_row(std::to_string(mb) + "MB~" +
                    std::to_string(config.doc_bytes / 1024) + "KB",
                lock::protocol_kind_name(protocol), result);
    }
  }
  return 0;
}
