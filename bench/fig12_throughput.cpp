// Figure 12 — "Throughput and concurrency degree": 50 clients x 5 txns
// (250 transactions total), 20 % update transactions, partial replication
// over 4 sites. Prints the committed-transactions-per-interval series and
// the mean in-flight transaction count per interval, for DTX/XDGL and
// DTX/Node2PL.
//
// Expected shape (paper): DTX commits its transactions roughly an order of
// magnitude faster (218 txns in 1553 s vs Node2PL's 230 in 16500 s) with a
// visibly higher concurrency degree throughout.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.sites = 4;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  apply_common_flags(flags, base);
  const double interval_s = flags.get_double("interval_s", 0.0);

  std::printf("# Figure 12: throughput and concurrency degree\n");
  for (const auto protocol :
       {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
          lock::ProtocolKind::kNode2pl}) {
    ExperimentConfig config = base;
    config.protocol = protocol;
    const ExperimentResult result = run_experiment(config);

    const double interval =
        interval_s > 0.0 ? interval_s : result.makespan_s / 10.0;
    std::printf("## protocol=%s committed=%zu/%zu makespan=%.2fs "
                "deadlocks=%zu\n",
                lock::protocol_kind_name(protocol), result.report.committed,
                result.report.submitted, result.makespan_s,
                result.deadlocks);
    std::printf("%-12s %-14s %-18s\n", "t_end_s", "commits", "concurrency");
    const auto throughput = result.report.throughput_timeline(interval);
    const auto concurrency = result.report.concurrency_timeline(interval);
    for (std::size_t i = 0; i < throughput.size(); ++i) {
      const double degree =
          i < concurrency.size() ? concurrency[i].second : 0.0;
      std::printf("%-12.2f %-14zu %-18.1f\n", throughput[i].first,
                  throughput[i].second, degree);
    }
    std::fflush(stdout);
  }
  return 0;
}
