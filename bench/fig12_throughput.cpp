// Figure 12 — "Throughput and concurrency degree": 50 clients x 5 txns
// (250 transactions total), 20 % update transactions, partial replication
// over 4 sites — extended into the staged-engine scaling sweep: every
// protocol is run for each (coordinator workers x lock shards) point and
// one machine-readable JSON line is emitted per run, so successive PRs have
// an ops/s trajectory to diff against. Rows include the site plan-cache
// accounting (plan_hits / plan_misses / plan_evictions; --plan_cache=
// sizes the cache, 0 disables it).
//
// Flags:
//   --workers_list=1,4      coordinator worker counts to sweep
//   --shards_list=1,16      lock-table shard counts to sweep
//   --timeline=1            additionally print the paper's commits /
//                           concurrency-degree time series per run
// plus every common experiment flag (--clients=, --sites=, ...).
//
// Expected shape (paper): DTX commits its transactions roughly an order of
// magnitude faster (218 txns in 1553 s vs Node2PL's 230 in 16500 s) with a
// visibly higher concurrency degree throughout. Expected shape (engine):
// workers=4 x shards=16 clears >= 1.5x the ops/s of workers=1 x shards=1.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace {

// Comma-separated positive integers; malformed or negative entries are
// reported and skipped, values are clamped to [1, 4096] (matching the
// engine's floor, so the JSON reflects the effective configuration). An
// empty result falls back to {1}.
std::vector<std::size_t> parse_list(const char* flag,
                                    const std::string& text) {
  std::vector<std::size_t> out;
  std::string current;
  for (const char c : text + ",") {
    if (c != ',') {
      current.push_back(c);
      continue;
    }
    if (current.empty()) continue;
    const bool digits_only =
        std::all_of(current.begin(), current.end(),
                    [](unsigned char ch) { return std::isdigit(ch) != 0; });
    if (digits_only && current.size() <= 18) {
      out.push_back(std::clamp<std::size_t>(
          static_cast<std::size_t>(std::stoull(current)), 1, 4096));
    } else {
      std::fprintf(stderr, "ignoring malformed --%s entry '%s'\n", flag,
                   current.c_str());
    }
    current.clear();
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.sites = 4;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  // One-way message latency of the simulated LAN. The paper's 100 Mbit
  // Ethernet sat in the sub-millisecond range once the software stack is
  // counted; 300us makes the scheduler's wait-overlap (workers > 1) visible
  // instead of burying it under in-process message turnaround.
  base.latency = std::chrono::microseconds(300);
  apply_common_flags(flags, base);
  const bool timeline = flags.get_bool("timeline", false);
  const double interval_s = flags.get_double("interval_s", 0.0);
  const std::vector<std::size_t> workers_list =
      parse_list("workers_list", flags.get_string("workers_list", "1,4"));
  const std::vector<std::size_t> shards_list =
      parse_list("shards_list", flags.get_string("shards_list", "1,16"));

  for (const auto protocol :
       {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
        lock::ProtocolKind::kNode2pl}) {
    for (const std::size_t workers : workers_list) {
      for (const std::size_t shards : shards_list) {
        ExperimentConfig config = base;
        config.protocol = protocol;
        config.coordinator_workers = workers;
        config.participant_workers = workers;
        config.lock_shards = shards;
        const ExperimentResult result = run_experiment(config);
        print_json_row("fig12", config, result);

        if (timeline) {
          const double interval =
              interval_s > 0.0 ? interval_s : result.makespan_s / 10.0;
          std::printf("%-12s %-14s %-18s\n", "t_end_s", "commits",
                      "concurrency");
          const auto throughput =
              result.report.throughput_timeline(interval);
          const auto concurrency =
              result.report.concurrency_timeline(interval);
          for (std::size_t i = 0; i < throughput.size(); ++i) {
            const double degree =
                i < concurrency.size() ? concurrency[i].second : 0.0;
            std::printf("%-12.2f %-14zu %-18.1f\n", throughput[i].first,
                        throughput[i].second, degree);
          }
          std::fflush(stdout);
        }
      }
    }
  }
  return 0;
}
