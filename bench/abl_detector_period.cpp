// Ablation A1 — deadlock-detection period: the paper's detector
// "periodically goes through all instances of DTX"; this sweep shows the
// cost of the period choice. A slow detector leaves deadlocked transactions
// parked (raising response times); an aggressive one adds WFG traffic.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.4;  // conflict-heavy so deadlocks matter
  apply_common_flags(flags, base);

  print_header("Ablation: deadlock-detection period", "period_ms");
  for (const std::int64_t period_ms : {2, 10, 50, 200}) {
    ExperimentConfig config = base;
    config.detect_period = std::chrono::microseconds(period_ms * 1000);
    const ExperimentResult result = run_experiment(config);
    print_row(std::to_string(period_ms),
              lock::protocol_kind_name(config.protocol), result);
  }
  return 0;
}
