// WAL ablation — commit durability cost vs. document size.
//
// The redo-log commit path appends one O(delta) record per commit; the
// historical durability re-serialized the whole document every commit
// (reproduced here as --modes including checkpoint_interval=1, which
// snapshots after every logged operation). Sweeping the base size shows
// the separation: snapshot-per-commit persist cost climbs with the
// document, WAL-mode persist cost stays flat.
//
//   abl_wal --doc_kb_list=100,200,400,800 --commits=200
//
// JSONL per (mode, size) point: persist-call latency percentiles plus the
// end-of-run checkpoint cost, so the compaction price is visible too.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "dtx/data_manager.hpp"
#include "query/plan.hpp"
#include "storage/memory_store.hpp"
#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "workload/xmark.hpp"
#include "xml/serializer.hpp"

namespace {

std::vector<std::size_t> parse_list(const std::string& csv,
                                    std::vector<std::size_t> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::size_t> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t end = csv.find(',', begin);
    const std::string part =
        csv.substr(begin, end == std::string::npos ? end : end - begin);
    if (!part.empty()) out.push_back(std::stoul(part));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtx;
  using Clock = std::chrono::steady_clock;
  util::Flags flags(argc, argv);

  const std::vector<std::size_t> doc_kbs = parse_list(
      flags.get_string("doc_kb_list", ""), {100, 200, 400, 800});
  const std::size_t commits =
      static_cast<std::size_t>(flags.get_int("commits", 200));
  // checkpoint_interval per mode: 1 = snapshot-per-commit (the historical
  // whole-document persist shape), 64 = the engine default, 0 = pure log.
  const std::vector<std::size_t> modes =
      parse_list(flags.get_string("modes", ""), {1, 64, 0});

  for (const std::size_t doc_kb : doc_kbs) {
    workload::XmarkOptions xmark;
    xmark.target_bytes = doc_kb * 1024;
    xmark.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
    const workload::XmarkData data = workload::generate_xmark(xmark);
    const std::string xml_bytes = xml::serialize(*data.document);

    for (const std::size_t interval : modes) {
      storage::MemoryStore store;
      if (!store.store("d", xml_bytes).is_ok()) return 1;
      core::DataManager manager(store, interval, /*checkpoint_log_bytes=*/0);
      if (!manager.load_all().is_ok()) return 1;

      util::Histogram persist_us;
      double persist_total_us = 0.0;
      double checkpoint_us = 0.0;
      std::size_t checkpoints = 0;
      for (std::size_t i = 0; i < commits; ++i) {
        const std::string person =
            data.person_ids[i % data.person_ids.size()];
        auto plan = query::compile_text(
            "update d change /site/people/person[@id='" + person +
            "']/name ::= v" + std::to_string(i));
        if (!plan.is_ok()) return 1;
        const core::TxnId txn = 1000 + i;
        if (!manager.run_update(txn, plan.value()).is_ok()) return 1;
        std::vector<std::string> due;
        const auto t0 = Clock::now();
        if (!manager.persist(txn, &due).is_ok()) return 1;
        const auto t1 = Clock::now();
        manager.run_checkpoints(due);
        const auto t2 = Clock::now();
        const double persisted =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        persist_us.add(persisted);
        persist_total_us += persisted;
        if (!due.empty()) {
          checkpoint_us +=
              std::chrono::duration<double, std::micro>(t2 - t1).count();
          ++checkpoints;
        }
      }
      std::printf(
          "{\"figure\":\"abl_wal\",\"doc_kb\":%zu,"
          "\"checkpoint_interval\":%zu,\"commits\":%zu,"
          "\"persist_p50_us\":%.2f,\"persist_p95_us\":%.2f,"
          "\"persist_mean_us\":%.2f,\"checkpoints\":%zu,"
          "\"checkpoint_mean_us\":%.2f,\"commit_mean_us\":%.2f}\n",
          doc_kb, interval, commits, persist_us.percentile(0.5),
          persist_us.percentile(0.95), persist_us.mean(), checkpoints,
          checkpoints == 0 ? 0.0
                           : checkpoint_us / static_cast<double>(checkpoints),
          (persist_total_us + checkpoint_us) /
              static_cast<double>(commits));
      std::fflush(stdout);
    }
  }
  return 0;
}
