// Ablation — plan cache: parse-per-execute (cache capacity 0, the seed's
// behavior of re-lexing and re-parsing every operation on every execution)
// vs cached-plan resolution, on the fig9 workload (read-only XMark queries
// over the fragmented database). Both modes resolve the *textual* operation
// through a query::PlanCache and execute the resulting plan against one
// site's DataManager; the only difference is the capacity, so the measured
// gap is exactly the per-execution compile cost the cache removes.
//
// One JSON line per mode (like fig12_throughput), e.g.:
//   {"figure":"abl_plan_cache","mode":"parse_per_execute","capacity":0,...}
//   {"figure":"abl_plan_cache","mode":"cached","capacity":1024,...}
//
// Flags: --doc_kb= --clients= --txns= --ops= --rounds= --capacity=
//        --shards= --seed=
#include <chrono>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "dtx/data_manager.hpp"
#include "query/plan_cache.hpp"
#include "storage/memory_store.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "workload/fragmentation.hpp"
#include "workload/workload_gen.hpp"
#include "workload/xmark.hpp"

namespace {

using namespace dtx;

struct ModeResult {
  double ops_per_s = 0.0;
  double makespan_s = 0.0;
  std::size_t executed = 0;
  query::PlanCacheStats cache;
};

ModeResult run_mode(core::DataManager& data,
                    const std::vector<std::string>& op_texts,
                    std::size_t rounds, std::size_t capacity,
                    std::size_t shards) {
  query::PlanCache cache(capacity, shards);
  ModeResult result;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const std::string& text : op_texts) {
      auto plan = cache.resolve_text(text);
      if (!plan) {
        std::fprintf(stderr, "compile failed: %s\n",
                     plan.status().to_string().c_str());
        continue;
      }
      if (plan.value()->is_update()) continue;  // fig9 is read-only
      auto rows = data.run_query(*plan.value());
      if (!rows) {
        std::fprintf(stderr, "query failed: %s\n",
                     rows.status().to_string().c_str());
        continue;
      }
      ++result.executed;
    }
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.makespan_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(elapsed)
          .count();
  result.ops_per_s = result.makespan_s > 0.0
                         ? static_cast<double>(result.executed) /
                               result.makespan_s
                         : 0.0;
  result.cache = cache.stats();
  return result;
}

void print_mode(const char* mode, std::size_t capacity, std::size_t shards,
                std::size_t total_ops, std::size_t distinct_ops,
                std::size_t rounds, const ModeResult& result) {
  std::printf(
      "{\"figure\":\"abl_plan_cache\",\"mode\":\"%s\",\"capacity\":%zu,"
      "\"shards\":%zu,\"total_ops\":%zu,\"distinct_ops\":%zu,"
      "\"rounds\":%zu,"
      "\"executed\":%zu,\"ops_per_s\":%.2f,\"plan_hits\":%llu,"
      "\"plan_misses\":%llu,\"plan_evictions\":%llu,\"hit_rate\":%.3f,"
      "\"makespan_s\":%.4f}\n",
      mode, capacity, shards, total_ops, distinct_ops, rounds,
      result.executed,
      result.ops_per_s, static_cast<unsigned long long>(result.cache.hits),
      static_cast<unsigned long long>(result.cache.misses),
      static_cast<unsigned long long>(result.cache.evictions),
      result.cache.hit_rate(), result.makespan_s);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags(argc, argv);

  workload::XmarkOptions xmark;
  xmark.target_bytes = static_cast<std::size_t>(
      flags.get_int("doc_kb", 200) * 1024);
  xmark.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const workload::XmarkData data = workload::generate_xmark(xmark);
  const auto fragments = workload::fragment_xmark(data, 8);

  // One site holding every fragment: the bench isolates plan resolution +
  // execution, not the distributed protocol.
  storage::MemoryStore store;
  for (const workload::Fragment& fragment : fragments) {
    if (!store.store(fragment.doc_name, fragment.xml)) {
      std::fprintf(stderr, "store failed for %s\n",
                   fragment.doc_name.c_str());
      return 1;
    }
  }
  core::DataManager manager(store);
  if (util::Status loaded = manager.load_all(); !loaded) {
    std::fprintf(stderr, "load_all failed: %s\n",
                 loaded.to_string().c_str());
    return 1;
  }

  // Fig. 9 workload: read-only transactions (5 ops each by default).
  workload::WorkloadOptions workload_options;
  workload_options.ops_per_transaction =
      static_cast<std::size_t>(flags.get_int("ops", 5));
  workload_options.update_txn_fraction = 0.0;
  workload::WorkloadGenerator generator(fragments, workload_options);
  util::Rng rng(xmark.seed + 1);
  const std::size_t clients =
      static_cast<std::size_t>(flags.get_int("clients", 50));
  const std::size_t txns_per_client =
      static_cast<std::size_t>(flags.get_int("txns", 5));
  std::vector<std::string> op_texts;
  op_texts.reserve(clients * txns_per_client *
                   workload_options.ops_per_transaction);
  for (std::size_t i = 0; i < clients * txns_per_client; ++i) {
    for (std::string& text : generator.make_transaction(rng)) {
      op_texts.push_back(std::move(text));
    }
  }
  const std::size_t distinct_ops =
      std::unordered_set<std::string>(op_texts.begin(), op_texts.end())
          .size();

  const std::size_t rounds =
      static_cast<std::size_t>(flags.get_int("rounds", 20));
  const std::size_t capacity =
      static_cast<std::size_t>(flags.get_int("capacity", 1024));
  const std::size_t shards =
      static_cast<std::size_t>(flags.get_int("shards", 8));

  // Warm the page cache / branch predictors evenly: one untimed pass.
  (void)run_mode(manager, op_texts, 1, 0, shards);

  const ModeResult baseline =
      run_mode(manager, op_texts, rounds, 0, shards);
  print_mode("parse_per_execute", 0, shards, op_texts.size(), distinct_ops,
             rounds, baseline);

  const ModeResult cached =
      run_mode(manager, op_texts, rounds, capacity, shards);
  print_mode("cached", capacity, shards, op_texts.size(), distinct_ops,
             rounds, cached);

  if (cached.ops_per_s > 0.0 && baseline.ops_per_s > 0.0) {
    std::printf("# cached/parse_per_execute speedup: %.2fx\n",
                cached.ops_per_s / baseline.ops_per_s);
  }
  return 0;
}
