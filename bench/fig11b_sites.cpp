// Figure 11(b) — "Variation in the number of sites": the 40 MB base
// (scaled) fragmented and loaded over 2..8 sites; 50 clients, 20 % update
// transactions, partial replication.
//
// Expected shape (paper): DTX/XDGL's response time falls as sites grow
// (more fragments spread load) while tree locks worsen — more
// synchronization messages and more lock-management overhead at local and
// remote sites. Deadlocks: XDGL lower than Node2PL at higher site counts
// in the paper's account of this experiment.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  apply_common_flags(flags, base);
  // --json: one machine-readable line per point (the partial-replication
  // scaling evidence: --replication=2 --json at 6+ sites vs --replication=0).
  const bool json = flags.get_bool("json", false);

  if (!json) {
    print_header("Figure 11(b): variation in the number of sites", "sites");
  }
  for (std::int64_t sites = 2; sites <= 8; sites += 2) {
    for (const auto protocol :
         {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
          lock::ProtocolKind::kNode2pl}) {
      ExperimentConfig config = base;
      config.sites = static_cast<std::size_t>(sites);
      config.fragment_count = 2 * config.sites;
      config.protocol = protocol;
      const ExperimentResult result = run_experiment(config);
      if (json) {
        print_json_row("fig11b_sites", config, result);
      } else {
        print_row(std::to_string(sites), lock::protocol_kind_name(protocol),
                  result);
      }
    }
  }
  return 0;
}
