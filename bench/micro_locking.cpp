// Micro-benchmarks for the locking layer: lock-table throughput, the
// per-operation lock-set sizes of the three protocols (the paper's "lock
// management overhead" argument in numbers), and wait-for-graph cycle
// detection.
#include <benchmark/benchmark.h>

#include "dataguide/dataguide.hpp"
#include "lock/lock_table.hpp"
#include "lock/protocol.hpp"
#include "util/rng.hpp"
#include "wfg/wait_for_graph.hpp"
#include "workload/xmark.hpp"
#include "xpath/parser.hpp"
#include "xupdate/applier.hpp"
#include "xupdate/update_op.hpp"

namespace {

using namespace dtx;

void BM_LockTableAcquireRelease(benchmark::State& state) {
  lock::LockTable table;
  const auto targets = static_cast<std::uint64_t>(state.range(0));
  std::vector<lock::LockRequest> requests;
  for (std::uint64_t i = 0; i < targets; ++i) {
    requests.push_back({lock::LockTarget{1, i}, lock::LockMode::kIS});
  }
  for (auto _ : state) {
    auto outcome = table.try_acquire_all(1, requests);
    benchmark::DoNotOptimize(outcome);
    table.release_all(1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(targets));
}
BENCHMARK(BM_LockTableAcquireRelease)->Arg(8)->Arg(64)->Arg(1024);

// The sharded table under true multi-threaded load: each benchmark thread
// drives its own transactions over a shared target space, so shard mutexes
// (not one monitor) are what is measured. Arg0 = shard count; compare
// shards=1 (the historical single monitor) against sharded runs at the
// same thread count.
void BM_ShardedLockTableThreaded(benchmark::State& state) {
  static lock::LockTable* table = nullptr;
  if (state.thread_index() == 0) {
    table = new lock::LockTable(static_cast<std::size_t>(state.range(0)));
  }
  constexpr std::uint64_t kNodeSpace = 256;
  const auto base =
      static_cast<lock::TxnId>(state.thread_index()) * 1'000'000 + 1;
  lock::TxnId txn = base;
  std::uint64_t node = static_cast<std::uint64_t>(state.thread_index()) * 7;
  for (auto _ : state) {
    std::vector<lock::LockRequest> requests;
    requests.reserve(8);
    for (int i = 0; i < 8; ++i) {
      node = (node * 2862933555777941757ULL + 3037000493ULL);
      requests.push_back(
          {lock::LockTarget{1, node % kNodeSpace}, lock::LockMode::kIS});
    }
    auto outcome = table->try_acquire_all(txn, requests);
    benchmark::DoNotOptimize(outcome);
    table->release_all(txn);
    ++txn;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
  if (state.thread_index() == 0) {
    state.SetLabel("shards=" + std::to_string(state.range(0)));
    delete table;
    table = nullptr;
  }
}
BENCHMARK(BM_ShardedLockTableThreaded)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Threads(1)
    ->Threads(4);

void BM_LockTableContendedCheck(benchmark::State& state) {
  lock::LockTable table;
  // 16 readers hold ST on one target; measure the denied X probe.
  for (lock::TxnId txn = 1; txn <= 16; ++txn) {
    (void)table.try_acquire(txn, {lock::LockTarget{1, 7}, lock::LockMode::kST});
  }
  for (auto _ : state) {
    auto outcome =
        table.try_acquire(99, {lock::LockTarget{1, 7}, lock::LockMode::kX});
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_LockTableContendedCheck);

struct ProtocolFixtureData {
  workload::XmarkData data;
  std::unique_ptr<dataguide::DataGuide> guide;
  ProtocolFixtureData() {
    workload::XmarkOptions options;
    options.target_bytes = 200'000;
    data = workload::generate_xmark(options);
    guide = dataguide::DataGuide::build(*data.document);
  }
  lock::DocContext context() {
    return lock::DocContext{1, *data.document, *guide};
  }
};

ProtocolFixtureData& fixture() {
  static ProtocolFixtureData instance;
  return instance;
}

void BM_LockSetQuery(benchmark::State& state) {
  const auto kind = static_cast<lock::ProtocolKind>(state.range(0));
  auto protocol = lock::make_protocol(kind);
  auto context = fixture().context();
  auto path = xpath::parse("/site/people/person/name");  // scan
  std::size_t lock_count = 0;
  for (auto _ : state) {
    auto locks = protocol->locks_for_query(path.value(), context);
    lock_count = locks.value().size();
    benchmark::DoNotOptimize(locks);
  }
  // The paper's central overhead claim, quantified: locks per scan.
  state.counters["locks_per_op"] = static_cast<double>(lock_count);
  state.SetLabel(protocol->name());
}
BENCHMARK(BM_LockSetQuery)
    ->Arg(static_cast<int>(lock::ProtocolKind::kXdgl))
    ->Arg(static_cast<int>(lock::ProtocolKind::kNode2pl))
    ->Arg(static_cast<int>(lock::ProtocolKind::kDocLock2pl));

void BM_LockSetInsert(benchmark::State& state) {
  const auto kind = static_cast<lock::ProtocolKind>(state.range(0));
  auto protocol = lock::make_protocol(kind);
  auto context = fixture().context();
  auto op = xupdate::make_insert("/site/people",
                                 "<person id=\"bench\"><name>b</name></person>");
  std::size_t lock_count = 0;
  for (auto _ : state) {
    auto locks = protocol->locks_for_update(op.value(), context);
    lock_count = locks.value().size();
    benchmark::DoNotOptimize(locks);
  }
  state.counters["locks_per_op"] = static_cast<double>(lock_count);
  state.SetLabel(protocol->name());
}
BENCHMARK(BM_LockSetInsert)
    ->Arg(static_cast<int>(lock::ProtocolKind::kXdgl))
    ->Arg(static_cast<int>(lock::ProtocolKind::kNode2pl))
    ->Arg(static_cast<int>(lock::ProtocolKind::kDocLock2pl));

void BM_WfgCycleDetection(benchmark::State& state) {
  const auto txns = static_cast<std::uint64_t>(state.range(0));
  util::Rng rng(11);
  wfg::WaitForGraph graph;
  // Sparse random waits plus one planted cycle.
  for (std::uint64_t i = 0; i < txns; ++i) {
    graph.add_edge(1 + rng.next_below(txns), 1 + rng.next_below(txns));
  }
  graph.add_edge(txns + 1, txns + 2);
  graph.add_edge(txns + 2, txns + 1);
  for (auto _ : state) {
    auto victim = graph.newest_on_cycle();
    benchmark::DoNotOptimize(victim);
  }
}
BENCHMARK(BM_WfgCycleDetection)->Arg(16)->Arg(128)->Arg(1024);

void BM_WfgUnion(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<wfg::WaitForGraph> site_graphs(8);
  for (auto& graph : site_graphs) {
    for (int i = 0; i < 32; ++i) {
      graph.add_edge(1 + rng.next_below(64), 1 + rng.next_below(64));
    }
  }
  for (auto _ : state) {
    wfg::WaitForGraph merged;
    for (const auto& graph : site_graphs) merged.merge(graph);
    benchmark::DoNotOptimize(merged.newest_on_cycle());
  }
}
BENCHMARK(BM_WfgUnion);


void BM_UpdateApplyUndo(benchmark::State& state) {
  // The undo-log round trip of one insert (apply + roll back), including
  // incremental DataGuide maintenance — the cost every aborted operation
  // pays at every replica.
  workload::XmarkOptions options;
  options.target_bytes = 100'000;
  workload::XmarkData data = workload::generate_xmark(options);
  auto guide = dataguide::DataGuide::build(*data.document);
  auto op = xupdate::make_insert(
      "/site/people", "<person id=\"bench\"><name>b</name></person>");
  for (auto _ : state) {
    xupdate::UndoLog undo;
    auto applied =
        xupdate::apply(op.value(), *data.document, undo, guide.get());
    benchmark::DoNotOptimize(applied);
    undo.undo_all(*data.document, guide.get());
  }
}
BENCHMARK(BM_UpdateApplyUndo);

void BM_ChangeApplyCommit(benchmark::State& state) {
  workload::XmarkOptions options;
  options.target_bytes = 100'000;
  workload::XmarkData data = workload::generate_xmark(options);
  auto guide = dataguide::DataGuide::build(*data.document);
  const std::string id = data.person_ids.front();
  auto op = xupdate::make_change(
      "/site/people/person[@id='" + id + "']/phone", "+1 5550000");
  for (auto _ : state) {
    xupdate::UndoLog undo;
    auto applied =
        xupdate::apply(op.value(), *data.document, undo, guide.get());
    benchmark::DoNotOptimize(applied);
    undo.commit(*data.document);
  }
}
BENCHMARK(BM_ChangeApplyCommit);

}  // namespace

BENCHMARK_MAIN();
