// Micro-benchmarks (google-benchmark) for the substrate layers: XML parse /
// serialize, XPath evaluation, DataGuide construction and matching. These
// quantify the per-operation costs behind the figure benches.
#include <benchmark/benchmark.h>

#include "dataguide/dataguide.hpp"
#include "dataguide/guide_match.hpp"
#include "workload/xmark.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace {

using namespace dtx;

const workload::XmarkData& xmark_of(std::size_t bytes) {
  static std::map<std::size_t, workload::XmarkData> cache;
  auto it = cache.find(bytes);
  if (it == cache.end()) {
    workload::XmarkOptions options;
    options.target_bytes = bytes;
    it = cache.emplace(bytes, workload::generate_xmark(options)).first;
  }
  return it->second;
}

void BM_XmlParse(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const std::string text = xml::serialize(*xmark_of(bytes).document);
  for (auto _ : state) {
    auto parsed = xml::parse(text, "bench");
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_XmlParse)->Arg(50'000)->Arg(200'000)->Arg(800'000);

void BM_XmlSerialize(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const workload::XmarkData& data = xmark_of(bytes);
  for (auto _ : state) {
    std::string text = xml::serialize(*data.document);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_XmlSerialize)->Arg(50'000)->Arg(200'000)->Arg(800'000);

void BM_XPathPointQuery(benchmark::State& state) {
  const workload::XmarkData& data = xmark_of(200'000);
  const std::string id = data.person_ids[data.person_ids.size() / 2];
  auto path = xpath::parse("/site/people/person[@id='" + id + "']/name");
  for (auto _ : state) {
    auto nodes = xpath::evaluate(path.value(), *data.document);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_XPathPointQuery);

void BM_XPathDescendantScan(benchmark::State& state) {
  const workload::XmarkData& data = xmark_of(200'000);
  auto path = xpath::parse("//item/price");
  for (auto _ : state) {
    auto nodes = xpath::evaluate(path.value(), *data.document);
    benchmark::DoNotOptimize(nodes);
  }
}
BENCHMARK(BM_XPathDescendantScan);

void BM_XPathParse(benchmark::State& state) {
  for (auto _ : state) {
    auto path = xpath::parse(
        "/site/people/person[@id='person42']/profile/age");
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_XPathParse);

void BM_DataGuideBuild(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const workload::XmarkData& data = xmark_of(bytes);
  for (auto _ : state) {
    auto guide = dataguide::DataGuide::build(*data.document);
    benchmark::DoNotOptimize(guide);
  }
  state.counters["doc_nodes"] =
      static_cast<double>(data.document->node_count());
}
BENCHMARK(BM_DataGuideBuild)->Arg(50'000)->Arg(200'000)->Arg(800'000);

void BM_GuideMatch(benchmark::State& state) {
  const workload::XmarkData& data = xmark_of(200'000);
  auto guide = dataguide::DataGuide::build(*data.document);
  auto path = xpath::parse("/site/people/person[@id='person1']/name");
  for (auto _ : state) {
    auto result = dataguide::match(path.value(), *guide);
    benchmark::DoNotOptimize(result);
  }
  // The headline contrast: the guide has orders of magnitude fewer nodes
  // than the document.
  state.counters["guide_nodes"] = static_cast<double>(guide->node_count());
  state.counters["doc_nodes"] =
      static_cast<double>(data.document->node_count());
}
BENCHMARK(BM_GuideMatch);

}  // namespace

BENCHMARK_MAIN();
