// Figure 10 — "Variation in the update percentage": 50 clients, 5 txns x 5
// ops, partial replication; the share of update transactions varies 20..60 %
// (20 % update operations inside each update transaction). Reports both
// response time and the number of deadlocks.
//
// Expected shape (paper): DTX/XDGL response time stays low as updates grow
// while tree locks climb; XDGL's deadlock count is *higher* and grows with
// the update share (finer granularity -> more concurrency -> more
// conflicting interleavings reach a cycle).
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_op_fraction = 0.2;
  apply_common_flags(flags, base);
  const std::int64_t step = flags.get_int("pct_step", 10);

  print_header("Figure 10: variation in the update-transaction percentage",
               "update_pct");
  for (std::int64_t pct = 20; pct <= 60; pct += step) {
    for (const auto protocol :
         {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
          lock::ProtocolKind::kNode2pl}) {
      ExperimentConfig config = base;
      config.update_txn_fraction = static_cast<double>(pct) / 100.0;
      config.protocol = protocol;
      const ExperimentResult result = run_experiment(config);
      print_row(std::to_string(pct) + "%",
                lock::protocol_kind_name(protocol), result);
      print_json_row("fig10_update_pct", config, result);
    }
  }
  return 0;
}
