// MVCC snapshot-read ablation — lock-free read-only transactions vs. the
// locked baseline, swept over the update-transaction percentage (the
// Figure-10 axis extended down into read-heavy territory).
//
// Each sweep point runs the identical workload twice: once with
// SiteOptions::snapshot_reads on (read-only transactions served from
// versioned snapshots — zero locks, zero wait-for entries, no 2PC) and
// once with it off (every query goes through the lock manager, exactly the
// pre-MVCC engine). Expected shape: at read-heavy mixes (>= 90 % read-only
// transactions) the snapshot engine clears >= 2x the locked throughput —
// queries no longer serialize behind update latches or enter the wait-for
// graph — and the two curves converge as updates take over the mix
// (snapshot reads only accelerate the shrinking read-only share).
//
//   abl_snapshot_reads --pct_list=0,5,10,25,50 --clients=50 --workers=4
//
// JSONL per (update_pct, mode) point via the shared print_json_row: the
// snapshot_txns / snapshot_chain_hits / snapshot_materializes counters
// show how many transactions took the MVCC path and how their version
// lookups resolved.
#include <string>
#include <vector>

#include "workload/experiment.hpp"

namespace {

std::vector<std::int64_t> parse_pcts(const std::string& csv,
                                     std::vector<std::int64_t> fallback) {
  if (csv.empty()) return fallback;
  std::vector<std::int64_t> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t end = csv.find(',', begin);
    const std::string part =
        csv.substr(begin, end == std::string::npos ? end : end - begin);
    if (!part.empty()) out.push_back(std::stoll(part));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return out.empty() ? fallback : out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_op_fraction = 0.2;
  // Concurrency defaults that expose the lock-path cost: several
  // coordinator workers contending on the shared data latch, submissions
  // spread over all sites. Every one is still a flag.
  base.coordinator_workers = 4;
  base.participant_workers = 2;
  base.routing = client::RoutingPolicy::Kind::kRoundRobin;
  apply_common_flags(flags, base);

  const std::vector<std::int64_t> pcts =
      parse_pcts(flags.get_string("pct_list", ""), {0, 5, 10, 25, 50});

  print_header("Snapshot-read ablation: MVCC vs. locked read-only path",
               "update_pct");
  for (const std::int64_t pct : pcts) {
    for (const bool snapshots : {false, true}) {
      ExperimentConfig config = base;
      config.update_txn_fraction = static_cast<double>(pct) / 100.0;
      config.snapshot_reads = snapshots;
      const ExperimentResult result = run_experiment(config);
      print_row(std::to_string(pct) + (snapshots ? "% mvcc" : "% locked"),
                lock::protocol_kind_name(config.protocol), result);
      print_json_row("abl_snapshot_reads", config, result);
    }
  }
  return 0;
}
