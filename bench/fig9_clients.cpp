// Figure 9 — "Variation in the number of clients": response time for 10..50
// clients (5 read-only transactions of 5 operations each), under total and
// partial replication, DTX/XDGL vs DTX with tree locks (Node2PL).
//
// Expected shape (paper): XDGL below Node2PL in both replication modes;
// partial replication below total replication (no synchronization of every
// site on every operation).
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.update_txn_fraction = 0.0;  // read transactions only
  apply_common_flags(flags, base);
  const std::int64_t step = flags.get_int("client_step", 10);
  const std::int64_t max_clients =
      flags.get_int("max_clients", static_cast<std::int64_t>(base.clients));

  print_header("Figure 9: variation in the number of clients (read-only)",
               "clients/repl");
  for (std::int64_t clients = step; clients <= max_clients;
       clients += step) {
    for (const auto replication :
         {workload::Replication::kTotal, workload::Replication::kPartial}) {
      const char* replication_name =
          replication == workload::Replication::kTotal ? "total" : "partial";
      for (const auto protocol :
           {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kNode2pl}) {
        ExperimentConfig config = base;
        config.clients = static_cast<std::size_t>(clients);
        config.replication = replication;
        config.protocol = protocol;
        const ExperimentResult result = run_experiment(config);
        print_row(std::to_string(clients) + "/" + replication_name,
                  lock::protocol_kind_name(protocol), result);
        // Client-observed latency distribution (coordinator-side, every
        // terminated transaction — ClusterStats::response_ms).
        const util::Histogram& latency = result.cluster.response_ms;
        if (!latency.empty()) {
          std::printf("  client latency: p50=%.2fms p95=%.2fms p99=%.2fms "
                      "(n=%zu)\n",
                      latency.percentile(0.50), latency.percentile(0.95),
                      latency.percentile(0.99), latency.count());
        }
        // Compiled-plan reuse across all sites (hot re-executions hit).
        const query::PlanCacheStats& plans = result.cluster.plan_cache;
        std::printf("  plan cache: hits=%llu misses=%llu evictions=%llu "
                    "hit_rate=%.2f\n",
                    static_cast<unsigned long long>(plans.hits),
                    static_cast<unsigned long long>(plans.misses),
                    static_cast<unsigned long long>(plans.evictions),
                    plans.hit_rate());
      }
    }
  }
  return 0;
}
