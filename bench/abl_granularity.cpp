// Ablation A3 — lock granularity: one fixed mixed workload under all three
// protocols (XDGL on the DataGuide, Node2PL instance-tree locks, and the
// "traditional" whole-document lock the paper mentions in §3.2). Shows the
// full granularity spectrum the paper argues about: coarser locks -> fewer
// deadlocks but longer response times.
#include "workload/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dtx;
  using namespace dtx::workload;
  util::Flags flags(argc, argv);

  ExperimentConfig base;
  base.replication = workload::Replication::kPartial;
  base.update_txn_fraction = 0.2;
  apply_common_flags(flags, base);

  print_header("Ablation: lock granularity spectrum", "granularity");
  for (const auto protocol :
       {lock::ProtocolKind::kXdgl, lock::ProtocolKind::kXdglPlain,
        lock::ProtocolKind::kNode2pl, lock::ProtocolKind::kDocLock2pl}) {
    ExperimentConfig config = base;
    config.protocol = protocol;
    const ExperimentResult result = run_experiment(config);
    print_row(lock::protocol_kind_name(protocol),
              lock::protocol_kind_name(protocol), result);
  }
  return 0;
}
