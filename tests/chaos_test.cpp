// Fault-injection and crash/recovery behavior of the DTX runtime:
//
//  * site crash semantics — in-flight transactions abort with
//    kSiteFailure, submissions to a down site are refused, restart
//    rebuilds the engine from the store and serves again;
//  * presumed-abort orphan handling — a participant holding locks for a
//    transaction whose coordinator went silent probes for the outcome and
//    either consolidates (commit decision recorded, durably across a
//    coordinator crash) or rolls back via its undo log;
//  * exactly-once effects under at-least-once delivery — duplicated
//    ExecuteOperations are answered from the reply cache, duplicated
//    commit/abort requests are idempotent;
//  * recovery sync — a replica that missed a commit while crashed is
//    caught up from the freshest peer on restart (commit versions);
//  * abort taxonomy — every non-committed outcome carries a typed reason
//    (the "defensive default" in Coordinator::finish_transaction is
//    audited unreachable: unclassified_aborts stays 0 everywhere);
//  * a miniature chaos soak (workload::ChaosRunner) holding its
//    invariants end to end.
#include <gtest/gtest.h>

#include <thread>

#include "dtx/cluster.hpp"
#include "dtx/wal.hpp"
#include "workload/chaos.hpp"
#include "xml/parser.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::core {
namespace {

using namespace std::chrono_literals;
using txn::AbortReason;
using txn::TxnState;

constexpr const char* kPeopleXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "</people></site>";

ClusterOptions fast_options(std::size_t sites) {
  ClusterOptions options;
  options.site_count = sites;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  options.site.response_timeout = std::chrono::microseconds(150'000);
  options.site.orphan_txn_timeout = std::chrono::microseconds(50'000);
  options.site.orphan_query_limit = 2;
  options.site.commit_ack_rounds = 2;
  return options;
}

/// Polls until the site holds no locks and no undo logs (or fails).
::testing::AssertionResult drained(Site& site,
                                   std::chrono::milliseconds deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  for (;;) {
    const std::size_t locks = site.lock_manager().lock_entries();
    const std::size_t undo = site.lock_manager().undo_log_count();
    if (locks == 0 && undo == 0) return ::testing::AssertionSuccess();
    if (std::chrono::steady_clock::now() >= until) {
      return ::testing::AssertionFailure()
             << "site " << site.id() << " not drained: " << locks
             << " locks, " << undo << " undo logs";
    }
    std::this_thread::sleep_for(5ms);
  }
}

std::string stored_phone(Cluster& cluster, net::SiteId site,
                         const std::string& person) {
  auto stored = wal::materialize(cluster.store_of(site), "d1");
  EXPECT_TRUE(stored.is_ok());
  auto parsed = xml::parse(stored.value(), "d1");
  EXPECT_TRUE(parsed.is_ok());
  auto path =
      xpath::parse("/site/people/person[@id='" + person + "']/phone");
  EXPECT_TRUE(path.is_ok());
  const auto values = xpath::evaluate_strings(path.value(), *parsed.value());
  return values.size() == 1 ? values[0] : "<missing>";
}

std::uint64_t total_unclassified(Cluster& cluster) {
  return cluster.stats().unclassified_aborts;
}

// --- crash / restart lifecycle ------------------------------------------------

TEST(SiteCrashTest, DownSiteRefusesSubmissionsAndRestartServes) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  ASSERT_TRUE(cluster.crash_site(1).is_ok());
  EXPECT_FALSE(cluster.site_running(1));

  // Submitting at the crashed site is refused with a typed reason.
  auto at_down = cluster.execute_text(1, {"query d1 /site/people/person"});
  ASSERT_TRUE(at_down.is_ok());
  EXPECT_EQ(at_down.value().state, TxnState::kAborted);
  EXPECT_EQ(at_down.value().reason, AbortReason::kSiteFailure);

  // A replicated update from the healthy site cannot reach the down
  // replica: participant timeout -> kSiteFailure abort.
  auto through = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 9"});
  ASSERT_TRUE(through.is_ok());
  EXPECT_EQ(through.value().state, TxnState::kAborted);
  EXPECT_EQ(through.value().reason, AbortReason::kSiteFailure);

  ASSERT_TRUE(cluster.restart_site(1).is_ok());
  EXPECT_TRUE(cluster.site_running(1));
  auto after = cluster.execute_text(
      1, {"update d1 change /site/people/person[@id='p1']/phone ::= 777"});
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value().state, TxnState::kCommitted);
  EXPECT_EQ(stored_phone(cluster, 0, "p1"), "777");
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "777");
  EXPECT_EQ(cluster.stats().restarts, 1u);
  EXPECT_EQ(total_unclassified(cluster), 0u);
}

TEST(SiteCrashTest, CrashFailsInFlightTransactionsWithSiteFailure) {
  ClusterOptions options = fast_options(2);
  // Long response timeout: the transaction is guaranteed to still be in
  // flight (waiting on the dead participant) when the coordinator crashes.
  options.site.response_timeout = std::chrono::microseconds(5'000'000);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Stall the transaction by cutting all replies to the coordinator.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::OperationResult>(message.payload);
    });
  });
  auto handle = cluster.submit_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 5"});
  ASSERT_TRUE(handle.is_ok());
  std::this_thread::sleep_for(20ms);  // let it reach the participant wait
  ASSERT_TRUE(cluster.crash_site(0).is_ok());

  const txn::TxnResult result = handle.value()->await();
  EXPECT_NE(result.state, TxnState::kCommitted);
  EXPECT_EQ(result.reason, AbortReason::kSiteFailure);
}

// --- presumed-abort orphan resolution ----------------------------------------

TEST(OrphanTest, ParticipantRollsBackWhenCoordinatorReportsAbort) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // The participant executes and replies, but the reply and the
  // subsequent abort fan-out never arrive: the coordinator aborts on
  // timeout while site 1 still holds the operation's locks and undo log.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return message.from == 1 && message.to == 0 &&
             (std::holds_alternative<net::OperationResult>(message.payload) ||
              std::holds_alternative<net::AbortAck>(message.payload));
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 42"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_NE(result.value().state, TxnState::kCommitted);

  // The orphan sweep probes the (live) coordinator, learns the abort and
  // rolls back via the undo log; the dirty value never reaches the store.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  EXPECT_TRUE(drained(cluster.site(1), 2000ms));
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "111");
  EXPECT_GE(cluster.stats().orphans_aborted, 1u);
  EXPECT_EQ(total_unclassified(cluster), 0u);
}

TEST(OrphanTest, ParticipantConsolidatesWhenCommitDecisionRecorded) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Cut every CommitRequest: the coordinator decides commit (persists
  // locally, durable record) and reports kCommitted, but site 1 never
  // hears it and keeps holding the locks.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitRequest>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 88"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(stored_phone(cluster, 0, "p1"), "88");

  // Orphan probe -> kCommitted -> the participant consolidates: persists
  // and releases, exactly what the lost CommitRequest would have done.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  EXPECT_TRUE(drained(cluster.site(1), 2000ms));
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "88");
  EXPECT_GE(cluster.stats().orphans_committed, 1u);
}

TEST(OrphanTest, CommitDecisionSurvivesCoordinatorCrash) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitRequest>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 99"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);

  // Crash the coordinator after the decision: the in-memory outcome cache
  // dies with it. The durable commit log must answer the probe after the
  // restart — a kUnknown reply here would roll back a committed
  // transaction at site 1 and diverge the replicas forever.
  ASSERT_TRUE(cluster.crash_site(0).is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  ASSERT_TRUE(cluster.restart_site(0).is_ok());
  EXPECT_TRUE(drained(cluster.site(1), 3000ms));
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "99");
  EXPECT_EQ(stored_phone(cluster, 0, "p1"), "99");
  EXPECT_GE(cluster.stats().orphans_committed, 1u);
}

// --- at-least-once delivery --------------------------------------------------

TEST(DuplicationTest, DuplicatedDeliveryIsIdempotent) {
  ClusterOptions options = fast_options(2);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Every message on every link delivered twice: executes must not apply
  // twice (reply cache), commits/aborts must ack idempotently.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.seed(11);
    plan.set_default_fault({.duplicate_probability = 1.0});
  });
  for (int i = 0; i < 5; ++i) {
    auto result = cluster.execute_text(
        i % 2,
        {"update d1 insert into /site/people ::= <person id=\"dup" +
         std::to_string(i) + "\"><name>n</name></person>"});
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().state, TxnState::kCommitted) << i;
  }
  EXPECT_GT(cluster.stats().faults.duplicated, 0u);

  for (net::SiteId site : {0u, 1u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(stored.is_ok());
    auto parsed = xml::parse(stored.value(), "d1");
    ASSERT_TRUE(parsed.is_ok());
    auto path = xpath::parse("/site/people/person/@id");
    ASSERT_TRUE(path.is_ok());
    const auto ids = xpath::evaluate_strings(path.value(), *parsed.value());
    for (int i = 0; i < 5; ++i) {
      const std::string id = "dup" + std::to_string(i);
      EXPECT_EQ(std::count(ids.begin(), ids.end(), id), 1)
          << id << " applied " << std::count(ids.begin(), ids.end(), id)
          << " times at site " << site;
    }
  }
}

// --- recovery sync -----------------------------------------------------------

TEST(RecoverySyncTest, RestartCatchesUpReplicaFromFreshestPeer) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Site 1 misses the commit (CommitRequests cut), then crashes — its
  // executed state and locks are gone, nothing left to probe with.
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitRequest>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p2']/phone ::= 654"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_TRUE(cluster.crash_site(1).is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  EXPECT_EQ(stored_phone(cluster, 1, "p2"), "222");  // stale store

  // Restart: the recovery sync sees the commit missing from site 1's log
  // and ships site 0's record *suffix* — not the whole document — before
  // the engine reloads and replays it.
  ASSERT_TRUE(cluster.restart_site(1).is_ok());
  EXPECT_EQ(cluster.stats().log_suffix_syncs, 1u);
  EXPECT_EQ(cluster.stats().full_syncs, 0u);
  EXPECT_EQ(stored_phone(cluster, 1, "p2"), "654");
  auto read = cluster.execute_text(
      1, {"query d1 /site/people/person[@id='p2']/phone"});
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().state, TxnState::kCommitted);
  ASSERT_EQ(read.value().rows[0].size(), 1u);
  EXPECT_EQ(read.value().rows[0][0], "654");
}

TEST(RecoverySyncTest, FullAdoptionWhenPeerCompactedPastLocalVersion) {
  // The peer checkpoints aggressively (every commit), so by restart time
  // the record site 1 is missing has been compacted into the peer's
  // snapshot — the sync must fall back to whole checkpoint + log
  // adoption.
  ClusterOptions options = fast_options(2);
  options.site.checkpoint_interval = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitRequest>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 777"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_TRUE(cluster.crash_site(1).is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  ASSERT_TRUE(cluster.restart_site(1).is_ok());
  EXPECT_EQ(cluster.stats().full_syncs, 1u);
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "777");
}

TEST(RecoverySyncTest, DivergentCheckpointAdoptionKeepsLocalUniqueCommits) {
  // The nasty corner: the peer compacted a commit this replica is missing
  // (its record is unrecoverable) while this replica's log holds a commit
  // the peer never saw. Equal version counts — position comparison is
  // useless. The sync must adopt the peer's checkpoint AND re-apply the
  // local-unique record on top (the marker ids prove the adopted snapshot
  // cannot already contain it).
  ClusterOptions options = fast_options(2);
  options.site.checkpoint_interval = 1;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  // Site 0 commits + compacts alone (CommitRequests to site 1 cut).
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitRequest>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 777"});
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_TRUE(cluster.crash_site(1).is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter(nullptr);
  });
  // Manufacture site 1's local-unique durable commit (as if it persisted
  // a commit whose CommitRequest never reached site 0 before the crash).
  ASSERT_TRUE(
      cluster.store_of(1)
          .append(wal::log_key("d1"),
                  wal::encode_record(
                      1, 12345,
                      {"update d1 change "
                       "/site/people/person[@id='p2']/phone ::= 888"}))
          .is_ok());

  ASSERT_TRUE(cluster.restart_site(1).is_ok());
  EXPECT_EQ(cluster.stats().full_syncs, 1u);
  // Site 1 holds the union: the peer's compacted commit AND its own.
  EXPECT_EQ(stored_phone(cluster, 1, "p1"), "777");
  EXPECT_EQ(stored_phone(cluster, 1, "p2"), "888");
}

TEST(RecoverySyncTest, CrashMidCheckpointRecoversAndAgrees) {
  // Manufacture the checkpoint crash windows on a crashed site's store —
  // a marker appended without its snapshot, plus a torn record append —
  // then restart and require the replicas to agree.
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 42"});
  ASSERT_TRUE(result.is_ok());
  ASSERT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_TRUE(cluster.crash_site(1).is_ok());

  // Crash window 1: checkpoint marker appended, snapshot never written.
  storage::StorageBackend& store = cluster.store_of(1);
  ASSERT_TRUE(store
                  .append(wal::log_key("d1"),
                          wal::encode_checkpoint(
                              1, wal::fnv1a("<never-written/>"), {99}))
                  .is_ok());
  // Crash window 2: a torn record append behind it.
  const std::string torn =
      wal::encode_record(2, 77, {"update d1 change /site/a ::= x"});
  ASSERT_TRUE(store
                  .append(wal::log_key("d1"),
                          torn.substr(0, torn.size() / 2))
                  .is_ok());

  ASSERT_TRUE(cluster.restart_site(1).is_ok());
  for (net::SiteId site : {0u, 1u}) {
    EXPECT_EQ(stored_phone(cluster, site, "p1"), "42") << "site " << site;
  }
  auto read = cluster.execute_text(
      1, {"query d1 /site/people/person[@id='p1']/phone"});
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().state, TxnState::kCommitted);
  EXPECT_EQ(read.value().rows[0][0], "42");
}

// --- abort taxonomy (regression for the audited defensive default) -----------

TEST(AbortTaxonomyTest, EveryAbortPathYieldsTypedReason) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Unknown document -> parse-error class.
  auto unknown = cluster.execute_text(0, {"query nope /a"});
  ASSERT_TRUE(unknown.is_ok());
  EXPECT_EQ(unknown.value().reason, AbortReason::kParseError);

  // Structurally impossible update -> unprocessable.
  auto bad = cluster.execute_text(
      0, {"update d1 insert after /site ::= <x/>"});
  ASSERT_TRUE(bad.is_ok());
  EXPECT_EQ(bad.value().reason, AbortReason::kUnprocessableUpdate);

  // Down participant -> site failure.
  ASSERT_TRUE(cluster.crash_site(1).is_ok());
  auto down = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 1"});
  ASSERT_TRUE(down.is_ok());
  EXPECT_EQ(down.value().reason, AbortReason::kSiteFailure);
  ASSERT_TRUE(cluster.restart_site(1).is_ok());

  // The coordinator's "defensive default" (finish_transaction) is audited
  // unreachable: nothing above (or in any other suite) may take it.
  EXPECT_EQ(total_unclassified(cluster), 0u);
}

// --- miniature soak ----------------------------------------------------------

TEST(ChaosRunnerTest, MiniSoakHoldsInvariants) {
  workload::ChaosOptions options;
  options.seed = 5;
  options.sites = 3;
  options.clients = 3;
  options.rounds = 2;
  options.traffic_window = std::chrono::milliseconds(100);
  options.fault_hold = std::chrono::milliseconds(100);
  options.background_fault.drop_probability = 0.01;
  options.background_fault.duplicate_probability = 0.01;
  const workload::ChaosReport report = workload::run_chaos(options);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.invariants_ok);
  EXPECT_GT(report.submitted, 0u);
  EXPECT_EQ(report.cluster.unclassified_aborts, 0u);
}

TEST(ChaosRunnerTest, MiniSoakHoldsInvariantsUnderAggressiveCheckpoints) {
  // checkpoint_interval=2 keeps a compaction in flight almost every
  // commit, so crashes land inside and around the checkpoint write
  // sequence; the replicas must still agree after log-suffix recovery.
  workload::ChaosOptions options;
  options.seed = 11;
  options.sites = 3;
  options.clients = 3;
  options.rounds = 2;
  options.checkpoint_interval = 2;
  options.traffic_window = std::chrono::milliseconds(100);
  options.fault_hold = std::chrono::milliseconds(100);
  options.background_fault.drop_probability = 0.01;
  options.background_fault.duplicate_probability = 0.01;
  const workload::ChaosReport report = workload::run_chaos(options);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.invariants_ok);
  EXPECT_GT(report.submitted, 0u);
}

TEST(ChaosRunnerTest, SnapshotReadsStayConsistentAcrossCrashRecovery) {
  // Read-heavy mix over the MVCC snapshot path while sites crash, restart
  // and checkpoint. Every read-only transaction runs its query twice and
  // the runner asserts both executions saw identical rows (one consistent
  // cut, never torn) — any mismatch lands in report.violations. The
  // frequent checkpoints additionally force version-chain pruning and
  // wal::materialize fallbacks concurrently with the readers.
  workload::ChaosOptions options;
  options.seed = 23;
  options.sites = 3;
  options.clients = 4;
  options.rounds = 2;
  options.read_fraction = 0.8;
  options.checkpoint_interval = 2;
  options.traffic_window = std::chrono::milliseconds(100);
  options.fault_hold = std::chrono::milliseconds(100);
  options.background_fault.drop_probability = 0.01;
  options.background_fault.duplicate_probability = 0.01;
  const workload::ChaosReport report = workload::run_chaos(options);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.invariants_ok);
  EXPECT_GT(report.submitted, 0u);
  // The read-heavy mix must actually exercise the snapshot path.
  EXPECT_GT(report.cluster.snapshot_txns, 0u);
  EXPECT_EQ(report.cluster.unclassified_aborts, 0u);
}

}  // namespace
}  // namespace dtx::core
