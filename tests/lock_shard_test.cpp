// Tests for the sharded LockTable: cross-shard batch atomicity, journal
// rollback across shards, per-shard counter aggregation, and a
// multi-threaded stress run asserting no entries or counters are lost.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <thread>
#include <vector>

#include "lock/lock_table.hpp"

namespace dtx::lock {
namespace {

/// First node (scope 1) whose shard differs from `other`'s shard.
std::uint64_t node_in_other_shard(const LockTable& table,
                                  const LockTarget& other) {
  std::uint64_t node = other.node + 1;
  while (table.shard_of(LockTarget{other.scope, node}) ==
         table.shard_of(other)) {
    ++node;
  }
  return node;
}

TEST(LockShardTest, ShardingSpreadsTargets) {
  LockTable table(8);
  EXPECT_EQ(table.shard_count(), 8u);
  std::vector<bool> hit(8, false);
  for (std::uint64_t node = 0; node < 64; ++node) {
    const std::size_t shard = table.shard_of(LockTarget{1, node});
    ASSERT_LT(shard, 8u);
    hit[shard] = true;
  }
  // 64 hashed nodes over 8 shards: every shard should see traffic.
  EXPECT_EQ(std::count(hit.begin(), hit.end(), true), 8);
}

TEST(LockShardTest, ZeroShardCountClampsToOne) {
  LockTable table(0);
  EXPECT_EQ(table.shard_count(), 1u);
  EXPECT_TRUE(table.try_acquire(1, {LockTarget{1, 1}, LockMode::kX}).granted);
  EXPECT_EQ(table.entry_count(), 1u);
}

TEST(LockShardTest, DefaultConstructionIsSingleShard) {
  LockTable table;
  EXPECT_EQ(table.shard_count(), 1u);
}

TEST(LockShardTest, CrossShardBatchConflictReleasesExactlyItsLocks) {
  LockTable table(8);
  const LockTarget a{1, 0};
  const LockTarget b{1, node_in_other_shard(table, a)};

  // txn 1 holds X on b (one shard); txn 2 then asks for a batch spanning
  // both shards whose second request conflicts.
  ASSERT_TRUE(table.try_acquire(1, {b, LockMode::kX}).granted);
  const std::size_t entries_before = table.entry_count();
  const std::uint64_t acquisitions_before = table.acquisition_count();

  AcquisitionJournal journal;
  const AcquireOutcome outcome = table.try_acquire_all(
      2, {{a, LockMode::kST}, {b, LockMode::kST}}, &journal);
  EXPECT_FALSE(outcome.granted);
  ASSERT_EQ(outcome.conflicts.size(), 1u);
  EXPECT_EQ(outcome.conflicts.front(), 1u);

  // The denied batch left nothing behind: the lock it took on a's shard was
  // released, the journal is empty, and txn 1 is untouched.
  EXPECT_TRUE(journal.empty());
  EXPECT_FALSE(table.holds(2, a, LockMode::kST));
  EXPECT_EQ(table.entry_count(), entries_before);
  EXPECT_TRUE(table.holds(1, b, LockMode::kX));
  EXPECT_EQ(table.holders(), std::vector<TxnId>{1});
  // The transient grant on a and its unwind do not leak into the overhead
  // counter beyond the one acquisition that was rolled back.
  EXPECT_EQ(table.acquisition_count(), acquisitions_before + 1);
  EXPECT_EQ(table.conflict_count(), 1u);
}

TEST(LockShardTest, CrossShardUpgradeRollbackRestoresOldMasks) {
  LockTable table(8);
  const LockTarget a{1, 0};
  const LockTarget b{1, node_in_other_shard(table, a)};

  AcquisitionJournal base;
  ASSERT_TRUE(table
                  .try_acquire_all(
                      1, {{a, LockMode::kIS}, {b, LockMode::kIS}}, &base)
                  .granted);
  AcquisitionJournal upgrade;
  ASSERT_TRUE(table
                  .try_acquire_all(
                      1, {{a, LockMode::kIX}, {b, LockMode::kIX}}, &upgrade)
                  .granted);
  ASSERT_EQ(upgrade.items.size(), 2u);

  table.rollback(1, upgrade);
  EXPECT_TRUE(table.holds(1, a, LockMode::kIS));
  EXPECT_TRUE(table.holds(1, b, LockMode::kIS));
  EXPECT_FALSE(table.holds(1, a, LockMode::kIX));
  EXPECT_FALSE(table.holds(1, b, LockMode::kIX));

  table.rollback(1, base);
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_TRUE(table.holders().empty());
}

TEST(LockShardTest, PerShardStatsAggregateToTotals) {
  LockTable table(4);
  for (std::uint64_t node = 0; node < 32; ++node) {
    ASSERT_TRUE(
        table.try_acquire(1, {LockTarget{1, node}, LockMode::kIS}).granted);
  }
  (void)table.try_acquire(2, {LockTarget{1, 0}, LockMode::kX});

  const auto shards = table.shard_stats();
  ASSERT_EQ(shards.size(), 4u);
  std::size_t entries = 0;
  std::uint64_t acquisitions = 0;
  std::uint64_t conflicts = 0;
  for (const auto& shard : shards) {
    entries += shard.entries;
    acquisitions += shard.acquisitions;
    conflicts += shard.conflicts;
  }
  EXPECT_EQ(entries, table.entry_count());
  EXPECT_EQ(acquisitions, table.acquisition_count());
  EXPECT_EQ(conflicts, table.conflict_count());
  EXPECT_EQ(entries, 32u);
  EXPECT_EQ(conflicts, 1u);
}

// N threads hammer overlapping targets with all-or-nothing batches, then
// either roll the batch back or release everything. At the end the table
// must be empty and the aggregated counters must match what the threads
// observed — nothing lost, nothing double-counted.
TEST(LockShardTest, MultiThreadedStressNoLostEntries) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 400;
  constexpr std::uint64_t kNodeSpace = 24;  // heavy overlap across threads

  LockTable table(8);
  std::atomic<std::uint64_t> granted_items{0};
  std::atomic<std::uint64_t> denials{0};

  // A long-lived blocker pins X on one node for the whole run, so conflicts
  // happen even when the scheduler serializes the worker threads.
  constexpr TxnId kBlocker = 1'000'000;
  constexpr std::uint64_t kBlockedNode = 0;
  ASSERT_TRUE(
      table.try_acquire(kBlocker, {LockTarget{1, kBlockedNode}, LockMode::kX})
          .granted);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      std::mt19937_64 rng(17 * (tid + 1));
      for (std::size_t i = 0; i < kIters; ++i) {
        const TxnId txn = static_cast<TxnId>(tid * kIters + i + 1);
        const std::size_t batch_size = 1 + rng() % 6;
        std::vector<LockRequest> requests;
        requests.reserve(batch_size);
        for (std::size_t r = 0; r < batch_size; ++r) {
          const LockTarget target{1, rng() % kNodeSpace};
          // Mostly compatible intent locks, a sprinkle of exclusives so
          // real conflicts and unwinds happen under contention.
          const LockMode mode = rng() % 8 == 0 ? LockMode::kX : LockMode::kIS;
          requests.push_back({target, mode});
        }
        AcquisitionJournal journal;
        const AcquireOutcome outcome =
            table.try_acquire_all(txn, requests, &journal);
        if (!outcome.granted) {
          ASSERT_FALSE(outcome.conflicts.empty());
          ASSERT_TRUE(journal.empty());
          ++denials;
          continue;
        }
        for (const LockRequest& request : requests) {
          ASSERT_TRUE(table.holds(txn, request.target, request.mode));
        }
        granted_items += journal.items.size();
        if (rng() % 2 == 0) {
          table.rollback(txn, journal);
        } else {
          table.release_all(txn);
        }
        ASSERT_FALSE(table.holds(txn, requests.front().target,
                                 requests.front().mode));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_TRUE(table.holds(kBlocker, LockTarget{1, kBlockedNode}, LockMode::kX));
  table.release_all(kBlocker);
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_TRUE(table.holders().empty());
  EXPECT_EQ(table.dump(), "");
  // Every granted journal item is in the acquisition counter. Denied
  // batches may add up to batch-1 more (locks granted before the conflict
  // count as overhead even though they were unwound). Every denial bumped
  // the conflict counter exactly once.
  EXPECT_GE(table.acquisition_count(), granted_items.load());
  EXPECT_LE(table.acquisition_count(),
            granted_items.load() + denials.load() * 5);
  EXPECT_EQ(table.conflict_count(), denials.load());
  EXPECT_GT(granted_items.load(), 0u);
  EXPECT_GT(denials.load(), 0u);
}

}  // namespace
}  // namespace dtx::lock
