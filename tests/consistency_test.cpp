// End-to-end consistency properties of the DTX runtime:
//
//  * reference equivalence — a serial stream of transactions through a
//    cluster must leave every document byte-identical to applying the same
//    committed operations directly to a reference copy;
//  * accounting invariants under concurrency — the number of entities in
//    the final state equals the base plus exactly the committed inserts
//    (aborted transactions leave no trace, committed ones never lose work);
//  * replica agreement under total replication and across protocols.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "dtx/cluster.hpp"
#include "dtx/wal.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"
#include "xupdate/applier.hpp"

namespace dtx::core {
namespace {

using txn::TxnState;

constexpr const char* kBaseXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "<person id=\"p3\"><name>Carla</name><phone>333</phone></person>"
    "</people></site>";

ClusterOptions fast_options(std::size_t sites, lock::ProtocolKind protocol) {
  ClusterOptions options;
  options.site_count = sites;
  options.protocol = protocol;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

/// Serial random workload through the cluster == direct application to a
/// reference document, operation for operation.
class SerialEquivalence
    : public ::testing::TestWithParam<std::tuple<lock::ProtocolKind, int>> {};

TEST_P(SerialEquivalence, ClusterMatchesReferenceEngine) {
  const auto [protocol, seed] = GetParam();
  Cluster cluster(fast_options(2, protocol));
  ASSERT_TRUE(cluster.load_document("d1", kBaseXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto reference_result = xml::parse(kBaseXml, "d1");
  ASSERT_TRUE(reference_result.is_ok());
  auto reference = std::move(reference_result).value();

  util::Rng rng(static_cast<std::uint64_t>(seed));
  for (int round = 0; round < 30; ++round) {
    // One random update op per transaction, serial submission.
    std::string update;
    const double roll = rng.next_double();
    const std::string id = "p" + std::to_string(rng.next_between(1, 9));
    if (roll < 0.4) {
      update = "insert into /site/people ::= <person id=\"q" +
               std::to_string(round) + "\"><name>" + rng.next_word(3, 8) +
               "</name></person>";
    } else if (roll < 0.7) {
      update = "change /site/people/person[@id='" + id + "']/phone ::= " +
               std::to_string(rng.next_below(1000));
    } else if (roll < 0.85) {
      update = "remove /site/people/person[@id='q" +
               std::to_string(rng.next_below(static_cast<std::uint64_t>(
                   std::max(round, 1)))) +
               "']";
    } else {
      update = "rename /site/people/person[@id='" + id + "'] ::= vip";
    }

    auto result = cluster.execute_text(round % 2, {"update d1 " + update});
    ASSERT_TRUE(result.is_ok());
    if (result.value().state != TxnState::kCommitted) continue;

    // Mirror the committed operation on the reference document.
    auto op = xupdate::parse_update(update);
    ASSERT_TRUE(op.is_ok()) << update;
    xupdate::UndoLog undo;
    auto applied = xupdate::apply(op.value(), *reference, undo);
    ASSERT_TRUE(applied.is_ok()) << update;
    undo.commit(*reference);
  }

  cluster.stop();
  const std::string expected = xml::serialize(*reference);
  for (net::SiteId site : {0u, 1u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(stored.is_ok());
    EXPECT_EQ(stored.value(), expected) << "site " << site << " diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsAndSeeds, SerialEquivalence,
    ::testing::Combine(::testing::Values(lock::ProtocolKind::kXdgl,
                                         lock::ProtocolKind::kXdglPlain,
                                         lock::ProtocolKind::kNode2pl,
                                         lock::ProtocolKind::kDocLock2pl),
                       ::testing::Values(1, 2, 3)));

/// Concurrent unique inserts: the final entity count must equal the base
/// count plus exactly the committed inserts, at every replica.
class InsertAccounting
    : public ::testing::TestWithParam<lock::ProtocolKind> {};

TEST_P(InsertAccounting, CommittedInsertsAllPresentAbortedAbsent) {
  Cluster cluster(fast_options(3, GetParam()));
  ASSERT_TRUE(cluster.load_document("d1", kBaseXml, {0, 1, 2}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr int kClients = 6;
  constexpr int kTxnsPerClient = 5;
  std::mutex mutex;
  std::set<std::string> committed_ids;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int t = 0; t < kTxnsPerClient; ++t) {
        const std::string id =
            "n" + std::to_string(c) + "_" + std::to_string(t);
        // A read plus the insert: the read makes wait cycles possible.
        auto result = cluster.execute_text(
            static_cast<net::SiteId>(c % 3),
            {"query d1 /site/people/person/name",
             "update d1 insert into /site/people ::= <person id=\"" + id +
                 "\"><name>x</name></person>"});
        ASSERT_TRUE(result.is_ok());
        if (result.value().state == TxnState::kCommitted) {
          std::lock_guard<std::mutex> lock(mutex);
          committed_ids.insert(id);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  cluster.stop();

  for (net::SiteId site : {0u, 1u, 2u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(stored.is_ok());
    auto parsed = xml::parse(stored.value(), "d1");
    ASSERT_TRUE(parsed.is_ok());
    auto path = xpath::parse("/site/people/person/@id");
    ASSERT_TRUE(path.is_ok());
    const auto ids = xpath::evaluate_strings(path.value(), *parsed.value());
    const std::set<std::string> found(ids.begin(), ids.end());

    // Base entities survived.
    for (const char* base_id : {"p1", "p2", "p3"}) {
      EXPECT_EQ(found.count(base_id), 1u) << "site " << site;
    }
    // Exactly the committed inserts are present.
    EXPECT_EQ(found.size(), 3 + committed_ids.size()) << "site " << site;
    for (const std::string& id : committed_ids) {
      EXPECT_EQ(found.count(id), 1u)
          << "committed insert " << id << " missing at site " << site;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, InsertAccounting,
                         ::testing::Values(lock::ProtocolKind::kXdgl,
                                           lock::ProtocolKind::kXdglPlain,
                                           lock::ProtocolKind::kNode2pl,
                                           lock::ProtocolKind::kDocLock2pl));

/// Concurrent counter-like writes to one element: after the run, every
/// replica must agree on the final value, and it must be one of the
/// committed writes (last-committer-wins under Strict 2PL).
TEST(ConsistencyTest, SingleElementWritersConvergeAcrossReplicas) {
  Cluster cluster(fast_options(2, lock::ProtocolKind::kXdgl));
  ASSERT_TRUE(cluster.load_document("d1", kBaseXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  std::mutex mutex;
  std::set<std::string> committed_values;
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 4; ++i) {
        const std::string value = std::to_string(w * 100 + i);
        auto result = cluster.execute_text(
            static_cast<net::SiteId>(w % 2),
            {"update d1 change /site/people/person[@id='p1']/phone ::= " +
             value});
        ASSERT_TRUE(result.is_ok());
        if (result.value().state == TxnState::kCommitted) {
          std::lock_guard<std::mutex> lock(mutex);
          committed_values.insert(value);
        }
      }
    });
  }
  for (auto& writer : writers) writer.join();
  cluster.stop();

  std::string final_value;
  for (net::SiteId site : {0u, 1u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(stored.is_ok());
    auto parsed = xml::parse(stored.value(), "d1");
    ASSERT_TRUE(parsed.is_ok());
    auto path = xpath::parse("/site/people/person[@id='p1']/phone");
    ASSERT_TRUE(path.is_ok());
    const auto values = xpath::evaluate_strings(path.value(), *parsed.value());
    ASSERT_EQ(values.size(), 1u);
    if (final_value.empty()) {
      final_value = values[0];
    } else {
      EXPECT_EQ(values[0], final_value) << "replicas disagree";
    }
  }
  EXPECT_EQ(committed_values.count(final_value), 1u)
      << "final value '" << final_value << "' was never committed";
}

/// Read-committed isolation: a reader transaction must never observe a
/// value that no committed transaction wrote (dirty read). Writers write
/// marker values and abort; readers poll concurrently.
TEST(ConsistencyTest, NoDirtyReads) {
  Cluster cluster(fast_options(2, lock::ProtocolKind::kXdgl));
  ASSERT_TRUE(cluster.load_document("d1", kBaseXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      // The change succeeds, then the transaction aborts on a structural
      // error: the dirty value 'DIRTY...' must never escape.
      auto result = cluster.execute_text(
          0, {"update d1 change /site/people/person[@id='p2']/phone ::= "
              "DIRTY" + std::to_string(i++),
              "update d1 insert after /site ::= <bad/>"});
      ASSERT_TRUE(result.is_ok());
      ASSERT_EQ(result.value().state, TxnState::kAborted);
    }
  });

  for (int i = 0; i < 40; ++i) {
    auto result = cluster.execute_text(
        1, {"query d1 /site/people/person[@id='p2']/phone"});
    ASSERT_TRUE(result.is_ok());
    if (result.value().state != TxnState::kCommitted) continue;
    ASSERT_EQ(result.value().rows[0].size(), 1u);
    EXPECT_EQ(result.value().rows[0][0], "222")
        << "dirty value leaked to a committed reader";
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace dtx::core
