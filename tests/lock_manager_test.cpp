// Deterministic unit tests of the site LockManager (Algorithm 3): the
// conflict / wait / wake cycle, per-operation undo, commit persistence and
// wait-for-graph bookkeeping — without spinning up sites or threads.
#include <gtest/gtest.h>

#include "dtx/data_manager.hpp"
#include "dtx/lock_manager.hpp"
#include "dtx/wal.hpp"
#include "query/plan.hpp"
#include "storage/memory_store.hpp"
#include "xml/parser.hpp"

namespace dtx::core {
namespace {

using lock::TxnId;

constexpr SiteId kCoordA = 0;
constexpr SiteId kCoordB = 1;

class LockManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.store("d1",
                             "<site><people>"
                             "<person id=\"p1\"><name>Ana</name></person>"
                             "<person id=\"p2\"><name>Bruno</name></person>"
                             "</people></site>")
                    .is_ok());
    data_ = std::make_unique<DataManager>(store_);
    ASSERT_TRUE(data_->load_all().is_ok());
    locks_ = std::make_unique<LockManager>(lock::ProtocolKind::kXdglPlain,
                                           *data_);
  }

  /// Compiles the textual operation into the plan process_operation now
  /// consumes (parse + compile happen once, here — never on execution).
  static query::Plan op(const std::string& text) {
    auto plan = query::compile_text(text);
    EXPECT_TRUE(plan.is_ok()) << text;
    return std::move(plan).value();
  }

  storage::MemoryStore store_;
  std::unique_ptr<DataManager> data_;
  std::unique_ptr<LockManager> locks_;
};

TEST_F(LockManagerTest, QueryExecutesAndReturnsRows) {
  const OpOutcome outcome = locks_->process_operation(
      1, 0, op("query d1 /site/people/person[@id='p1']/name"), kCoordA);
  ASSERT_EQ(outcome.kind, OpOutcome::Kind::kExecuted);
  ASSERT_EQ(outcome.rows.size(), 1u);
  EXPECT_EQ(outcome.rows[0], "Ana");
  EXPECT_GT(locks_->lock_entries(), 0u);
}

TEST_F(LockManagerTest, ConflictReportsBlockersAndRecordsEdge) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  const OpOutcome conflict = locks_->process_operation(
      2, 0,
      op("update d1 insert into /site/people ::= <person id=\"p9\"/>"),
      kCoordB);
  ASSERT_EQ(conflict.kind, OpOutcome::Kind::kConflict);
  ASSERT_EQ(conflict.blockers, std::vector<TxnId>{1});
  // The wait edge t2 -> t1 is in the local graph (Alg. 3 l. 8).
  const auto edges = locks_->wfg_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (wfg::Edge{2, 1}));
}

TEST_F(LockManagerTest, CommitOfBlockerWakesSubscriber) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  ASSERT_EQ(locks_
                ->process_operation(
                    2, 0,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kConflict);

  std::vector<WakeNotice> wakes;
  ASSERT_TRUE(locks_->commit(1, wakes).is_ok());
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0].waiter, 2u);
  EXPECT_EQ(wakes[0].coordinator, kCoordB);

  // The retry now succeeds.
  EXPECT_EQ(locks_
                ->process_operation(
                    2, 0,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kExecuted);
  EXPECT_TRUE(locks_->wfg_edges().empty());  // waiter edge cleared on retry
}

TEST_F(LockManagerTest, AbortOfBlockerAlsoWakes) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  ASSERT_EQ(locks_
                ->process_operation(
                    2, 0,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kConflict);
  std::vector<WakeNotice> wakes;
  locks_->abort(1, wakes);
  ASSERT_EQ(wakes.size(), 1u);
  EXPECT_EQ(wakes[0].waiter, 2u);
}

TEST_F(LockManagerTest, LocalDeadlockDetectedOnCycleClosingEdge) {
  // t1 reads people, t2 reads... we need two lockable resources; use two
  // label paths: person names vs person @id scans are on different guide
  // nodes but share ancestors. Simplest local cycle: t1 holds ST(person),
  // t2 holds X(new staff path) then t1 wants staff, t2 wants person.
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  ASSERT_EQ(locks_
                ->process_operation(
                    2, 0,
                    op("update d1 insert into /site/people ::= "
                       "<staff id=\"s1\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kExecuted);
  // t2 now needs the person guide node -> waits on t1.
  ASSERT_EQ(locks_
                ->process_operation(
                    2, 1,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kConflict);
  // t1 asks for the staff path -> edge t1 -> t2 closes the cycle.
  const OpOutcome outcome = locks_->process_operation(
      1, 1, op("query d1 /site/people/staff/@id"), kCoordA);
  EXPECT_EQ(outcome.kind, OpOutcome::Kind::kDeadlock);
  EXPECT_EQ(locks_->stats().local_deadlocks, 1u);
}

TEST_F(LockManagerTest, UndoOperationRollsBackDocAndLocks) {
  const OpOutcome outcome = locks_->process_operation(
      1, 0,
      op("update d1 insert into /site/people ::= <person id=\"p9\"/>"),
      kCoordA);
  ASSERT_EQ(outcome.kind, OpOutcome::Kind::kExecuted);
  const std::size_t entries_held = locks_->lock_entries();
  ASSERT_GT(entries_held, 0u);

  locks_->undo_operation(1, 0);
  EXPECT_EQ(locks_->lock_entries(), 0u);
  // The insert is gone from the in-memory document.
  const OpOutcome check = locks_->process_operation(
      2, 0, op("query d1 /site/people/person[@id='p9']/name"), kCoordA);
  ASSERT_EQ(check.kind, OpOutcome::Kind::kExecuted);
  EXPECT_TRUE(check.rows.empty());
}

TEST_F(LockManagerTest, UndoOperationForUnknownOpIsNoop) {
  locks_->undo_operation(42, 7);  // never executed here
  EXPECT_EQ(locks_->lock_entries(), 0u);
}

TEST_F(LockManagerTest, CommitPersistsToStorage) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0,
                    op("update d1 change "
                       "/site/people/person[@id='p1']/name ::= Anna"),
                    kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  std::vector<WakeNotice> wakes;
  ASSERT_TRUE(locks_->commit(1, wakes).is_ok());
  auto stored = wal::materialize(store_, "d1");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_NE(stored.value().find("Anna"), std::string::npos);
  EXPECT_EQ(locks_->lock_entries(), 0u);  // Strict 2PL released at commit
}

TEST_F(LockManagerTest, AbortRollsBackDocument) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0,
                    op("update d1 remove /site/people/person[@id='p2']"),
                    kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  std::vector<WakeNotice> wakes;
  locks_->abort(1, wakes);
  const OpOutcome check = locks_->process_operation(
      2, 0, op("query d1 /site/people/person[@id='p2']/name"), kCoordA);
  ASSERT_EQ(check.kind, OpOutcome::Kind::kExecuted);
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0], "Bruno");
}

TEST_F(LockManagerTest, MissingDocumentFails) {
  const OpOutcome outcome = locks_->process_operation(
      1, 0, op("query ghost /site/people"), kCoordA);
  EXPECT_EQ(outcome.kind, OpOutcome::Kind::kFailed);
  EXPECT_FALSE(outcome.error.empty());
}

TEST_F(LockManagerTest, StructuralFailureReleasesThisOpsLocks) {
  const OpOutcome outcome = locks_->process_operation(
      1, 0, op("update d1 insert after /site ::= <bad/>"), kCoordA);
  EXPECT_EQ(outcome.kind, OpOutcome::Kind::kFailed);
  EXPECT_EQ(locks_->lock_entries(), 0u);
}

TEST_F(LockManagerTest, StatsCountExecutionsAndConflicts) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  (void)locks_->process_operation(
      2, 0,
      op("update d1 insert into /site/people ::= <person id=\"x\"/>"),
      kCoordB);
  const LockManagerStats stats = locks_->stats();
  EXPECT_EQ(stats.operations_executed, 1u);
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_GT(stats.lock_acquisitions, 0u);
}

TEST_F(LockManagerTest, ClearWaiterDropsEdgesAndSubscriptions) {
  ASSERT_EQ(locks_
                ->process_operation(
                    1, 0, op("query d1 /site/people/person/name"), kCoordA)
                .kind,
            OpOutcome::Kind::kExecuted);
  ASSERT_EQ(locks_
                ->process_operation(
                    2, 0,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    kCoordB)
                .kind,
            OpOutcome::Kind::kConflict);
  locks_->clear_waiter(2);
  EXPECT_TRUE(locks_->wfg_edges().empty());
  std::vector<WakeNotice> wakes;
  ASSERT_TRUE(locks_->commit(1, wakes).is_ok());
  EXPECT_TRUE(wakes.empty());  // subscription was dropped
}

// With logical locks (ProtocolKind::kXdgl), point operations on different
// instances do not conflict at all.
TEST(LockManagerLogicalTest, PointOpsOnDistinctIdsDoNotConflict) {
  storage::MemoryStore store;
  ASSERT_TRUE(store.store("d1",
                          "<site><people>"
                          "<person id=\"p1\"><name>Ana</name></person>"
                          "<person id=\"p2\"><name>Bruno</name></person>"
                          "</people></site>")
                  .is_ok());
  DataManager data(store);
  ASSERT_TRUE(data.load_all().is_ok());
  LockManager locks(lock::ProtocolKind::kXdgl, data);

  auto op = [](const std::string& text) {
    return query::compile_text(text).value();
  };
  // t1 reads person p1; t2 changes person p2; t3 inserts person p9 — all
  // concurrent under logical locks.
  EXPECT_EQ(locks
                .process_operation(
                    1, 0, op("query d1 /site/people/person[@id='p1']/name"),
                    0)
                .kind,
            OpOutcome::Kind::kExecuted);
  EXPECT_EQ(locks
                .process_operation(
                    2, 0,
                    op("update d1 change "
                       "/site/people/person[@id='p2']/name ::= Bru"),
                    0)
                .kind,
            OpOutcome::Kind::kExecuted);
  EXPECT_EQ(locks
                .process_operation(
                    3, 0,
                    op("update d1 insert into /site/people ::= "
                       "<person id=\"p9\"/>"),
                    0)
                .kind,
            OpOutcome::Kind::kExecuted);
  // ...but a scan still conflicts with the writers (phantom protection).
  const OpOutcome scan = locks.process_operation(
      4, 0, op("query d1 /site/people/person/name"), 0);
  EXPECT_EQ(scan.kind, OpOutcome::Kind::kConflict);
  EXPECT_GE(scan.blockers.size(), 1u);
}

}  // namespace
}  // namespace dtx::core
