#include <gtest/gtest.h>

#include "util/rng.hpp"

#include "xml/builder.hpp"
#include "xml/document.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"

namespace dtx::xml {
namespace {

std::unique_ptr<Document> sample_store() {
  Builder b("d2");
  b.root("products");
  b.child("product").attr("id", "4");
  b.leaf("description", "Monitor").leaf("price", "120.00").up();
  b.child("product").attr("id", "14");
  b.leaf("description", "Mouse").leaf("price", "10.30").up();
  return b.take();
}

// --- Node basics -------------------------------------------------------------

TEST(NodeTest, ElementConstruction) {
  Document doc("d");
  auto element = doc.create_element("person");
  EXPECT_TRUE(element->is_element());
  EXPECT_EQ(element->name(), "person");
  EXPECT_NE(element->id(), kInvalidNodeId);
}

TEST(NodeTest, TextConstruction) {
  Document doc("d");
  auto text = doc.create_text("hello");
  EXPECT_TRUE(text->is_text());
  EXPECT_EQ(text->value(), "hello");
}

TEST(NodeTest, IdsAreUniqueWithinDocument) {
  Document doc("d");
  auto a = doc.create_element("a");
  auto b = doc.create_element("b");
  auto t = doc.create_text("x");
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(b->id(), t->id());
}

TEST(NodeTest, AttributesSetGetRemove) {
  Document doc("d");
  auto element = doc.create_element("person");
  element->set_attribute("id", "4");
  ASSERT_NE(element->attribute("id"), nullptr);
  EXPECT_EQ(*element->attribute("id"), "4");
  element->set_attribute("id", "5");  // overwrite
  EXPECT_EQ(*element->attribute("id"), "5");
  EXPECT_TRUE(element->remove_attribute("id"));
  EXPECT_EQ(element->attribute("id"), nullptr);
  EXPECT_FALSE(element->remove_attribute("id"));
}

TEST(NodeTest, InsertAndRemoveChildren) {
  Document doc("d");
  auto parent_owner = doc.create_element("parent");
  Node* parent = parent_owner.get();
  Node* first = parent->append_child(doc.create_element("a"));
  Node* second = parent->append_child(doc.create_element("b"));
  Node* between = parent->insert_child(1, doc.create_element("mid"));

  ASSERT_EQ(parent->child_count(), 3u);
  EXPECT_EQ(parent->child(0), first);
  EXPECT_EQ(parent->child(1), between);
  EXPECT_EQ(parent->child(2), second);
  EXPECT_EQ(between->parent(), parent);
  EXPECT_EQ(between->index_in_parent(), 1u);

  auto removed = parent->remove_child(1);
  EXPECT_EQ(removed.get(), between);
  EXPECT_EQ(removed->parent(), nullptr);
  EXPECT_EQ(parent->child_count(), 2u);
}

TEST(NodeTest, LabelPath) {
  auto doc = sample_store();
  Node* product = doc->root()->child(0);
  Node* price = product->first_child_named("price");
  ASSERT_NE(price, nullptr);
  EXPECT_EQ(price->label_path(), "/products/product/price");
  EXPECT_EQ(price->child(0)->label_path(),
            "/products/product/price/#text");
}

TEST(NodeTest, TextAndDeepText) {
  auto doc = sample_store();
  Node* product = doc->root()->child(0);
  EXPECT_EQ(product->first_child_named("price")->text(), "120.00");
  EXPECT_EQ(product->text(), "");  // no direct text children
  EXPECT_EQ(product->deep_text(), "Monitor120.00");
}

TEST(NodeTest, SubtreeSizeAndDepth) {
  auto doc = sample_store();
  // products + 2 * (product + description + #text + price + #text) = 11
  EXPECT_EQ(doc->root()->subtree_size(), 11u);
  EXPECT_EQ(doc->root()->depth(), 0u);
  EXPECT_EQ(doc->root()->child(0)->depth(), 1u);
}

TEST(NodeTest, ContainsIsReflexiveAndTransitive) {
  auto doc = sample_store();
  Node* root = doc->root();
  Node* price = root->child(0)->first_child_named("price");
  EXPECT_TRUE(root->contains(*root));
  EXPECT_TRUE(root->contains(*price));
  EXPECT_FALSE(price->contains(*root));
}

TEST(NodeTest, DeepEqualIgnoresIds) {
  auto a = sample_store();
  auto b = sample_store();
  EXPECT_TRUE(a->root()->deep_equal(*b->root()));
  b->root()->child(0)->set_attribute("id", "999");
  EXPECT_FALSE(a->root()->deep_equal(*b->root()));
}

TEST(NodeTest, CloneIsDeepWithFreshIds) {
  auto doc = sample_store();
  auto copy = doc->root()->clone(*doc);
  EXPECT_TRUE(copy->deep_equal(*doc->root()));
  EXPECT_NE(copy->id(), doc->root()->id());
}

TEST(NodeTest, ChildrenNamed) {
  auto doc = sample_store();
  EXPECT_EQ(doc->root()->children_named("product").size(), 2u);
  EXPECT_EQ(doc->root()->children_named("nothing").size(), 0u);
}

// --- Document -----------------------------------------------------------------

TEST(DocumentTest, FindById) {
  auto doc = sample_store();
  Node* product = doc->root()->child(1);
  EXPECT_EQ(doc->find(product->id()), product);
  EXPECT_EQ(doc->find(999999), nullptr);
}

TEST(DocumentTest, UnregisterSubtree) {
  auto doc = sample_store();
  Node* product = doc->root()->child(1);
  const NodeId id = product->id();
  auto detached = doc->root()->remove_child(1);
  EXPECT_EQ(doc->find(id), detached.get());  // still registered while alive
  doc->unregister_subtree(*detached);
  EXPECT_EQ(doc->find(id), nullptr);
}

TEST(DocumentTest, NodeCountAndClone) {
  auto doc = sample_store();
  EXPECT_EQ(doc->node_count(), 11u);
  auto copy = doc->clone("copy");
  EXPECT_EQ(copy->name(), "copy");
  EXPECT_TRUE(copy->deep_equal(*doc));
  EXPECT_EQ(copy->node_count(), 11u);
}

// --- Builder -------------------------------------------------------------------

TEST(BuilderTest, BuildsNestedStructure) {
  Builder b("d1");
  b.root("people")
      .child("person")
      .attr("id", "4")
      .leaf("name", "John")
      .up();
  auto doc = b.take();
  ASSERT_TRUE(doc->has_root());
  Node* person = doc->root()->first_child_named("person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(*person->attribute("id"), "4");
  EXPECT_EQ(person->first_child_named("name")->text(), "John");
}

// --- Parser ----------------------------------------------------------------------

TEST(ParserTest, ParsesSimpleDocument) {
  auto result = parse("<a><b>hi</b><c x='1'/></a>", "t");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Document& doc = *result.value();
  EXPECT_EQ(doc.root()->name(), "a");
  EXPECT_EQ(doc.root()->child_count(), 2u);
  EXPECT_EQ(doc.root()->child(0)->first_child_named("b"), nullptr);
  EXPECT_EQ(doc.root()->first_child_named("b")->text(), "hi");
  EXPECT_EQ(*doc.root()->first_child_named("c")->attribute("x"), "1");
}

TEST(ParserTest, DeclarationCommentsDoctypeSkipped) {
  const char* text =
      "<?xml version=\"1.0\"?>\n"
      "<!DOCTYPE a [<!ELEMENT a ANY>]>\n"
      "<!-- top comment -->\n"
      "<a><!-- inner --><b>x</b></a>\n"
      "<!-- trailing -->";
  auto result = parse(text, "t");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value()->root()->first_child_named("b")->text(), "x");
}

TEST(ParserTest, EntitiesUnescaped) {
  auto result = parse("<a attr='&lt;3'>&amp;&gt;</a>", "t");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->root()->text(), "&>");
  EXPECT_EQ(*result.value()->root()->attribute("attr"), "<3");
}

TEST(ParserTest, CdataBecomesText) {
  auto result = parse("<a><![CDATA[x < y & z]]></a>", "t");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->root()->text(), "x < y & z");
}

TEST(ParserTest, WhitespaceStrippedByDefault) {
  auto result = parse("<a>\n  <b>x</b>\n</a>", "t");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->root()->child_count(), 1u);
}

TEST(ParserTest, WhitespaceKeptWhenRequested) {
  ParseOptions options;
  options.strip_whitespace_text = false;
  auto result = parse("<a>\n  <b>x</b>\n</a>", "t", options);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->root()->child_count(), 3u);
}

TEST(ParserTest, SelfClosingTag) {
  auto result = parse("<a><b/><c/></a>", "t");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value()->root()->child_count(), 2u);
}

TEST(ParserTest, ErrorOnMismatchedTags) {
  auto result = parse("<a><b></a></b>", "t");
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), util::Code::kInvalidArgument);
}

TEST(ParserTest, ErrorOnUnterminatedElement) {
  EXPECT_FALSE(parse("<a><b>", "t").is_ok());
}

TEST(ParserTest, ErrorOnTrailingContent) {
  EXPECT_FALSE(parse("<a/><b/>", "t").is_ok());
}

TEST(ParserTest, ErrorOnEmptyInput) {
  EXPECT_FALSE(parse("", "t").is_ok());
  EXPECT_FALSE(parse("   \n  ", "t").is_ok());
}

TEST(ParserTest, ErrorMentionsLineNumber) {
  auto result = parse("<a>\n<b>\n</c>\n</a>", "t");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos)
      << result.status().to_string();
}

TEST(ParserTest, FragmentParsesIntoExistingDocument) {
  Document doc("d");
  auto fragment = parse_fragment("<person><name>Ana</name></person>", doc);
  ASSERT_TRUE(fragment.is_ok());
  EXPECT_EQ(fragment.value()->name(), "person");
  // Ids registered with the host document.
  EXPECT_EQ(doc.find(fragment.value()->id()), fragment.value().get());
}

// --- Serializer -------------------------------------------------------------------

TEST(SerializerTest, RoundTripCompact) {
  auto doc = sample_store();
  const std::string text = serialize(*doc);
  auto reparsed = parse(text, "copy");
  ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
  EXPECT_TRUE(reparsed.value()->deep_equal(*doc));
}

TEST(SerializerTest, RoundTripWithSpecialCharacters) {
  Builder b("d");
  b.root("a").attr("q", "x\"<>&'").leaf("t", "1 < 2 & 3 > 2");
  auto doc = b.take();
  auto reparsed = parse(serialize(*doc), "copy");
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_TRUE(reparsed.value()->deep_equal(*doc));
}

TEST(SerializerTest, IndentedOutputHasNewlines) {
  auto doc = sample_store();
  SerializeOptions options;
  options.indent = true;
  const std::string pretty = serialize(*doc, options);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto reparsed = parse(pretty, "copy");
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_TRUE(reparsed.value()->deep_equal(*doc));
}

TEST(SerializerTest, DeclarationEmitted) {
  auto doc = sample_store();
  SerializeOptions options;
  options.declaration = true;
  EXPECT_EQ(serialize(*doc, options).rfind("<?xml", 0), 0u);
}

TEST(SerializerTest, EmptyElementSelfCloses) {
  auto result = parse("<a><b></b></a>", "t");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(serialize(*result.value()), "<a><b/></a>");
}

TEST(SerializerTest, SerializedSizeMatches) {
  auto doc = sample_store();
  EXPECT_EQ(serialized_size(*doc->root()), serialize(*doc->root()).size());
}


// --- property tests -----------------------------------------------------------

namespace property {

#include <cstdint>

/// Random tree generator for round-trip properties.
xml::Node* random_subtree(dtx::util::Rng& rng, Document& doc, Node* parent,
                          int depth) {
  Node* element = parent->append_child(
      doc.create_element(rng.next_word(1, 8)));
  const int attrs = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < attrs; ++i) {
    element->set_attribute(rng.next_word(1, 6),
                           rng.next_word(0 + 1, 10) + "<&'\"");
  }
  if (depth > 0) {
    const int children = static_cast<int>(rng.next_below(4));
    for (int i = 0; i < children; ++i) {
      // Never two adjacent text children: serialization merges them, so
      // they are not representable distinctly (standard XML data model).
      const bool last_was_text =
          element->child_count() > 0 &&
          element->child(element->child_count() - 1)->is_text();
      if (!last_was_text && rng.next_bool(0.3)) {
        element->append_child(
            doc.create_text(rng.next_word(1, 12) + "&<>\""));
      } else {
        random_subtree(rng, doc, element, depth - 1);
      }
    }
  }
  return element;
}

std::unique_ptr<Document> random_document(std::uint64_t seed) {
  dtx::util::Rng rng(seed);
  auto doc = std::make_unique<Document>("random");
  auto root_owner = doc->create_element("root");
  Node* root = doc->set_root(std::move(root_owner));
  const int children = 1 + static_cast<int>(rng.next_below(5));
  for (int i = 0; i < children; ++i) {
    random_subtree(rng, *doc, root, 4);
  }
  return doc;
}

}  // namespace property

class XmlRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripProperty, SerializeParseIsIdentity) {
  for (int i = 0; i < 20; ++i) {
    auto doc = property::random_document(
        static_cast<std::uint64_t>(GetParam()) * 1000 + i);
    const std::string compact = serialize(*doc);
    auto reparsed = parse(compact, "copy");
    ASSERT_TRUE(reparsed.is_ok()) << reparsed.status().to_string();
    EXPECT_TRUE(reparsed.value()->deep_equal(*doc)) << compact;
    // Serialization is a fixpoint after one round trip.
    EXPECT_EQ(serialize(*reparsed.value()), compact);

    SerializeOptions pretty;
    pretty.indent = true;
    auto pretty_reparsed = parse(serialize(*doc, pretty), "copy2");
    ASSERT_TRUE(pretty_reparsed.is_ok());
    EXPECT_TRUE(pretty_reparsed.value()->deep_equal(*doc));
  }
}

TEST_P(XmlRoundTripProperty, CloneEqualsOriginal) {
  auto doc =
      property::random_document(static_cast<std::uint64_t>(GetParam()));
  auto copy = doc->clone("copy");
  EXPECT_TRUE(copy->deep_equal(*doc));
  EXPECT_EQ(copy->node_count(), doc->node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dtx::xml
