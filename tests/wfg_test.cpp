#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"
#include "wfg/wait_for_graph.hpp"

namespace dtx::wfg {
namespace {

TEST(WaitForGraphTest, EmptyGraphHasNoCycle) {
  WaitForGraph graph;
  EXPECT_TRUE(graph.empty());
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_TRUE(graph.find_cycle().empty());
  EXPECT_EQ(graph.newest_on_cycle(), 0u);
}

TEST(WaitForGraphTest, ChainIsAcyclic) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_EQ(graph.edge_count(), 3u);
}

TEST(WaitForGraphTest, SelfEdgeIgnored) {
  WaitForGraph graph;
  graph.add_edge(1, 1);
  EXPECT_TRUE(graph.empty());
}

TEST(WaitForGraphTest, TwoCycleDetected) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 1);
  EXPECT_TRUE(graph.has_cycle());
  auto cycle = graph.find_cycle();
  ASSERT_EQ(cycle.size(), 2u);
  EXPECT_EQ(graph.newest_on_cycle(), 2u);
}

TEST(WaitForGraphTest, LongCycleFound) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 3);
  graph.add_edge(3, 4);
  graph.add_edge(4, 1);
  auto cycle = graph.find_cycle();
  ASSERT_EQ(cycle.size(), 4u);
  EXPECT_EQ(graph.newest_on_cycle(), 4u);
}

TEST(WaitForGraphTest, CycleWithTailExcludesTail) {
  WaitForGraph graph;
  graph.add_edge(9, 1);  // tail into the cycle
  graph.add_edge(1, 2);
  graph.add_edge(2, 1);
  auto cycle = graph.find_cycle();
  std::sort(cycle.begin(), cycle.end());
  EXPECT_EQ(cycle, (std::vector<TxnId>{1, 2}));
  EXPECT_EQ(graph.newest_on_cycle(), 2u);  // 9 is not on the cycle
}

TEST(WaitForGraphTest, NewestIsMaxId) {
  WaitForGraph graph;
  graph.add_edge(50, 7);
  graph.add_edge(7, 12);
  graph.add_edge(12, 50);
  EXPECT_EQ(graph.newest_on_cycle(), 50u);
}

TEST(WaitForGraphTest, ClearWaiterBreaksCycle) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(2, 1);
  graph.clear_waiter(2);
  EXPECT_FALSE(graph.has_cycle());
  EXPECT_EQ(graph.edge_count(), 1u);
}

TEST(WaitForGraphTest, RemoveTxnDropsBothDirections) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  graph.add_edge(3, 1);
  graph.add_edge(2, 3);
  graph.remove_txn(1);
  EXPECT_EQ(graph.edge_count(), 1u);  // only 2 -> 3 left
  EXPECT_FALSE(graph.has_cycle());
}

TEST(WaitForGraphTest, AddEdgesBatch) {
  WaitForGraph graph;
  graph.add_edges(1, {2, 3, 4, 1});  // self ignored
  EXPECT_EQ(graph.edge_count(), 3u);
  EXPECT_EQ(graph.holders_blocking(1), (std::vector<TxnId>{2, 3, 4}));
  EXPECT_TRUE(graph.holders_blocking(2).empty());
}

TEST(WaitForGraphTest, MergeUnionsEdges) {
  // The distributed pattern from §2.4: each site sees half the cycle.
  WaitForGraph site1;
  site1.add_edge(1, 2);  // t1 waits for t2 at s1
  WaitForGraph site2;
  site2.add_edge(2, 1);  // t2 waits for t1 at s2
  EXPECT_FALSE(site1.has_cycle());
  EXPECT_FALSE(site2.has_cycle());

  WaitForGraph merged;
  merged.merge(site1);
  merged.merge(site2);
  EXPECT_TRUE(merged.has_cycle());
  EXPECT_EQ(merged.newest_on_cycle(), 2u);
}

TEST(WaitForGraphTest, MergeIsIdempotent) {
  WaitForGraph a;
  a.add_edge(1, 2);
  WaitForGraph b;
  b.add_edge(1, 2);
  a.merge(b);
  EXPECT_EQ(a.edge_count(), 1u);
}

TEST(WaitForGraphTest, EdgesRoundTrip) {
  WaitForGraph graph;
  graph.add_edge(3, 1);
  graph.add_edge(1, 2);
  graph.add_edge(3, 2);
  const auto edges = graph.edges();
  ASSERT_EQ(edges.size(), 3u);
  // Sorted by (waiter, holder).
  EXPECT_EQ(edges[0], (Edge{1, 2}));
  EXPECT_EQ(edges[1], (Edge{3, 1}));
  EXPECT_EQ(edges[2], (Edge{3, 2}));

  WaitForGraph rebuilt = WaitForGraph::from_edges(edges);
  EXPECT_EQ(rebuilt.edges(), edges);
}

TEST(WaitForGraphTest, ToStringListsEdges) {
  WaitForGraph graph;
  graph.add_edge(1, 2);
  EXPECT_EQ(graph.to_string(), "t1 -> t2\n");
}

// Property: on random graphs, find_cycle() returns an actual cycle (every
// consecutive pair is an edge, and the last wraps to the first).
class WfgCycleProperty : public ::testing::TestWithParam<int> {};

TEST_P(WfgCycleProperty, ReportedCycleIsReal) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int round = 0; round < 50; ++round) {
    WaitForGraph graph;
    const int nodes = 2 + static_cast<int>(rng.next_below(10));
    const int edges = static_cast<int>(rng.next_below(25));
    std::vector<Edge> edge_list;
    for (int i = 0; i < edges; ++i) {
      const TxnId waiter = 1 + rng.next_below(static_cast<std::uint64_t>(nodes));
      const TxnId holder = 1 + rng.next_below(static_cast<std::uint64_t>(nodes));
      graph.add_edge(waiter, holder);
    }
    const auto all_edges = graph.edges();
    const auto has_edge = [&](TxnId from, TxnId to) {
      return std::find(all_edges.begin(), all_edges.end(), Edge{from, to}) !=
             all_edges.end();
    };
    const auto cycle = graph.find_cycle();
    if (cycle.empty()) {
      EXPECT_FALSE(graph.has_cycle());
      continue;
    }
    ASSERT_GE(cycle.size(), 2u);
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      EXPECT_TRUE(has_edge(cycle[i], cycle[(i + 1) % cycle.size()]))
          << "edge t" << cycle[i] << " -> t" << cycle[(i + 1) % cycle.size()]
          << " missing";
    }
    // newest_on_cycle must be on the reported cycle.
    EXPECT_NE(std::find(cycle.begin(), cycle.end(), graph.newest_on_cycle()),
              cycle.end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WfgCycleProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace dtx::wfg
