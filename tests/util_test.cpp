#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/flags.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace dtx::util {
namespace {

// --- Status / Result ---------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.is_ok());
  EXPECT_EQ(status.code(), Code::kOk);
  EXPECT_EQ(status.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status(Code::kConflict, "ST held by t12");
  EXPECT_FALSE(status.is_ok());
  EXPECT_FALSE(static_cast<bool>(status));
  EXPECT_EQ(status.code(), Code::kConflict);
  EXPECT_EQ(status.to_string(), "conflict: ST held by t12");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(Code::kInternal); ++i) {
    EXPECT_STRNE(code_name(static_cast<Code>(i)), "unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status(Code::kNotFound, "nope"));
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

// --- Rng -----------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBetweenInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // The child stream should not replay the parent's output.
  Rng parent_again(42);
  (void)parent_again.next_u64();  // consumed by split
  EXPECT_NE(child.next_u64(), parent_again.next_u64());
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = items;
  rng.shuffle(items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, sorted);
}

TEST(RngTest, WordLengthsRespectBounds) {
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    const std::string word = rng.next_word(2, 9);
    EXPECT_GE(word.size(), 2u);
    EXPECT_LE(word.size(), 9u);
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

// --- Histogram -------------------------------------------------------------

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
}

TEST(HistogramTest, Percentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a;
  Histogram b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.add(5.0);
  EXPECT_NE(h.summary("ms").find("n=1"), std::string::npos);
  Histogram empty;
  EXPECT_EQ(empty.summary("ms"), "n=0");
}

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  h.add(7.0);
  h.add(7.0);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

// --- strings ---------------------------------------------------------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  const auto pieces = split("a//b/", '/');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> pieces{"site", "people", "person"};
  EXPECT_EQ(join(pieces, "/"), "site/people/person");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("/site/people", "/site"));
  EXPECT_FALSE(starts_with("/site", "/site/people"));
  EXPECT_TRUE(ends_with("doc.xml", ".xml"));
  EXPECT_FALSE(ends_with("doc.xml", ".json"));
}

TEST(StringsTest, XmlEscapeRoundTrip) {
  const std::string original = "a<b & c>\"d'e";
  const std::string escaped = xml_escape(original);
  EXPECT_EQ(escaped, "a&lt;b &amp; c&gt;&quot;d&apos;e");
  EXPECT_EQ(xml_unescape(escaped), original);
}

TEST(StringsTest, UnescapeUnknownEntityPassesThrough) {
  EXPECT_EQ(xml_unescape("&copy; x"), "&copy; x");
}

// --- flags -------------------------------------------------------------------

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog",          "--clients=50",   "--ratio=0.25",
                        "--name=xdgl",   "--verbose",      "--off=false"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.get_int("clients", 0), 50);
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), 0.25);
  EXPECT_EQ(flags.get_string("name", ""), "xdgl");
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_FALSE(flags.get_bool("off", true));
  EXPECT_EQ(flags.get_int("missing", 7), 7);
  EXPECT_TRUE(flags.has("clients"));
  EXPECT_FALSE(flags.has("missing"));
}

}  // namespace
}  // namespace dtx::util
