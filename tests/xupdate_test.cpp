#include <gtest/gtest.h>

#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"
#include "xupdate/applier.hpp"
#include "xupdate/undo_log.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::xupdate {
namespace {

using xml::Document;

std::unique_ptr<Document> store_sample() {
  auto result = xml::parse(R"(
    <products>
      <product><id>4</id><description>Monitor</description><price>120.00</price></product>
      <product><id>14</id><description>Printer</description><price>55.00</price></product>
    </products>)",
                           "d2");
  EXPECT_TRUE(result.is_ok());
  return std::move(result).value();
}

std::size_t count(const std::string& expr, const Document& doc) {
  auto path = xpath::parse(expr);
  EXPECT_TRUE(path.is_ok());
  return xpath::evaluate(path.value(), doc).size();
}

// --- textual form -------------------------------------------------------------

TEST(UpdateParseTest, InsertRoundTrip) {
  auto op = parse_update(
      "insert into /products ::= <product><id>13</id></product>");
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  EXPECT_EQ(op.value().kind, UpdateKind::kInsert);
  EXPECT_EQ(op.value().where, InsertWhere::kInto);
  auto reparsed = parse_update(op.value().to_string());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value().to_string(), op.value().to_string());
}

TEST(UpdateParseTest, InsertBeforeAfter) {
  auto before = parse_update(
      "insert before /products/product[id='14'] ::= <product/>");
  ASSERT_TRUE(before.is_ok());
  EXPECT_EQ(before.value().where, InsertWhere::kBefore);
  auto after = parse_update(
      "insert after /products/product[id='4'] ::= <product/>");
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(after.value().where, InsertWhere::kAfter);
}

TEST(UpdateParseTest, RemoveRenameChangeTranspose) {
  EXPECT_TRUE(parse_update("remove /products/product[id='4']").is_ok());
  EXPECT_TRUE(
      parse_update("rename /products/product ::= item").is_ok());
  EXPECT_TRUE(
      parse_update("change /products/product/price ::= 9.99").is_ok());
  EXPECT_TRUE(parse_update(
                  "transpose /products/product[id='4'] ::= /products")
                  .is_ok());
}

TEST(UpdateParseTest, Errors) {
  EXPECT_FALSE(parse_update("explode /products").is_ok());
  EXPECT_FALSE(parse_update("insert /products ::= <x/>").is_ok());
  EXPECT_FALSE(parse_update("insert into /products <x/>").is_ok());  // no ::=
  EXPECT_FALSE(parse_update("remove").is_ok());
  EXPECT_FALSE(parse_update("rename /a/@id ::= b").is_ok());  // attr target
  EXPECT_FALSE(parse_update("insert into /a ::= ").is_ok());  // empty content
}

// --- insert ----------------------------------------------------------------------

TEST(ApplyTest, InsertInto) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_insert("/products",
                        "<product><id>13</id><description>Mouse</description>"
                        "<price>10.30</price></product>");
  ASSERT_TRUE(op.is_ok());
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().affected, 1u);
  EXPECT_EQ(count("/products/product", *doc), 3u);
  EXPECT_EQ(count("/products/product[id='13']", *doc), 1u);
  // Inserted as last child.
  EXPECT_EQ(doc->root()->child(2)->first_child_named("id")->text(), "13");
}

TEST(ApplyTest, InsertBeforeAndAfterPositions) {
  auto doc = store_sample();
  UndoLog undo;
  auto before =
      make_insert("/products/product[id='4']", "<marker-b/>",
                  InsertWhere::kBefore);
  ASSERT_TRUE(before.is_ok());
  ASSERT_TRUE(apply(before.value(), *doc, undo).is_ok());
  auto after = make_insert("/products/product[id='4']", "<marker-a/>",
                           InsertWhere::kAfter);
  ASSERT_TRUE(after.is_ok());
  ASSERT_TRUE(apply(after.value(), *doc, undo).is_ok());

  ASSERT_EQ(doc->root()->child_count(), 4u);
  EXPECT_EQ(doc->root()->child(0)->name(), "marker-b");
  EXPECT_EQ(doc->root()->child(1)->name(), "product");
  EXPECT_EQ(doc->root()->child(2)->name(), "marker-a");
}

TEST(ApplyTest, InsertIntoMultipleTargets) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_insert("/products/product", "<tag/>");
  ASSERT_TRUE(op.is_ok());
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().affected, 2u);
  EXPECT_EQ(count("/products/product/tag", *doc), 2u);
}

TEST(ApplyTest, InsertZeroTargetsIsNoop) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_insert("/products/nothing", "<x/>");
  ASSERT_TRUE(op.is_ok());
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().affected, 0u);
  EXPECT_TRUE(undo.empty());
}

TEST(ApplyTest, InsertBesideRootFails) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_insert("/products", "<x/>", InsertWhere::kAfter);
  ASSERT_TRUE(op.is_ok());
  EXPECT_FALSE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_TRUE(undo.empty());
}

TEST(ApplyTest, InsertMalformedContentFails) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_insert("/products", "<broken");
  ASSERT_TRUE(op.is_ok());
  const std::string before = xml::serialize(*doc);
  EXPECT_FALSE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_EQ(xml::serialize(*doc), before);  // untouched
}

// --- remove -----------------------------------------------------------------------

TEST(ApplyTest, RemoveSingle) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_remove("/products/product[id='4']");
  ASSERT_TRUE(op.is_ok());
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().affected, 1u);
  EXPECT_EQ(count("/products/product", *doc), 1u);
  EXPECT_EQ(count("/products/product[id='4']", *doc), 0u);
}

TEST(ApplyTest, RemoveAllTargets) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_remove("/products/product");
  ASSERT_TRUE(op.is_ok());
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().affected, 2u);
  EXPECT_EQ(doc->root()->child_count(), 0u);
}

TEST(ApplyTest, RemoveRootFails) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_remove("/products");
  ASSERT_TRUE(op.is_ok());
  EXPECT_FALSE(apply(op.value(), *doc, undo).is_ok());
}

// --- rename / change -----------------------------------------------------------------

TEST(ApplyTest, RenameChangesLabel) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_rename("/products/product[id='14']", "discontinued");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_EQ(count("/products/discontinued", *doc), 1u);
  EXPECT_EQ(count("/products/product", *doc), 1u);
}

TEST(ApplyTest, ChangeReplacesLeafText) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_change("/products/product[id='4']/price", "99.90");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_EQ(count("/products/product[price='99.90']", *doc), 1u);
  EXPECT_EQ(count("/products/product[price='120.00']", *doc), 0u);
}

TEST(ApplyTest, ChangeOnElementWithoutText) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_change("/products/product[id='4']", "flat");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(apply(op.value(), *doc, undo).is_ok());
  auto path = xpath::parse("/products/product[id='4']");
  ASSERT_TRUE(path.is_ok());
  auto nodes = xpath::evaluate(path.value(), *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0]->text(), "flat");
  // Element children survive a text change.
  EXPECT_NE(nodes[0]->first_child_named("description"), nullptr);
}

// --- transpose ------------------------------------------------------------------------

TEST(ApplyTest, TransposeMovesSubtree) {
  auto result = xml::parse(
      "<a><src><x><deep/></x></src><dst/></a>", "t");
  ASSERT_TRUE(result.is_ok());
  auto doc = std::move(result).value();
  UndoLog undo;
  auto op = make_transpose("/a/src/x", "/a/dst");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_EQ(count("/a/src/x", *doc), 0u);
  EXPECT_EQ(count("/a/dst/x/deep", *doc), 1u);
}

TEST(ApplyTest, TransposeIntoOwnSubtreeFails) {
  auto result = xml::parse("<a><x><inner/></x></a>", "t");
  ASSERT_TRUE(result.is_ok());
  auto doc = std::move(result).value();
  UndoLog undo;
  auto op = make_transpose("/a/x", "/a/x/inner");
  ASSERT_TRUE(op.is_ok());
  EXPECT_FALSE(apply(op.value(), *doc, undo).is_ok());
}

TEST(ApplyTest, TransposeAmbiguousDestinationFails) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_transpose("/products/product[id='4']/price",
                           "/products/product");
  ASSERT_TRUE(op.is_ok());
  EXPECT_FALSE(apply(op.value(), *doc, undo).is_ok());
}

// --- undo ---------------------------------------------------------------------------------

class UndoRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(UndoRoundTrip, UndoRestoresOriginalDocument) {
  auto doc = store_sample();
  const std::string before = xml::serialize(*doc);
  UndoLog undo;
  auto op = parse_update(GetParam());
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  auto result = apply(op.value(), *doc, undo);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  ASSERT_GT(result.value().affected, 0u);
  EXPECT_NE(xml::serialize(*doc), before);  // something changed
  undo.undo_all(*doc);
  EXPECT_EQ(xml::serialize(*doc), before);  // perfectly restored
}

INSTANTIATE_TEST_SUITE_P(
    AllOperations, UndoRoundTrip,
    ::testing::Values(
        "insert into /products ::= <product><id>13</id></product>",
        "insert before /products/product[id='4'] ::= <new/>",
        "insert after /products/product[id='14'] ::= <new/>",
        "insert into /products/product ::= <tag/>",
        "remove /products/product[id='4']",
        "remove /products/product",
        "remove /products/product/price",
        "rename /products/product[id='14'] ::= discontinued",
        "rename /products/product ::= item",
        "change /products/product[id='4']/price ::= 0.01",
        "change /products/product/price ::= 1.00",
        "transpose /products/product[id='4']/price ::= /products"));

TEST(UndoLogTest, CheckpointPartialUndo) {
  auto doc = store_sample();
  UndoLog undo;
  auto first = make_insert("/products", "<a/>");
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(apply(first.value(), *doc, undo).is_ok());
  const std::string after_first = xml::serialize(*doc);
  const std::size_t token = undo.checkpoint();

  auto second = make_insert("/products", "<b/>");
  ASSERT_TRUE(second.is_ok());
  ASSERT_TRUE(apply(second.value(), *doc, undo).is_ok());
  EXPECT_NE(xml::serialize(*doc), after_first);

  undo.undo_to(token, *doc);
  EXPECT_EQ(xml::serialize(*doc), after_first);  // only second undone
}

TEST(UndoLogTest, CommitDropsEntriesAndFreesSubtrees) {
  auto doc = store_sample();
  UndoLog undo;
  auto op = make_remove("/products/product[id='4']");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(apply(op.value(), *doc, undo).is_ok());
  EXPECT_FALSE(undo.empty());
  undo.commit(*doc);
  EXPECT_TRUE(undo.empty());
  // Removed subtree stays removed.
  EXPECT_EQ(count("/products/product", *doc), 1u);
}

TEST(UndoLogTest, InterleavedOperationsUndoInReverse) {
  auto doc = store_sample();
  const std::string before = xml::serialize(*doc);
  UndoLog undo;
  for (const char* text :
       {"insert into /products ::= <product><id>99</id><price>1</price></product>",
        "change /products/product[id='99']/price ::= 2",
        "rename /products/product[id='99'] ::= special",
        "remove /products/product[id='4']",
        "insert before /products/special ::= <divider/>"}) {
    auto op = parse_update(text);
    ASSERT_TRUE(op.is_ok()) << text;
    auto result = apply(op.value(), *doc, undo);
    ASSERT_TRUE(result.is_ok()) << text << ": " << result.status().to_string();
  }
  undo.undo_all(*doc);
  EXPECT_EQ(xml::serialize(*doc), before);
}

}  // namespace
}  // namespace dtx::xupdate
