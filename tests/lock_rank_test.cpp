// Runtime lock-rank checker tests (util/sync.hpp, DTX_LOCK_RANK=1).
//
// The negative cases are death tests: the checker's whole contract is
// "abort deterministically on the first out-of-order acquisition", so each
// violation is exercised in a forked child and matched against the
// diagnostic. The positive case walks a representative slice of the
// lattice in order and must stay silent.
//
// Without -DDTX_LOCK_RANK=ON the checker is compiled out and every test
// here skips (the wrappers still exist; sync_test covers them).

#include <thread>

#include <gtest/gtest.h>

#include "util/sync.hpp"

namespace dtx::sync {
namespace {

#if DTX_LOCK_RANK

using LockRankDeathTest = ::testing::Test;

TEST(LockRankTest, LatticeOrderIsSilent) {
  // A deeper chain than the engine ever builds, strictly ascending.
  Mutex membership(LockRank::kClusterMembership);
  Mutex coord(LockRank::kSiteCoordinator);
  SharedMutex data_latch(LockRank::kDataLatch);
  Mutex shard(LockRank::kLockTableShard, kMultiAcquire);
  Mutex wfg(LockRank::kWaitForGraph);
  Mutex storage(LockRank::kStorage);
  Mutex log(LockRank::kLog);

  MutexLock l0(membership);
  MutexLock l1(coord);
  SharedLock l2(data_latch);
  MutexLock l3(shard);
  MutexLock l4(wfg);
  MutexLock l5(storage);
  MutexLock l6(log);
  SUCCEED();
}

TEST(LockRankTest, ReleaseReopensTheRank) {
  // Holds form a set, not a stack: dropping the high rank lets the thread
  // go back down and climb again.
  Mutex low(LockRank::kSiteCoordinator);
  Mutex high(LockRank::kStorage);
  {
    MutexLock l1(low);
    MutexLock l2(high);
  }
  {
    MutexLock l2(high);
  }
  {
    MutexLock l1(low);
    MutexLock l2(high);
  }
  SUCCEED();
}

TEST(LockRankTest, NonLifoReleaseOrder) {
  // lock_shards guards die in vector order, which is not reverse
  // acquisition order — the held set must cope.
  Mutex a(LockRank::kLockTableShard, kMultiAcquire);
  Mutex b(LockRank::kLockTableShard, kMultiAcquire);
  Mutex c(LockRank::kLockTableShard, kMultiAcquire);
  a.lock();
  b.lock();
  c.lock();
  a.unlock();
  c.unlock();
  b.unlock();
  // The set is empty again: climbing from the bottom must succeed.
  Mutex low(LockRank::kClusterMembership);
  MutexLock l(low);
  SUCCEED();
}

TEST(LockRankTest, MultiAcquireAdmitsEqualRank) {
  Mutex shard0(LockRank::kLockTableShard, kMultiAcquire);
  Mutex shard1(LockRank::kLockTableShard, kMultiAcquire);
  MutexLock l0(shard0);
  MutexLock l1(shard1);  // same rank, multi-acquire: fine
  SUCCEED();
}

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  // The seeded inversion from the acceptance criteria: storage before
  // catalog is backwards (190 > 160).
  Mutex storage(LockRank::kStorage);
  Mutex catalog(LockRank::kCatalog);
  EXPECT_DEATH(
      {
        MutexLock l1(storage);
        MutexLock l2(catalog);
      },
      "lock rank violation: acquiring catalog");
}

TEST(LockRankDeathTest, EqualRankWithoutMultiAborts) {
  Mutex wfg_a(LockRank::kWaitForGraph);
  Mutex wfg_b(LockRank::kWaitForGraph);
  EXPECT_DEATH(
      {
        MutexLock l1(wfg_a);
        MutexLock l2(wfg_b);
      },
      "lock rank violation: acquiring wait-for-graph");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  // Even on a multi-acquire mutex: same rank twice is fine, same *mutex*
  // twice is a self-deadlock.
  Mutex shard(LockRank::kLockTableShard, kMultiAcquire);
  EXPECT_DEATH(
      {
        shard.lock();
        shard.lock();
      },
      "lock rank violation: recursive acquisition");
}

TEST(LockRankDeathTest, SharedMutexIsRankedToo) {
  SharedMutex latch(LockRank::kDataLatch);
  Mutex coord(LockRank::kSiteCoordinator);
  EXPECT_DEATH(
      {
        SharedLock l1(latch);
        MutexLock l2(coord);  // 20 under a held 50
      },
      "lock rank violation: acquiring site-coordinator");
}

TEST(LockRankDeathTest, AssertHeldWithoutHoldingAborts) {
  Mutex mutex(LockRank::kCatalog);
  EXPECT_DEATH(mutex.AssertHeld(), "AssertHeld without holding");
}

TEST(LockRankTest, AssertHeldWhileHoldingIsSilent) {
  Mutex mutex(LockRank::kCatalog);
  mutex.lock();
  mutex.AssertHeld();
  mutex.unlock();
  SUCCEED();
}

TEST(LockRankTest, CondVarWaitKeepsBookkeepingHonest) {
  // wait() drops the hold while blocked: a notifier thread can acquire the
  // same mutex, and on wakeup the waiter's hold is re-recorded (AssertHeld
  // passes, and climbing further up the lattice still works).
  Mutex mutex(LockRank::kSiteCoordinator);
  CondVar cv;
  bool ready = false;

  std::thread notifier([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  });

  {
    MutexLock lock(mutex);
    cv.wait(mutex, [&] { return ready; });
    mutex.AssertHeld();
    Mutex leaf(LockRank::kLog);
    MutexLock l2(leaf);
  }
  notifier.join();
}

#else  // !DTX_LOCK_RANK

TEST(LockRankTest, CheckerCompiledOut) {
  GTEST_SKIP() << "built without -DDTX_LOCK_RANK=ON; the rank checker is "
                  "compiled out";
}

#endif  // DTX_LOCK_RANK

}  // namespace
}  // namespace dtx::sync
