// Multi-process cluster test: three real dtxd processes over loopback TCP,
// driven through client::RemoteSession — the whole transport stack under
// the engine, with a kill -9 mid-workload and a restart. Asserts the
// post-recovery invariants the in-process chaos suite checks for SimNetwork
// clusters: the restarted site serves transactions again, no replica
// diverges (wal::materialize agreement across the store directories), and
// no site is left holding dangling state (probe transactions commit).
//
// The dtxd binary path arrives via the DTXD_BIN compile definition.
// Skipped when loopback sockets are unavailable; CI runs it under the
// "socket" ctest label.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "client/remote_session.hpp"
#include "dtx/site_context.hpp"
#include "dtx/wal.hpp"
#include "placement/placement.hpp"
#include "storage/file_store.hpp"

namespace dtx {
namespace {

using namespace std::chrono_literals;

bool loopback_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const bool ok =
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

/// Reserves a distinct ephemeral port by binding :0 and noting the result.
/// The socket is closed before dtxd binds it — the classic small race, but
/// the kernel does not reissue an ephemeral port while others stay bound,
/// and the three reservations overlap.
std::uint16_t reserve_port(std::vector<int>& held) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t len = sizeof(addr);
  ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  held.push_back(fd);
  return ntohs(addr.sin_port);
}

constexpr int kSites = 3;      ///< boot members
constexpr int kMaxSites = 4;   ///< boot members + one elastic joiner
constexpr const char* kDoc = "catalog";

class ProcCluster {
 public:
  explicit ProcCluster(std::filesystem::path root) : root_(std::move(root)) {
    std::vector<int> held;
    for (int i = 0; i < kMaxSites; ++i) ports_[i] = reserve_port(held);
    for (int fd : held) ::close(fd);
    std::filesystem::create_directories(root_);
    seed_path_ = root_ / "seed.xml";
    std::ofstream(seed_path_) << "<site><items/></site>";
  }

  ~ProcCluster() {
    for (int i = 0; i < kMaxSites; ++i) {
      if (pids_[i] > 0) {
        ::kill(pids_[i], SIGKILL);
        ::waitpid(pids_[i], nullptr, 0);
      }
    }
  }

  [[nodiscard]] std::string address(int site) const {
    return "127.0.0.1:" + std::to_string(ports_[site]);
  }
  [[nodiscard]] std::filesystem::path store_dir(int site) const {
    return root_ / ("site" + std::to_string(site));
  }

  void spawn(int site) {
    std::string peers;
    for (int peer = 0; peer < kSites; ++peer) {
      if (peer == site) continue;
      if (!peers.empty()) peers += ',';
      peers += std::to_string(peer) + "=" + address(peer);
    }
    std::vector<std::string> args = {
        DTXD_BIN,
        "--site=" + std::to_string(site),
        "--listen=" + address(site),
        "--peers=" + peers,
        "--store=" + store_dir(site).string(),
        std::string("--docs=") + kDoc + ":0,1,2",
        "--load=" + std::string(kDoc) + ":" + seed_path_.string(),
        // Keep recovery snappy and make orphaned state clean up within
        // the test budget after the kill -9.
        "--connect_wait_ms=1500",
        "--sync_timeout_ms=2000",
        "--response_timeout_ms=2000",
        "--orphan_timeout_ms=1000",
        "--log_level=4",  // errors only; keep the gtest output readable
    };
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(DTXD_BIN, argv.data());
      std::perror("execv dtxd");
      _exit(127);
    }
    pids_[site] = pid;
  }

  /// Spawns an elastic joiner: no --docs / --load — membership, catalog
  /// and replicas all arrive over the wire via the --join handshake.
  void spawn_join(int site, int seed_site) {
    std::vector<std::string> args = {
        DTXD_BIN,
        "--site=" + std::to_string(site),
        "--listen=" + address(site),
        "--join=" + std::to_string(seed_site) + "=" + address(seed_site),
        "--store=" + store_dir(site).string(),
        "--connect_wait_ms=1500",
        "--sync_timeout_ms=2000",
        "--response_timeout_ms=2000",
        "--orphan_timeout_ms=1000",
        "--log_level=4",
    };
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(DTXD_BIN, argv.data());
      std::perror("execv dtxd");
      _exit(127);
    }
    pids_[site] = pid;
  }

  void kill9(int site) {
    ASSERT_GT(pids_[site], 0);
    ::kill(pids_[site], SIGKILL);
    ::waitpid(pids_[site], nullptr, 0);
    pids_[site] = -1;
  }

  void terminate_all() {
    for (int i = 0; i < kMaxSites; ++i) {
      if (pids_[i] > 0) ::kill(pids_[i], SIGTERM);
    }
    for (int i = 0; i < kMaxSites; ++i) {
      if (pids_[i] > 0) {
        // Bounded wait; escalate to SIGKILL if the daemon wedged.
        for (int spin = 0; spin < 200; ++spin) {
          if (::waitpid(pids_[i], nullptr, WNOHANG) == pids_[i]) {
            pids_[i] = -1;
            break;
          }
          std::this_thread::sleep_for(25ms);
        }
        if (pids_[i] > 0) {
          ::kill(pids_[i], SIGKILL);
          ::waitpid(pids_[i], nullptr, 0);
          pids_[i] = -1;
          ADD_FAILURE() << "site " << i << " ignored SIGTERM";
        }
      }
    }
  }

  /// Connects a fresh session to `site`, retrying while the daemon boots.
  bool connect(client::RemoteSession& session, int site,
               std::chrono::milliseconds budget = 15000ms) {
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (std::chrono::steady_clock::now() < deadline) {
      if (session.connect(address(site), 1000ms)) return true;
      session.close();
      std::this_thread::sleep_for(100ms);
    }
    return false;
  }

 private:
  std::filesystem::path root_;
  std::filesystem::path seed_path_;
  std::uint16_t ports_[kMaxSites] = {};
  pid_t pids_[kMaxSites] = {-1, -1, -1, -1};
};

std::string insert_op(int n) {
  return "update " + std::string(kDoc) + " insert into /site/items ::= <i n=\"" +
         std::to_string(n) + "\"/>";
}

TEST(ProcClusterTest, SurvivesKillNineAndRestart) {
  if (!loopback_available()) {
    GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";
  }

  ProcCluster cluster(std::filesystem::temp_directory_path() /
                      ("dtx_proc_" + std::to_string(::getpid())));
  for (int site = 0; site < kSites; ++site) cluster.spawn(site);
  if (::testing::Test::HasFatalFailure()) return;

  client::RemoteSession session;
  ASSERT_TRUE(cluster.connect(session, 0)) << "site 0 never came up";

  // Phase 1: workload against the healthy cluster.
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    auto result = session.execute_text({insert_op(i)}, 10s);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_TRUE(result.value().accepted) << result.value().detail;
    if (result.value().state == txn::TxnState::kCommitted) ++committed;
  }
  EXPECT_EQ(committed, 10);

  // Phase 2: kill -9 a participant site mid-cluster and keep writing.
  // Updates need locks at ALL hosting sites, so these abort/fail until
  // recovery — what matters is that the coordinator survives, answers,
  // and holds no dangling state afterwards.
  cluster.kill9(2);
  if (::testing::Test::HasFatalFailure()) return;
  for (int i = 10; i < 14; ++i) {
    auto result = session.execute_text({insert_op(i)}, 10s);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    if (result.value().accepted &&
        result.value().state == txn::TxnState::kCommitted) {
      ++committed;
    }
  }
  // Queries are served from local snapshots and must still commit.
  auto read = session.execute_text(
      {"query " + std::string(kDoc) + " /site/items"}, 10s);
  ASSERT_TRUE(read.is_ok()) << read.status().to_string();
  EXPECT_EQ(read.value().state, txn::TxnState::kCommitted);

  // Phase 3: restart the killed site (same store dir — its WAL plus the
  // peers' recovery pulls must reconstruct the replica).
  cluster.spawn(2);
  if (::testing::Test::HasFatalFailure()) return;
  client::RemoteSession probe;
  ASSERT_TRUE(cluster.connect(probe, 2)) << "site 2 did not come back";

  // Post-recovery probes: distributed updates commit again, from both the
  // restarted site and the original coordinator. Allow a settling window
  // for orphan sweeps and reconnects.
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  bool recovered = false;
  int n = 100;
  while (std::chrono::steady_clock::now() < deadline) {
    auto via_restarted = probe.execute_text({insert_op(n++)}, 10s);
    if (via_restarted.is_ok() && via_restarted.value().accepted &&
        via_restarted.value().state == txn::TxnState::kCommitted) {
      auto via_original = session.execute_text({insert_op(n++)}, 10s);
      if (via_original.is_ok() && via_original.value().accepted &&
          via_original.value().state == txn::TxnState::kCommitted) {
        recovered = true;
        break;
      }
    }
    std::this_thread::sleep_for(250ms);
  }
  EXPECT_TRUE(recovered) << "cluster did not return to committing updates";

  // No dangling locks: a multi-op read-write probe through every site's
  // document must complete (a leaked lock would wedge it until timeout).
  auto final_probe = session.execute_text(
      {"query " + std::string(kDoc) + " /site/items/i", insert_op(n++)}, 15s);
  ASSERT_TRUE(final_probe.is_ok()) << final_probe.status().to_string();
  EXPECT_EQ(final_probe.value().state, txn::TxnState::kCommitted)
      << final_probe.value().detail;

  // Phase 4: clean shutdown, then replica agreement straight from the
  // store directories — every site materializes the same document.
  session.close();
  probe.close();
  cluster.terminate_all();

  std::vector<std::string> replicas;
  for (int site = 0; site < kSites; ++site) {
    storage::FileStore store(cluster.store_dir(site));
    auto doc = core::wal::materialize(store, kDoc);
    ASSERT_TRUE(doc.is_ok())
        << "site " << site << ": " << doc.status().to_string();
    replicas.push_back(std::move(doc).value());
  }
  EXPECT_EQ(replicas[0], replicas[1]);
  EXPECT_EQ(replicas[0], replicas[2]);
}

// Membership chaos on the real transport: a 4th dtxd joins via --join while
// writes flow, a migration-source site is kill -9ed right after the join
// starts (the drain + replica ship must ride out the dead member), the
// source restarts, and the cluster converges — the joiner serves writes and
// every hosting replica named by the final durable catalog materializes to
// the same bytes.
TEST(ProcClusterTest, MembershipJoinSurvivesKillNine) {
  if (!loopback_available()) {
    GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";
  }

  ProcCluster cluster(std::filesystem::temp_directory_path() /
                      ("dtx_join_" + std::to_string(::getpid())));
  for (int site = 0; site < kSites; ++site) cluster.spawn(site);
  if (::testing::Test::HasFatalFailure()) return;

  client::RemoteSession session;
  ASSERT_TRUE(cluster.connect(session, 0)) << "site 0 never came up";
  int committed = 0;
  int n = 0;
  for (; n < 6; ++n) {
    auto result = session.execute_text({insert_op(n)}, 10s);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    if (result.value().state == txn::TxnState::kCommitted) ++committed;
  }
  EXPECT_EQ(committed, 6);

  // Grow under load: the joiner dials site 0, and immediately afterwards a
  // migration source dies. The join handshake retries until site 2 is back
  // (the drain needs every old member's ack), so the admission itself is
  // what rides out the kill.
  cluster.spawn_join(3, /*seed_site=*/0);
  if (::testing::Test::HasFatalFailure()) return;
  cluster.kill9(2);
  if (::testing::Test::HasFatalFailure()) return;
  for (int i = 0; i < 4; ++i) {
    // Writes may abort while the member is dead — only liveness of the
    // coordinator matters here.
    auto result = session.execute_text({insert_op(n++)}, 10s);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  }
  std::this_thread::sleep_for(2s);
  cluster.spawn(2);
  if (::testing::Test::HasFatalFailure()) return;

  // The joiner finishes the handshake, adopts its replicas and serves
  // writes of its own.
  client::RemoteSession joiner;
  ASSERT_TRUE(cluster.connect(joiner, 3, 60000ms))
      << "joiner never started serving";
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  bool converged = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto via_joiner = joiner.execute_text({insert_op(1000 + n++)}, 10s);
    if (via_joiner.is_ok() && via_joiner.value().accepted &&
        via_joiner.value().state == txn::TxnState::kCommitted) {
      converged = true;
      break;
    }
    std::this_thread::sleep_for(250ms);
  }
  EXPECT_TRUE(converged) << "joiner never committed a write";

  session.close();
  joiner.close();
  cluster.terminate_all();

  // The durable catalog names the final placement; every hosting replica
  // of every document must materialize identically.
  storage::FileStore catalog_store(cluster.store_dir(0));
  auto text = catalog_store.load(core::SiteContext::kCatalogKey);
  ASSERT_TRUE(text.is_ok()) << "site 0 holds no durable catalog";
  auto epoch = placement::CatalogEpoch::parse(text.value());
  ASSERT_TRUE(epoch.is_ok()) << epoch.status().to_string();
  EXPECT_GE(epoch.value().epoch, 1u);
  EXPECT_TRUE(epoch.value().is_member(3)) << "joiner missing from catalog";
  for (const auto& [doc, hosts] : epoch.value().placement) {
    ASSERT_FALSE(hosts.empty());
    std::string reference;
    for (const net::SiteId host : hosts) {
      storage::FileStore store(cluster.store_dir(static_cast<int>(host)));
      auto bytes = core::wal::materialize(store, doc);
      ASSERT_TRUE(bytes.is_ok())
          << doc << " unreadable at site " << host << ": "
          << bytes.status().to_string();
      if (reference.empty()) {
        reference = std::move(bytes).value();
      } else {
        EXPECT_EQ(reference, bytes.value())
            << doc << " diverges at site " << host;
      }
    }
  }
}

}  // namespace
}  // namespace dtx
