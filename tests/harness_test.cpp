// Tests of the experiment harness (workload/experiment.hpp — the machinery
// behind every figure bench), the inspector, and a full-verb distributed
// stress that drives all five update operations concurrently.
#include <gtest/gtest.h>

#include <thread>

#include "dtx/inspector.hpp"
#include "util/rng.hpp"
#include "workload/experiment.hpp"
#include "xml/parser.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::workload {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.sites = 2;
  config.doc_bytes = 30'000;
  config.clients = 4;
  config.txns_per_client = 3;
  config.ops_per_txn = 3;
  config.latency = std::chrono::microseconds(50);
  config.detect_period = std::chrono::microseconds(5'000);
  config.retry_interval = std::chrono::microseconds(10'000);
  return config;
}

class HarnessProtocolSweep
    : public ::testing::TestWithParam<lock::ProtocolKind> {};

TEST_P(HarnessProtocolSweep, RunsAndAccountsForEveryTransaction) {
  ExperimentConfig config = tiny_config();
  config.protocol = GetParam();
  config.update_txn_fraction = 0.3;
  const ExperimentResult result = run_experiment(config);
  EXPECT_EQ(result.report.submitted, 12u);
  EXPECT_EQ(result.report.committed + result.report.aborted +
                result.report.failed,
            12u);
  EXPECT_GT(result.report.committed, 0u);
  EXPECT_GT(result.lock_acquisitions, 0u);
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_EQ(result.mean_response_ms > 0.0, result.report.committed > 0);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, HarnessProtocolSweep,
                         ::testing::Values(lock::ProtocolKind::kXdgl,
                                           lock::ProtocolKind::kXdglPlain,
                                           lock::ProtocolKind::kNode2pl,
                                           lock::ProtocolKind::kDocLock2pl));

TEST(HarnessTest, TotalReplicationCostsMoreThanPartial) {
  // The Fig. 9 claim at harness level: with the same read-only load, total
  // replication executes every operation at every site and must send more
  // messages than partial replication.
  ExperimentConfig config = tiny_config();
  config.clients = 8;
  config.update_txn_fraction = 0.0;
  // Locked read path on purpose: MVCC serves a read-only load without any
  // messages at all under total replication, which would invert the claim.
  config.snapshot_reads = false;
  config.replication = Replication::kTotal;
  const ExperimentResult total = run_experiment(config);
  config.replication = Replication::kPartial;
  config.copies = 1;
  const ExperimentResult partial = run_experiment(config);
  EXPECT_GT(total.cluster.network.messages_sent,
            partial.cluster.network.messages_sent);
}

TEST(HarnessTest, SeedsAreDeterministicForWorkload) {
  // Same seed => same workload => identical committed+aborted totals are
  // not guaranteed (thread timing), but the submitted count and shape are.
  ExperimentConfig config = tiny_config();
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.report.submitted, b.report.submitted);
}

TEST(HarnessTest, FlagsOverrideConfig) {
  const char* argv[] = {"prog", "--sites=3",      "--clients=7",
                        "--doc_kb=64", "--latency_us=250",
                        "--update_txn_fraction=0.5"};
  util::Flags flags(6, const_cast<char**>(argv));
  ExperimentConfig config;
  apply_common_flags(flags, config);
  EXPECT_EQ(config.sites, 3u);
  EXPECT_EQ(config.clients, 7u);
  EXPECT_EQ(config.doc_bytes, 64u * 1024);
  EXPECT_EQ(config.latency.count(), 250);
  EXPECT_DOUBLE_EQ(config.update_txn_fraction, 0.5);
}

// --- inspector ------------------------------------------------------------------

TEST(InspectorTest, DescribesClusterAndSites) {
  core::ClusterOptions options;
  options.site_count = 2;
  options.network.latency = std::chrono::microseconds(50);
  core::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document("d1",
                                 "<site><people><person id=\"p1\">"
                                 "<name>Ana</name></person></people></site>",
                                 {0, 1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  ASSERT_TRUE(
      cluster.execute_text(0, {"query d1 /site/people/person/name"}).is_ok());

  const std::string description = core::describe_cluster(cluster);
  EXPECT_NE(description.find("2 sites"), std::string::npos);
  EXPECT_NE(description.find("d1 @ sites 0 1"), std::string::npos);
  EXPECT_NE(description.find("site 0 [xdgl]"), std::string::npos);
  EXPECT_NE(description.find("committed=1"), std::string::npos);
  EXPECT_NE(description.find("network: messages="), std::string::npos);
  EXPECT_NE(description.find("wait-for graph: empty"), std::string::npos);
}

// --- all-five-verbs distributed stress ----------------------------------------------

TEST(AllVerbsStressTest, EveryUpdateKindRunsConcurrentlyAndReplicasAgree) {
  core::ClusterOptions options;
  options.site_count = 3;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  core::Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document(
                      "d1",
                      "<site><people>"
                      "<person id=\"p1\"><name>Ana</name><phone>1</phone>"
                      "<archive/></person>"
                      "<person id=\"p2\"><name>Bo</name><phone>2</phone>"
                      "<archive/></person>"
                      "<person id=\"p3\"><name>Cy</name><phone>3</phone>"
                      "<archive/></person>"
                      "</people></site>",
                      {0, 1, 2})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  std::vector<std::thread> clients;
  std::atomic<int> committed{0};
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(c) + 101);
      const std::string pid = "p" + std::to_string(1 + c % 3);
      for (int t = 0; t < 5; ++t) {
        std::string op;
        switch (rng.next_below(5)) {
          case 0:
            op = "insert into /site/people/person[@id='" + pid +
                 "'] ::= <note>n" + std::to_string(c * 10 + t) + "</note>";
            break;
          case 1:
            op = "remove /site/people/person[@id='" + pid + "']/note";
            break;
          case 2:
            op = "rename /site/people/person[@id='" + pid +
                 "']/archive ::= vault";
            break;
          case 3:
            op = "change /site/people/person[@id='" + pid + "']/phone ::= " +
                 std::to_string(rng.next_below(100));
            break;
          default:
            op = "transpose /site/people/person[@id='" + pid +
                 "']/note ::= /site/people/person[@id='" + pid +
                 "']/archive";
            break;
        }
        auto result = cluster.execute_text(static_cast<net::SiteId>(c % 3),
                                      {"update d1 " + op});
        ASSERT_TRUE(result.is_ok());
        if (result.value().state == txn::TxnState::kCommitted) ++committed;
      }
    });
  }
  for (auto& client : clients) client.join();
  cluster.stop();

  EXPECT_GT(committed.load(), 0);
  // Replicas must agree byte-for-byte (single writer path per guide node;
  // rename targets may alternate but the final serialized states converge
  // because all replicas apply the same committed sequence per document).
  std::string reference;
  for (net::SiteId site : {0u, 1u, 2u}) {
    auto stored = cluster.store_of(site).load("d1");
    ASSERT_TRUE(stored.is_ok());
    if (reference.empty()) {
      reference = stored.value();
    } else {
      EXPECT_EQ(stored.value(), reference) << "site " << site;
    }
  }
  // The base people must still be present and well-formed.
  auto parsed = xml::parse(reference, "d1");
  ASSERT_TRUE(parsed.is_ok());
  auto path = xpath::parse("/site/people/person");
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(xpath::evaluate(path.value(), *parsed.value()).size(), 3u);
}

}  // namespace
}  // namespace dtx::workload
