// dtx::sync wrapper tests (util/sync.hpp): the annotated Mutex /
// SharedMutex / CondVar / guard types must behave exactly like the std
// primitives they wrap, in every configuration — plain, DTX_LOCK_RANK=ON,
// and under TSAN (the CI sanitizer jobs run this suite; the threaded cases
// below give TSAN real concurrency to check the wrappers don't hide).

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/sync.hpp"

namespace dtx::sync {
namespace {

using namespace std::chrono_literals;

/// try_lock from the owning thread is UB for the std primitives, so every
/// "is it locked?" probe below runs on a helper thread.
template <typename MutexT>
bool try_lock_elsewhere(MutexT& mutex) {
  std::atomic<bool> acquired{false};
  std::thread probe([&] {
    if (mutex.try_lock()) {
      mutex.unlock();
      acquired = true;
    }
  });
  probe.join();
  return acquired.load();
}

bool try_lock_shared_elsewhere(SharedMutex& mutex) {
  std::atomic<bool> acquired{false};
  std::thread probe([&] {
    if (mutex.try_lock_shared()) {
      mutex.unlock_shared();
      acquired = true;
    }
  });
  probe.join();
  return acquired.load();
}

TEST(SyncTest, MutexExcludesConcurrentIncrements) {
  Mutex mutex(LockRank::kCatalog);
  int counter = 0;  // deliberately not atomic: the mutex is the guard
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mutex(LockRank::kCatalog);
  ASSERT_TRUE(mutex.try_lock());
  EXPECT_FALSE(try_lock_elsewhere(mutex));
  mutex.unlock();
  EXPECT_TRUE(try_lock_elsewhere(mutex));
}

TEST(SyncTest, SharedMutexAdmitsConcurrentReaders) {
  // Deterministic overlap: every reader takes the shared lock and holds it
  // until all readers are inside. If shared holds excluded each other this
  // would hang (and trip the 120 s ctest timeout) instead of passing.
  SharedMutex mutex(LockRank::kDataLatch);
  std::atomic<int> readers_in{0};
  constexpr int kReaders = 4;

  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      SharedLock lock(mutex);
      ++readers_in;
      while (readers_in.load() < kReaders) std::this_thread::yield();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(readers_in.load(), kReaders);
}

TEST(SyncTest, SharedMutexWritersExcludeReaders) {
  SharedMutex mutex(LockRank::kDataLatch);
  int value = 42;  // guarded by mutex
  std::atomic<int> readers_in{0};
  constexpr int kReaders = 4;

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        SharedLock lock(mutex);
        ++readers_in;
        EXPECT_GE(value, 42);  // the writer only ever increments
        --readers_in;
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      ExclusiveLock lock(mutex);
      EXPECT_EQ(readers_in.load(), 0);  // writers exclude readers
      ++value;
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(value, 142);
}

TEST(SyncTest, UniqueLockDropAndRetake) {
  Mutex mutex(LockRank::kCatalog);
  UniqueLock lock(mutex);
  EXPECT_TRUE(lock.owns_lock());

  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  {
    // While dropped, another thread can take the mutex.
    std::atomic<bool> acquired{false};
    std::thread other([&] {
      MutexLock inner(mutex);
      acquired = true;
    });
    other.join();
    EXPECT_TRUE(acquired.load());
  }

  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  // Destructor releases the retaken hold.
}

TEST(SyncTest, MovableMutexLockReleasesOnceAtVectorDeath) {
  Mutex a(LockRank::kLockTableShard, kMultiAcquire);
  Mutex b(LockRank::kLockTableShard, kMultiAcquire);
  {
    std::vector<MovableMutexLock> guards;
    guards.reserve(2);  // moves must not double-unlock either way
    guards.emplace_back(a);
    guards.emplace_back(b);
    EXPECT_FALSE(try_lock_elsewhere(a));
    EXPECT_FALSE(try_lock_elsewhere(b));
  }
  EXPECT_TRUE(try_lock_elsewhere(a));
  EXPECT_TRUE(try_lock_elsewhere(b));
}

TEST(SyncTest, MovableExclusiveLockTransfersTheHold) {
  SharedMutex mutex(LockRank::kDataLatch);
  {
    MovableExclusiveLock outer = [&] {
      MovableExclusiveLock inner(mutex);
      return inner;
    }();
    EXPECT_FALSE(try_lock_shared_elsewhere(mutex));
  }
  EXPECT_TRUE(try_lock_shared_elsewhere(mutex));
}

TEST(SyncTest, ConditionalLatchBothModes) {
  SharedMutex mutex(LockRank::kDataLatch);
  {
    ConditionalLatch latch(mutex, ConditionalLatch::Mode::kShared);
    // Shared admits more readers, excludes writers.
    EXPECT_TRUE(try_lock_shared_elsewhere(mutex));
    EXPECT_FALSE(try_lock_elsewhere(mutex));
  }
  {
    ConditionalLatch latch(mutex, ConditionalLatch::Mode::kExclusive);
    EXPECT_FALSE(try_lock_shared_elsewhere(mutex));
  }
  EXPECT_TRUE(try_lock_elsewhere(mutex));  // both modes released their hold
}

TEST(SyncTest, CondVarNotifyWakesPredicateWait) {
  Mutex mutex(LockRank::kSiteCoordinator);
  CondVar cv;
  bool ready = false;
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    MutexLock lock(mutex);
    cv.wait(mutex, [&] { return ready; });
    woke = true;
  });

  {
    MutexLock lock(mutex);
    ready = true;
    cv.notify_one();
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(SyncTest, CondVarWaitForTimesOut) {
  Mutex mutex(LockRank::kSiteCoordinator);
  CondVar cv;

  MutexLock lock(mutex);
  const auto start = std::chrono::steady_clock::now();
  const bool result = cv.wait_for(mutex, 20ms, [] { return false; });
  EXPECT_FALSE(result);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 20ms);
}

TEST(SyncTest, CondVarWaitUntilDeadlineStatus) {
  Mutex mutex(LockRank::kSiteCoordinator);
  CondVar cv;

  MutexLock lock(mutex);
  const auto deadline = std::chrono::steady_clock::now() + 10ms;
  EXPECT_EQ(cv.wait_until(mutex, deadline), std::cv_status::timeout);
}

TEST(SyncTest, AssertHeldPassesWhileHolding) {
  {
    Mutex mutex(LockRank::kCatalog);
    MutexLock lock(mutex);
    mutex.AssertHeld();  // must not abort, in any configuration
  }
  SharedMutex shared(LockRank::kDataLatch);
  {
    SharedLock reader(shared);
    shared.AssertReaderHeld();
  }
  {
    ExclusiveLock writer(shared);
    shared.AssertHeld();
  }
}

TEST(SyncTest, LockRankNamesAreStable) {
  // The death-test diagnostics and the README table both spell these out.
  EXPECT_STREQ(lock_rank_name(LockRank::kClusterMembership),
               "cluster-membership");
  EXPECT_STREQ(lock_rank_name(LockRank::kDataLatch), "data-latch");
  EXPECT_STREQ(lock_rank_name(LockRank::kLockTableShard), "lock-table-shard");
  EXPECT_STREQ(lock_rank_name(LockRank::kLog), "log");
}

}  // namespace
}  // namespace dtx::sync
