// Table-driven XPath sweep over a generated XMark base: every expression
// the workload generator can emit (and several it cannot) evaluated against
// ground truth computed structurally, plus the value-condition extraction
// of guide matching that feeds XDGL's logical locks.
#include <gtest/gtest.h>

#include "dataguide/guide_match.hpp"
#include "workload/xmark.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx {
namespace {

const workload::XmarkData& xmark() {
  static workload::XmarkData data = [] {
    workload::XmarkOptions options;
    options.target_bytes = 50'000;
    options.seed = 99;
    return workload::generate_xmark(options);
  }();
  return data;
}

std::size_t total_items() {
  std::size_t total = 0;
  for (const auto& [continent, ids] : xmark().items_by_continent) {
    (void)continent;
    total += ids.size();
  }
  return total;
}

struct SweepCase {
  const char* expression;
  std::size_t expected;  // SIZE_MAX = computed below
};

class XmarkQuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(XmarkQuerySweep, CountsMatchInventory) {
  const workload::XmarkData& data = xmark();
  const std::size_t persons = data.person_ids.size();
  const std::size_t opens = data.open_auction_ids.size();
  const std::size_t closeds = data.closed_auction_ids.size();
  const std::size_t categories = data.category_ids.size();
  const std::size_t items = total_items();
  const std::size_t europe_items = data.items_by_continent.at("europe").size();

  const SweepCase cases[] = {
      {"/site", 1},
      {"/site/people/person", persons},
      {"/site/people/person/name", persons},
      {"/site/people/person/@id", persons},
      {"/site/people/person/address/city", persons},
      {"/site/people/person/profile/age", persons},
      {"//person", persons},
      {"//person/creditcard", persons},
      {"/site/open_auctions/open_auction", opens},
      {"/site/open_auctions/open_auction/current", opens},
      {"/site/closed_auctions/closed_auction/price", closeds},
      {"/site/categories/category", categories},
      {"//item", items},
      {"//item/price", items},
      {"/site/regions/europe/item", europe_items},
      {"/site/regions/*/item", items},
      {"/site/regions/*/item/name", items},
      {"//item[quantity]", items},           // every item has a quantity
      {"/site/people/person[name]", persons},
      {"/site/nothing", 0},
      {"//nonexistent", 0},
      {"/wrong-root/people", 0},
  };
  const SweepCase& test_case =
      cases[static_cast<std::size_t>(GetParam()) % std::size(cases)];
  auto path = xpath::parse(test_case.expression);
  ASSERT_TRUE(path.is_ok()) << test_case.expression;
  EXPECT_EQ(xpath::evaluate(path.value(), *data.document).size(),
            test_case.expected)
      << test_case.expression;
}

INSTANTIATE_TEST_SUITE_P(Expressions, XmarkQuerySweep,
                         ::testing::Range(0, 22));

TEST(XmarkQueryTest, EveryPersonReachableByIdPredicate) {
  const workload::XmarkData& data = xmark();
  for (const std::string& id : data.person_ids) {
    auto path =
        xpath::parse("/site/people/person[@id='" + id + "']/name");
    ASSERT_TRUE(path.is_ok());
    EXPECT_EQ(xpath::evaluate(path.value(), *data.document).size(), 1u)
        << id;
  }
}

TEST(XmarkQueryTest, EveryOpenAuctionReachable) {
  const workload::XmarkData& data = xmark();
  for (const std::string& id : data.open_auction_ids) {
    auto path = xpath::parse(
        "/site/open_auctions/open_auction[@id='" + id + "']/current");
    ASSERT_TRUE(path.is_ok());
    EXPECT_EQ(xpath::evaluate(path.value(), *data.document).size(), 1u)
        << id;
  }
}

// --- guide condition extraction ------------------------------------------------

TEST(GuideConditionTest, PointPredicateConditionsTargetAndDescendants) {
  const workload::XmarkData& data = xmark();
  auto guide = dataguide::DataGuide::build(*data.document);
  auto path =
      xpath::parse("/site/people/person[@id='person1']/profile/age");
  ASSERT_TRUE(path.is_ok());
  const auto match = dataguide::match(path.value(), *guide);
  ASSERT_EQ(match.targets.size(), 1u);
  EXPECT_EQ(match.targets[0].node->label_path(),
            "/site/people/person/profile/age");
  // The equality predicate's condition rides down to the final target.
  EXPECT_EQ(match.targets[0].condition, "@id=person1");
  // The predicate's own lock target (the @id guide node) carries it too.
  ASSERT_EQ(match.predicate_targets.size(), 1u);
  EXPECT_EQ(match.predicate_targets[0].node->label_path(),
            "/site/people/person/@id");
}

TEST(GuideConditionTest, ScansAreUnconditioned) {
  const workload::XmarkData& data = xmark();
  auto guide = dataguide::DataGuide::build(*data.document);
  auto path = xpath::parse("/site/people/person/name");
  ASSERT_TRUE(path.is_ok());
  const auto match = dataguide::match(path.value(), *guide);
  ASSERT_EQ(match.targets.size(), 1u);
  EXPECT_TRUE(match.targets[0].condition.empty());
}

TEST(GuideConditionTest, NestedPredicatesConcatenate) {
  const workload::XmarkData& data = xmark();
  auto guide = dataguide::DataGuide::build(*data.document);
  auto path = xpath::parse(
      "/site/people/person[@id='person2'][name='x']/phone");
  ASSERT_TRUE(path.is_ok());
  const auto match = dataguide::match(path.value(), *guide);
  ASSERT_EQ(match.targets.size(), 1u);
  // Both equality predicates restrict the instance set; the combined key
  // keeps them in lexical order.
  EXPECT_EQ(match.targets[0].condition, "@id=person2&name=x");
}

TEST(GuideConditionTest, ChildValuePredicateConditions) {
  const workload::XmarkData& data = xmark();
  auto guide = dataguide::DataGuide::build(*data.document);
  auto path = xpath::parse("//item[name='Clock']/price");
  ASSERT_TRUE(path.is_ok());
  const auto match = dataguide::match(path.value(), *guide);
  EXPECT_FALSE(match.targets.empty());
  for (const auto& target : match.targets) {
    EXPECT_EQ(target.condition, "name=Clock");
  }
  // Predicate targets: the name guide nodes under each continent's item.
  EXPECT_FALSE(match.predicate_targets.empty());
}

}  // namespace
}  // namespace dtx
