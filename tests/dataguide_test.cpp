#include <gtest/gtest.h>

#include "dataguide/dataguide.hpp"
#include "dataguide/guide_match.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"
#include "xupdate/applier.hpp"

namespace dtx::dataguide {
namespace {

using xml::Document;

std::unique_ptr<Document> auction_sample() {
  auto result = xml::parse(R"(
    <site>
      <people>
        <person id="p1"><name>Ana</name></person>
        <person id="p2"><name>Bruno</name><age>41</age></person>
      </people>
      <regions>
        <europe><item id="i1"><name>Clock</name></item></europe>
        <asia><item id="i2"><name>Vase</name></item></asia>
      </regions>
    </site>)",
                           "auction");
  EXPECT_TRUE(result.is_ok());
  return std::move(result).value();
}

// --- construction -------------------------------------------------------------

TEST(DataGuideTest, OneNodePerDistinctLabelPath) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  // /site /site/people /site/people/person /@id /name /#text /age /#text
  // /site/regions /europe /item /@id /name /#text /asia /item /@id /name /#text
  EXPECT_EQ(guide->find_path("/site")->extent(), 1u);
  EXPECT_EQ(guide->find_path("/site/people/person")->extent(), 2u);
  EXPECT_EQ(guide->find_path("/site/people/person/name")->extent(), 2u);
  EXPECT_EQ(guide->find_path("/site/people/person/@id")->extent(), 2u);
  EXPECT_EQ(guide->find_path("/site/people/person/age")->extent(), 1u);
  EXPECT_EQ(guide->find_path("/site/regions/europe/item")->extent(), 1u);
  // Distinct parent paths yield distinct guide nodes even for equal labels.
  EXPECT_NE(guide->find_path("/site/regions/europe/item"),
            guide->find_path("/site/regions/asia/item"));
  EXPECT_EQ(guide->find_path("/site/wrong"), nullptr);
}

TEST(DataGuideTest, GuideIsMuchSmallerThanDocument) {
  // 50 identical persons collapse to one guide path.
  std::string xml = "<people>";
  for (int i = 0; i < 50; ++i) {
    xml += "<person><name>n</name><age>1</age></person>";
  }
  xml += "</people>";
  auto result = xml::parse(xml, "d");
  ASSERT_TRUE(result.is_ok());
  auto guide = DataGuide::build(*result.value());
  // people, person, name, #text, age, #text.
  EXPECT_EQ(guide->node_count(), 6u);
  EXPECT_EQ(guide->find_path("/people/person")->extent(), 50u);
}

TEST(DataGuideTest, FindByIdMatchesFindByPath) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  GuideNode* person = guide->find_path("/site/people/person");
  ASSERT_NE(person, nullptr);
  EXPECT_EQ(guide->find(person->id()), person);
  EXPECT_EQ(person->label_path(), "/site/people/person");
}

TEST(DataGuideTest, EmptyDocument) {
  Document doc("empty");
  auto guide = DataGuide::build(doc);
  EXPECT_TRUE(guide->empty());
  EXPECT_EQ(guide->node_count(), 0u);
}

// --- incremental maintenance ------------------------------------------------------

TEST(DataGuideMaintenanceTest, InsertNewPathExtendsGuide) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  EXPECT_EQ(guide->find_path("/site/people/person/phone"), nullptr);

  xupdate::UndoLog undo;
  auto op = xupdate::make_insert("/site/people/person[@id='p1']",
                                 "<phone>555</phone>");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(xupdate::apply(op.value(), *doc, undo).is_ok());
  // The data manager would call on_subtree_added; emulate it here.
  auto path = xpath::parse("/site/people/person[@id='p1']/phone");
  ASSERT_TRUE(path.is_ok());
  // Rebuild equivalence is the ground truth.
  auto rebuilt = DataGuide::build(*doc);
  EXPECT_EQ(rebuilt->find_path("/site/people/person/phone")->extent(), 1u);
}

TEST(DataGuideMaintenanceTest, AddRemoveRoundTripKeepsEquivalence) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);

  // Apply insert + maintenance.
  xupdate::UndoLog undo;
  auto op = xupdate::make_insert("/site/people",
                                 "<person id=\"p9\"><name>Zoe</name></person>");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(xupdate::apply(op.value(), *doc, undo).is_ok());
  const xml::Node* added = doc->root()
                               ->first_child_named("people")
                               ->children_named("person")
                               .back();
  guide->on_subtree_added(*added, "/site/people");
  EXPECT_EQ(guide->find_path("/site/people/person")->extent(), 3u);
  EXPECT_TRUE(guide->equivalent(*DataGuide::build(*doc)));

  // Undo (remove) + maintenance.
  guide->on_subtree_removed(*added, "/site/people");
  undo.undo_all(*doc);
  EXPECT_EQ(guide->find_path("/site/people/person")->extent(), 2u);
  EXPECT_TRUE(guide->equivalent(*DataGuide::build(*doc)));
}

TEST(DataGuideMaintenanceTest, RenameMovesExtents) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  xml::Node* person = doc->root()
                          ->first_child_named("people")
                          ->children_named("person")
                          .front();
  person->set_name("vip");
  guide->on_subtree_renamed(*person, "/site/people", "person");
  EXPECT_EQ(guide->find_path("/site/people/person")->extent(), 1u);
  EXPECT_EQ(guide->find_path("/site/people/vip")->extent(), 1u);
  EXPECT_EQ(guide->find_path("/site/people/vip/name")->extent(), 1u);
  EXPECT_TRUE(guide->equivalent(*DataGuide::build(*doc)));
}

TEST(DataGuideMaintenanceTest, EnsurePathCreatesChain) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  GuideNode* node =
      guide->ensure_path({"site", "catalog", "entry", "@sku"});
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->label_path(), "/site/catalog/entry/@sku");
  EXPECT_EQ(node->extent(), 0u);  // structural only until data arrives
  // Idempotent.
  EXPECT_EQ(guide->ensure_path({"site", "catalog", "entry", "@sku"}), node);
}

// Property-style: random update sequences keep the incrementally-maintained
// guide equivalent to a rebuild. (The DTX DataManager performs exactly this
// maintenance; here the property is checked in isolation.)
class GuideMaintenanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(GuideMaintenanceProperty, IncrementalMatchesRebuildUnderInsertRemove) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);

  for (int step = 0; step < 40; ++step) {
    xml::Node* people = doc->root()->first_child_named("people");
    const auto persons = people->children_named("person");
    if (rng.next_bool(0.6) || persons.empty()) {
      // Insert a person (sometimes with a nested extra element).
      const std::string id = "r" + std::to_string(step);
      std::string fragment = "<person id=\"" + id + "\"><name>x</name>";
      if (rng.next_bool(0.4)) fragment += "<profile><age>9</age></profile>";
      fragment += "</person>";
      xupdate::UndoLog undo;
      auto op = xupdate::make_insert("/site/people", fragment);
      ASSERT_TRUE(op.is_ok());
      ASSERT_TRUE(xupdate::apply(op.value(), *doc, undo).is_ok());
      guide->on_subtree_added(*people->children_named("person").back(),
                              "/site/people");
      undo.commit(*doc);
    } else {
      const std::size_t victim = rng.next_index(persons.size());
      guide->on_subtree_removed(*persons[victim], "/site/people");
      auto removed =
          people->remove_child(persons[victim]->index_in_parent());
      doc->unregister_subtree(*removed);
    }
    ASSERT_TRUE(guide->equivalent(*DataGuide::build(*doc)))
        << "diverged at step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GuideMaintenanceProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- path matching ------------------------------------------------------------------

MatchResult match_expr(const std::string& expr, const DataGuide& guide) {
  auto path = xpath::parse(expr);
  EXPECT_TRUE(path.is_ok()) << path.status().to_string();
  return match(path.value(), guide);
}

TEST(GuideMatchTest, ExactChildPath) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  auto result = match_expr("/site/people/person", *guide);
  ASSERT_EQ(result.targets.size(), 1u);
  EXPECT_EQ(result.targets[0].node->label_path(), "/site/people/person");
  EXPECT_TRUE(result.predicate_targets.empty());
}

TEST(GuideMatchTest, DescendantMatchesAllBranches) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  auto result = match_expr("//item", *guide);
  EXPECT_EQ(result.targets.size(), 2u);  // europe/item and asia/item
  auto names = match_expr("//name", *guide);
  EXPECT_EQ(names.targets.size(), 3u);  // person/name + 2 * item/name
}

TEST(GuideMatchTest, WildcardStep) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  auto result = match_expr("/site/regions/*/item", *guide);
  EXPECT_EQ(result.targets.size(), 2u);
  // Wildcard must not descend into attribute pseudo-children.
  auto top = match_expr("/site/*", *guide);
  EXPECT_EQ(top.targets.size(), 2u);  // people, regions
}

TEST(GuideMatchTest, ValuePredicatesAreConservative) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  // The guide cannot evaluate '@id=p1' — both persons' guide node matches,
  // and the predicate contributes the @id guide node as a lock target.
  auto result = match_expr("/site/people/person[@id='p1']", *guide);
  ASSERT_EQ(result.targets.size(), 1u);
  ASSERT_EQ(result.predicate_targets.size(), 1u);
  EXPECT_EQ(result.predicate_targets[0].node->label_path(),
            "/site/people/person/@id");
}

TEST(GuideMatchTest, ChildValuePredicateTargets) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  auto result = match_expr("//item[name='Clock']", *guide);
  EXPECT_EQ(result.targets.size(), 2u);
  // Both branches' name nodes become predicate lock targets.
  EXPECT_EQ(result.predicate_targets.size(), 2u);
}

TEST(GuideMatchTest, AttributeFinalStep) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  auto result = match_expr("/site/people/person/@id", *guide);
  ASSERT_EQ(result.targets.size(), 1u);
  EXPECT_EQ(result.targets[0].node->label_path(), "/site/people/person/@id");
}

TEST(GuideMatchTest, NonexistentPathMatchesNothing) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  EXPECT_TRUE(match_expr("/site/nothing/here", *guide).targets.empty());
}

TEST(GuideMatchTest, ZeroExtentNodesSkipped) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  // Remove both persons -> person guide node has extent 0.
  xml::Node* people = doc->root()->first_child_named("people");
  while (people->child_count() > 0) {
    auto persons = people->children_named("person");
    guide->on_subtree_removed(*persons[0], "/site/people");
    auto removed = people->remove_child(persons[0]->index_in_parent());
    doc->unregister_subtree(*removed);
  }
  EXPECT_TRUE(match_expr("/site/people/person", *guide).targets.empty());
  EXPECT_TRUE(match_expr("//person", *guide).targets.empty());
}

TEST(GuideMatchTest, RelativeMatch) {
  auto doc = auction_sample();
  auto guide = DataGuide::build(*doc);
  GuideNode* person = guide->find_path("/site/people/person");
  ASSERT_NE(person, nullptr);
  auto rel = xpath::parse_relative("name");
  ASSERT_TRUE(rel.is_ok());
  auto matched = match_relative(rel.value(), *person);
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0]->label_path(), "/site/people/person/name");
}

}  // namespace
}  // namespace dtx::dataguide
