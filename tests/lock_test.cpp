#include <gtest/gtest.h>

#include "dataguide/dataguide.hpp"
#include "lock/lock_modes.hpp"
#include "lock/lock_table.hpp"
#include "lock/protocol.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace dtx::lock {
namespace {

// --- compatibility matrix -------------------------------------------------------

TEST(LockModesTest, PaperStatedConflicts) {
  // The §2.4 worked example hinges on ST blocking IX.
  EXPECT_FALSE(compatible(LockMode::kST, LockMode::kIX));
  EXPECT_FALSE(compatible(LockMode::kIX, LockMode::kST));
  // "XT lock protects a DataGuide sub-tree from read and update operations."
  for (int i = 0; i < kLockModeCount; ++i) {
    EXPECT_FALSE(compatible(LockMode::kXT, static_cast<LockMode>(i)));
    EXPECT_FALSE(compatible(static_cast<LockMode>(i), LockMode::kXT));
  }
  // X excludes everything on the node.
  for (int i = 0; i < kLockModeCount; ++i) {
    EXPECT_FALSE(compatible(LockMode::kX, static_cast<LockMode>(i)));
  }
}

TEST(LockModesTest, SharedInsertLocksAreMutuallyCompatible) {
  // "SI, SA and SB are used as shared locks on insertion operations" —
  // concurrent inserts around the same node must not conflict.
  for (LockMode a : {LockMode::kSI, LockMode::kSA, LockMode::kSB}) {
    for (LockMode b : {LockMode::kSI, LockMode::kSA, LockMode::kSB}) {
      EXPECT_TRUE(compatible(a, b))
          << lock_mode_name(a) << " vs " << lock_mode_name(b);
    }
    // ...and they are shared: reads coexist, exclusives do not.
    EXPECT_TRUE(compatible(a, LockMode::kST));
    EXPECT_FALSE(compatible(a, LockMode::kX));
    EXPECT_FALSE(compatible(a, LockMode::kXT));
  }
}

TEST(LockModesTest, IntentionModesFollowMultigranularity) {
  EXPECT_TRUE(compatible(LockMode::kIS, LockMode::kIX));
  EXPECT_TRUE(compatible(LockMode::kIX, LockMode::kIX));
  EXPECT_TRUE(compatible(LockMode::kIS, LockMode::kST));
  EXPECT_FALSE(compatible(LockMode::kIS, LockMode::kX));
  EXPECT_FALSE(compatible(LockMode::kIX, LockMode::kX));
}

TEST(LockModesTest, MatrixIsSymmetric) {
  for (int held = 0; held < kLockModeCount; ++held) {
    for (int requested = 0; requested < kLockModeCount; ++requested) {
      EXPECT_EQ(compatible(static_cast<LockMode>(held),
                           static_cast<LockMode>(requested)),
                compatible(static_cast<LockMode>(requested),
                           static_cast<LockMode>(held)))
          << lock_mode_name(static_cast<LockMode>(held)) << " vs "
          << lock_mode_name(static_cast<LockMode>(requested));
    }
  }
}

TEST(LockModesTest, EveryModeCoversItself) {
  for (int i = 0; i < kLockModeCount; ++i) {
    EXPECT_TRUE(covers(static_cast<LockMode>(i), static_cast<LockMode>(i)));
  }
}

TEST(LockModesTest, CoverageIsSoundWrtCompatibility) {
  // If `held` covers `requested`, any mode that conflicts with `requested`
  // must also conflict with `held` (a covering lock is at least as strong).
  for (int held = 0; held < kLockModeCount; ++held) {
    for (int requested = 0; requested < kLockModeCount; ++requested) {
      if (!covers(static_cast<LockMode>(held),
                  static_cast<LockMode>(requested))) {
        continue;
      }
      for (int other = 0; other < kLockModeCount; ++other) {
        if (!compatible(static_cast<LockMode>(other),
                        static_cast<LockMode>(requested))) {
          EXPECT_FALSE(compatible(static_cast<LockMode>(other),
                                  static_cast<LockMode>(held)))
              << lock_mode_name(static_cast<LockMode>(held)) << " covers "
              << lock_mode_name(static_cast<LockMode>(requested))
              << " but is weaker against "
              << lock_mode_name(static_cast<LockMode>(other));
        }
      }
    }
  }
}

TEST(LockModesTest, MaskHelpers) {
  const ModeMask mask = mask_of(LockMode::kIS) | mask_of(LockMode::kST);
  EXPECT_TRUE(mask_compatible(mask, LockMode::kIS));
  EXPECT_FALSE(mask_compatible(mask, LockMode::kIX));  // ST blocks IX
  EXPECT_TRUE(mask_covers(mask, LockMode::kIS));
  EXPECT_TRUE(mask_covers(mask, LockMode::kSI));  // ST covers SI
  EXPECT_FALSE(mask_covers(mask, LockMode::kX));
  EXPECT_EQ(mask_to_string(mask), "IS|ST");
  EXPECT_EQ(mask_to_string(0), "-");
}

// --- lock table --------------------------------------------------------------------

constexpr LockTarget kNode1{1, 10};
constexpr LockTarget kNode2{1, 20};
constexpr LockTarget kOtherDoc{2, 10};

TEST(LockTableTest, GrantAndConflict) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kST}).granted);
  auto outcome = table.try_acquire(2, {kNode1, LockMode::kIX});
  EXPECT_FALSE(outcome.granted);
  ASSERT_EQ(outcome.conflicts.size(), 1u);
  EXPECT_EQ(outcome.conflicts[0], 1u);
}

TEST(LockTableTest, SameNodeIdDifferentScopeNoConflict) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kX}).granted);
  EXPECT_TRUE(table.try_acquire(2, {kOtherDoc, LockMode::kX}).granted);
}

TEST(LockTableTest, SharedModesCoexist) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kST}).granted);
  EXPECT_TRUE(table.try_acquire(2, {kNode1, LockMode::kST}).granted);
  EXPECT_TRUE(table.try_acquire(3, {kNode1, LockMode::kSI}).granted);
  EXPECT_EQ(table.entry_count(), 3u);
}

TEST(LockTableTest, ReentrantAcquireGranted) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kST}).granted);
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kIX}).granted);
  EXPECT_TRUE(table.holds(1, kNode1, LockMode::kST));
  EXPECT_TRUE(table.holds(1, kNode1, LockMode::kIX));
  EXPECT_EQ(table.entry_count(), 1u);  // one entry, two mode bits
}

TEST(LockTableTest, CoveredReacquisitionDoesNotBumpCounter) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kXT}).granted);
  const auto count = table.acquisition_count();
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kIS}).granted);
  EXPECT_EQ(table.acquisition_count(), count);
}

TEST(LockTableTest, ReleaseAllFreesEverything) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kX}).granted);
  EXPECT_TRUE(table.try_acquire(1, {kNode2, LockMode::kX}).granted);
  table.release_all(1);
  EXPECT_EQ(table.entry_count(), 0u);
  EXPECT_TRUE(table.try_acquire(2, {kNode1, LockMode::kX}).granted);
  EXPECT_TRUE(table.try_acquire(2, {kNode2, LockMode::kX}).granted);
}

TEST(LockTableTest, BatchAllOrNothing) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode2, LockMode::kX}).granted);

  // txn 2: first target free, second conflicts -> nothing retained.
  auto outcome = table.try_acquire_all(
      2, {{kNode1, LockMode::kST}, {kNode2, LockMode::kST}});
  EXPECT_FALSE(outcome.granted);
  EXPECT_EQ(outcome.conflicts, std::vector<TxnId>{1});
  EXPECT_FALSE(table.holds(2, kNode1, LockMode::kST));
  EXPECT_EQ(table.entry_count(), 1u);  // only txn 1's lock remains
}

TEST(LockTableTest, BatchUnwindRestoresUpgradedMasks) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kIS}).granted);
  EXPECT_TRUE(table.try_acquire(2, {kNode2, LockMode::kX}).granted);
  // txn 1 batch: upgrade on kNode1 succeeds, kNode2 conflicts -> the IX
  // upgrade must be rolled back so readers are not blocked spuriously.
  auto outcome = table.try_acquire_all(
      1, {{kNode1, LockMode::kIX}, {kNode2, LockMode::kST}});
  EXPECT_FALSE(outcome.granted);
  EXPECT_FALSE(table.holds(1, kNode1, LockMode::kIX));
  EXPECT_TRUE(table.holds(1, kNode1, LockMode::kIS));
  // A reader's ST on kNode1 must be grantable again (IX would block it).
  EXPECT_TRUE(table.try_acquire(3, {kNode1, LockMode::kST}).granted);
}

TEST(LockTableTest, BatchSuccessKeepsEverything) {
  LockTable table;
  auto outcome = table.try_acquire_all(
      1, {{kNode1, LockMode::kIS}, {kNode2, LockMode::kST}});
  EXPECT_TRUE(outcome.granted);
  EXPECT_TRUE(table.holds(1, kNode1, LockMode::kIS));
  EXPECT_TRUE(table.holds(1, kNode2, LockMode::kST));
}

TEST(LockTableTest, ConflictReportsAllBlockers) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kST}).granted);
  EXPECT_TRUE(table.try_acquire(2, {kNode1, LockMode::kST}).granted);
  auto outcome = table.try_acquire(3, {kNode1, LockMode::kX});
  EXPECT_FALSE(outcome.granted);
  EXPECT_EQ(outcome.conflicts.size(), 2u);
}

TEST(LockTableTest, CountersTrackActivity) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(1, {kNode1, LockMode::kST}).granted);
  (void)table.try_acquire(2, {kNode1, LockMode::kX});
  EXPECT_EQ(table.acquisition_count(), 1u);
  EXPECT_EQ(table.conflict_count(), 1u);
}

TEST(LockTableTest, HoldersLists) {
  LockTable table;
  EXPECT_TRUE(table.try_acquire(5, {kNode1, LockMode::kST}).granted);
  EXPECT_TRUE(table.try_acquire(9, {kNode2, LockMode::kST}).granted);
  auto holders = table.holders();
  std::sort(holders.begin(), holders.end());
  EXPECT_EQ(holders, (std::vector<TxnId>{5, 9}));
}

// --- protocols ------------------------------------------------------------------------

struct ProtocolFixture : ::testing::Test {
  void SetUp() override {
    auto parsed = xml::parse(R"(
      <site>
        <people>
          <person id="p1"><name>Ana</name></person>
          <person id="p2"><name>Bruno</name></person>
        </people>
        <regions><europe><item id="i1"><name>Clock</name></item></europe></regions>
      </site>)",
                             "d");
    ASSERT_TRUE(parsed.is_ok());
    document = std::move(parsed).value();
    guide = dataguide::DataGuide::build(*document);
  }

  DocContext context() { return DocContext{1, *document, *guide}; }

  static std::vector<LockRequest> query_locks(LockProtocol& protocol,
                                              const std::string& expr,
                                              const DocContext& ctx) {
    auto path = xpath::parse(expr);
    EXPECT_TRUE(path.is_ok());
    auto locks = protocol.locks_for_query(path.value(), ctx);
    EXPECT_TRUE(locks.is_ok()) << locks.status().to_string();
    return locks.value();
  }

  bool has_lock(const std::vector<LockRequest>& locks,
                const std::string& guide_path, LockMode mode) {
    dataguide::GuideNode* node = guide->find_path(guide_path);
    if (node == nullptr) return false;
    for (const auto& lock : locks) {
      if (lock.target.node == node->id() && lock.mode == mode) return true;
    }
    return false;
  }

  std::unique_ptr<xml::Document> document;
  std::unique_ptr<dataguide::DataGuide> guide;
};

TEST_F(ProtocolFixture, XdglQueryLocks) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto locks = query_locks(*protocol, "/site/people/person", ctx);
  // ST on the target, IS on /site and /site/people.
  EXPECT_TRUE(has_lock(locks, "/site/people/person", LockMode::kST));
  EXPECT_TRUE(has_lock(locks, "/site/people", LockMode::kIS));
  EXPECT_TRUE(has_lock(locks, "/site", LockMode::kIS));
}

TEST_F(ProtocolFixture, XdglQueryPredicateLocks) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto locks =
      query_locks(*protocol, "/site/people/person[@id='p1']/name", ctx);
  EXPECT_TRUE(has_lock(locks, "/site/people/person/name", LockMode::kST));
  EXPECT_TRUE(has_lock(locks, "/site/people/person/@id", LockMode::kST));
  EXPECT_TRUE(has_lock(locks, "/site/people/person", LockMode::kIS));
}

TEST_F(ProtocolFixture, XdglInsertLocks) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto op = xupdate::make_insert("/site/people",
                                 "<person id=\"p9\"><name>Zoe</name></person>");
  ASSERT_TRUE(op.is_ok());
  auto locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(locks.is_ok()) << locks.status().to_string();
  // SI on the connecting node, X on the inserted guide path, IX above it.
  EXPECT_TRUE(has_lock(locks.value(), "/site/people", LockMode::kSI));
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person", LockMode::kX));
  EXPECT_TRUE(has_lock(locks.value(), "/site/people", LockMode::kIX));
  EXPECT_TRUE(has_lock(locks.value(), "/site", LockMode::kIS));
}

TEST_F(ProtocolFixture, XdglInsertBeforeUsesSB) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto op = xupdate::make_insert("/site/people/person[@id='p2']",
                                 "<person id=\"p0\"/>",
                                 xupdate::InsertWhere::kBefore);
  ASSERT_TRUE(op.is_ok());
  auto locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(locks.is_ok());
  // Connecting node = the target's parent (/site/people) locked SB.
  EXPECT_TRUE(has_lock(locks.value(), "/site/people", LockMode::kSB));
}

TEST_F(ProtocolFixture, XdglRemoveLocks) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto op = xupdate::make_remove("/site/people/person[@id='p1']");
  ASSERT_TRUE(op.is_ok());
  auto locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(locks.is_ok());
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person", LockMode::kXT));
  EXPECT_TRUE(has_lock(locks.value(), "/site/people", LockMode::kIX));
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person/@id",
                       LockMode::kST));
}

TEST_F(ProtocolFixture, XdglChangeUsesX) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto op =
      xupdate::make_change("/site/people/person[@id='p1']/name", "Anna");
  ASSERT_TRUE(op.is_ok());
  auto locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(locks.is_ok());
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person/name",
                       LockMode::kX));
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person", LockMode::kIX));
}

TEST_F(ProtocolFixture, XdglInsertOfNewLabelPathLockable) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  auto op = xupdate::make_insert("/site/people/person[@id='p1']",
                                 "<phone>555</phone>");
  ASSERT_TRUE(op.is_ok());
  auto locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(locks.is_ok());
  // The guide path /site/people/person/phone is created on demand and
  // locked X.
  EXPECT_TRUE(has_lock(locks.value(), "/site/people/person/phone",
                       LockMode::kX));
}

TEST_F(ProtocolFixture, XdglQueryVsInsertConflictMatchesPaperExample) {
  // §2.4: a query holding ST on a node blocks an insert needing IX there.
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  LockTable table;

  auto query = query_locks(*protocol, "/site/people/person", ctx);
  EXPECT_TRUE(table.try_acquire_all(1, query).granted);

  auto op = xupdate::make_insert("/site/people", "<person id=\"p9\"/>");
  ASSERT_TRUE(op.is_ok());
  auto insert_locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(insert_locks.is_ok());
  auto outcome = table.try_acquire_all(2, insert_locks.value());
  EXPECT_FALSE(outcome.granted);
  EXPECT_EQ(outcome.conflicts, std::vector<TxnId>{1});
}

TEST_F(ProtocolFixture, XdglConcurrentInsertsDoNotConflict) {
  // The SI/SA/SB design goal: two inserts into the same node coexist.
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  LockTable table;
  auto op1 = xupdate::make_insert("/site/people", "<person id=\"a\"/>");
  auto op2 = xupdate::make_insert("/site/people", "<person id=\"b\"/>");
  ASSERT_TRUE(op1.is_ok() && op2.is_ok());
  auto locks1 = protocol->locks_for_update(op1.value(), ctx);
  auto locks2 = protocol->locks_for_update(op2.value(), ctx);
  ASSERT_TRUE(locks1.is_ok() && locks2.is_ok());
  EXPECT_TRUE(table.try_acquire_all(1, locks1.value()).granted);
  // Both need X on the same /site/people/person guide node -> in XDGL two
  // inserts of the *same label path* do conflict on the guide node itself;
  // inserts of *different* labels coexist. Verify the different-label case:
  table.release_all(1);
  auto op3 = xupdate::make_insert("/site/people", "<staff id=\"c\"/>");
  ASSERT_TRUE(op3.is_ok());
  auto locks3 = protocol->locks_for_update(op3.value(), ctx);
  ASSERT_TRUE(locks3.is_ok());
  EXPECT_TRUE(table.try_acquire_all(1, locks1.value()).granted);
  EXPECT_TRUE(table.try_acquire_all(2, locks3.value()).granted);
}

TEST_F(ProtocolFixture, Node2plQueryLocksWholeSubtreePerNode) {
  auto protocol = make_protocol(ProtocolKind::kNode2pl);
  auto ctx = context();
  auto locks = query_locks(*protocol, "/site/people", ctx);
  // The subtree under /site/people has people + 2*(person, name, #text) = 7
  // instance nodes, all S-locked, plus IS on the root: >= 8 requests.
  EXPECT_GE(locks.size(), 8u);
  // XDGL needs only ST on one guide node + IS on one ancestor.
  auto xdgl = make_protocol(ProtocolKind::kXdgl);
  auto xdgl_locks = query_locks(*xdgl, "/site/people", ctx);
  EXPECT_LT(xdgl_locks.size(), locks.size());
}

TEST_F(ProtocolFixture, Node2plWriterBlocksSubtreeReader) {
  auto protocol = make_protocol(ProtocolKind::kNode2pl);
  auto ctx = context();
  LockTable table;
  auto op = xupdate::make_insert("/site/people", "<person id=\"p9\"/>");
  ASSERT_TRUE(op.is_ok());
  auto write_locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(write_locks.is_ok());
  EXPECT_TRUE(table.try_acquire_all(1, write_locks.value()).granted);
  // A reader of any person under /site/people is now blocked (coarse).
  auto read_locks =
      query_locks(*protocol, "/site/people/person[@id='p1']/name", ctx);
  EXPECT_FALSE(table.try_acquire_all(2, read_locks).granted);
}

TEST_F(ProtocolFixture, XdglReaderCoexistsWithDisjointWriter) {
  // The concurrency XDGL buys: updating an item does not block a person
  // reader (disjoint guide paths).
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  LockTable table;
  auto op = xupdate::make_change("/site/regions/europe/item[@id='i1']/name",
                                 "Watch");
  ASSERT_TRUE(op.is_ok());
  auto write_locks = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(write_locks.is_ok());
  EXPECT_TRUE(table.try_acquire_all(1, write_locks.value()).granted);
  auto read_locks =
      query_locks(*protocol, "/site/people/person[@id='p1']/name", ctx);
  EXPECT_TRUE(table.try_acquire_all(2, read_locks).granted);
}

TEST_F(ProtocolFixture, DocLockSerializesReadersAndWriters) {
  auto protocol = make_protocol(ProtocolKind::kDocLock2pl);
  auto ctx = context();
  LockTable table;
  auto read = query_locks(*protocol, "/site/people/person", ctx);
  ASSERT_EQ(read.size(), 1u);
  EXPECT_TRUE(table.try_acquire_all(1, read).granted);
  // A second reader coexists.
  EXPECT_TRUE(table.try_acquire_all(2, read).granted);
  // Any writer is blocked by both.
  auto op = xupdate::make_change("/site/regions/europe/item/name", "x");
  ASSERT_TRUE(op.is_ok());
  auto write = protocol->locks_for_update(op.value(), ctx);
  ASSERT_TRUE(write.is_ok());
  auto outcome = table.try_acquire_all(3, write.value());
  EXPECT_FALSE(outcome.granted);
  EXPECT_EQ(outcome.conflicts.size(), 2u);
}


// --- logical (value-conditioned) locks -----------------------------------------

TEST(ValueLockTest, ConditionHashNeverAny) {
  EXPECT_NE(value_condition_of(""), kAnyValue);  // even empty text hashes
  EXPECT_NE(value_condition_of("@id=4"), kAnyValue);
  EXPECT_EQ(value_condition_of("@id=4"), value_condition_of("@id=4"));
  EXPECT_NE(value_condition_of("@id=4"), value_condition_of("@id=5"));
}

TEST(ValueLockTest, DifferentValuesCoexistDespiteModeConflict) {
  LockTable table;
  const ValueCondition v4 = value_condition_of("@id=4");
  const ValueCondition v5 = value_condition_of("@id=5");
  EXPECT_TRUE(table.try_acquire(1, {{1, 10, v4}, LockMode::kX}).granted);
  // X vs X would conflict, but the conditions name different instances.
  EXPECT_TRUE(table.try_acquire(2, {{1, 10, v5}, LockMode::kX}).granted);
  // Same value does conflict.
  EXPECT_FALSE(table.try_acquire(3, {{1, 10, v4}, LockMode::kST}).granted);
}

TEST(ValueLockTest, UnconditionedLockConflictsWithEveryValue) {
  LockTable table;
  const ValueCondition v4 = value_condition_of("@id=4");
  EXPECT_TRUE(table.try_acquire(1, {{1, 10, v4}, LockMode::kX}).granted);
  // A scan (unconditioned ST) overlaps all instances -> blocked.
  auto outcome = table.try_acquire(2, {{1, 10, kAnyValue}, LockMode::kST});
  EXPECT_FALSE(outcome.granted);
  EXPECT_EQ(outcome.conflicts, std::vector<TxnId>{1});
  // And vice versa: value lock vs held unconditioned lock.
  LockTable table2;
  EXPECT_TRUE(
      table2.try_acquire(1, {{1, 10, kAnyValue}, LockMode::kST}).granted);
  EXPECT_FALSE(table2.try_acquire(2, {{1, 10, v4}, LockMode::kX}).granted);
}

TEST(ValueLockTest, CompatibleModesIgnoreValues) {
  LockTable table;
  const ValueCondition v4 = value_condition_of("@id=4");
  EXPECT_TRUE(table.try_acquire(1, {{1, 10, v4}, LockMode::kIS}).granted);
  EXPECT_TRUE(
      table.try_acquire(2, {{1, 10, kAnyValue}, LockMode::kIX}).granted);
}

TEST(ValueLockTest, SameTxnHoldsMultipleConditionsSeparately) {
  LockTable table;
  const ValueCondition v4 = value_condition_of("@id=4");
  const ValueCondition v5 = value_condition_of("@id=5");
  EXPECT_TRUE(table.try_acquire(1, {{1, 10, v4}, LockMode::kX}).granted);
  EXPECT_TRUE(table.try_acquire(1, {{1, 10, v5}, LockMode::kX}).granted);
  EXPECT_EQ(table.entry_count(), 2u);
  EXPECT_TRUE(table.holds(1, {1, 10, v4}, LockMode::kX));
  EXPECT_TRUE(table.holds(1, {1, 10, v5}, LockMode::kX));
  EXPECT_FALSE(table.holds(1, {1, 10, kAnyValue}, LockMode::kX));
  table.release_all(1);
  EXPECT_EQ(table.entry_count(), 0u);
}

TEST(ValueLockTest, RollbackRestoresValueEntries) {
  LockTable table;
  const ValueCondition v4 = value_condition_of("@id=4");
  EXPECT_TRUE(table.try_acquire(1, {{1, 20, kAnyValue}, LockMode::kX}).granted);
  AcquisitionJournal journal;
  auto outcome = table.try_acquire_all(
      2, {{{1, 10, v4}, LockMode::kX}, {{1, 20, v4}, LockMode::kST}},
      &journal);
  EXPECT_FALSE(outcome.granted);  // second request hits txn 1's X
  EXPECT_EQ(table.entry_count(), 1u);  // the v4 X on node 10 was unwound
  EXPECT_FALSE(table.holds(2, {1, 10, v4}, LockMode::kX));
}

TEST_F(ProtocolFixture, XdglPlainConflictsWhereLogicalDoesNot) {
  auto logical = make_protocol(ProtocolKind::kXdgl);
  auto plain = make_protocol(ProtocolKind::kXdglPlain);
  auto ctx = context();

  auto q = xpath::parse("/site/people/person[@id='p1']/name");
  ASSERT_TRUE(q.is_ok());
  auto op = xupdate::make_change("/site/people/person[@id='p2']/name", "Bo");
  ASSERT_TRUE(op.is_ok());

  // Logical locks: point ops on p1 and p2 coexist.
  {
    LockTable table;
    auto read = logical->locks_for_query(q.value(), ctx);
    auto write = logical->locks_for_update(op.value(), ctx);
    ASSERT_TRUE(read.is_ok() && write.is_ok());
    EXPECT_TRUE(table.try_acquire_all(1, read.value()).granted);
    EXPECT_TRUE(table.try_acquire_all(2, write.value()).granted);
  }
  // Plain locks: both target the shared name guide node -> conflict.
  {
    LockTable table;
    auto read = plain->locks_for_query(q.value(), ctx);
    auto write = plain->locks_for_update(op.value(), ctx);
    ASSERT_TRUE(read.is_ok() && write.is_ok());
    EXPECT_TRUE(table.try_acquire_all(1, read.value()).granted);
    EXPECT_FALSE(table.try_acquire_all(2, write.value()).granted);
  }
}

TEST_F(ProtocolFixture, XdglLogicalInsertsOnDistinctIdsCoexist) {
  auto protocol = make_protocol(ProtocolKind::kXdgl);
  auto ctx = context();
  LockTable table;
  auto op1 = xupdate::make_insert("/site/people", "<person id=\"a\"/>");
  auto op2 = xupdate::make_insert("/site/people", "<person id=\"b\"/>");
  ASSERT_TRUE(op1.is_ok() && op2.is_ok());
  auto locks1 = protocol->locks_for_update(op1.value(), ctx);
  auto locks2 = protocol->locks_for_update(op2.value(), ctx);
  ASSERT_TRUE(locks1.is_ok() && locks2.is_ok());
  EXPECT_TRUE(table.try_acquire_all(1, locks1.value()).granted);
  EXPECT_TRUE(table.try_acquire_all(2, locks2.value()).granted);
  // A scan is still excluded while the inserts are pending (no phantoms).
  auto scan = xpath::parse("/site/people/person/name");
  ASSERT_TRUE(scan.is_ok());
  auto scan_locks = protocol->locks_for_query(scan.value(), ctx);
  ASSERT_TRUE(scan_locks.is_ok());
  EXPECT_FALSE(table.try_acquire_all(3, scan_locks.value()).granted);
}

TEST(ProtocolFactoryTest, NamesAndParsing) {
  EXPECT_STREQ(make_protocol(ProtocolKind::kXdgl)->name(), "xdgl");
  EXPECT_STREQ(make_protocol(ProtocolKind::kXdglPlain)->name(), "xdgl-plain");
  EXPECT_TRUE(parse_protocol_kind("xdgl-plain").is_ok());
  EXPECT_STREQ(make_protocol(ProtocolKind::kNode2pl)->name(), "node2pl");
  EXPECT_STREQ(make_protocol(ProtocolKind::kDocLock2pl)->name(), "doclock");
  EXPECT_TRUE(parse_protocol_kind("xdgl").is_ok());
  EXPECT_TRUE(parse_protocol_kind("node2pl").is_ok());
  EXPECT_TRUE(parse_protocol_kind("doclock").is_ok());
  EXPECT_FALSE(parse_protocol_kind("mystery").is_ok());
}

}  // namespace
}  // namespace dtx::lock
