// Placement & membership subsystem (src/placement + the Site/Cluster
// membership protocol):
//
//  * placement policies — hosting-set assignment invariants, hash-ring
//    movement minimality under rebalance, migration planning;
//  * catalog epochs — text round-trip, strictly-newer install;
//  * partial replication routing — transactions touch ONLY hosting sites
//    (message counters at the bystander stay zero);
//  * epoch fencing — a transaction routed under a stale epoch aborts with
//    the retryable kStaleCatalog, the lagging coordinator catches up via
//    catalog anti-entropy, and the retry commits;
//  * elastic membership — add_site migrates replicas onto the joiner and
//    remove_site drains it, under a seeded chaotic network, ending with
//    byte-identical replicas and no dangling locks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "dtx/cluster.hpp"
#include "dtx/wal.hpp"
#include "placement/placement.hpp"

namespace dtx::core {
namespace {

using namespace std::chrono_literals;
using placement::CatalogEpoch;
using placement::PlacementPolicy;
using txn::AbortReason;
using txn::TxnState;

constexpr const char* kPeopleXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "</people></site>";

ClusterOptions fast_options(std::size_t sites) {
  ClusterOptions options;
  options.site_count = sites;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  options.site.response_timeout = std::chrono::microseconds(150'000);
  options.site.orphan_txn_timeout = std::chrono::microseconds(50'000);
  options.site.commit_ack_rounds = 2;
  return options;
}

/// Retries a transaction through transient aborts until it commits (or the
/// attempt budget runs out) — what a real client does with a retryable
/// reason like kStaleCatalog.
txn::TxnResult execute_retrying(Cluster& cluster, net::SiteId site,
                                const std::vector<std::string>& ops,
                                int attempts = 50) {
  txn::TxnResult last;
  for (int i = 0; i < attempts; ++i) {
    auto result = cluster.execute_text(site, ops);
    if (!result.is_ok()) {
      std::this_thread::sleep_for(2ms);
      continue;
    }
    last = std::move(result).value();
    if (last.state == TxnState::kCommitted) return last;
    if (!txn::abort_reason_retryable(last.reason)) return last;
    std::this_thread::sleep_for(2ms);
  }
  return last;
}

/// Replica agreement: every hosting site's durable state of `doc`
/// materializes to the same bytes.
void expect_replicas_agree(Cluster& cluster, const std::string& doc,
                           const std::vector<net::SiteId>& hosts) {
  ASSERT_FALSE(hosts.empty());
  auto reference = wal::materialize(cluster.store_of(hosts.front()), doc);
  ASSERT_TRUE(reference.is_ok()) << reference.status().to_string();
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    auto replica = wal::materialize(cluster.store_of(hosts[i]), doc);
    ASSERT_TRUE(replica.is_ok()) << replica.status().to_string();
    EXPECT_EQ(reference.value(), replica.value())
        << doc << " diverges between site " << hosts.front() << " and site "
        << hosts[i];
  }
}

// --- placement policies ------------------------------------------------------

TEST(PlacementPolicy, AssignSitesInvariants) {
  const std::vector<net::SiteId> members{0, 1, 2, 3, 4};
  for (const PlacementPolicy policy :
       {PlacementPolicy::kFixed, PlacementPolicy::kRoundRobin,
        PlacementPolicy::kHashRing}) {
    for (std::size_t replication : {std::size_t{1}, std::size_t{3}}) {
      const std::vector<net::SiteId> hosts = placement::assign_sites(
          policy, 7, "doc7", members, replication);
      EXPECT_EQ(hosts.size(), replication);
      EXPECT_TRUE(std::is_sorted(hosts.begin(), hosts.end()));
      EXPECT_EQ(std::set<net::SiteId>(hosts.begin(), hosts.end()).size(),
                hosts.size());
      for (const net::SiteId host : hosts) {
        EXPECT_TRUE(std::find(members.begin(), members.end(), host) !=
                    members.end());
      }
    }
    // 0 (and anything >= member count) means full replication.
    EXPECT_EQ(placement::assign_sites(policy, 0, "d", members, 0).size(),
              members.size());
    EXPECT_EQ(placement::assign_sites(policy, 0, "d", members, 9).size(),
              members.size());
  }
}

TEST(PlacementPolicy, RoundRobinSpreadsByIndex) {
  const std::vector<net::SiteId> members{0, 1, 2};
  std::set<net::SiteId> first_choices;
  for (std::size_t doc = 0; doc < 3; ++doc) {
    const auto hosts = placement::assign_sites(
        PlacementPolicy::kRoundRobin, doc, "doc", members, 1);
    ASSERT_EQ(hosts.size(), 1u);
    first_choices.insert(hosts.front());
  }
  EXPECT_EQ(first_choices.size(), 3u) << "striping must hit every member";
}

TEST(PlacementPolicy, HashRingRebalanceMovesFewReplicas) {
  CatalogEpoch current;
  current.epoch = 3;
  current.members = {0, 1, 2, 3};
  for (int d = 0; d < 32; ++d) {
    const std::string name = "doc" + std::to_string(d);
    current.placement[name] = placement::assign_sites(
        PlacementPolicy::kHashRing, static_cast<std::size_t>(d), name,
        current.members, 2);
  }
  const CatalogEpoch next = placement::rebalance(
      current, {0, 1, 2, 3, 4}, {{4, "127.0.0.1:7104"}},
      PlacementPolicy::kHashRing, 2);
  EXPECT_EQ(next.epoch, 4u);
  ASSERT_TRUE(next.is_member(4));
  EXPECT_EQ(next.addresses.at(4), "127.0.0.1:7104");
  std::size_t moved = 0;
  for (const auto& [doc, hosts] : next.placement) {
    EXPECT_EQ(hosts.size(), 2u);
    if (hosts != current.sites_of(doc)) ++moved;
  }
  // Consistent hashing: roughly replication/members of the replicas move;
  // anything under half the documents proves we are not reshuffling
  // everything (round-robin or fixed would).
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 16u) << "hash ring moved " << moved << "/32 documents";
}

TEST(PlacementPolicy, PlanMigrationListsSourcesGainsDrops) {
  CatalogEpoch from;
  from.epoch = 1;
  from.members = {0, 1, 2};
  from.placement["a"] = {0, 1};
  from.placement["b"] = {1, 2};
  CatalogEpoch to = from;
  to.epoch = 2;
  to.members = {1, 2, 3};
  to.placement["a"] = {1, 3};
  const placement::MigrationPlan plan = placement::plan_migration(from, to);
  ASSERT_EQ(plan.moves.size(), 1u);  // only "a" changed hosts
  EXPECT_EQ(plan.moves[0].doc, "a");
  EXPECT_EQ(plan.moves[0].sources, (std::vector<net::SiteId>{0, 1}));
  EXPECT_EQ(plan.moves[0].gains, (std::vector<net::SiteId>{3}));
  EXPECT_EQ(plan.moves[0].drops, (std::vector<net::SiteId>{0}));
}

// --- catalog epochs ----------------------------------------------------------

TEST(CatalogEpochTest, TextRoundTrip) {
  CatalogEpoch epoch;
  epoch.epoch = 42;
  epoch.members = {0, 2, 5};
  epoch.addresses = {{0, "127.0.0.1:7100"}, {5, "10.0.0.5:7105"}};
  epoch.placement["d1"] = {0, 2};
  epoch.placement["weird name"] = {5};
  auto parsed = CatalogEpoch::parse(epoch.to_text());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  const CatalogEpoch& round = parsed.value();
  EXPECT_EQ(round.epoch, epoch.epoch);
  EXPECT_EQ(round.members, epoch.members);
  EXPECT_EQ(round.addresses, epoch.addresses);
  EXPECT_EQ(round.placement, epoch.placement);
}

TEST(CatalogEpochTest, InstallRequiresStrictlyNewer) {
  Catalog catalog;
  ASSERT_TRUE(catalog.add_document("d1", {0, 1}).is_ok());
  CatalogEpoch next(*catalog.view());
  next.epoch = 1;
  EXPECT_TRUE(catalog.install(next));
  EXPECT_FALSE(catalog.install(next)) << "duplicate epoch must be a no-op";
  next.epoch = 0;
  EXPECT_FALSE(catalog.install(next));
  EXPECT_EQ(catalog.epoch(), 1u);
}

// --- partial replication routing ---------------------------------------------

TEST(PartialReplication, TransactionsTouchOnlyHostingSites) {
  Cluster cluster(fast_options(3));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  for (int i = 0; i < 10; ++i) {
    auto result = cluster.execute_text(
        0, {"update d1 change /site/people/person[@id='p1']/phone ::= " +
                std::to_string(900 + i),
            "query d1 /site/people/person[@id='p1']/phone"});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    ASSERT_EQ(result.value().state, TxnState::kCommitted)
        << result.value().detail;
  }

  // The bystander site hosts nothing of d1: no remote operation, no lock,
  // no migration may ever reach it.
  SiteStats bystander = cluster.site(2).stats();
  EXPECT_EQ(bystander.remote_ops_processed, 0u);
  EXPECT_EQ(bystander.lock_manager.lock_acquisitions, 0u);
  EXPECT_EQ(bystander.migrations, 0u);
  // The hosting replica pair did all the work and agrees.
  SiteStats host = cluster.site(1).stats();
  EXPECT_GT(host.remote_ops_processed, 0u);
  cluster.stop();
  expect_replicas_agree(cluster, "d1", {0, 1});
}

// --- epoch fencing + anti-entropy --------------------------------------------

TEST(CatalogEpochFencing, StaleCoordinatorAbortsRetriesAndCatchesUp) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  // Flip ONLY site 1 to a newer epoch (same placement — pure fence): the
  // admin never tells site 0.
  const net::SiteId admin = net::kClientIdBase + 0x200u;
  net::Mailbox& admin_mailbox = cluster.network().register_site(admin);
  CatalogEpoch next(*cluster.catalog().view());
  next.epoch = cluster.catalog().epoch() + 1;
  cluster.network().send(net::Message{
      admin, 1, net::CatalogUpdate{next.epoch, next.to_text(), admin}});
  // Site 1 installs and, once its old-epoch transactions drained, acks.
  const auto ack = admin_mailbox.pop(std::chrono::microseconds(2'000'000));
  ASSERT_TRUE(ack.has_value()) << "site 1 never acked the catalog update";
  ASSERT_TRUE(std::holds_alternative<net::CatalogAck>(ack->payload));
  EXPECT_EQ(std::get<net::CatalogAck>(ack->payload).epoch, next.epoch);

  // A transaction coordinated at lagging site 0 routes its remote
  // operation under the old epoch; site 1 fences it with the retryable
  // kStaleCatalog and gossips the new catalog back. The retry commits.
  const std::vector<std::string> ops{
      "update d1 change /site/people/person[@id='p2']/phone ::= 333"};
  const txn::TxnResult result = execute_retrying(cluster, 0, ops);
  EXPECT_EQ(result.state, TxnState::kCommitted) << result.detail;

  ClusterStats stats = cluster.stats();
  EXPECT_GE(stats.stale_catalog_aborts, 1u);
  EXPECT_EQ(stats.catalog_epoch, next.epoch);
  // Anti-entropy delivered the epoch to the lagging coordinator itself.
  EXPECT_EQ(cluster.site(0).stats().catalog_epoch, next.epoch);
  cluster.stop();
  expect_replicas_agree(cluster, "d1", {0, 1});
}

// --- elastic membership ------------------------------------------------------

class MembershipTest : public ::testing::Test {
 protected:
  static ClusterOptions membership_options(std::size_t sites) {
    ClusterOptions options = fast_options(sites);
    options.site.placement_policy = PlacementPolicy::kHashRing;
    options.site.replication = 2;
    return options;
  }

  static std::vector<std::string> doc_names() {
    return {"d0", "d1", "d2", "d3", "d4", "d5"};
  }

  void load_all(Cluster& cluster, const std::vector<net::SiteId>& members) {
    // Initial placement mirrors what the policy would choose so the first
    // rebalance moves little.
    std::size_t index = 0;
    for (const std::string& doc : doc_names()) {
      const auto hosts = placement::assign_sites(
          PlacementPolicy::kHashRing, index++, doc, members, 2);
      ASSERT_TRUE(cluster.load_document(doc, kPeopleXml, hosts).is_ok());
    }
  }

  static std::vector<std::string> update_ops(int value) {
    return {"update d" + std::to_string(value % 6) +
            " change /site/people/person[@id='p1']/phone ::= " +
            std::to_string(value)};
  }
};

TEST_F(MembershipTest, AddAndRemoveSiteUnderChaosKeepsReplicasConsistent) {
  ClusterOptions options = membership_options(3);
  Cluster cluster(options);
  load_all(cluster, {0, 1, 2});
  ASSERT_TRUE(cluster.start().is_ok());

  // Seeded low-grade chaos on every link: drops and duplicates while the
  // membership changes run. (Kept mild so the test stays fast — the
  // protocol-level resends and idempotence must absorb it.)
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.seed(7);
    net::LinkFault fault;
    fault.drop_probability = 0.02;
    fault.duplicate_probability = 0.02;
    plan.set_default_fault(fault);
  });

  std::atomic<bool> stop_load{false};
  std::atomic<int> committed{0};
  std::thread load([&] {
    int value = 0;
    while (!stop_load.load()) {
      const txn::TxnResult result = execute_retrying(
          cluster, static_cast<net::SiteId>(value % 3), update_ops(value), 8);
      if (result.state == TxnState::kCommitted) ++committed;
      ++value;
    }
  });

  // Grow 3 -> 4: the joiner must end up hosting its hash-ring share.
  auto added = cluster.add_site();
  ASSERT_TRUE(added.is_ok()) << added.status().to_string();
  const net::SiteId joiner = added.value();
  EXPECT_EQ(joiner, 3u);
  const std::vector<std::string> gained =
      cluster.catalog().documents_at(joiner);
  EXPECT_FALSE(gained.empty()) << "hash ring assigned nothing to the joiner";

  // Shrink: decommission site 0; its replicas must migrate away first.
  ASSERT_TRUE(cluster.remove_site(0).is_ok());
  EXPECT_FALSE(cluster.site_running(0));

  stop_load.store(true);
  load.join();
  cluster.network().heal();
  EXPECT_GT(committed.load(), 0);

  // Drain the survivors, then check the invariants.
  std::this_thread::sleep_for(200ms);
  const Catalog::View view = cluster.catalog().view();
  EXPECT_FALSE(view->is_member(0));
  for (const std::string& doc : doc_names()) {
    const std::vector<net::SiteId>& hosts = view->sites_of(doc);
    ASSERT_EQ(hosts.size(), 2u) << doc << " lost replication";
    for (const net::SiteId host : hosts) {
      EXPECT_NE(host, 0u) << doc << " still placed at the removed site";
    }
  }
  for (const net::SiteId site : {1u, 2u, 3u}) {
    EXPECT_EQ(cluster.site(site).lock_manager().lock_entries(), 0u)
        << "dangling locks at site " << site;
  }
  ClusterStats stats = cluster.stats();
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_GT(stats.migrated_bytes, 0u);
  EXPECT_GE(stats.catalog_epoch, 2u);  // one join + one leave
  cluster.stop();
  for (const std::string& doc : doc_names()) {
    expect_replicas_agree(cluster, doc, view->sites_of(doc));
  }
  // The decommissioned site's store holds no document replicas anymore
  // (internal records like the durable catalog may remain).
  for (const std::string& doc : doc_names()) {
    EXPECT_FALSE(cluster.store_of(0).exists(doc))
        << doc << " still stored at the removed site";
  }
}

TEST_F(MembershipTest, AddSiteServesNewTrafficOnJoiner) {
  Cluster cluster(membership_options(2));
  load_all(cluster, {0, 1});
  ASSERT_TRUE(cluster.start().is_ok());

  auto added = cluster.add_site();
  ASSERT_TRUE(added.is_ok()) << added.status().to_string();
  const net::SiteId joiner = added.value();

  // The joiner coordinates transactions immediately — including ones that
  // touch documents it does not host (pure remote routing).
  for (int i = 0; i < 6; ++i) {
    const txn::TxnResult result =
        execute_retrying(cluster, joiner, update_ops(i));
    EXPECT_EQ(result.state, TxnState::kCommitted) << result.detail;
  }
  cluster.stop();
  const Catalog::View view = cluster.catalog().view();
  for (const std::string& doc : doc_names()) {
    expect_replicas_agree(cluster, doc, view->sites_of(doc));
  }
}

}  // namespace
}  // namespace dtx::core
