#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string_view>
#include <thread>
#include <variant>

#include "net/codec.hpp"
#include "net/sim_network.hpp"
#include "txn/operation.hpp"

namespace dtx::net {
namespace {

using namespace std::chrono_literals;

Message make_message(SiteId from, SiteId to, TxnId txn) {
  return Message{from, to, WakeTxn{txn}};
}

TEST(MailboxTest, PushPopImmediate) {
  Mailbox mailbox;
  mailbox.push(make_message(0, 1, 42), Mailbox::Clock::now());
  auto message = mailbox.pop(10ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 42u);
}

TEST(MailboxTest, PopTimesOutWhenEmpty) {
  Mailbox mailbox;
  const auto start = Mailbox::Clock::now();
  EXPECT_FALSE(mailbox.pop(20ms).has_value());
  EXPECT_GE(Mailbox::Clock::now() - start, 18ms);
}

TEST(MailboxTest, DelayedDeliveryWaitsUntilDue) {
  Mailbox mailbox;
  const auto now = Mailbox::Clock::now();
  mailbox.push(make_message(0, 1, 1), now + 30ms);
  EXPECT_FALSE(mailbox.pop(5ms).has_value());  // not due yet
  auto message = mailbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_GE(Mailbox::Clock::now() - now, 28ms);
}

TEST(MailboxTest, EarlierMessageOvertakesLater) {
  Mailbox mailbox;
  const auto now = Mailbox::Clock::now();
  mailbox.push(make_message(0, 1, 2), now + 50ms);
  mailbox.push(make_message(0, 1, 1), now);  // due immediately
  auto first = mailbox.pop(10ms);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<WakeTxn>(first->payload).txn, 1u);
}

TEST(MailboxTest, FifoForEqualDeliveryTimes) {
  Mailbox mailbox;
  const auto now = Mailbox::Clock::now();
  for (TxnId i = 1; i <= 5; ++i) mailbox.push(make_message(0, 1, i), now);
  for (TxnId i = 1; i <= 5; ++i) {
    auto message = mailbox.pop(10ms);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, i);
  }
}

TEST(MailboxTest, InterruptWakesBlockedPop) {
  Mailbox mailbox;
  std::thread interrupter([&] {
    std::this_thread::sleep_for(10ms);
    mailbox.interrupt();
  });
  const auto start = Mailbox::Clock::now();
  EXPECT_FALSE(mailbox.pop(5000ms).has_value());
  EXPECT_LT(Mailbox::Clock::now() - start, 1000ms);
  interrupter.join();
}

TEST(SimNetworkTest, DeliversBetweenSites) {
  SimNetwork network({std::chrono::microseconds(100), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.send(make_message(0, 1, 7));
  auto message = inbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->from, 0u);
  EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 7u);
}

TEST(SimNetworkTest, LatencyIsApplied) {
  NetworkOptions options;
  options.latency = std::chrono::microseconds(30'000);
  options.bandwidth_bytes_per_sec = 0;
  SimNetwork network(options);
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  const auto start = Mailbox::Clock::now();
  network.send(make_message(0, 1, 1));
  auto message = inbox.pop(500ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_GE(Mailbox::Clock::now() - start, 28ms);
}

TEST(SimNetworkTest, PerLinkFifoUnderBandwidthModel) {
  NetworkOptions options;
  options.latency = std::chrono::microseconds(100);
  options.bandwidth_bytes_per_sec = 1'000'000;
  SimNetwork network(options);
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  // Large then small: without per-link serialization the small message
  // would overtake the large one.
  ExecuteOperation big;
  big.txn = 1;
  big.op = txn::make_update(
      "d", xupdate::make_insert("/a", "<x>" + std::string(5000, 'y') + "</x>")
               .value());
  network.send(Message{0, 1, big});
  network.send(make_message(0, 1, 2));
  auto first = inbox.pop(500ms);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(std::holds_alternative<ExecuteOperation>(first->payload));
  auto second = inbox.pop(500ms);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(std::holds_alternative<WakeTxn>(second->payload));
}

TEST(SimNetworkTest, StatsCountMessagesAndBytes) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  network.register_site(1);
  network.send(make_message(0, 1, 1));
  network.send(make_message(1, 0, 2));
  const NetworkStats stats = network.stats();
  EXPECT_EQ(stats.messages_sent, 2u);
  EXPECT_GT(stats.bytes_sent, 0u);
  EXPECT_EQ(stats.messages_dropped, 0u);
}

// --- fault plan -------------------------------------------------------------

TEST(FaultPlanTest, MessageFilterDropsMatching) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.faults([](FaultPlan& plan) {
    plan.set_message_filter([](const Message& message) {
      return std::holds_alternative<AbortRequest>(message.payload);
    });
  });
  network.send(Message{0, 1, AbortRequest{5}});
  network.send(make_message(0, 1, 6));
  auto message = inbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_TRUE(std::holds_alternative<WakeTxn>(message->payload));
  EXPECT_EQ(network.stats().messages_dropped, 1u);
  EXPECT_EQ(network.fault_stats().dropped_by_filter, 1u);
  network.faults([](FaultPlan& plan) { plan.set_message_filter(nullptr); });
  network.send(Message{0, 1, AbortRequest{7}});
  EXPECT_TRUE(inbox.pop(100ms).has_value());
}

TEST(FaultPlanTest, DropProbabilityOneDropsEverythingOnThatLinkOnly) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox1 = network.register_site(1);
  Mailbox& inbox2 = network.register_site(2);
  network.faults([](FaultPlan& plan) {
    plan.set_link_fault(0, 1, {.drop_probability = 1.0});
  });
  for (TxnId i = 0; i < 5; ++i) network.send(make_message(0, 1, i));
  network.send(make_message(0, 2, 9));
  EXPECT_FALSE(inbox1.pop(20ms).has_value());
  EXPECT_TRUE(inbox2.pop(100ms).has_value());  // other links unaffected
  EXPECT_EQ(network.fault_stats().dropped_by_fault, 5u);
}

TEST(FaultPlanTest, PartitionCutsBothDirectionsThenHeals) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  Mailbox& inbox0 = network.register_site(0);
  Mailbox& inbox1 = network.register_site(1);
  network.partition_for(0, 1, std::chrono::microseconds(60'000'000));
  network.send(make_message(0, 1, 1));
  network.send(make_message(1, 0, 2));
  EXPECT_FALSE(inbox1.pop(20ms).has_value());
  EXPECT_FALSE(inbox0.pop(20ms).has_value());
  EXPECT_EQ(network.fault_stats().dropped_by_partition, 2u);
  network.heal();
  network.send(make_message(0, 1, 3));
  network.send(make_message(1, 0, 4));
  auto to1 = inbox1.pop(100ms);
  auto to0 = inbox0.pop(100ms);
  ASSERT_TRUE(to1.has_value());
  ASSERT_TRUE(to0.has_value());
  EXPECT_EQ(std::get<WakeTxn>(to1->payload).txn, 3u);
  EXPECT_EQ(std::get<WakeTxn>(to0->payload).txn, 4u);
}

TEST(FaultPlanTest, TimedPartitionExpiresOnItsOwn) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.partition_for(0, 1, std::chrono::microseconds(30'000));
  network.send(make_message(0, 1, 1));  // inside the window: dropped
  std::this_thread::sleep_for(60ms);
  network.send(make_message(0, 1, 2));  // expired: delivered
  auto message = inbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 2u);
}

TEST(FaultPlanTest, FifoPreservedAcrossPartitionHeal) {
  // A message stamped with extra delay before the partition must not be
  // overtaken by one sent after the heal: delivery times stay monotone
  // per link even as the fault plan changes.
  NetworkOptions options;
  options.latency = std::chrono::microseconds(100);
  options.bandwidth_bytes_per_sec = 0;
  SimNetwork network(options);
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.faults([](FaultPlan& plan) {
    plan.set_link_fault(0, 1, {.extra_delay = std::chrono::microseconds(40'000)});
  });
  network.send(make_message(0, 1, 1));  // due in ~40ms
  network.faults([](FaultPlan& plan) { plan.clear_link_faults(); });
  network.send(make_message(0, 1, 2));  // no extra delay — must NOT overtake
  auto first = inbox.pop(200ms);
  auto second = inbox.pop(200ms);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<WakeTxn>(first->payload).txn, 1u);
  EXPECT_EQ(std::get<WakeTxn>(second->payload).txn, 2u);
}

TEST(FaultPlanTest, DuplicateDeliversTwiceBackToBack) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.faults([](FaultPlan& plan) {
    plan.set_link_fault(0, 1, {.duplicate_probability = 1.0});
  });
  network.send(Message{0, 1, CommitAck{7, true}});
  network.send(make_message(0, 1, 8));
  // Original + duplicate arrive adjacently; per-link order is preserved.
  for (int copy = 0; copy < 2; ++copy) {
    auto message = inbox.pop(100ms);
    ASSERT_TRUE(message.has_value());
    ASSERT_TRUE(std::holds_alternative<CommitAck>(message->payload));
    EXPECT_EQ(std::get<CommitAck>(message->payload).txn, 7u);
  }
  for (int copy = 0; copy < 2; ++copy) {
    auto message = inbox.pop(100ms);
    ASSERT_TRUE(message.has_value());
    EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 8u);
  }
  EXPECT_EQ(network.fault_stats().duplicated, 2u);
}

TEST(FaultPlanTest, DownSiteDropsInboundUntilUp) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);
  network.set_site_down(1, true);
  EXPECT_TRUE(network.site_down(1));
  network.send(make_message(0, 1, 1));
  EXPECT_FALSE(inbox.pop(20ms).has_value());
  EXPECT_EQ(network.fault_stats().dropped_down_site, 1u);
  // Outbound from a down site drops too (a dead process has no sockets).
  network.send(make_message(1, 0, 3));
  EXPECT_EQ(network.fault_stats().dropped_down_site, 2u);
  network.set_site_down(1, false);
  network.send(make_message(0, 1, 2));
  auto message = inbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 2u);
}

TEST(MailboxTest, ResetClearsQueueAndInterruptFlag) {
  Mailbox mailbox;
  mailbox.push(make_message(0, 1, 1), Mailbox::Clock::now());
  mailbox.interrupt();
  mailbox.reset();
  EXPECT_EQ(mailbox.pending(), 0u);
  // No longer interrupted: a fresh push is poppable again.
  mailbox.push(make_message(0, 1, 2), Mailbox::Clock::now());
  auto message = mailbox.pop(100ms);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(std::get<WakeTxn>(message->payload).txn, 2u);
}

TEST(SimNetworkTest, SitesListed) {
  SimNetwork network;
  network.register_site(2);
  network.register_site(0);
  network.register_site(1);
  EXPECT_EQ(network.sites(), (std::vector<SiteId>{0, 1, 2}));
}


TEST(SimNetworkTest, ConcurrentSendersAllDelivered) {
  SimNetwork network({std::chrono::microseconds(10), 0});
  for (SiteId site = 0; site < 4; ++site) network.register_site(site);
  Mailbox& inbox = network.register_site(9);

  constexpr int kPerSender = 200;
  std::vector<std::thread> senders;
  for (SiteId from = 0; from < 4; ++from) {
    senders.emplace_back([&network, from] {
      for (int i = 0; i < kPerSender; ++i) {
        network.send(Message{from, 9, WakeTxn{from * 1000 + static_cast<TxnId>(i)}});
      }
    });
  }
  for (auto& sender : senders) sender.join();

  // Drain: every message arrives exactly once, per-sender FIFO preserved.
  std::map<SiteId, TxnId> last_seen;
  int received = 0;
  while (received < 4 * kPerSender) {
    auto message = inbox.pop(500ms);
    ASSERT_TRUE(message.has_value()) << "lost messages after " << received;
    const TxnId id = std::get<WakeTxn>(message->payload).txn;
    const auto it = last_seen.find(message->from);
    if (it != last_seen.end()) {
      EXPECT_LT(it->second, id) << "per-link FIFO violated";
    }
    last_seen[message->from] = id;
    ++received;
  }
  EXPECT_EQ(network.stats().messages_sent, 4u * kPerSender);
}

TEST(MailboxTest, ManyProducersOneConsumer) {
  Mailbox mailbox;
  std::atomic<int> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 8; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < 100; ++i) {
        mailbox.push(Message{static_cast<SiteId>(p), 0,
                             WakeTxn{static_cast<TxnId>(i)}},
                     Mailbox::Clock::now());
        ++produced;
      }
    });
  }
  int consumed = 0;
  while (consumed < 800) {
    if (mailbox.pop(100ms).has_value()) ++consumed;
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(consumed, 800);
  EXPECT_EQ(mailbox.pending(), 0u);
}

TEST(MessageTest, PayloadNames) {
  EXPECT_STREQ(payload_name(Payload{ExecuteOperation{}}), "execute");
  EXPECT_STREQ(payload_name(Payload{OperationResult{}}), "result");
  EXPECT_STREQ(payload_name(Payload{CommitRequest{}}), "commit");
  EXPECT_STREQ(payload_name(Payload{AbortRequest{}}), "abort");
  EXPECT_STREQ(payload_name(Payload{WfgRequest{}}), "wfg-request");
  EXPECT_STREQ(payload_name(Payload{VictimAbort{}}), "victim-abort");
  EXPECT_STREQ(payload_name(Payload{WakeTxn{}}), "wake");
  EXPECT_STREQ(payload_name(Payload{TxnStatusRequest{}}),
               "txn-status-request");
  EXPECT_STREQ(payload_name(Payload{TxnStatusReply{}}), "txn-status-reply");
  EXPECT_STREQ(txn_outcome_name(TxnOutcome::kCommitted), "committed");
  EXPECT_STREQ(txn_outcome_name(TxnOutcome::kUnknown), "unknown");
}

TEST(MessageTest, WireSizeGrowsWithPayload) {
  ExecuteOperation small;
  small.op = txn::parse_operation("query d /a").value();
  ExecuteOperation large;
  large.op = txn::make_update(
      "d",
      xupdate::make_insert("/a", "<x>" + std::string(1000, 'q') + "</x>")
          .value());
  EXPECT_GT(payload_wire_size(Payload{large}),
            payload_wire_size(Payload{small}));
  // Longer paths cost more than shorter ones.
  ExecuteOperation deep;
  deep.op =
      txn::parse_operation("query d /a/b/c[@id='42']/d//e/text()").value();
  EXPECT_GT(payload_wire_size(Payload{deep}),
            payload_wire_size(Payload{small}));
}

// The wire payload is the typed operation itself: what the coordinator
// sends is exactly what the participant receives — no textual round trip,
// and no node ids anywhere in the payload (label paths + literals only).
TEST(MessageTest, TypedExecuteOperationRoundTripsThroughNetwork) {
  SimNetwork network({std::chrono::microseconds(1), 0});
  network.register_site(0);
  Mailbox& inbox = network.register_site(1);

  const char* kText =
      "update d1 insert into /site/people ::= <person id=\"p9\"/>";
  ExecuteOperation request;
  request.txn = 42;
  request.op_index = 3;
  request.attempt = 2;
  request.coordinator = 0;
  request.op = txn::parse_operation(kText).value();
  network.send(Message{0, 1, request});

  auto message = inbox.pop(std::chrono::milliseconds(100));
  ASSERT_TRUE(message.has_value());
  ASSERT_TRUE(std::holds_alternative<ExecuteOperation>(message->payload));
  const auto& received = std::get<ExecuteOperation>(message->payload);
  EXPECT_EQ(received.txn, 42u);
  EXPECT_EQ(received.op_index, 3u);
  EXPECT_EQ(received.attempt, 2u);
  EXPECT_EQ(received.op.doc, "d1");
  EXPECT_TRUE(received.op.is_update());
  EXPECT_EQ(received.op.update.kind, xupdate::UpdateKind::kInsert);
  EXPECT_EQ(received.op.to_string(), kText);
}

// --- binary codec ------------------------------------------------------------

// One exemplar per payload variant, with edge-case fields exercised:
// empty strings and vectors, huge ids, doubles, multi-row results.
std::vector<Message> codec_corpus() {
  std::vector<Message> corpus;
  auto add = [&corpus](Payload payload) {
    corpus.push_back(Message{7, 12, std::move(payload)});
  };

  ExecuteOperation exec;
  exec.txn = 0xffff'ffff'ffff'fffeull;
  exec.op_index = 3;
  exec.attempt = 9;
  exec.coordinator = 2;
  exec.epoch = 0xdead'beefull;
  exec.op = txn::parse_operation(
                "update d1 insert into /site/people ::= <person id=\"p9\"/>")
                .value();
  add(exec);

  OperationResult result;
  result.txn = 42;
  result.op_index = 1;
  result.executed = true;
  result.rows = {"", "two", std::string(300, 'x')};
  result.reason = txn::AbortReason::kUnprocessableUpdate;
  result.error = "boom";
  add(result);
  add(OperationResult{});  // all defaults / empty vectors

  add(UndoOperation{42, 7});
  add(CommitRequest{9000});
  add(CommitAck{9000, true});
  add(AbortRequest{1});
  add(AbortAck{1, false});
  add(FailNotice{77});

  add(WfgRequest{123456789, 3});
  WfgReply wfg_reply;
  wfg_reply.probe = 5;
  wfg_reply.edges = {{1, 2}, {2, 3}, {0xffffffffull, 1}};
  add(wfg_reply);
  add(WfgReply{});

  add(VictimAbort{13});
  add(WakeTxn{14});
  add(TxnStatusRequest{15, 2});
  add(TxnStatusReply{15, TxnOutcome::kCommitted});

  SnapshotReadRequest snap_req;
  snap_req.txn = 16;
  snap_req.coordinator = 1;
  snap_req.epoch = 7;
  snap_req.op_indices = {0, 2};
  snap_req.ops = {txn::parse_operation("query d1 /a/b").value(),
                  txn::parse_operation("query d2 //c[@k='v']").value()};
  add(snap_req);
  SnapshotReadReply snap_reply;
  snap_reply.txn = 16;
  snap_reply.ok = true;
  snap_reply.op_indices = {0, 2};
  snap_reply.rows = {{"r1", "r2"}, {}};
  add(snap_reply);

  add(Hello{kClientIdBase + 5, codec::kProtocolVersion});

  ClientSubmit submit;
  submit.seq = 99;
  submit.ops = {txn::parse_operation("query d1 /a").value(),
                txn::parse_operation("update d1 remove /a/b").value()};
  add(submit);

  ClientReply reply;
  reply.seq = 99;
  reply.accepted = true;
  reply.txn = 4242;
  reply.state = 2;
  reply.reason = 1;
  reply.deadlock_victim = true;
  reply.wait_episodes = 3;
  reply.response_ms = 12.75;
  reply.detail = "deadlock victim";
  reply.rows = {{"a"}, {"b", ""}};
  add(reply);

  add(RecoveryPullRequest{"d1", 2});
  RecoveryPullReply pull;
  pull.doc = "d1";
  pull.ok = true;
  pull.version = 31;
  pull.snapshot = std::string("<site>\x01\x02\xff binary-ish</site>", 28);
  pull.log = "v=1 t=5 n=1\nupdate d1 delete /a\n";
  add(pull);

  // Placement & membership (PR 8).
  add(CatalogUpdate{9, "epoch 9\nmembers 0 1\nplace d1 0 1\n", 0});
  add(CatalogUpdate{});  // empty catalog text
  add(CatalogAck{9, 1});
  add(JoinRequest{3, "127.0.0.1:7103"});
  add(JoinRequest{3, ""});  // decommission order / catalog fetch
  add(JoinReply{true, 10, "epoch 10\nmembers 0 1 3\n", ""});
  add(JoinReply{false, 0, "", "another membership change is in flight"});
  MigrateDoc migrate;
  migrate.doc = "d1";
  migrate.epoch = 10;
  migrate.version = 77;
  migrate.snapshot = std::string("<a>\x00\x7f</a>", 10);
  migrate.log = "v=77 t=9 n=1\nupdate d1 remove /a/b\n";
  add(migrate);
  add(MigrateAck{"d1", 3, true, 77});
  add(DropDoc{"d1", 10});

  return corpus;
}

TEST(CodecTest, TagNamesCoverEveryPayload) {
  // The sibling of the corpus-coverage check: a HUMAN-maintained name per
  // wire tag, asserted against the codec's tag count. Adding a payload
  // without deciding its (stable) tag name fails here; renaming or
  // reordering an existing one fails below.
  static const char* const kTagNames[] = {
      "execute",        "result",          "undo-op",
      "commit",         "commit-ack",      "abort",
      "abort-ack",      "fail",            "wfg-request",
      "wfg-reply",      "victim-abort",    "wake",
      "txn-status-request", "txn-status-reply", "snapshot-read",
      "snapshot-reply", "hello",           "client-submit",
      "client-reply",   "recovery-pull",   "recovery-pull-reply",
      "catalog-update", "catalog-ack",     "join-request",
      "join-reply",     "migrate-doc",     "migrate-ack",
      "drop-doc",
  };
  ASSERT_EQ(std::size(kTagNames), codec::kPayloadTagCount);
  // Order: each corpus exemplar's variant index must name-match the list
  // (payload_name is the runtime source of truth).
  for (const Message& message : codec_corpus()) {
    EXPECT_STREQ(payload_name(message.payload),
                 kTagNames[message.payload.index()])
        << "variant index " << message.payload.index();
  }
}

TEST(CodecTest, EveryPayloadVariantRoundTripsByteExactly) {
  // The corpus must cover the whole variant (futureproofing: extending
  // Payload without extending the corpus fails here).
  std::set<std::size_t> covered;
  for (const Message& message : codec_corpus()) {
    covered.insert(message.payload.index());
  }
  EXPECT_EQ(covered.size(), std::variant_size_v<Payload>);

  for (const Message& message : codec_corpus()) {
    const std::string frame = codec::encode(message);
    auto decoded = codec::decode(frame);
    ASSERT_TRUE(decoded.is_ok()) << payload_name(message.payload) << ": "
                              << decoded.status().to_string();
    EXPECT_EQ(decoded.value().from, message.from);
    EXPECT_EQ(decoded.value().to, message.to);
    EXPECT_EQ(decoded.value().payload.index(), message.payload.index());
    // Byte-exact: re-encoding the decoded message reproduces the frame.
    EXPECT_EQ(codec::encode(decoded.value()), frame)
        << payload_name(message.payload);
  }
}

TEST(CodecTest, DecodedFieldsMatch) {
  ClientReply reply;
  reply.seq = 7;
  reply.accepted = true;
  reply.txn = 99;
  reply.state = 3;
  reply.reason = 2;
  reply.wait_episodes = 11;
  reply.response_ms = 0.125;
  reply.detail = "d";
  reply.rows = {{"x", "y"}};
  auto decoded = codec::decode(codec::encode(Message{1, 2, reply}));
  ASSERT_TRUE(decoded.is_ok());
  const auto& got = std::get<ClientReply>(decoded.value().payload);
  EXPECT_EQ(got.seq, 7u);
  EXPECT_TRUE(got.accepted);
  EXPECT_EQ(got.txn, 99u);
  EXPECT_EQ(got.state, 3);
  EXPECT_EQ(got.reason, 2);
  EXPECT_EQ(got.wait_episodes, 11u);
  EXPECT_EQ(got.response_ms, 0.125);
  EXPECT_EQ(got.detail, "d");
  ASSERT_EQ(got.rows.size(), 1u);
  EXPECT_EQ(got.rows[0], (std::vector<std::string>{"x", "y"}));
}

TEST(CodecTest, OperationsSurviveTheTextRoundTrip) {
  const char* kText = "update d2 change /site/a[@id='1']/name ::= Anna";
  ClientSubmit submit;
  submit.seq = 1;
  submit.ops = {txn::parse_operation(kText).value()};
  auto decoded = codec::decode(codec::encode(Message{1, 0, submit}));
  ASSERT_TRUE(decoded.is_ok());
  const auto& got = std::get<ClientSubmit>(decoded.value().payload);
  ASSERT_EQ(got.ops.size(), 1u);
  EXPECT_EQ(got.ops[0].to_string(), kText);
  EXPECT_TRUE(got.ops[0].is_update());
}

TEST(CodecTest, TruncationAtEveryLengthRejects) {
  OperationResult result;
  result.txn = 5;
  result.rows = {"row1", "row2"};
  result.error = "some error";
  const std::string frame = codec::encode(Message{1, 2, result});
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    auto decoded = codec::decode(std::string_view(frame.data(), cut));
    EXPECT_FALSE(decoded.is_ok()) << "prefix of length " << cut << " decoded";
  }
}

TEST(CodecTest, EveryFlippedByteRejects) {
  // FNV-64 over the body + validated header: no single-byte corruption
  // anywhere in the frame may pass.
  const std::string frame =
      codec::encode(Message{1, 2, CommitAck{77, true}});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::string corrupt = frame;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    auto decoded = codec::decode(corrupt);
    EXPECT_FALSE(decoded.is_ok()) << "flip at byte " << i << " decoded";
  }
}

TEST(CodecTest, TrailingBytesReject) {
  std::string frame = codec::encode(Message{1, 2, WakeTxn{3}});
  frame += '\0';
  EXPECT_FALSE(codec::decode(frame).is_ok());
}

TEST(CodecTest, UnknownTagRejects) {
  // Body: from | to | tag | payload. Tag 0 and tags past the variant are
  // both invalid. Rebuild the checksum so only the tag is at fault.
  std::string frame = codec::encode(Message{1, 2, WakeTxn{3}});
  auto with_tag = [&frame](std::uint8_t tag) {
    std::string forged = frame;
    forged[16 + 8] = static_cast<char>(tag);  // header + from + to
    // Recompute FNV-1a 64 of the body.
    std::uint64_t hash = 1469598103934665603ull;
    for (std::size_t i = 16; i < forged.size(); ++i) {
      hash ^= static_cast<unsigned char>(forged[i]);
      hash *= 1099511628211ull;
    }
    for (int i = 0; i < 8; ++i) {
      forged[8 + i] = static_cast<char>((hash >> (8 * i)) & 0xff);
    }
    return forged;
  };
  EXPECT_FALSE(codec::decode(with_tag(0)).is_ok());
  EXPECT_FALSE(codec::decode(with_tag(29)).is_ok());
  EXPECT_FALSE(codec::decode(with_tag(255)).is_ok());
  // Sanity: the forgery helper preserves valid frames.
  EXPECT_TRUE(codec::decode(with_tag(12)).is_ok());  // WakeTxn's own tag
}

TEST(CodecTest, BadMagicRejects) {
  std::string frame = codec::encode(Message{1, 2, WakeTxn{3}});
  frame[0] = 'X';
  EXPECT_FALSE(codec::decode(frame).is_ok());
}

TEST(CodecTest, OversizedLengthRejects) {
  std::string frame = codec::encode(Message{1, 2, WakeTxn{3}});
  // length field = bytes 4..8; claim something absurd.
  frame[4] = '\xff';
  frame[5] = '\xff';
  frame[6] = '\xff';
  frame[7] = '\x7f';
  EXPECT_FALSE(codec::decode(frame).is_ok());
}

TEST(CodecTest, WireSizeMatchesEncodedFrame) {
  for (const Message& message : codec_corpus()) {
    EXPECT_EQ(payload_wire_size(message.payload),
              codec::encode(message).size())
        << payload_name(message.payload);
  }
}

TEST(FrameReaderTest, ReassemblesFramesFedByteByByte) {
  std::string stream;
  for (const Message& message : codec_corpus()) {
    codec::encode(message, stream);
  }
  codec::FrameReader reader;
  std::vector<Message> got;
  for (char byte : stream) {
    reader.feed(std::string_view(&byte, 1));
    while (true) {
      auto next = reader.next();
      ASSERT_TRUE(next.is_ok());
      if (!next.value().has_value()) break;
      got.push_back(std::move(*next.value()));
    }
  }
  const std::vector<Message> expected = codec_corpus();
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(codec::encode(got[i]), codec::encode(expected[i])) << i;
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, CorruptFramePoisonsTheReader) {
  std::string stream = codec::encode(Message{1, 2, WakeTxn{3}});
  std::string corrupt = codec::encode(Message{1, 2, WakeTxn{4}});
  corrupt[corrupt.size() - 1] ^= 0x01;  // body corruption
  std::string good = codec::encode(Message{1, 2, WakeTxn{5}});
  codec::FrameReader reader;
  reader.feed(stream + corrupt + good);

  auto first = reader.next();
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(first.value().has_value());

  EXPECT_FALSE(reader.next().is_ok());
  EXPECT_TRUE(reader.poisoned());
  // Poison is sticky — the good frame after the corrupt one is
  // unreachable (framing is lost; the connection must drop).
  EXPECT_FALSE(reader.next().is_ok());
}

TEST(FrameReaderTest, GarbagePrefixPoisonsImmediately) {
  codec::FrameReader reader;
  reader.feed("this is not a DTX frame at all............");
  EXPECT_FALSE(reader.next().is_ok());
  EXPECT_TRUE(reader.poisoned());
}

}  // namespace
}  // namespace dtx::net
