// Tests for the query plan layer (src/query): compile() semantics — the
// canonical text key and the insert pre-match hook — and the sharded LRU
// PlanCache (hit/miss/eviction accounting, capacity-0 passthrough, LRU
// order, typed/textual key sharing, multi-threaded resolution).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "query/plan.hpp"
#include "query/plan_cache.hpp"

namespace dtx::query {
namespace {

// --- compile -----------------------------------------------------------------

TEST(PlanCompileTest, QueryPlanCarriesParsedPath) {
  auto plan = compile_text("query d1 /site/people/person[@id='p1']/name");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  EXPECT_FALSE(plan.value().is_update());
  EXPECT_EQ(plan.value().doc(), "d1");
  EXPECT_EQ(plan.value().query().steps.size(), 4u);
  EXPECT_EQ(plan.value().prematch(), nullptr);
  // The canonical text round-trips through the parsed AST.
  EXPECT_EQ(plan.value().text(),
            "query d1 /site/people/person[@id='p1']/name");
  EXPECT_EQ(plan.value().text(), plan.value().op().to_string());
}

TEST(PlanCompileTest, InsertPlanPrecomputesFragmentPrematch) {
  auto plan = compile_text(
      "update d1 insert into /site/people ::= <person id=\"p9\"/>");
  ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
  ASSERT_TRUE(plan.value().is_update());
  ASSERT_NE(plan.value().prematch(), nullptr);
  EXPECT_EQ(plan.value().prematch()->root_label, "person");
  EXPECT_TRUE(plan.value().prematch()->has_id);
  EXPECT_EQ(plan.value().prematch()->id_value, "p9");
}

TEST(PlanCompileTest, NonInsertUpdatesHaveNoPrematch) {
  auto plan = compile_text(
      "update d1 change /site/people/person[@id='p1']/name ::= Anna");
  ASSERT_TRUE(plan.is_ok());
  EXPECT_TRUE(plan.value().is_update());
  EXPECT_EQ(plan.value().prematch(), nullptr);
}

TEST(PlanCompileTest, MalformedFragmentFailsAtCompileTime) {
  // The fragment probe runs at compile time, so a broken insert payload is
  // rejected once — not at every lock-set computation.
  auto plan =
      compile_text("update d1 insert into /site/people ::= <broken");
  EXPECT_FALSE(plan.is_ok());
}

TEST(PlanCompileTest, ParseErrorsPropagate) {
  EXPECT_FALSE(compile_text("nonsense").is_ok());
  EXPECT_FALSE(compile_text("query d1 not-absolute").is_ok());
}

// --- PlanCache ---------------------------------------------------------------

TEST(PlanCacheTest, CountsHitsAndMisses) {
  PlanCache cache(/*capacity=*/8, /*shards=*/1);
  const char* kText = "query d1 /site/people/person/name";
  ASSERT_TRUE(cache.resolve_text(kText).is_ok());
  ASSERT_TRUE(cache.resolve_text(kText).is_ok());
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(PlanCacheTest, HitReturnsTheSamePlanObject) {
  PlanCache cache(8, 1);
  auto first = cache.resolve_text("query d1 /a/b");
  auto second = cache.resolve_text("query d1 /a/b");
  ASSERT_TRUE(first.is_ok() && second.is_ok());
  EXPECT_EQ(first.value().get(), second.value().get());
}

TEST(PlanCacheTest, TypedResolveSharesEntriesWithCanonicalText) {
  PlanCache cache(8, 1);
  auto op = txn::parse_operation("query d1 /site/people");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(cache.resolve_text("query d1 /site/people").is_ok());
  // The typed resolve keys by the canonical text -> same entry, a hit.
  ASSERT_TRUE(cache.resolve(op.value()).is_ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(PlanCacheTest, CapacityZeroCompilesEveryTime) {
  PlanCache cache(0, 4);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cache.resolve_text("query d1 /a").is_ok());
  }
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(/*capacity=*/2, /*shards=*/1);
  ASSERT_TRUE(cache.resolve_text("query d1 /a").is_ok());  // A
  ASSERT_TRUE(cache.resolve_text("query d1 /b").is_ok());  // B
  ASSERT_TRUE(cache.resolve_text("query d1 /a").is_ok());  // touch A
  ASSERT_TRUE(cache.resolve_text("query d1 /c").is_ok());  // evicts B (LRU)
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  const std::uint64_t misses_before = cache.stats().misses;
  ASSERT_TRUE(cache.resolve_text("query d1 /a").is_ok());  // still cached
  EXPECT_EQ(cache.stats().misses, misses_before);
  ASSERT_TRUE(cache.resolve_text("query d1 /b").is_ok());  // was evicted
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
}

TEST(PlanCacheTest, CompileErrorsAreNotCached) {
  PlanCache cache(8, 1);
  EXPECT_FALSE(cache.resolve_text("garbage").is_ok());
  EXPECT_FALSE(cache.resolve_text("garbage").is_ok());
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(PlanCacheTest, ClearDropsEntriesButKeepsCounters) {
  PlanCache cache(8, 2);
  ASSERT_TRUE(cache.resolve_text("query d1 /a").is_ok());
  ASSERT_TRUE(cache.resolve_text("query d1 /b").is_ok());
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCacheTest, ShardCountClampedToCapacity) {
  PlanCache cache(/*capacity=*/2, /*shards=*/16);
  EXPECT_LE(cache.shard_count(), 2u);
  PlanCache off(/*capacity=*/0, /*shards=*/16);
  EXPECT_GE(off.shard_count(), 1u);
}

// Many threads resolving a shared key pool through a small sharded cache:
// every resolve must return a valid plan, and the counters must account
// for every lookup exactly once. Run under TSAN in CI.
TEST(PlanCacheTest, ConcurrentResolutionIsConsistent) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kResolvesPerThread = 500;
  constexpr std::size_t kKeys = 64;

  std::vector<std::string> texts;
  std::vector<txn::Operation> ops;
  texts.reserve(kKeys);
  ops.reserve(kKeys);
  for (std::size_t i = 0; i < kKeys; ++i) {
    std::string text = "query d" + std::to_string(i % 4) +
                       " /site/people/person[@id='p" + std::to_string(i) +
                       "']/name";
    auto op = txn::parse_operation(text);
    ASSERT_TRUE(op.is_ok());
    ops.push_back(std::move(op).value());
    texts.push_back(std::move(text));
  }

  PlanCache cache(/*capacity=*/32, /*shards=*/4);
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kResolvesPerThread; ++i) {
        const std::size_t key = (t * 31 + i * 7) % kKeys;
        // Alternate typed and textual resolution of the same keys.
        auto plan = (i % 2 == 0) ? cache.resolve(ops[key])
                                 : cache.resolve_text(texts[key]);
        if (!plan.is_ok() || plan.value() == nullptr ||
            plan.value()->doc() != ops[key].doc) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0u);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kResolvesPerThread);
  EXPECT_LE(stats.entries, 32u + 4u);  // capacity, modulo per-shard rounding
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace dtx::query
