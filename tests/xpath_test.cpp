#include <gtest/gtest.h>

#include "xml/builder.hpp"
#include "xml/parser.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::xpath {
namespace {

using xml::Document;
using xml::Node;

std::unique_ptr<Document> auction_sample() {
  auto result = xml::parse(R"(
    <site>
      <people>
        <person id="p1"><name>Ana</name><age>30</age></person>
        <person id="p2"><name>Bruno</name><age>41</age>
          <watches><watch open_auction="a1"/></watches>
        </person>
        <person id="p3"><name>Carla</name></person>
      </people>
      <regions>
        <europe>
          <item id="i1"><name>Clock</name><price>10.30</price></item>
          <item id="i2"><name>Vase</name><price>99</price></item>
        </europe>
        <asia>
          <item id="i3"><name>Clock</name><price>7</price></item>
        </asia>
      </regions>
    </site>)",
                           "auction");
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return std::move(result).value();
}

// --- parsing ----------------------------------------------------------------

TEST(XPathParseTest, SimpleAbsolutePath) {
  auto path = parse("/site/people/person");
  ASSERT_TRUE(path.is_ok()) << path.status().to_string();
  ASSERT_EQ(path.value().steps.size(), 3u);
  EXPECT_EQ(path.value().steps[0].name, "site");
  EXPECT_EQ(path.value().steps[2].axis, Axis::kChild);
}

TEST(XPathParseTest, DescendantAxis) {
  auto path = parse("//person/name");
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(path.value().steps[0].axis, Axis::kDescendant);
  EXPECT_EQ(path.value().steps[1].axis, Axis::kChild);
}

TEST(XPathParseTest, PredicatesParsed) {
  auto path = parse("/site/people/person[@id='p2']/name");
  ASSERT_TRUE(path.is_ok()) << path.status().to_string();
  const Step& person = path.value().steps[2];
  ASSERT_EQ(person.predicates.size(), 1u);
  EXPECT_EQ(person.predicates[0].kind, PredicateKind::kEquals);
  EXPECT_EQ(person.predicates[0].literal, "p2");
  EXPECT_EQ(person.predicates[0].path.steps[0].test, NodeTest::kAttribute);
}

TEST(XPathParseTest, ChildValuePredicate) {
  auto path = parse("/site//item[name='Clock']");
  ASSERT_TRUE(path.is_ok());
  const Step& item = path.value().steps[1];
  ASSERT_EQ(item.predicates.size(), 1u);
  EXPECT_EQ(item.predicates[0].path.steps[0].name, "name");
}

TEST(XPathParseTest, PositionPredicate) {
  auto path = parse("/site/people/person[2]");
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(path.value().steps[2].predicates[0].kind,
            PredicateKind::kPosition);
  EXPECT_EQ(path.value().steps[2].predicates[0].position, 2u);
}

TEST(XPathParseTest, WildcardAndText) {
  auto path = parse("/site/*/person/text()");
  ASSERT_TRUE(path.is_ok());
  EXPECT_EQ(path.value().steps[1].test, NodeTest::kWildcard);
  EXPECT_EQ(path.value().steps[3].test, NodeTest::kText);
}

TEST(XPathParseTest, AttributeFinalStep) {
  auto path = parse("/site/people/person/@id");
  ASSERT_TRUE(path.is_ok());
  EXPECT_TRUE(path.value().targets_attribute());
}

TEST(XPathParseTest, AttributeMidPathRejected) {
  EXPECT_FALSE(parse("/site/@id/person").is_ok());
}

TEST(XPathParseTest, RelativePathParsed) {
  auto rel = parse_relative("watches/watch/@open_auction");
  ASSERT_TRUE(rel.is_ok()) << rel.status().to_string();
  EXPECT_EQ(rel.value().steps.size(), 3u);
}

TEST(XPathParseTest, ErrorCases) {
  EXPECT_FALSE(parse("").is_ok());
  EXPECT_FALSE(parse("site/people").is_ok());       // not absolute
  EXPECT_FALSE(parse("/site[").is_ok());            // unterminated predicate
  EXPECT_FALSE(parse("/site/people/person[0]").is_ok());  // 0 position
  EXPECT_FALSE(parse("/site/$bad").is_ok());        // bad character
  EXPECT_FALSE(parse("/site/people ]").is_ok());    // trailing tokens
  EXPECT_FALSE(parse("/a[b='unterminated]").is_ok());
}

TEST(XPathParseTest, ToStringRoundTrips) {
  for (const char* expr :
       {"/site/people/person", "//person/name",
        "/site/people/person[@id='p2']/name", "/site//item[name='Clock']",
        "/site/people/person[2]", "/site/people/person/@id",
        "/a/*/text()"}) {
    auto first = parse(expr);
    ASSERT_TRUE(first.is_ok()) << expr;
    auto second = parse(first.value().to_string());
    ASSERT_TRUE(second.is_ok()) << first.value().to_string();
    EXPECT_EQ(first.value().to_string(), second.value().to_string());
  }
}

// --- evaluation ---------------------------------------------------------------

std::vector<Node*> eval(const std::string& expr, const Document& doc) {
  auto path = parse(expr);
  EXPECT_TRUE(path.is_ok()) << path.status().to_string();
  return evaluate(path.value(), doc);
}

TEST(XPathEvalTest, RootSelection) {
  auto doc = auction_sample();
  auto nodes = eval("/site", *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], doc->root());
}

TEST(XPathEvalTest, RootNameMismatchSelectsNothing) {
  auto doc = auction_sample();
  EXPECT_TRUE(eval("/wrong", *doc).empty());
}

TEST(XPathEvalTest, ChildChain) {
  auto doc = auction_sample();
  EXPECT_EQ(eval("/site/people/person", *doc).size(), 3u);
}

TEST(XPathEvalTest, DescendantAxisFindsAllDepths) {
  auto doc = auction_sample();
  EXPECT_EQ(eval("//item", *doc).size(), 3u);
  EXPECT_EQ(eval("//name", *doc).size(), 6u);  // 3 person + 3 item names
  EXPECT_EQ(eval("/site//item", *doc).size(), 3u);
}

TEST(XPathEvalTest, WildcardStep) {
  auto doc = auction_sample();
  EXPECT_EQ(eval("/site/regions/*", *doc).size(), 2u);       // europe, asia
  EXPECT_EQ(eval("/site/regions/*/item", *doc).size(), 3u);
}

TEST(XPathEvalTest, AttributeEqualityPredicate) {
  auto doc = auction_sample();
  auto nodes = eval("/site/people/person[@id='p2']", *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0]->first_child_named("name")->text(), "Bruno");
}

TEST(XPathEvalTest, ChildValuePredicate) {
  auto doc = auction_sample();
  auto nodes = eval("//item[name='Clock']", *doc);
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(XPathEvalTest, NumericLiteralComparison) {
  auto doc = auction_sample();
  // "10.30" == 10.3 numerically.
  EXPECT_EQ(eval("//item[price='10.3']", *doc).size(), 1u);
  EXPECT_EQ(eval("//item[price='99']", *doc).size(), 1u);
}

TEST(XPathEvalTest, ExistencePredicate) {
  auto doc = auction_sample();
  EXPECT_EQ(eval("/site/people/person[watches]", *doc).size(), 1u);
  EXPECT_EQ(eval("/site/people/person[age]", *doc).size(), 2u);
}

TEST(XPathEvalTest, NestedRelativePredicate) {
  auto doc = auction_sample();
  auto nodes =
      eval("/site/people/person[watches/watch/@open_auction='a1']", *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(*nodes[0]->attribute("id"), "p2");
}

TEST(XPathEvalTest, PositionPredicate) {
  auto doc = auction_sample();
  auto nodes = eval("/site/people/person[2]", *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(*nodes[0]->attribute("id"), "p2");
  EXPECT_TRUE(eval("/site/people/person[9]", *doc).empty());
}

TEST(XPathEvalTest, TextStep) {
  auto doc = auction_sample();
  auto nodes = eval("/site/people/person[@id='p1']/name/text()", *doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0]->value(), "Ana");
}

TEST(XPathEvalTest, AttributeFinalStepReturnsOwners) {
  auto doc = auction_sample();
  auto path = parse("/site/people/person/@id");
  ASSERT_TRUE(path.is_ok());
  auto values = evaluate_strings(path.value(), *doc);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0], "p1");
  EXPECT_EQ(values[2], "p3");
}

TEST(XPathEvalTest, EvaluateStringsForElements) {
  auto doc = auction_sample();
  auto path = parse("/site/people/person[@id='p1']/name");
  ASSERT_TRUE(path.is_ok());
  auto values = evaluate_strings(path.value(), *doc);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], "Ana");
}

TEST(XPathEvalTest, NoDuplicatesFromNestedDescendants) {
  auto result = xml::parse("<a><b><b><c/></b><c/></b></a>", "t");
  ASSERT_TRUE(result.is_ok());
  // //b//c: outer b reaches both c's, inner b reaches one — dedupe to 2.
  EXPECT_EQ(eval("//b//c", *result.value()).size(), 2u);
}

TEST(XPathEvalTest, EmptyDocumentYieldsNothing) {
  Document doc("empty");
  EXPECT_TRUE(eval("/a", doc).empty());
}

TEST(XPathEvalTest, RelativeEvaluation) {
  auto doc = auction_sample();
  auto person = eval("/site/people/person[@id='p2']", *doc);
  ASSERT_EQ(person.size(), 1u);
  auto rel = parse_relative("watches/watch");
  ASSERT_TRUE(rel.is_ok());
  EXPECT_EQ(evaluate_relative(rel.value(), *person[0]).size(), 1u);
}

TEST(XPathEvalTest, LiteralEqualsRules) {
  EXPECT_TRUE(literal_equals("10.30", "10.3"));
  EXPECT_TRUE(literal_equals("abc", "abc"));
  EXPECT_FALSE(literal_equals("abc", "abd"));
  EXPECT_FALSE(literal_equals("10", "10x"));  // not both numeric, unequal text
  EXPECT_TRUE(literal_equals("007", "7"));
}

}  // namespace
}  // namespace dtx::xpath
