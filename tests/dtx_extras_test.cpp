// Tests for the DTX support components: Catalog, DataManager, the
// DeadlockDetector probe lifecycle, the Connection retry policy, the
// file-backed durability path (cluster restart on FileStore) and the
// staged-engine worker pools (coordinator_workers / participant_workers /
// lock_shards).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "dtx/catalog.hpp"
#include "dtx/cluster.hpp"
#include "dtx/connection.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/deadlock_detector.hpp"
#include "storage/memory_store.hpp"
#include "xpath/parser.hpp"

namespace dtx::core {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using txn::TxnState;

// --- Catalog -----------------------------------------------------------------

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.add_document("d1", {2, 0, 2, 1}).is_ok());
  EXPECT_TRUE(catalog.has_document("d1"));
  EXPECT_FALSE(catalog.has_document("d2"));
  // Sorted and deduplicated.
  EXPECT_EQ(catalog.sites_of("d1"), (std::vector<SiteId>{0, 1, 2}));
  EXPECT_TRUE(catalog.sites_of("d2").empty());
}

TEST(CatalogTest, RejectsEmptyPlacementAndDuplicates) {
  Catalog catalog;
  EXPECT_FALSE(catalog.add_document("d1", {}).is_ok());
  ASSERT_TRUE(catalog.add_document("d1", {0}).is_ok());
  EXPECT_EQ(catalog.add_document("d1", {1}).code(),
            util::Code::kAlreadyExists);
}

TEST(CatalogTest, DocumentsAtSite) {
  Catalog catalog;
  ASSERT_TRUE(catalog.add_document("a", {0, 1}).is_ok());
  ASSERT_TRUE(catalog.add_document("b", {1}).is_ok());
  ASSERT_TRUE(catalog.add_document("c", {0}).is_ok());
  EXPECT_EQ(catalog.documents_at(0), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(catalog.documents_at(1), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(catalog.documents_at(9).empty());
  EXPECT_EQ(catalog.documents(), (std::vector<std::string>{"a", "b", "c"}));
}

// --- DataManager --------------------------------------------------------------

class DataManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.store("d1",
                             "<site><people>"
                             "<person id=\"p1\"><name>Ana</name></person>"
                             "</people></site>")
                    .is_ok());
    ASSERT_TRUE(store_.store("d2", "<catalog><entry id=\"e1\"/></catalog>")
                    .is_ok());
    data_ = std::make_unique<DataManager>(store_);
    ASSERT_TRUE(data_->load_all().is_ok());
  }

  storage::MemoryStore store_;
  std::unique_ptr<DataManager> data_;
};

TEST_F(DataManagerTest, LoadsEveryStoredDocument) {
  EXPECT_TRUE(data_->has_document("d1"));
  EXPECT_TRUE(data_->has_document("d2"));
  EXPECT_FALSE(data_->has_document("d3"));
  EXPECT_EQ(data_->documents(), (std::vector<std::string>{"d1", "d2"}));
  EXPECT_GT(data_->total_nodes(), 0u);
  EXPECT_GT(data_->total_guide_nodes(), 0u);
}

TEST_F(DataManagerTest, LoadAllFailsOnMalformedDocument) {
  storage::MemoryStore bad_store;
  ASSERT_TRUE(bad_store.store("broken", "<a><b></a>").is_ok());
  DataManager data(bad_store);
  EXPECT_FALSE(data.load_all().is_ok());
}

TEST_F(DataManagerTest, ContextProvidesDistinctScopes) {
  auto c1 = data_->context_of("d1");
  auto c2 = data_->context_of("d2");
  ASSERT_TRUE(c1.is_ok() && c2.is_ok());
  EXPECT_NE(c1.value().scope, c2.value().scope);
  EXPECT_FALSE(data_->context_of("nope").is_ok());
}

TEST_F(DataManagerTest, UpdateUndoPersistCycle) {
  auto op = xupdate::make_insert("/site/people", "<person id=\"p2\"/>");
  ASSERT_TRUE(op.is_ok());
  auto applied = data_->run_update(7, "d1", op.value());
  ASSERT_TRUE(applied.is_ok());
  EXPECT_EQ(applied.value(), 1u);

  // Undo everything the txn did: insert disappears.
  data_->undo_all(7);
  auto path = xpath::parse("/site/people/person");
  ASSERT_TRUE(path.is_ok());
  auto rows = data_->run_query("d1", path.value());
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows.value().size(), 1u);

  // Apply again and persist: storage reflects the change.
  ASSERT_TRUE(data_->run_update(8, "d1", op.value()).is_ok());
  ASSERT_TRUE(data_->persist(8).is_ok());
  auto stored = store_.load("d1");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_NE(stored.value().find("p2"), std::string::npos);
}

TEST_F(DataManagerTest, PersistOnlyWritesTouchedDocuments) {
  const auto count_before = store_.store_count();
  auto op = xupdate::make_insert("/catalog", "<entry id=\"e2\"/>");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(data_->run_update(9, "d2", op.value()).is_ok());
  ASSERT_TRUE(data_->persist(9).is_ok());
  EXPECT_EQ(store_.store_count(), count_before + 1);  // d2 only
}

TEST_F(DataManagerTest, GuideStaysConsistentThroughUpdates) {
  auto op = xupdate::make_insert("/site/people",
                                 "<person id=\"p3\"><age>9</age></person>");
  ASSERT_TRUE(op.is_ok());
  ASSERT_TRUE(data_->run_update(3, "d1", op.value()).is_ok());
  auto context = data_->context_of("d1");
  ASSERT_TRUE(context.is_ok());
  // New label path appeared in the incrementally maintained guide.
  EXPECT_NE(context.value().guide.find_path("/site/people/person/age"),
            nullptr);
  EXPECT_EQ(
      context.value().guide.find_path("/site/people/person")->extent(), 2u);
  data_->undo_all(3);
  EXPECT_EQ(
      context.value().guide.find_path("/site/people/person")->extent(), 1u);
}

// --- DeadlockDetector ------------------------------------------------------------

TEST(DeadlockDetectorTest, ProbeLifecycle) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  EXPECT_TRUE(detector.should_start(t0 + 11ms));

  // Local edges t2 -> t1; site 1 will contribute t1 -> t2.
  const auto probe =
      detector.begin_probe({wfg::Edge{2, 1}}, {1, 2}, t0 + 11ms);
  EXPECT_TRUE(detector.probe_active());
  EXPECT_FALSE(detector.should_start(t0 + 12ms));  // one probe at a time

  // First reply: still collecting.
  EXPECT_FALSE(detector.add_reply(probe, 1, {wfg::Edge{1, 2}}).has_value());
  // Second reply completes the probe; union has the cycle; victim = newest.
  const auto victim = detector.add_reply(probe, 2, {});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_FALSE(detector.probe_active());
  EXPECT_EQ(detector.cycles_found(), 1u);
}

TEST(DeadlockDetectorTest, CleanProbeReturnsZero) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  const auto probe = detector.begin_probe({wfg::Edge{1, 2}}, {1}, t0);
  const auto victim = detector.add_reply(probe, 1, {wfg::Edge{2, 3}});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);  // acyclic union
  EXPECT_EQ(detector.cycles_found(), 0u);
}

TEST(DeadlockDetectorTest, StaleRepliesIgnored) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  const auto probe = detector.begin_probe({}, {1}, t0);
  EXPECT_FALSE(detector.add_reply(probe + 99, 1, {wfg::Edge{1, 2}})
                   .has_value());  // wrong probe id
  EXPECT_TRUE(detector.probe_active());
}

TEST(DeadlockDetectorTest, ExpiryResolvesWithPartialReplies) {
  DeadlockDetector detector(10ms, 50ms);
  const auto t0 = DeadlockDetector::Clock::now();
  (void)detector.begin_probe({wfg::Edge{1, 2}, wfg::Edge{2, 1}}, {1, 2}, t0);
  EXPECT_FALSE(detector.resolve_if_expired(t0 + 10ms).has_value());
  const auto victim = detector.resolve_if_expired(t0 + 51ms);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // local edges alone already form the cycle
}

// --- Connection (deprecated shim over dtx::client) ---------------------------
// These tests pin the one-PR compatibility contract: the old Connection
// surface keeps working, now delegating to client::Session.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

ClusterOptions small_options() {
  ClusterOptions options;
  options.site_count = 2;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

TEST(ConnectionTest, ExecutesThroughBoundSite) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster
                  .load_document("d1",
                                 "<site><people><person id=\"p1\">"
                                 "<name>Ana</name></person></people></site>",
                                 {0, 1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Connection connection(cluster, 1);
  auto result =
      connection.execute({"query d1 /site/people/person[@id='p1']/name"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[0][0], "Ana");
  EXPECT_EQ(connection.retries(), 0u);
}

TEST(ConnectionTest, RetriesDeadlockVictims) {
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document("a",
                                 "<site><people><person id=\"1\"/>"
                                 "</people></site>",
                                 {0})
                  .is_ok());
  ASSERT_TRUE(cluster
                  .load_document("b",
                                 "<site><people><person id=\"2\"/>"
                                 "</people></site>",
                                 {1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  RetryPolicy policy;
  policy.max_deadlock_retries = 50;
  policy.backoff = std::chrono::microseconds(2'000);
  std::atomic<int> committed{0};
  // Two adversarial connections running opposite lock orders repeatedly:
  // with retries enabled, every transaction eventually commits.
  std::thread worker([&] {
    Connection connection(cluster, 0, policy);
    for (int i = 0; i < 10; ++i) {
      auto result = connection.execute(
          {"query a /site/people/person/@id",
           "update b insert into /site/people ::= <person id=\"w" +
               std::to_string(i) + "\"/>"});
      ASSERT_TRUE(result.is_ok());
      if (result.value().state == TxnState::kCommitted) ++committed;
    }
  });
  Connection connection(cluster, 1, policy);
  for (int i = 0; i < 10; ++i) {
    auto result = connection.execute(
        {"query b /site/people/person/@id",
         "update a insert into /site/people ::= <person id=\"m" +
             std::to_string(i) + "\"/>"});
    ASSERT_TRUE(result.is_ok());
    if (result.value().state == TxnState::kCommitted) ++committed;
  }
  worker.join();
  EXPECT_EQ(committed.load(), 20);
}

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

// --- durability (file-backed cluster restart) --------------------------------------

TEST(DurabilityTest, CommittedStateSurvivesClusterRestart) {
  const fs::path dir = fs::temp_directory_path() / "dtx_durability_test";
  fs::remove_all(dir);

  ClusterOptions options = small_options();
  options.storage_dir = dir.string();
  {
    Cluster cluster(options);
    ASSERT_TRUE(cluster
                    .load_document("d1",
                                   "<site><people><person id=\"p1\">"
                                   "<phone>111</phone></person></people>"
                                   "</site>",
                                   {0, 1})
                    .is_ok());
    ASSERT_TRUE(cluster.start().is_ok());
    auto result = cluster.execute_text(
        0, {"update d1 change /site/people/person[@id='p1']/phone ::= 999"});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    cluster.stop();
  }
  {
    // Restart: same directory, placement re-declared, data already there.
    Cluster cluster(options);
    ASSERT_TRUE(cluster.declare_document("d1", {0, 1}).is_ok());
    ASSERT_TRUE(cluster.start().is_ok());
    auto result = cluster.execute_text(
        1, {"query d1 /site/people/person[@id='p1']/phone"});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    EXPECT_EQ(result.value().rows[0][0], "999");
    cluster.stop();
  }
  fs::remove_all(dir);
}

TEST(DurabilityTest, DeclareDocumentRejectsMissingData) {
  const fs::path dir = fs::temp_directory_path() / "dtx_declare_test";
  fs::remove_all(dir);
  ClusterOptions options = small_options();
  options.storage_dir = dir.string();
  Cluster cluster(options);
  EXPECT_EQ(cluster.declare_document("ghost", {0}).code(),
            util::Code::kNotFound);
  fs::remove_all(dir);
}

TEST(ErrorReportingTest, AbortedTransactionCarriesTypedReason) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster
                  .load_document("d1", "<site><people/></site>", {0})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result =
      cluster.execute_text(0, {"update d1 insert after /site ::= <bad/>"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  // Tests branch on the code; the detail string is diagnostics only.
  EXPECT_EQ(result.value().reason, txn::AbortReason::kUnprocessableUpdate);
  EXPECT_NE(result.value().detail.find("operation 0"), std::string::npos)
      << result.value().detail;

  auto missing = cluster.execute_text(0, {"query nope /site/people"});
  ASSERT_TRUE(missing.is_ok());
  EXPECT_EQ(missing.value().reason, txn::AbortReason::kParseError);
  EXPECT_NE(missing.value().detail.find("not in the catalog"),
            std::string::npos);
}

// --- staged engine (coordinator pool + sharded locks) -----------------------

ClusterOptions staged_options() {
  ClusterOptions options = small_options();
  options.site.coordinator_workers = 4;
  options.site.participant_workers = 2;
  options.site.lock_shards = 8;
  return options;
}

constexpr const char* kStagedXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "<person id=\"p3\"><name>Carla</name><phone>333</phone></person>"
    "</people></site>";

// Many clients against a multi-worker site: every transaction must
// terminate in exactly one of the three states and reads must see
// committed content (no torn documents under the pool).
TEST(StagedEngineTest, MultiWorkerSiteAccountsForEveryTransaction) {
  Cluster cluster(staged_options());
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kTxnsPerClient = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<std::size_t> committed{0};
  std::atomic<std::size_t> terminated{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kTxnsPerClient; ++i) {
        const SiteId home = static_cast<SiteId>(c % 2);
        const std::string id = "p" + std::to_string(1 + (c + i) % 3);
        auto result = cluster.execute_text(
            home, {"query d1 /site/people/person[@id='" + id + "']/name",
                   "update d1 change /site/people/person[@id='" + id +
                       "']/phone ::= 555" + std::to_string(c),
                   "query d1 /site/people/person[@id='" + id + "']/phone"});
        ASSERT_TRUE(result.is_ok());
        const TxnState state = result.value().state;
        ASSERT_TRUE(state == TxnState::kCommitted ||
                    state == TxnState::kAborted || state == TxnState::kFailed)
            << txn::txn_state_name(state);
        ++terminated;
        if (state == TxnState::kCommitted) {
          ++committed;
          ASSERT_EQ(result.value().rows.size(), 3u);
          ASSERT_EQ(result.value().rows[2].size(), 1u);
          EXPECT_EQ(result.value().rows[2][0], "555" + std::to_string(c));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(terminated.load(), kClients * kTxnsPerClient);
  EXPECT_GT(committed.load(), 0u);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed + stats.aborted + stats.failed,
            kClients * kTxnsPerClient);
  cluster.stop();
  // Quiescent now: the lock tables must be fully drained.
  for (SiteId site = 0; site < 2; ++site) {
    EXPECT_EQ(cluster.site(site).lock_manager().lock_entries(), 0u);
  }
}

// The pool must still serialize conflicting updates correctly: concurrent
// increments through read-modify-write transactions on one hot node lose no
// update that committed.
TEST(StagedEngineTest, MultiWorkerConflictingUpdatesStayConsistent) {
  Cluster cluster(staged_options());
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr std::size_t kWriters = 6;
  std::atomic<std::size_t> committed{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto result = cluster.execute_text(
          static_cast<SiteId>(w % 2),
          {"update d1 insert after /site/people/person[@id='p1'] ::= "
           "<visit writer=\"w" +
           std::to_string(w) + "\"/>"});
      ASSERT_TRUE(result.is_ok());
      if (result.value().state == TxnState::kCommitted) ++committed;
    });
  }
  for (std::thread& writer : writers) writer.join();
  cluster.stop();

  // Every committed insert is present at every replica.
  for (SiteId site = 0; site < 2; ++site) {
    auto xml_text = cluster.store_of(site).load("d1");
    ASSERT_TRUE(xml_text.is_ok());
    std::size_t visits = 0;
    std::string::size_type pos = 0;
    while ((pos = xml_text.value().find("<visit", pos)) !=
           std::string::npos) {
      ++visits;
      pos += 6;
    }
    EXPECT_EQ(visits, committed.load()) << "site " << site;
  }
  EXPECT_GT(committed.load(), 0u);
}

// Single-worker, single-shard options must behave exactly like the seed
// engine: a deterministic sequential workload commits everything.
TEST(StagedEngineTest, DefaultOptionsPreserveSequentialBehavior) {
  ClusterOptions options = small_options();
  ASSERT_EQ(options.site.coordinator_workers, 1u);
  ASSERT_EQ(options.site.participant_workers, 1u);
  ASSERT_EQ(options.site.lock_shards, 1u);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  for (int i = 0; i < 5; ++i) {
    auto result = cluster.execute_text(
        0, {"query d1 /site/people/person/name",
            "update d1 change /site/people/person[@id='p1']/phone ::= " +
                std::to_string(1000 + i)});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    ASSERT_EQ(result.value().rows[0].size(), 3u);
  }
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed, 5u);
  EXPECT_EQ(stats.aborted + stats.failed, 0u);
}

}  // namespace
}  // namespace dtx::core
