// Tests for the DTX support components: Catalog, the plan-based
// DataManager, the DeadlockDetector probe lifecycle, the legacy
// single-site session scenarios (now on client::Session), the site
// plan-cache integration (remote reuse + wait-mode retry reuse), the
// file-backed durability path (cluster restart on FileStore) and the
// staged-engine worker pools (coordinator_workers / participant_workers /
// lock_shards).
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>

#include "client/client.hpp"
#include "client/txn_builder.hpp"
#include "dtx/catalog.hpp"
#include "dtx/cluster.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/deadlock_detector.hpp"
#include "dtx/wal.hpp"
#include "query/plan.hpp"
#include "storage/memory_store.hpp"
#include "xpath/parser.hpp"

namespace dtx::core {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using txn::TxnState;

// --- Catalog -----------------------------------------------------------------

TEST(CatalogTest, AddAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.add_document("d1", {2, 0, 2, 1}).is_ok());
  EXPECT_TRUE(catalog.has_document("d1"));
  EXPECT_FALSE(catalog.has_document("d2"));
  // Sorted and deduplicated.
  EXPECT_EQ(catalog.sites_of("d1"), (std::vector<SiteId>{0, 1, 2}));
  EXPECT_TRUE(catalog.sites_of("d2").empty());
}

TEST(CatalogTest, RejectsEmptyPlacementAndDuplicates) {
  Catalog catalog;
  EXPECT_FALSE(catalog.add_document("d1", {}).is_ok());
  ASSERT_TRUE(catalog.add_document("d1", {0}).is_ok());
  EXPECT_EQ(catalog.add_document("d1", {1}).code(),
            util::Code::kAlreadyExists);
}

TEST(CatalogTest, DocumentsAtSite) {
  Catalog catalog;
  ASSERT_TRUE(catalog.add_document("a", {0, 1}).is_ok());
  ASSERT_TRUE(catalog.add_document("b", {1}).is_ok());
  ASSERT_TRUE(catalog.add_document("c", {0}).is_ok());
  EXPECT_EQ(catalog.documents_at(0), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(catalog.documents_at(1), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(catalog.documents_at(9).empty());
  EXPECT_EQ(catalog.documents(), (std::vector<std::string>{"a", "b", "c"}));
}

// --- DataManager --------------------------------------------------------------

class DataManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.store("d1",
                             "<site><people>"
                             "<person id=\"p1\"><name>Ana</name></person>"
                             "</people></site>")
                    .is_ok());
    ASSERT_TRUE(store_.store("d2", "<catalog><entry id=\"e1\"/></catalog>")
                    .is_ok());
    data_ = std::make_unique<DataManager>(store_);
    ASSERT_TRUE(data_->load_all().is_ok());
  }

  /// Compiles one textual operation into the plan the DataManager executes.
  static query::Plan plan_of(const std::string& text) {
    auto plan = query::compile_text(text);
    EXPECT_TRUE(plan.is_ok()) << text;
    return std::move(plan).value();
  }

  storage::MemoryStore store_;
  std::unique_ptr<DataManager> data_;
};

TEST_F(DataManagerTest, LoadsEveryStoredDocument) {
  EXPECT_TRUE(data_->has_document("d1"));
  EXPECT_TRUE(data_->has_document("d2"));
  EXPECT_FALSE(data_->has_document("d3"));
  EXPECT_EQ(data_->documents(), (std::vector<std::string>{"d1", "d2"}));
  EXPECT_GT(data_->total_nodes(), 0u);
  EXPECT_GT(data_->total_guide_nodes(), 0u);
}

TEST_F(DataManagerTest, LoadAllFailsOnMalformedDocument) {
  storage::MemoryStore bad_store;
  ASSERT_TRUE(bad_store.store("broken", "<a><b></a>").is_ok());
  DataManager data(bad_store);
  EXPECT_FALSE(data.load_all().is_ok());
}

TEST_F(DataManagerTest, ContextProvidesDistinctScopes) {
  auto c1 = data_->context_of("d1");
  auto c2 = data_->context_of("d2");
  ASSERT_TRUE(c1.is_ok() && c2.is_ok());
  EXPECT_NE(c1.value().scope, c2.value().scope);
  EXPECT_FALSE(data_->context_of("nope").is_ok());
}

TEST_F(DataManagerTest, UpdateUndoPersistCycle) {
  const query::Plan insert = plan_of(
      "update d1 insert into /site/people ::= <person id=\"p2\"/>");
  auto applied = data_->run_update(7, insert);
  ASSERT_TRUE(applied.is_ok());
  EXPECT_EQ(applied.value(), 1u);

  // Undo everything the txn did: insert disappears.
  data_->undo_all(7);
  auto rows = data_->run_query(plan_of("query d1 /site/people/person"));
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows.value().size(), 1u);

  // Apply again and persist: the durable state (checkpoint snapshot +
  // replayed redo-log tail) reflects the change. The same compiled plan
  // is reused across executions.
  ASSERT_TRUE(data_->run_update(8, insert).is_ok());
  ASSERT_TRUE(data_->persist(8).is_ok());
  auto stored = wal::materialize(store_, "d1");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_NE(stored.value().find("p2"), std::string::npos);
}

TEST_F(DataManagerTest, PersistOnlyWritesTouchedDocuments) {
  const auto count_before = store_.store_count();
  ASSERT_TRUE(
      data_->run_update(
               9, plan_of(
                      "update d2 insert into /catalog ::= <entry id=\"e2\"/>"))
          .is_ok());
  ASSERT_TRUE(data_->persist(9).is_ok());
  // One O(delta) redo-record append to d2's log — d1 and the document
  // snapshots untouched.
  EXPECT_EQ(store_.store_count(), count_before + 1);
  EXPECT_EQ(data_->version_of("d2"), 1u);
  EXPECT_EQ(data_->version_of("d1"), 0u);
  EXPECT_EQ(wal::durable_version(store_, "d2"), 1u);
  EXPECT_EQ(wal::durable_version(store_, "d1"), 0u);
}

TEST_F(DataManagerTest, ReplayIsIdempotentAcrossReloads) {
  // Three commits land three redo records; rebuilding the engine from the
  // store any number of times must replay to the same state and never
  // re-persist (reload is a pure read of snapshot + log).
  for (int i = 0; i < 3; ++i) {
    const auto txn = static_cast<TxnId>(100 + i);
    ASSERT_TRUE(
        data_->run_update(txn, plan_of("update d1 insert into /site/people "
                                       "::= <person id=\"r" +
                                       std::to_string(i) + "\"/>"))
            .is_ok());
    ASSERT_TRUE(data_->persist(txn).is_ok());
  }
  auto first = wal::materialize(store_, "d1");
  ASSERT_TRUE(first.is_ok());
  const auto writes_after_commits = store_.store_count();
  for (int reload = 0; reload < 2; ++reload) {
    DataManager rebuilt(store_);
    ASSERT_TRUE(rebuilt.load_all().is_ok());
    EXPECT_EQ(rebuilt.version_of("d1"), 3u);
    auto rows =
        rebuilt.run_query(plan_of("query d1 /site/people/person/@id"));
    ASSERT_TRUE(rows.is_ok());
    EXPECT_EQ(rows.value().size(), 4u);  // p1 + r0..r2, applied once each
  }
  EXPECT_EQ(store_.store_count(), writes_after_commits);
  EXPECT_EQ(wal::materialize(store_, "d1").value(), first.value());
}

TEST_F(DataManagerTest, CheckpointCompactsLogAndRoundTrips) {
  // checkpoint_interval=2: the second commit flags the compaction, which
  // runs via run_checkpoints and rewrites snapshot + marker-only log.
  DataManager data(store_, /*checkpoint_interval=*/2);
  ASSERT_TRUE(data.load_all().is_ok());
  std::vector<std::string> due;
  ASSERT_TRUE(
      data.run_update(21, plan_of("update d1 insert into /site/people ::= "
                                  "<person id=\"c1\"/>"))
          .is_ok());
  ASSERT_TRUE(data.persist(21, &due).is_ok());
  EXPECT_TRUE(due.empty());  // below the threshold
  ASSERT_TRUE(
      data.run_update(22, plan_of("update d1 insert into /site/people ::= "
                                  "<person id=\"c2\"/>"))
          .is_ok());
  ASSERT_TRUE(data.persist(22, &due).is_ok());
  ASSERT_EQ(due, (std::vector<std::string>{"d1"}));
  data.run_checkpoints(due);

  // Snapshot now carries both inserts; the log is exactly one marker
  // holding the commit-id history.
  auto snapshot = store_.load("d1");
  ASSERT_TRUE(snapshot.is_ok());
  EXPECT_NE(snapshot.value().find("c2"), std::string::npos);
  auto durable = wal::read_durable_doc(store_, "d1");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_EQ(durable.value().checkpoint_version, 2u);
  EXPECT_TRUE(durable.value().tail.empty());
  EXPECT_FALSE(durable.value().needs_repair);
  EXPECT_EQ(durable.value().checkpoint_ids,
            (std::vector<TxnId>{21, 22}));

  // Post-compaction commits append after the marker; a rebuild replays
  // checkpoint + tail.
  ASSERT_TRUE(
      data.run_update(23, plan_of("update d1 insert into /site/people ::= "
                                  "<person id=\"c3\"/>"))
          .is_ok());
  ASSERT_TRUE(data.persist(23).is_ok());
  DataManager rebuilt(store_);
  ASSERT_TRUE(rebuilt.load_all().is_ok());
  EXPECT_EQ(rebuilt.version_of("d1"), 3u);
  auto rows = rebuilt.run_query(plan_of("query d1 /site/people/person/@id"));
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows.value().size(), 4u);
}

TEST_F(DataManagerTest, CheckpointDeferredWhileAnotherTxnIsLive) {
  // Snapshots must only ever contain committed state: a due checkpoint is
  // deferred while any live transaction holds an undo log on the
  // document, and unblocks when that transaction finishes.
  DataManager data(store_, /*checkpoint_interval=*/1);
  ASSERT_TRUE(data.load_all().is_ok());
  ASSERT_TRUE(
      data.run_update(31, plan_of("update d1 insert into /site/people ::= "
                                  "<person id=\"live\"/>"))
          .is_ok());
  std::vector<std::string> due;
  ASSERT_TRUE(
      data.run_update(30, plan_of("update d1 change "
                                  "/site/people/person[@id='p1']/name "
                                  "::= Zed"))
          .is_ok());
  ASSERT_TRUE(data.persist(30, &due).is_ok());
  EXPECT_TRUE(due.empty());  // txn 31 still holds an undo log on d1
  data.run_checkpoints({"d1"});  // must refuse for the same reason
  EXPECT_EQ(store_.load("d1").value().find("live"), std::string::npos);

  // Rolling txn 31 back unblocks the deferred compaction — and the
  // snapshot it writes contains only committed state.
  data.undo_all(31, &due);
  ASSERT_EQ(due, (std::vector<std::string>{"d1"}));
  data.run_checkpoints(due);
  auto snapshot = store_.load("d1");
  ASSERT_TRUE(snapshot.is_ok());
  EXPECT_NE(snapshot.value().find("Zed"), std::string::npos);
  EXPECT_EQ(snapshot.value().find("live"), std::string::npos);
  auto durable = wal::read_durable_doc(store_, "d1");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_EQ(durable.value().checkpoint_version, 1u);
  EXPECT_TRUE(durable.value().tail.empty());
}

TEST_F(DataManagerTest, GuideStaysConsistentThroughUpdates) {
  ASSERT_TRUE(
      data_->run_update(3, plan_of("update d1 insert into /site/people ::= "
                                   "<person id=\"p3\"><age>9</age></person>"))
          .is_ok());
  auto context = data_->context_of("d1");
  ASSERT_TRUE(context.is_ok());
  // New label path appeared in the incrementally maintained guide.
  EXPECT_NE(context.value().guide.find_path("/site/people/person/age"),
            nullptr);
  EXPECT_EQ(
      context.value().guide.find_path("/site/people/person")->extent(), 2u);
  data_->undo_all(3);
  EXPECT_EQ(
      context.value().guide.find_path("/site/people/person")->extent(), 1u);
}

// --- DeadlockDetector ------------------------------------------------------------

TEST(DeadlockDetectorTest, ProbeLifecycle) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  EXPECT_TRUE(detector.should_start(t0 + 11ms));

  // Local edges t2 -> t1; site 1 will contribute t1 -> t2.
  const auto probe =
      detector.begin_probe({wfg::Edge{2, 1}}, {1, 2}, t0 + 11ms);
  EXPECT_TRUE(detector.probe_active());
  EXPECT_FALSE(detector.should_start(t0 + 12ms));  // one probe at a time

  // First reply: still collecting.
  EXPECT_FALSE(detector.add_reply(probe, 1, {wfg::Edge{1, 2}}).has_value());
  // Second reply completes the probe; union has the cycle; victim = newest.
  const auto victim = detector.add_reply(probe, 2, {});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
  EXPECT_FALSE(detector.probe_active());
  EXPECT_EQ(detector.cycles_found(), 1u);
}

TEST(DeadlockDetectorTest, CleanProbeReturnsZero) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  const auto probe = detector.begin_probe({wfg::Edge{1, 2}}, {1}, t0);
  const auto victim = detector.add_reply(probe, 1, {wfg::Edge{2, 3}});
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0u);  // acyclic union
  EXPECT_EQ(detector.cycles_found(), 0u);
}

TEST(DeadlockDetectorTest, StaleRepliesIgnored) {
  DeadlockDetector detector(10ms, 100ms);
  const auto t0 = DeadlockDetector::Clock::now();
  const auto probe = detector.begin_probe({}, {1}, t0);
  EXPECT_FALSE(detector.add_reply(probe + 99, 1, {wfg::Edge{1, 2}})
                   .has_value());  // wrong probe id
  EXPECT_TRUE(detector.probe_active());
}

TEST(DeadlockDetectorTest, ExpiryResolvesWithPartialReplies) {
  DeadlockDetector detector(10ms, 50ms);
  const auto t0 = DeadlockDetector::Clock::now();
  (void)detector.begin_probe({wfg::Edge{1, 2}, wfg::Edge{2, 1}}, {1, 2}, t0);
  EXPECT_FALSE(detector.resolve_if_expired(t0 + 10ms).has_value());
  const auto victim = detector.resolve_if_expired(t0 + 51ms);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // local edges alone already form the cycle
}

// --- legacy single-site session scenarios (client::Session) -----------------
// These were the deprecated Connection shim's tests; the shim is gone (it
// lived exactly one PR, as promised in PR 2) and the same scenarios now run
// on the canonical client::Session surface.

ClusterOptions small_options() {
  ClusterOptions options;
  options.site_count = 2;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

/// Site-pinned session, the old Connection shape: explicit routing + policy.
client::Session site_session(client::Client& client, SiteId site,
                             client::RetryPolicy policy = {}) {
  return client.session(client::SessionOptions{
      client::RoutingPolicy::explicit_site(site), policy,
      std::chrono::microseconds{0}});
}

TEST(SessionMigrationTest, ExecutesThroughBoundSite) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster
                  .load_document("d1",
                                 "<site><people><person id=\"p1\">"
                                 "<name>Ana</name></person></people></site>",
                                 {0, 1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  client::Client client(cluster);
  client::Session session = site_session(client, 1);
  auto prepared = client::PreparedTxn::parse(
      {"query d1 /site/people/person[@id='p1']/name"});
  ASSERT_TRUE(prepared.is_ok());
  auto result = session.execute(prepared.value());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[0][0], "Ana");
  EXPECT_EQ(session.retries(), 0u);
}

TEST(SessionMigrationTest, RetriesDeadlockVictims) {
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document("a",
                                 "<site><people><person id=\"1\"/>"
                                 "</people></site>",
                                 {0})
                  .is_ok());
  ASSERT_TRUE(cluster
                  .load_document("b",
                                 "<site><people><person id=\"2\"/>"
                                 "</people></site>",
                                 {1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  client::Client client(cluster);

  client::RetryPolicy policy;
  policy.max_deadlock_retries = 50;
  policy.backoff = std::chrono::microseconds(2'000);
  std::atomic<int> committed{0};
  // Two adversarial sessions running opposite lock orders repeatedly: with
  // retries enabled, every transaction eventually commits.
  std::thread worker([&] {
    client::Session session = site_session(client, 0, policy);
    for (int i = 0; i < 10; ++i) {
      auto prepared = client::PreparedTxn::parse(
          {"query a /site/people/person/@id",
           "update b insert into /site/people ::= <person id=\"w" +
               std::to_string(i) + "\"/>"});
      ASSERT_TRUE(prepared.is_ok());
      auto result = session.execute(prepared.value());
      ASSERT_TRUE(result.is_ok());
      if (result.value().state == TxnState::kCommitted) ++committed;
    }
  });
  client::Session session = site_session(client, 1, policy);
  for (int i = 0; i < 10; ++i) {
    auto prepared = client::PreparedTxn::parse(
        {"query b /site/people/person/@id",
         "update a insert into /site/people ::= <person id=\"m" +
             std::to_string(i) + "\"/>"});
    ASSERT_TRUE(prepared.is_ok());
    auto result = session.execute(prepared.value());
    ASSERT_TRUE(result.is_ok());
    if (result.value().state == TxnState::kCommitted) ++committed;
  }
  worker.join();
  EXPECT_EQ(committed.load(), 20);
}

// --- plan cache integration --------------------------------------------------

// A repeated remote operation is compiled once at the participant site:
// the second execution resolves the cached plan (no re-parse, a hit).
TEST(PlanCacheIntegrationTest, RemoteExecutionReusesCachedPlan) {
  // Locked path on purpose: with MVCC on, a read-only transaction would be
  // served as a SnapshotReadRequest and never reach handle_execute.
  ClusterOptions remote_options = small_options();
  remote_options.site.snapshot_reads = false;
  Cluster cluster(remote_options);
  ASSERT_TRUE(cluster
                  .load_document("d1",
                                 "<site><people><person id=\"p1\">"
                                 "<name>Ana</name></person></people></site>",
                                 {1})  // only at site 1 -> remote from site 0
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  for (int i = 0; i < 2; ++i) {
    auto result = cluster.execute_text(
        0, {"query d1 /site/people/person[@id='p1']/name"});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    EXPECT_EQ(result.value().rows[0][0], "Ana");
  }

  const SiteStats participant = cluster.site(1).stats();
  EXPECT_EQ(participant.remote_ops_processed, 2u);
  EXPECT_EQ(participant.plan_cache.misses, 1u);  // compiled exactly once
  EXPECT_GE(participant.plan_cache.hits, 1u);    // second run from cache
}

// Regression for the wait-mode path: an operation that enters wait mode and
// re-executes must run from the cached plan of its first attempt. The
// holder keeps document a's locks for >= 2 x 30 ms (a remote leg per op),
// the waiter conflicts, parks, is woken by the holder's commit and retries
// the *same* operation -> its second resolution is a cache hit.
TEST(PlanCacheIntegrationTest, WaitModeRetryExecutesFromCachedPlan) {
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  options.network.latency = std::chrono::milliseconds(30);
  options.site.coordinator_workers = 2;
  options.site.detect_period = std::chrono::hours(1);
  options.site.retry_interval = std::chrono::microseconds(2'000);
  // The read-only holder must take locks for the waiter to conflict; MVCC
  // would serve it from a snapshot and no wait episode could ever happen.
  options.site.snapshot_reads = false;
  Cluster cluster(options);
  constexpr const char* kXml =
      "<site><people><person id=\"p1\"><name>Ana</name></person>"
      "</people></site>";
  ASSERT_TRUE(cluster.load_document("a", kXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("r", kXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  client::Client client(cluster);
  client::Session session = site_session(client, 0);

  auto holder_txn = client::TxnBuilder()
                        .query("a", "/site/people/person/name")  // ST on a
                        .query("r", "/site/people/person/name")  // slow remote
                        .build();
  auto waiter_txn = client::TxnBuilder()
                        .insert("a", "/site/people", "<person id=\"w\"/>")
                        .build();
  ASSERT_TRUE(holder_txn.is_ok() && waiter_txn.is_ok());

  bool saw_wait_retry = false;
  for (int round = 0; round < 10 && !saw_wait_retry; ++round) {
    auto holder = session.submit(holder_txn.value());
    ASSERT_TRUE(holder.is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto waiter = session.execute(waiter_txn.value());
    ASSERT_TRUE(waiter.is_ok());
    EXPECT_EQ(holder.value().await().state, TxnState::kCommitted);
    if (waiter.value().state == TxnState::kCommitted &&
        waiter.value().wait_episodes > 0) {
      saw_wait_retry = true;
    }
  }
  ASSERT_TRUE(saw_wait_retry) << "no wait-mode retry observed in 10 rounds";

  // The waiter's insert resolved at least twice (attempt 1 + the retry)
  // but compiled at most once: the retry was served from the cache.
  const SiteStats coordinator = cluster.site(0).stats();
  EXPECT_GE(coordinator.plan_cache.hits, 1u);
  EXPECT_GT(coordinator.wait_episodes, 0u);
}

// --- durability (file-backed cluster restart) --------------------------------------

TEST(DurabilityTest, CommittedStateSurvivesClusterRestart) {
  const fs::path dir = fs::temp_directory_path() / "dtx_durability_test";
  fs::remove_all(dir);

  ClusterOptions options = small_options();
  options.storage_dir = dir.string();
  {
    Cluster cluster(options);
    ASSERT_TRUE(cluster
                    .load_document("d1",
                                   "<site><people><person id=\"p1\">"
                                   "<phone>111</phone></person></people>"
                                   "</site>",
                                   {0, 1})
                    .is_ok());
    ASSERT_TRUE(cluster.start().is_ok());
    auto result = cluster.execute_text(
        0, {"update d1 change /site/people/person[@id='p1']/phone ::= 999"});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    cluster.stop();
  }
  {
    // Restart: same directory, placement re-declared, data already there.
    Cluster cluster(options);
    ASSERT_TRUE(cluster.declare_document("d1", {0, 1}).is_ok());
    ASSERT_TRUE(cluster.start().is_ok());
    auto result = cluster.execute_text(
        1, {"query d1 /site/people/person[@id='p1']/phone"});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    EXPECT_EQ(result.value().rows[0][0], "999");
    cluster.stop();
  }
  fs::remove_all(dir);
}

TEST(DurabilityTest, DeclareDocumentRejectsMissingData) {
  const fs::path dir = fs::temp_directory_path() / "dtx_declare_test";
  fs::remove_all(dir);
  ClusterOptions options = small_options();
  options.storage_dir = dir.string();
  Cluster cluster(options);
  EXPECT_EQ(cluster.declare_document("ghost", {0}).code(),
            util::Code::kNotFound);
  fs::remove_all(dir);
}

TEST(ErrorReportingTest, AbortedTransactionCarriesTypedReason) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster
                  .load_document("d1", "<site><people/></site>", {0})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result =
      cluster.execute_text(0, {"update d1 insert after /site ::= <bad/>"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  // Tests branch on the code; the detail string is diagnostics only.
  EXPECT_EQ(result.value().reason, txn::AbortReason::kUnprocessableUpdate);
  EXPECT_NE(result.value().detail.find("operation 0"), std::string::npos)
      << result.value().detail;

  auto missing = cluster.execute_text(0, {"query nope /site/people"});
  ASSERT_TRUE(missing.is_ok());
  EXPECT_EQ(missing.value().reason, txn::AbortReason::kParseError);
  EXPECT_NE(missing.value().detail.find("not in the catalog"),
            std::string::npos);
}

// --- staged engine (coordinator pool + sharded locks) -----------------------

ClusterOptions staged_options() {
  ClusterOptions options = small_options();
  options.site.coordinator_workers = 4;
  options.site.participant_workers = 2;
  options.site.lock_shards = 8;
  return options;
}

constexpr const char* kStagedXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "<person id=\"p3\"><name>Carla</name><phone>333</phone></person>"
    "</people></site>";

// Many clients against a multi-worker site: every transaction must
// terminate in exactly one of the three states and reads must see
// committed content (no torn documents under the pool).
TEST(StagedEngineTest, MultiWorkerSiteAccountsForEveryTransaction) {
  Cluster cluster(staged_options());
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kTxnsPerClient = 6;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<std::size_t> committed{0};
  std::atomic<std::size_t> terminated{0};
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kTxnsPerClient; ++i) {
        const SiteId home = static_cast<SiteId>(c % 2);
        const std::string id = "p" + std::to_string(1 + (c + i) % 3);
        auto result = cluster.execute_text(
            home, {"query d1 /site/people/person[@id='" + id + "']/name",
                   "update d1 change /site/people/person[@id='" + id +
                       "']/phone ::= 555" + std::to_string(c),
                   "query d1 /site/people/person[@id='" + id + "']/phone"});
        ASSERT_TRUE(result.is_ok());
        const TxnState state = result.value().state;
        ASSERT_TRUE(state == TxnState::kCommitted ||
                    state == TxnState::kAborted || state == TxnState::kFailed)
            << txn::txn_state_name(state);
        ++terminated;
        if (state == TxnState::kCommitted) {
          ++committed;
          ASSERT_EQ(result.value().rows.size(), 3u);
          ASSERT_EQ(result.value().rows[2].size(), 1u);
          EXPECT_EQ(result.value().rows[2][0], "555" + std::to_string(c));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(terminated.load(), kClients * kTxnsPerClient);
  EXPECT_GT(committed.load(), 0u);

  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed + stats.aborted + stats.failed,
            kClients * kTxnsPerClient);
  cluster.stop();
  // Quiescent now: the lock tables must be fully drained.
  for (SiteId site = 0; site < 2; ++site) {
    EXPECT_EQ(cluster.site(site).lock_manager().lock_entries(), 0u);
  }
}

// The pool must still serialize conflicting updates correctly: concurrent
// increments through read-modify-write transactions on one hot node lose no
// update that committed.
TEST(StagedEngineTest, MultiWorkerConflictingUpdatesStayConsistent) {
  Cluster cluster(staged_options());
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr std::size_t kWriters = 6;
  std::atomic<std::size_t> committed{0};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      auto result = cluster.execute_text(
          static_cast<SiteId>(w % 2),
          {"update d1 insert after /site/people/person[@id='p1'] ::= "
           "<visit writer=\"w" +
           std::to_string(w) + "\"/>"});
      ASSERT_TRUE(result.is_ok());
      if (result.value().state == TxnState::kCommitted) ++committed;
    });
  }
  for (std::thread& writer : writers) writer.join();
  cluster.stop();

  // Every committed insert is present at every replica.
  for (SiteId site = 0; site < 2; ++site) {
    auto xml_text = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(xml_text.is_ok());
    std::size_t visits = 0;
    std::string::size_type pos = 0;
    while ((pos = xml_text.value().find("<visit", pos)) !=
           std::string::npos) {
      ++visits;
      pos += 6;
    }
    EXPECT_EQ(visits, committed.load()) << "site " << site;
  }
  EXPECT_GT(committed.load(), 0u);
}

// The client wire protocol works over ANY Network — here SimNetwork: a
// mailbox registered in the client id range sends ClientSubmit to a running
// site and pops the ClientReply, exactly the exchange dtxd serves over TCP.
TEST(StagedEngineTest, ClientProtocolRunsOverSimNetwork) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  const SiteId client_id = net::kClientIdBase + 7;
  net::Mailbox& inbox = cluster.network().register_site(client_id);

  auto submit_and_await = [&](std::uint64_t seq,
                              std::vector<std::string> texts) {
    net::ClientSubmit submit;
    submit.seq = seq;
    for (const std::string& text : texts) {
      auto op = txn::parse_operation(text);
      EXPECT_TRUE(op.is_ok()) << text;
      submit.ops.push_back(std::move(op).value());
    }
    net::Message message;
    message.from = client_id;
    message.to = 0;
    message.payload = std::move(submit);
    cluster.network().send(std::move(message));
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      auto reply = inbox.pop(100ms);
      if (!reply.has_value()) continue;
      auto* payload = std::get_if<net::ClientReply>(&reply->payload);
      if (payload != nullptr && payload->seq == seq) return *payload;
    }
    return net::ClientReply{};  // seq 0: never sent, fails the asserts below
  };

  const net::ClientReply write = submit_and_await(
      1, {"update d1 change /site/people/person[@id='p1']/phone ::= 4242"});
  ASSERT_EQ(write.seq, 1u);
  ASSERT_TRUE(write.accepted) << write.detail;
  EXPECT_EQ(static_cast<TxnState>(write.state), TxnState::kCommitted);
  EXPECT_GT(write.txn, 0u);

  const net::ClientReply read = submit_and_await(
      2, {"query d1 /site/people/person[@id='p1']/phone"});
  ASSERT_EQ(read.seq, 2u);
  ASSERT_TRUE(read.accepted) << read.detail;
  EXPECT_EQ(static_cast<TxnState>(read.state), TxnState::kCommitted);
  ASSERT_EQ(read.rows.size(), 1u);
  ASSERT_EQ(read.rows[0].size(), 1u);
  EXPECT_NE(read.rows[0][0].find("4242"), std::string::npos);

  // An empty submission is rejected at the door, not silently dropped.
  net::Message empty;
  empty.from = client_id;
  empty.to = 0;
  empty.payload = net::ClientSubmit{3, {}};
  cluster.network().send(std::move(empty));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  bool rejected = false;
  while (std::chrono::steady_clock::now() < deadline) {
    auto reply = inbox.pop(100ms);
    if (!reply.has_value()) continue;
    auto* payload = std::get_if<net::ClientReply>(&reply->payload);
    if (payload != nullptr && payload->seq == 3) {
      EXPECT_FALSE(payload->accepted);
      EXPECT_FALSE(payload->detail.empty());
      rejected = true;
      break;
    }
  }
  EXPECT_TRUE(rejected) << "empty submit got no rejection reply";
  cluster.stop();
}

// Single-worker, single-shard options must behave exactly like the seed
// engine: a deterministic sequential workload commits everything.
TEST(StagedEngineTest, DefaultOptionsPreserveSequentialBehavior) {
  ClusterOptions options = small_options();
  ASSERT_EQ(options.site.coordinator_workers, 1u);
  ASSERT_EQ(options.site.participant_workers, 1u);
  ASSERT_EQ(options.site.lock_shards, 1u);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kStagedXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  for (int i = 0; i < 5; ++i) {
    auto result = cluster.execute_text(
        0, {"query d1 /site/people/person/name",
            "update d1 change /site/people/person[@id='p1']/phone ::= " +
                std::to_string(1000 + i)});
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().state, TxnState::kCommitted);
    ASSERT_EQ(result.value().rows[0].size(), 3u);
  }
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed, 5u);
  EXPECT_EQ(stats.aborted + stats.failed, 0u);
}

}  // namespace
}  // namespace dtx::core
