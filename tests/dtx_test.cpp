#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "dtx/cluster.hpp"
#include "dtx/wal.hpp"
#include "dtx/lock_manager.hpp"
#include "util/rng.hpp"
#include "xml/parser.hpp"

namespace dtx::core {
namespace {

using namespace std::chrono_literals;
using txn::TxnState;

constexpr const char* kPeopleXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "</people></site>";

constexpr const char* kProductsXml =
    "<site><regions><europe>"
    "<item id=\"i1\"><name>Clock</name><price>10.30</price></item>"
    "<item id=\"i2\"><name>Vase</name><price>99.00</price></item>"
    "</europe></regions></site>";

ClusterOptions fast_options(std::size_t sites,
                            lock::ProtocolKind protocol =
                                lock::ProtocolKind::kXdgl) {
  ClusterOptions options;
  options.site_count = sites;
  options.protocol = protocol;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

/// Order-insensitive structural fingerprint: XDGL's SI lock deliberately
/// lets independent transactions insert under the same node concurrently,
/// so replicas may interleave siblings differently; content must agree as a
/// multiset at every level.
std::string fingerprint(const xml::Node& node) {
  std::string out = node.is_element() ? "<" + node.name() : "#t:" + node.value();
  if (node.is_element()) {
    auto attributes = node.attributes();
    std::sort(attributes.begin(), attributes.end());
    for (const auto& [k, v] : attributes) out += " " + k + "=" + v;
    std::vector<std::string> children;
    children.reserve(node.child_count());
    for (const auto& child : node.children()) {
      children.push_back(fingerprint(*child));
    }
    std::sort(children.begin(), children.end());
    out += "{";
    for (const auto& child : children) out += child + ",";
    out += "}>";
  }
  return out;
}

/// After stop(), all replicas of every document must agree.
void expect_replicas_consistent(Cluster& cluster) {
  for (const std::string& doc : cluster.catalog().documents()) {
    std::string reference;
    for (net::SiteId site : cluster.catalog().sites_of(doc)) {
      auto xml_text = wal::materialize(cluster.store_of(site), doc);
      ASSERT_TRUE(xml_text.is_ok());
      auto parsed = xml::parse(xml_text.value(), doc);
      ASSERT_TRUE(parsed.is_ok());
      const std::string print = fingerprint(*parsed.value()->root());
      if (reference.empty()) {
        reference = print;
      } else {
        EXPECT_EQ(print, reference)
            << "replica divergence for " << doc << " at site " << site;
      }
    }
  }
}

// --- single-site basics ---------------------------------------------------------

TEST(ClusterTest, SingleSiteQueryCommits) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"query d1 /site/people/person[@id='p1']/name"});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_EQ(result.value().rows.size(), 1u);
  ASSERT_EQ(result.value().rows[0].size(), 1u);
  EXPECT_EQ(result.value().rows[0][0], "Ana");
}

TEST(ClusterTest, MultiOperationTransaction) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"query d1 /site/people/person[@id='p1']/name",
          "query d1 /site/people/person[@id='p2']/phone",
          "query d1 /site/people/person/name"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  ASSERT_EQ(result.value().rows.size(), 3u);
  EXPECT_EQ(result.value().rows[1][0], "222");
  EXPECT_EQ(result.value().rows[2].size(), 2u);
}

TEST(ClusterTest, UpdatePersistsToStorage) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"update d1 insert into /site/people ::= "
          "<person id=\"p9\"><name>Zoe</name></person>",
          "query d1 /site/people/person[@id='p9']/name"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[1][0], "Zoe");  // own write visible
  cluster.stop();
  auto stored = wal::materialize(cluster.store_of(0), "d1");
  ASSERT_TRUE(stored.is_ok());
  EXPECT_NE(stored.value().find("Zoe"), std::string::npos);
}

TEST(ClusterTest, FailedOperationAbortsAndRollsBack) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"update d1 insert into /site/people ::= "
          "<person id=\"p9\"><name>Zoe</name></person>",
          // Insert beside the root is a structural error -> abort.
          "update d1 insert after /site ::= <oops/>"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  // The first op's effects must be gone.
  auto check =
      cluster.execute_text(0, {"query d1 /site/people/person[@id='p9']/name"});
  ASSERT_TRUE(check.is_ok());
  EXPECT_EQ(check.value().state, TxnState::kCommitted);
  EXPECT_TRUE(check.value().rows[0].empty());
  cluster.stop();
  auto stored = wal::materialize(cluster.store_of(0), "d1");
  EXPECT_EQ(stored.value().find("Zoe"), std::string::npos);
}

TEST(ClusterTest, UnknownDocumentAborts) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(0, {"query ghost /site/people"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
}

TEST(ClusterTest, MalformedOperationRejectedAtSubmit) {
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  EXPECT_FALSE(cluster.execute_text(0, {"explode d1 /site"}).is_ok());
  EXPECT_FALSE(cluster.execute_text(0, {"query d1 not-a-path"}).is_ok());
}

// --- distributed execution --------------------------------------------------------

TEST(ClusterTest, DistributedQueryOnReplicatedDocument) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"query d1 /site/people/person[@id='p2']/name"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[0][0], "Bruno");
}

TEST(ClusterTest, QueryOnRemoteOnlyDocument) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d2", kProductsXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  // Client connects to site 0; the data lives only at site 1.
  auto result = cluster.execute_text(
      0, {"query d2 /site/regions/europe/item[@id='i1']/price"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[0][0], "10.30");
}

TEST(ClusterTest, DistributedUpdateReachesAllReplicas) {
  Cluster cluster(fast_options(3));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1, 2}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      1, {"update d1 change /site/people/person[@id='p1']/phone ::= 999"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  cluster.stop();
  for (net::SiteId site : {0u, 1u, 2u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    ASSERT_TRUE(stored.is_ok());
    EXPECT_NE(stored.value().find("999"), std::string::npos)
        << "site " << site << " missed the update";
  }
  expect_replicas_consistent(cluster);
}

TEST(ClusterTest, CrossDocumentTransaction) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kProductsXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"query d1 /site/people/person[@id='p1']/name",
          "update d2 change /site/regions/europe/item[@id='i1']/price "
          "::= 42.00",
          "query d2 /site/regions/europe/item[@id='i1']/price"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(result.value().rows[0][0], "Ana");
  EXPECT_EQ(result.value().rows[2][0], "42.00");
}

TEST(ClusterTest, AbortUndoesAcrossSites) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto result = cluster.execute_text(
      0, {"update d1 insert into /site/people ::= <person id=\"px\"/>",
          "update d1 insert after /site ::= <bad/>"});  // forces abort
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  cluster.stop();
  for (net::SiteId site : {0u, 1u}) {
    auto stored = wal::materialize(cluster.store_of(site), "d1");
    EXPECT_EQ(stored.value().find("px"), std::string::npos)
        << "aborted insert leaked at site " << site;
  }
  expect_replicas_consistent(cluster);
}

// --- concurrency ---------------------------------------------------------------------

TEST(ClusterTest, ConcurrentDisjointUpdatesAllCommit) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kProductsXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto t1 = cluster.submit_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 100"});
  auto t2 = cluster.submit_text(
      1, {"update d2 change /site/regions/europe/item[@id='i1']/price "
          "::= 1.00"});
  ASSERT_TRUE(t1.is_ok() && t2.is_ok());
  EXPECT_EQ(t1.value()->await().state, TxnState::kCommitted);
  EXPECT_EQ(t2.value()->await().state, TxnState::kCommitted);
}

TEST(ClusterTest, ConflictingTransactionsSerializeViaWait) {
  // Many concurrent single-op writers on the same element: every one
  // conflicts with every other (X on the same guide path). They must all
  // terminate — the lock release wake-up path gets exercised hard.
  Cluster cluster(fast_options(1));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr int kWriters = 12;
  std::vector<std::shared_ptr<txn::Transaction>> handles;
  for (int i = 0; i < kWriters; ++i) {
    auto handle = cluster.submit_text(
        0, {"update d1 change /site/people/person[@id='p1']/phone ::= " +
            std::to_string(i)});
    ASSERT_TRUE(handle.is_ok());
    handles.push_back(handle.value());
  }
  int committed = 0;
  for (auto& handle : handles) {
    const auto result = handle->await();
    if (result.state == TxnState::kCommitted) ++committed;
  }
  // Single-path writers never deadlock (one lock target): all must commit.
  EXPECT_EQ(committed, kWriters);
}

TEST(ClusterTest, DistributedDeadlockResolvedByVictimAbort) {
  // The §2.4 shape: two transactions at two sites acquire locks on the two
  // documents in opposite orders. Repeated rounds make at least one
  // distributed deadlock (and its victim abort) all but certain; every
  // transaction must terminate either way.
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kProductsXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  std::uint64_t deadlocks = 0;
  for (int round = 0; round < 20 && deadlocks == 0; ++round) {
    auto t1 = cluster.submit_text(
        0, {"query d1 /site/people/person/name",
            "update d2 insert into /site/regions/europe ::= "
            "<item id=\"a" + std::to_string(round) + "\"/>"});
    auto t2 = cluster.submit_text(
        1, {"query d2 /site/regions/europe/item/name",
            "update d1 insert into /site/people ::= "
            "<person id=\"b" + std::to_string(round) + "\"/>"});
    ASSERT_TRUE(t1.is_ok() && t2.is_ok());
    const auto r1 = t1.value()->await();
    const auto r2 = t2.value()->await();
    EXPECT_NE(r1.state, TxnState::kActive);
    EXPECT_NE(r2.state, TxnState::kActive);
    deadlocks = cluster.stats().deadlock_aborts;
  }
  EXPECT_GT(deadlocks, 0u) << "no deadlock arose in 20 adversarial rounds";
  cluster.stop();
  expect_replicas_consistent(cluster);
}

TEST(ClusterTest, MixedStressKeepsReplicasConsistent) {
  Cluster cluster(fast_options(3));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kProductsXml, {1, 2}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  constexpr int kClients = 9;
  constexpr int kTxnsPerClient = 6;
  std::vector<std::thread> clients;
  std::atomic<int> terminated{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      util::Rng rng(static_cast<std::uint64_t>(c) + 77);
      for (int t = 0; t < kTxnsPerClient; ++t) {
        std::vector<std::string> ops;
        for (int o = 0; o < 3; ++o) {
          const bool on_d1 = rng.next_bool(0.5);
          if (rng.next_bool(0.4)) {
            ops.push_back(
                on_d1 ? "update d1 insert into /site/people ::= <person id=\"s" +
                            std::to_string(c * 1000 + t * 10 + o) + "\"/>"
                      : "update d2 change "
                        "/site/regions/europe/item[@id='i1']/price ::= " +
                            std::to_string(rng.next_below(100)) + ".00");
          } else {
            ops.push_back(on_d1 ? "query d1 /site/people/person/name"
                                : "query d2 /site/regions/europe/item/name");
          }
        }
        auto result =
            cluster.execute_text(static_cast<net::SiteId>(c % 3), ops);
        ASSERT_TRUE(result.is_ok());
        ++terminated;
      }
    });
  }
  for (auto& client : clients) client.join();
  EXPECT_EQ(terminated.load(), kClients * kTxnsPerClient);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed + stats.aborted + stats.failed,
            static_cast<std::uint64_t>(kClients * kTxnsPerClient));
  EXPECT_GT(stats.committed, 0u);
  cluster.stop();
  expect_replicas_consistent(cluster);
}

// --- protocol swap ("DTX proved quite flexible to changes") --------------------------

class ProtocolSwapTest
    : public ::testing::TestWithParam<lock::ProtocolKind> {};

TEST_P(ProtocolSwapTest, BasicWorkloadCommitsUnderEveryProtocol) {
  Cluster cluster(fast_options(2, GetParam()));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  auto read = cluster.execute_text(0, {"query d1 /site/people/person/name"});
  ASSERT_TRUE(read.is_ok());
  EXPECT_EQ(read.value().state, TxnState::kCommitted);
  auto write = cluster.execute_text(
      1, {"update d1 change /site/people/person[@id='p2']/phone ::= 321"});
  ASSERT_TRUE(write.is_ok());
  EXPECT_EQ(write.value().state, TxnState::kCommitted);
  cluster.stop();
  expect_replicas_consistent(cluster);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSwapTest,
                         ::testing::Values(lock::ProtocolKind::kXdgl,
                                           lock::ProtocolKind::kNode2pl,
                                           lock::ProtocolKind::kDocLock2pl));

// --- failure injection ------------------------------------------------------------------

TEST(ClusterTest, DroppedAbortAckFailsTransaction) {
  ClusterOptions options = fast_options(2);
  options.site.response_timeout = std::chrono::microseconds(150'000);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::AbortAck>(message.payload);
    });
  });
  // op0 executes remotely; op1 fails structurally -> abort; the abort ack
  // never arrives -> Alg. 6 l. 5-10: the transaction *fails*.
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 7",
          "update d1 insert after /site ::= <bad/>"});
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kFailed);
}

TEST(ClusterTest, DroppedCommitAckStillCommitsConsistently) {
  ClusterOptions options = fast_options(2);
  options.site.response_timeout = std::chrono::microseconds(150'000);
  options.site.commit_ack_rounds = 2;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  cluster.network().faults([](net::FaultPlan& plan) {
    plan.set_message_filter([](const net::Message& message) {
      return std::holds_alternative<net::CommitAck>(message.payload);
    });
  });
  auto result = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 7"});
  ASSERT_TRUE(result.is_ok());
  // The first CommitRequest broadcast is the commit decision: the remote
  // participant persisted (only its ack is lost), so the coordinator must
  // NOT roll back — the seed's abort here left replica 1 with the update
  // and replica 0 without it. Presumed abort ends at the decision.
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_GE(cluster.stats().commit_resends, 1u);
  cluster.stop();
  expect_replicas_consistent(cluster);
}

// --- stats ---------------------------------------------------------------------------------

TEST(ClusterTest, StatsAccumulate) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  for (int i = 0; i < 4; ++i) {
    auto result =
        cluster.execute_text(i % 2, {"query d1 /site/people/person/name"});
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().state, TxnState::kCommitted);
  }
  // Read-only transactions ride the MVCC snapshot path: no locks, no
  // remote operations. A replicated update exercises the locked pipeline.
  auto update = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 7"});
  ASSERT_TRUE(update.is_ok());
  EXPECT_EQ(update.value().state, TxnState::kCommitted);
  const ClusterStats stats = cluster.stats();
  EXPECT_EQ(stats.committed, 5u);
  EXPECT_EQ(stats.snapshot_txns, 4u);
  EXPECT_GE(stats.snapshots.reads, 4u);
  EXPECT_GT(stats.lock_acquisitions, 0u);
  EXPECT_GT(stats.remote_ops, 0u);
  EXPECT_GT(stats.network.messages_sent, 0u);
}

}  // namespace
}  // namespace dtx::core
