// MVCC snapshot-read correctness (src/dtx/snapshot_store.*,
// snapshot_read.*, the coordinator fast path):
//
//  * visibility — a read-only transaction sees the latest committed state,
//    including across the remote (SnapshotReadRequest) serving path;
//  * isolation — the lock-free path acquires zero locks and adds zero
//    wait-for entries (asserted by counters, not by construction);
//  * consistent cuts — a transaction updating several documents is seen
//    either entirely or not at all by concurrent multi-document readers;
//  * chain lifecycle — a handed-out snapshot stays valid (pinned by its
//    shared_ptr) across later commits, checkpoints and pruning; bounded
//    chains fall back to wal::materialize instead of failing;
//  * the locked baseline (SiteOptions::snapshot_reads = false) still
//    routes read-only transactions through the lock manager.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "client/client.hpp"
#include "client/txn_builder.hpp"
#include "dtx/cluster.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/snapshot_store.hpp"
#include "query/plan.hpp"
#include "storage/memory_store.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::core {
namespace {

using namespace std::chrono_literals;
using txn::TxnState;

constexpr const char* kPeopleXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "</people></site>";

ClusterOptions fast_options(std::size_t sites) {
  ClusterOptions options;
  options.site_count = sites;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

std::vector<std::string> eval(const SnapshotStore::DocView& view,
                              const std::string& path_text) {
  auto path = xpath::parse(path_text);
  EXPECT_TRUE(path.is_ok()) << path.status().to_string();
  return xpath::evaluate_strings(path.value(), *view.tree);
}

// --- cluster-level visibility / isolation ------------------------------------

TEST(SnapshotReadTest, ReadOnlyTxnSeesLatestCommittedState) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto updated = cluster.execute_text(
      0, {"update d1 change /site/people/person[@id='p1']/phone ::= 999"});
  ASSERT_TRUE(updated.is_ok());
  ASSERT_EQ(updated.value().state, TxnState::kCommitted);

  auto read = cluster.execute_text(
      0, {"query d1 /site/people/person[@id='p1']/phone"});
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().state, TxnState::kCommitted);
  ASSERT_EQ(read.value().rows.size(), 1u);
  ASSERT_EQ(read.value().rows[0].size(), 1u);
  EXPECT_EQ(read.value().rows[0][0], "999");
  EXPECT_GE(cluster.stats().snapshot_txns, 1u);
}

TEST(SnapshotReadTest, RemoteServingPathAnswersForUnhostedDocuments) {
  // d2 lives only on site 1; a read-only transaction submitted at site 0
  // must be served through a SnapshotReadRequest round to site 1.
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kPeopleXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  auto read = cluster.execute_text(
      0, {"query d1 /site/people/person/name",
          "query d2 /site/people/person/name"});
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().state, TxnState::kCommitted);
  ASSERT_EQ(read.value().rows.size(), 2u);
  EXPECT_EQ(read.value().rows[0].size(), 2u);
  EXPECT_EQ(read.value().rows[1].size(), 2u);
  EXPECT_GE(cluster.stats().snapshot_txns, 1u);
}

TEST(SnapshotReadTest, ReadOnlyTxnsAcquireZeroLocksAndNoWfgEntries) {
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kPeopleXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  const std::uint64_t locks_before = cluster.stats().lock_acquisitions;
  constexpr std::size_t kReads = 5;
  for (std::size_t i = 0; i < kReads; ++i) {
    auto read = cluster.execute_text(
        0, {"query d1 /site/people/person/phone",
            "query d2 /site/people/person/name"});
    ASSERT_TRUE(read.is_ok());
    ASSERT_EQ(read.value().state, TxnState::kCommitted);
  }
  const ClusterStats after = cluster.stats();
  EXPECT_EQ(after.lock_acquisitions, locks_before)
      << "read-only transactions must not touch the lock manager";
  EXPECT_EQ(after.snapshot_txns, kReads);
  EXPECT_GE(after.snapshots.reads, kReads);
  for (net::SiteId site = 0; site < 2; ++site) {
    EXPECT_TRUE(cluster.site(site).lock_manager().wfg_edges().empty())
        << "site " << site;
  }
}

TEST(SnapshotReadTest, LockedBaselineStillServesReadsThroughLockManager) {
  ClusterOptions options = fast_options(2);
  options.site.snapshot_reads = false;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());

  const std::uint64_t locks_before = cluster.stats().lock_acquisitions;
  auto read =
      cluster.execute_text(0, {"query d1 /site/people/person/phone"});
  ASSERT_TRUE(read.is_ok());
  ASSERT_EQ(read.value().state, TxnState::kCommitted);
  const ClusterStats after = cluster.stats();
  EXPECT_EQ(after.snapshot_txns, 0u);
  EXPECT_EQ(after.snapshots.reads, 0u);
  EXPECT_GT(after.lock_acquisitions, locks_before);
}

TEST(SnapshotReadTest, MultiDocumentCutIsNeverTorn) {
  // One writer commits {d1.phone = vi, d2.phone = vi} atomically; readers
  // snapshot both documents in one transaction. A consistent cut must show
  // the same vi on both sides — seeing d1 at vi and d2 at v(i-1) would be
  // a torn read across the atomic commit batch.
  Cluster cluster(fast_options(2));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.load_document("d2", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  // Align the two documents before the race starts (the seeds differ only
  // in the base XML's phone, which is already equal).
  client::Client client(cluster);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> torn{0};
  std::thread writer([&] {
    client::SessionOptions session_options;
    session_options.retry.max_deadlock_retries = 3;
    client::Session session = client.session(session_options);
    for (int i = 1; i <= 40 && !stop.load(); ++i) {
      const std::string value = "v" + std::to_string(i);
      auto prepared =
          client::TxnBuilder()
              .change("d1", "/site/people/person[@id='p1']/phone", value)
              .change("d2", "/site/people/person[@id='p1']/phone", value)
              .build();
      ASSERT_TRUE(prepared.is_ok());
      auto result = session.execute(prepared.value());
      ASSERT_TRUE(result.is_ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 2; ++reader) {
    readers.emplace_back([&] {
      client::Session session = client.session();
      auto prepared =
          client::TxnBuilder()
              .query("d1", "/site/people/person[@id='p1']/phone")
              .query("d2", "/site/people/person[@id='p1']/phone")
              .build();
      ASSERT_TRUE(prepared.is_ok());
      while (!stop.load()) {
        auto result = session.execute(prepared.value());
        ASSERT_TRUE(result.is_ok());
        if (result.value().state != TxnState::kCommitted) continue;
        ASSERT_EQ(result.value().rows.size(), 2u);
        if (result.value().rows[0] != result.value().rows[1]) ++torn;
      }
    });
  }
  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(cluster.stats().snapshot_txns, 0u);
}

// --- SnapshotStore unit behavior ---------------------------------------------

struct StoreFixture {
  storage::MemoryStore store;
  SnapshotStore snaps;
  DataManager manager;

  explicit StoreFixture(std::size_t checkpoint_interval = 1 << 16,
                        std::size_t chain_depth = 32)
      : snaps(store, /*enabled=*/true, chain_depth, /*chain_bytes=*/0),
        manager(store, checkpoint_interval, /*checkpoint_log_bytes=*/0,
                &snaps) {
    EXPECT_TRUE(store.store("d", kPeopleXml).is_ok());
    EXPECT_TRUE(manager.load_all().is_ok());
  }

  /// One committed phone change; returns the checkpoint-due list.
  void commit_change(TxnId txn, const std::string& value) {
    auto plan = query::compile_text(
        "update d change /site/people/person[@id='p1']/phone ::= " + value);
    ASSERT_TRUE(plan.is_ok()) << plan.status().to_string();
    ASSERT_TRUE(manager.run_update(txn, plan.value()).is_ok());
    std::vector<std::string> due;
    ASSERT_TRUE(manager.persist(txn, &due).is_ok());
    manager.run_checkpoints(due);
  }
};

TEST(SnapshotStoreTest, EarlyCutStaysPinnedAcrossCommitsAndCheckpoints) {
  // checkpoint_interval=2 compacts (and prunes the chain) constantly; the
  // handed-out shared_ptr is the pin, so the old view must keep serving
  // its original content regardless.
  StoreFixture fx(/*checkpoint_interval=*/2, /*chain_depth=*/2);
  auto early = fx.snaps.snapshot({"d"});
  ASSERT_TRUE(early.is_ok()) << early.status().to_string();
  const auto early_view = early.value().at("d");

  for (TxnId txn = 100; txn < 120; ++txn) {
    fx.commit_change(txn, "n" + std::to_string(txn));
  }

  const auto phones =
      eval(early_view, "/site/people/person[@id='p1']/phone");
  ASSERT_EQ(phones.size(), 1u);
  EXPECT_EQ(phones[0], "111") << "pinned snapshot changed under the reader";

  auto fresh = fx.snaps.snapshot({"d"});
  ASSERT_TRUE(fresh.is_ok());
  const auto now =
      eval(fresh.value().at("d"), "/site/people/person[@id='p1']/phone");
  ASSERT_EQ(now.size(), 1u);
  EXPECT_EQ(now[0], "n119");
  EXPECT_GT(fresh.value().at("d").version, early_view.version);
}

TEST(SnapshotStoreTest, DeltaChainAdvancesWithoutMaterializing) {
  StoreFixture fx;
  // The very first cut has no cached tree and must materialize the base.
  ASSERT_TRUE(fx.snaps.snapshot({"d"}).is_ok());
  const std::uint64_t base_materializes = fx.snaps.stats().materializes;
  for (TxnId txn = 200; txn < 205; ++txn) {
    fx.commit_change(txn, "m" + std::to_string(txn));
    auto cut = fx.snaps.snapshot({"d"});
    ASSERT_TRUE(cut.is_ok());
  }
  const SnapshotStats stats = fx.snaps.stats();
  EXPECT_EQ(stats.materializes, base_materializes)
      << "an unbroken delta chain must never re-read the store";
  EXPECT_GT(stats.chain_bytes_peak, 0u);
}

TEST(SnapshotStoreTest, PrunedChainFallsBackToMaterialize) {
  // chain_depth=1 keeps at most one delta: after several commits with no
  // intervening reads the cached tree is too old to roll forward, so the
  // next cut must rebuild from the durable log (and count it).
  StoreFixture fx(/*checkpoint_interval=*/1 << 16, /*chain_depth=*/1);
  ASSERT_TRUE(fx.snaps.snapshot({"d"}).is_ok());
  for (TxnId txn = 300; txn < 306; ++txn) {
    fx.commit_change(txn, "q" + std::to_string(txn));
  }
  auto cut = fx.snaps.snapshot({"d"});
  ASSERT_TRUE(cut.is_ok()) << cut.status().to_string();
  const auto phones =
      eval(cut.value().at("d"), "/site/people/person[@id='p1']/phone");
  ASSERT_EQ(phones.size(), 1u);
  EXPECT_EQ(phones[0], "q305");
  EXPECT_GE(fx.snaps.stats().materializes, 1u);
}

TEST(SnapshotStoreTest, UnknownDocumentIsRejected) {
  StoreFixture fx;
  auto cut = fx.snaps.snapshot({"nope"});
  EXPECT_FALSE(cut.is_ok());
}

TEST(SnapshotStoreTest, StressReadersVsWritersVsCheckpoints) {
  // TSAN target: concurrent cuts race commits and checkpoint pruning.
  // Every cut must parse as a consistent document version — monotone
  // versions per reader, content matching the version's committed value.
  ClusterOptions options = fast_options(2);
  options.site.checkpoint_interval = 2;   // prune / compact constantly
  options.site.snapshot_chain_depth = 2;  // force materialize fallbacks too
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  client::Client client(cluster);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    client::SessionOptions session_options;
    session_options.retry.max_deadlock_retries = 3;
    client::Session session = client.session(session_options);
    for (int i = 0; i < 30; ++i) {
      auto prepared =
          client::TxnBuilder()
              .change("d1", "/site/people/person[@id='p2']/phone",
                      "w" + std::to_string(i))
              .build();
      ASSERT_TRUE(prepared.is_ok());
      auto result = session.execute(prepared.value());
      ASSERT_TRUE(result.is_ok());
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int reader = 0; reader < 3; ++reader) {
    readers.emplace_back([&] {
      client::Session session = client.session();
      auto prepared = client::TxnBuilder()
                          .query("d1", "/site/people/person/phone")
                          .build();
      ASSERT_TRUE(prepared.is_ok());
      while (!stop.load()) {
        auto result = session.execute(prepared.value());
        ASSERT_TRUE(result.is_ok());
        if (result.value().state == TxnState::kCommitted) {
          ASSERT_EQ(result.value().rows.size(), 1u);
          ASSERT_EQ(result.value().rows[0].size(), 2u);
        }
      }
    });
  }
  writer.join();
  for (std::thread& thread : readers) thread.join();
  EXPECT_GT(cluster.stats().snapshot_txns, 0u);
}

}  // namespace
}  // namespace dtx::core
