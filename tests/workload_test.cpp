#include <gtest/gtest.h>

#include <set>

#include "dtx/cluster.hpp"
#include "workload/dtx_tester.hpp"
#include "workload/fragmentation.hpp"
#include "workload/workload_gen.hpp"
#include "workload/xmark.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xpath/parser.hpp"

namespace dtx::workload {
namespace {

XmarkData small_xmark(std::size_t bytes = 60'000, std::uint64_t seed = 42) {
  XmarkOptions options;
  options.target_bytes = bytes;
  options.seed = seed;
  return generate_xmark(options);
}

// --- generator ------------------------------------------------------------------

TEST(XmarkTest, SizeRoughlyMatchesTarget) {
  const XmarkData data = small_xmark(100'000);
  const std::size_t actual = xml::serialize(*data.document).size();
  EXPECT_GT(actual, 50'000u);
  EXPECT_LT(actual, 220'000u);
}

TEST(XmarkTest, DeterministicForSeed) {
  const XmarkData a = small_xmark(30'000, 7);
  const XmarkData b = small_xmark(30'000, 7);
  EXPECT_EQ(xml::serialize(*a.document), xml::serialize(*b.document));
  const XmarkData c = small_xmark(30'000, 8);
  EXPECT_NE(xml::serialize(*a.document), xml::serialize(*c.document));
}

TEST(XmarkTest, SchemaSectionsPresent) {
  const XmarkData data = small_xmark();
  const xml::Node* root = data.document->root();
  ASSERT_EQ(root->name(), "site");
  for (const char* section : {"regions", "categories", "catgraph", "people",
                              "open_auctions", "closed_auctions"}) {
    EXPECT_NE(root->first_child_named(section), nullptr) << section;
  }
  const xml::Node* regions = root->first_child_named("regions");
  for (const char* continent : kContinents) {
    EXPECT_NE(regions->first_child_named(continent), nullptr) << continent;
  }
}

TEST(XmarkTest, IdsMatchDocumentContent) {
  const XmarkData data = small_xmark();
  auto path = xpath::parse("/site/people/person/@id");
  ASSERT_TRUE(path.is_ok());
  const auto ids = xpath::evaluate_strings(path.value(), *data.document);
  EXPECT_EQ(ids.size(), data.person_ids.size());
  const std::set<std::string> found(ids.begin(), ids.end());
  for (const std::string& id : data.person_ids) {
    EXPECT_EQ(found.count(id), 1u) << id;
  }
}

TEST(XmarkTest, ItemsHavePrices) {
  const XmarkData data = small_xmark();
  auto path = xpath::parse("//item/price");
  ASSERT_TRUE(path.is_ok());
  std::size_t items = 0;
  for (const auto& [continent, ids] : data.items_by_continent) {
    (void)continent;
    items += ids.size();
  }
  EXPECT_EQ(xpath::evaluate(path.value(), *data.document).size(), items);
}

TEST(XmarkTest, LargerTargetMeansMoreEntities) {
  const XmarkData small = small_xmark(30'000);
  const XmarkData large = small_xmark(240'000);
  EXPECT_GT(large.person_ids.size(), 2 * small.person_ids.size());
  EXPECT_GT(large.open_auction_ids.size(), 2 * small.open_auction_ids.size());
}

// --- fragmentation ----------------------------------------------------------------

TEST(FragmentationTest, FragmentsCoverAllEntities) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 6);
  std::set<std::string> covered;
  for (const Fragment& fragment : fragments) {
    for (const std::string& id : fragment.ids) {
      EXPECT_TRUE(covered.insert(id).second) << "duplicate id " << id;
    }
  }
  for (const std::string& id : data.person_ids) EXPECT_TRUE(covered.count(id));
  for (const std::string& id : data.open_auction_ids) {
    EXPECT_TRUE(covered.count(id));
  }
}

TEST(FragmentationTest, FragmentsAreParseableAndQueryable) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 5);
  for (const Fragment& fragment : fragments) {
    auto parsed = xml::parse(fragment.xml, fragment.doc_name);
    ASSERT_TRUE(parsed.is_ok()) << fragment.doc_name;
    EXPECT_EQ(parsed.value()->root()->name(), "site");
    if (fragment.section == "people" && !fragment.ids.empty()) {
      auto path = xpath::parse("/site/people/person[@id='" +
                               fragment.ids.front() + "']/name");
      ASSERT_TRUE(path.is_ok());
      EXPECT_EQ(xpath::evaluate(path.value(), *parsed.value()).size(), 1u);
    }
  }
}

TEST(FragmentationTest, SizesAreBalanced) {
  const XmarkData data = small_xmark(120'000);
  const auto fragments = fragment_xmark(data, 8);
  ASSERT_GE(fragments.size(), 8u);
  std::size_t min_bytes = SIZE_MAX;
  std::size_t max_bytes = 0;
  for (const Fragment& fragment : fragments) {
    min_bytes = std::min(min_bytes, fragment.bytes);
    max_bytes = std::max(max_bytes, fragment.bytes);
  }
  // Kurita-style "similar size": within a modest factor. Section boundaries
  // force slack — a small whole section (e.g. categories) becomes one small
  // fragment no matter the target.
  EXPECT_LT(max_bytes, min_bytes * 10) << min_bytes << " vs " << max_bytes;
  // Fragments of the biggest, actually-split sections must be tight.
  std::map<std::string, std::vector<std::size_t>> by_group;
  for (const Fragment& fragment : fragments) {
    by_group[fragment.section + "/" + fragment.continent].push_back(
        fragment.bytes);
  }
  for (const auto& [group, sizes] : by_group) {
    if (sizes.size() < 2) continue;
    const auto [lo, hi] = std::minmax_element(sizes.begin(), sizes.end());
    EXPECT_LT(*hi, *lo * 3) << group;
  }
}

TEST(FragmentationTest, TotalReplicationPlacesEverywhere) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  const auto placements =
      place_fragments(fragments, 3, Replication::kTotal);
  ASSERT_EQ(placements.size(), fragments.size());
  for (const Placement& placement : placements) {
    EXPECT_EQ(placement.sites.size(), 3u);
  }
}

TEST(FragmentationTest, PartialReplicationBalancesBytes) {
  const XmarkData data = small_xmark(120'000);
  const auto fragments = fragment_xmark(data, 8);
  const auto placements =
      place_fragments(fragments, 4, Replication::kPartial, 2);
  std::map<SiteId, std::size_t> load;
  std::map<std::string, std::size_t> bytes_by_doc;
  for (const Fragment& fragment : fragments) {
    bytes_by_doc[fragment.doc_name] = fragment.bytes;
  }
  for (const Placement& placement : placements) {
    EXPECT_EQ(placement.sites.size(), 2u);
    for (SiteId site : placement.sites) {
      load[site] += bytes_by_doc[placement.doc];
    }
  }
  ASSERT_EQ(load.size(), 4u);
  std::size_t min_load = SIZE_MAX;
  std::size_t max_load = 0;
  for (const auto& [site, bytes] : load) {
    min_load = std::min(min_load, bytes);
    max_load = std::max(max_load, bytes);
  }
  EXPECT_LT(max_load, min_load * 3);
}

TEST(FragmentationTest, CopiesClampedToSiteCount) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 3);
  const auto placements =
      place_fragments(fragments, 2, Replication::kPartial, 9);
  for (const Placement& placement : placements) {
    EXPECT_LE(placement.sites.size(), 2u);
  }
}

// --- workload generator -----------------------------------------------------------------

TEST(WorkloadGenTest, TransactionsHaveRequestedShape) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  WorkloadOptions options;
  options.ops_per_transaction = 5;
  options.update_txn_fraction = 0.0;
  WorkloadGenerator generator(fragments, options);
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto ops = generator.make_transaction(rng);
    ASSERT_EQ(ops.size(), 5u);
    for (const std::string& op : ops) {
      EXPECT_EQ(op.rfind("query ", 0), 0u) << op;  // read-only workload
    }
  }
}

TEST(WorkloadGenTest, AllOperationsParse) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  WorkloadOptions options;
  options.update_txn_fraction = 0.5;
  WorkloadGenerator generator(fragments, options);
  util::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    for (const std::string& text : generator.make_transaction(rng)) {
      auto op = txn::parse_operation(text);
      EXPECT_TRUE(op.is_ok()) << text << " -> " << op.status().to_string();
    }
  }
}

TEST(WorkloadGenTest, UpdateTransactionsContainAnUpdate) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  WorkloadOptions options;
  options.update_txn_fraction = 1.0;
  options.update_op_fraction = 0.2;
  WorkloadGenerator generator(fragments, options);
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    bool is_update = false;
    const auto ops = generator.make_transaction(rng, &is_update);
    EXPECT_TRUE(is_update);
    bool found = false;
    for (const std::string& op : ops) {
      if (op.rfind("update ", 0) == 0) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(WorkloadGenTest, UpdateFractionRoughlyHonoured) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  WorkloadOptions options;
  options.update_txn_fraction = 0.4;
  WorkloadGenerator generator(fragments, options);
  util::Rng rng(4);
  int updates = 0;
  constexpr int kTxns = 2000;
  for (int i = 0; i < kTxns; ++i) {
    bool is_update = false;
    (void)generator.make_transaction(rng, &is_update);
    if (is_update) ++updates;
  }
  EXPECT_NEAR(static_cast<double>(updates) / kTxns, 0.4, 0.05);
}

TEST(WorkloadGenTest, QueriesTargetExistingDocuments) {
  const XmarkData data = small_xmark();
  const auto fragments = fragment_xmark(data, 4);
  std::set<std::string> docs;
  for (const Fragment& fragment : fragments) docs.insert(fragment.doc_name);
  WorkloadGenerator generator(fragments, {});
  util::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    for (const std::string& text : generator.make_transaction(rng)) {
      auto op = txn::parse_operation(text);
      ASSERT_TRUE(op.is_ok());
      EXPECT_EQ(docs.count(op.value().doc), 1u) << text;
    }
  }
}

// --- DTXTester end-to-end ------------------------------------------------------------------

TEST(DtxTesterTest, EndToEndRunReportsAllTransactions) {
  const XmarkData data = small_xmark(40'000);
  const auto fragments = fragment_xmark(data, 4);
  core::ClusterOptions cluster_options;
  cluster_options.site_count = 2;
  cluster_options.network.latency = std::chrono::microseconds(50);
  cluster_options.site.detect_period = std::chrono::microseconds(5'000);
  cluster_options.site.retry_interval = std::chrono::microseconds(10'000);
  cluster_options.site.poll_interval = std::chrono::microseconds(500);
  core::Cluster cluster(cluster_options);
  for (const auto& placement :
       place_fragments(fragments, 2, Replication::kPartial, 1)) {
    const auto it =
        std::find_if(fragments.begin(), fragments.end(),
                     [&](const Fragment& f) { return f.doc_name == placement.doc; });
    ASSERT_NE(it, fragments.end());
    ASSERT_TRUE(
        cluster.load_document(placement.doc, it->xml, placement.sites).is_ok());
  }
  ASSERT_TRUE(cluster.start().is_ok());

  WorkloadOptions workload;
  workload.ops_per_transaction = 3;
  workload.update_txn_fraction = 0.3;
  TesterOptions tester;
  tester.clients = 6;
  tester.txns_per_client = 4;
  const TesterReport report =
      run_tester(cluster, fragments, workload, tester);

  EXPECT_EQ(report.submitted, 24u);
  EXPECT_EQ(report.observations.size(), 24u);
  EXPECT_EQ(report.committed + report.aborted + report.failed, 24u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_EQ(report.response_ms.count(), report.committed);

  const auto throughput = report.throughput_timeline(0.05);
  std::size_t total = 0;
  for (const auto& [t, commits] : throughput) {
    (void)t;
    total += commits;
  }
  EXPECT_EQ(total, report.committed);

  const auto concurrency = report.concurrency_timeline(0.05);
  EXPECT_FALSE(concurrency.empty());
}

}  // namespace
}  // namespace dtx::workload
