#include <gtest/gtest.h>

#include <thread>

#include "txn/abort_reason.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/rng.hpp"
#include "workload/workload_gen.hpp"

namespace dtx::txn {
namespace {

TEST(OperationTest, ParseQuery) {
  auto op = parse_operation("query d1 /site/people/person[@id='p1']/name");
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  EXPECT_EQ(op.value().type, OpType::kQuery);
  EXPECT_EQ(op.value().doc, "d1");
  EXPECT_FALSE(op.value().is_update());
}

TEST(OperationTest, ParseUpdate) {
  auto op = parse_operation(
      "update d2 insert into /products ::= <product><id>13</id></product>");
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  EXPECT_EQ(op.value().type, OpType::kUpdate);
  EXPECT_EQ(op.value().doc, "d2");
  EXPECT_TRUE(op.value().is_update());
  EXPECT_EQ(op.value().update.kind, xupdate::UpdateKind::kInsert);
}

TEST(OperationTest, RoundTrip) {
  for (const char* text :
       {"query d1 /site/people/person",
        "query f3 //person[@id='p7']/emailaddress",
        "update d2 remove /products/product[id='4']",
        "update d2 change /products/product[id='4']/price ::= 9.99",
        "update d1 insert after /a/b ::= <c/>"}) {
    auto op = parse_operation(text);
    ASSERT_TRUE(op.is_ok()) << text;
    auto reparsed = parse_operation(op.value().to_string());
    ASSERT_TRUE(reparsed.is_ok()) << op.value().to_string();
    EXPECT_EQ(reparsed.value().to_string(), op.value().to_string());
  }
}

TEST(OperationTest, ParseErrors) {
  EXPECT_FALSE(parse_operation("").is_ok());
  EXPECT_FALSE(parse_operation("query").is_ok());
  EXPECT_FALSE(parse_operation("query d1").is_ok());
  EXPECT_FALSE(parse_operation("scan d1 /a").is_ok());
  EXPECT_FALSE(parse_operation("query d1 not-absolute").is_ok());
  EXPECT_FALSE(parse_operation("update d1 explode /a ::= x").is_ok());
}

TEST(OperationTest, ParseErrorsCarryInvalidArgumentAndContext) {
  // Every malformed input fails with kInvalidArgument (never a crash or a
  // misleading code) and a message naming what was wrong.
  const struct {
    const char* text;
    const char* expect_fragment;
  } cases[] = {
      {"", "verb"},
      {"   ", "verb"},
      {"query", "verb"},                      // no doc, no body
      {"query d1", "body"},                   // no body
      {"update d1", "body"},                  // no update syntax
      {"scan d1 /a", "verb"},                 // unknown verb
      {"QUERY d1 /a", "verb"},                // verbs are case-sensitive
      {"update d1 explode /a ::= x", ""},     // unknown update kind
      {"update d1 insert sideways /a ::= <x/>", ""},  // bad insert position
  };
  for (const auto& c : cases) {
    auto op = parse_operation(c.text);
    ASSERT_FALSE(op.is_ok()) << "'" << c.text << "' parsed";
    EXPECT_EQ(op.status().code(), util::Code::kInvalidArgument)
        << "'" << c.text << "' -> " << op.status().to_string();
    if (c.expect_fragment[0] != '\0') {
      EXPECT_NE(op.status().message().find(c.expect_fragment),
                std::string::npos)
          << "'" << c.text << "' -> " << op.status().to_string();
    }
  }
  // Whitespace-tolerant inputs still parse.
  EXPECT_TRUE(parse_operation("  query d1 /a/b  ").is_ok());
}

// Property: parse -> to_string -> parse is the identity (on the canonical
// textual form) for every operation the workload generator can emit. This
// is what lets operations travel as text between sites and lets
// PreparedTxn::to_text round-trip workload files.
TEST(OperationTest, RoundTripPropertyOverGeneratedWorkload) {
  workload::Fragment people;
  people.doc_name = "f0";
  people.section = "people";
  people.ids = {"p1", "p2", "p3"};
  workload::Fragment regions;
  regions.doc_name = "f1";
  regions.section = "regions";
  regions.continent = "europe";
  regions.ids = {"i1", "i2"};
  workload::Fragment auctions;
  auctions.doc_name = "f2";
  auctions.section = "open_auctions";
  auctions.ids = {"a1", "a2"};
  workload::Fragment categories;
  categories.doc_name = "f3";
  categories.section = "categories";
  categories.ids = {"c1"};

  workload::WorkloadOptions options;
  options.ops_per_transaction = 5;
  options.update_txn_fraction = 0.5;
  workload::WorkloadGenerator generator(
      {people, regions, auctions, categories}, options);
  util::Rng rng(2026);

  std::size_t checked = 0;
  for (int t = 0; t < 200; ++t) {
    for (const std::string& text : generator.make_transaction(rng)) {
      auto op = parse_operation(text);
      ASSERT_TRUE(op.is_ok()) << text << " -> " << op.status().to_string();
      const std::string canonical = op.value().to_string();
      auto reparsed = parse_operation(canonical);
      ASSERT_TRUE(reparsed.is_ok())
          << text << " -> '" << canonical << "' failed to reparse";
      // Fixed point: the canonical form re-serializes to itself.
      EXPECT_EQ(reparsed.value().to_string(), canonical) << text;
      EXPECT_EQ(reparsed.value().doc, op.value().doc);
      EXPECT_EQ(reparsed.value().type, op.value().type);
      ++checked;
    }
  }
  EXPECT_EQ(checked, 200u * 5u);
}

TEST(AbortReasonTest, NamesAndRetryability) {
  EXPECT_STREQ(abort_reason_name(AbortReason::kNone), "none");
  EXPECT_STREQ(abort_reason_name(AbortReason::kDeadlockVictim),
               "deadlock-victim");
  EXPECT_STREQ(abort_reason_name(AbortReason::kLockWaitExhausted),
               "lock-wait-exhausted");
  EXPECT_STREQ(abort_reason_name(AbortReason::kParseError), "parse-error");
  EXPECT_STREQ(abort_reason_name(AbortReason::kSiteFailure), "site-failure");
  EXPECT_STREQ(abort_reason_name(AbortReason::kUnprocessableUpdate),
               "unprocessable-update");

  EXPECT_TRUE(abort_reason_retryable(AbortReason::kDeadlockVictim));
  EXPECT_TRUE(abort_reason_retryable(AbortReason::kLockWaitExhausted));
  EXPECT_TRUE(abort_reason_retryable(AbortReason::kSiteFailure));
  EXPECT_FALSE(abort_reason_retryable(AbortReason::kNone));
  EXPECT_FALSE(abort_reason_retryable(AbortReason::kParseError));
  EXPECT_FALSE(abort_reason_retryable(AbortReason::kUnprocessableUpdate));
}

TEST(TxnIdTest, EncodingRoundTrips) {
  const TxnId id = make_txn_id(123456789, 42);
  EXPECT_EQ(txn_coordinator(id), 42u);
  EXPECT_EQ(txn_begin_micros(id), 123456789u);
}

TEST(TxnIdTest, NewerBeginsCompareGreater) {
  // The deadlock victim rule depends on id order == begin order.
  EXPECT_LT(make_txn_id(1000, 999), make_txn_id(1001, 0));
  EXPECT_LT(make_txn_id(1000, 0), make_txn_id(1000, 1));  // site tie-break
}

TEST(TxnStateTest, Names) {
  EXPECT_STREQ(txn_state_name(TxnState::kActive), "active");
  EXPECT_STREQ(txn_state_name(TxnState::kWaiting), "waiting");
  EXPECT_STREQ(txn_state_name(TxnState::kCommitted), "committed");
  EXPECT_STREQ(txn_state_name(TxnState::kAborted), "aborted");
  EXPECT_STREQ(txn_state_name(TxnState::kFailed), "failed");
}

std::vector<Operation> two_ops() {
  auto a = parse_operation("query d1 /site/people");
  auto b = parse_operation("query d1 /site/regions");
  return {a.value(), b.value()};
}

TEST(TransactionTest, NextOperationAdvancesWithExecution) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  EXPECT_EQ(txn.next_operation(), 0u);
  txn.state_of(0).executed = true;
  EXPECT_EQ(txn.next_operation(), 1u);
  txn.state_of(1).executed = true;
  EXPECT_EQ(txn.next_operation(), 2u);  // == op_count -> commit point
}

TEST(TransactionTest, SitesAccumulate) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  txn.add_sites({1, 2});
  txn.add_sites({2, 3});
  EXPECT_EQ(txn.sites(), (std::set<net::SiteId>{1, 2, 3}));
}

TEST(TransactionTest, CompletionLatchHandsResultToWaiter) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  EXPECT_FALSE(txn.completed());
  std::thread completer([&] {
    TxnResult result;
    result.id = txn.id();
    result.state = TxnState::kCommitted;
    txn.complete(std::move(result));
  });
  const TxnResult result = txn.await();
  completer.join();
  EXPECT_EQ(result.state, TxnState::kCommitted);
  EXPECT_TRUE(txn.completed());
}

TEST(TransactionTest, FirstCompletionWins) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  TxnResult aborted;
  aborted.state = TxnState::kAborted;
  txn.complete(std::move(aborted));
  TxnResult committed;
  committed.state = TxnState::kCommitted;
  txn.complete(std::move(committed));  // ignored
  EXPECT_EQ(txn.await().state, TxnState::kAborted);
}

}  // namespace
}  // namespace dtx::txn
