#include <gtest/gtest.h>

#include <thread>

#include "txn/operation.hpp"
#include "txn/transaction.hpp"

namespace dtx::txn {
namespace {

TEST(OperationTest, ParseQuery) {
  auto op = parse_operation("query d1 /site/people/person[@id='p1']/name");
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  EXPECT_EQ(op.value().type, OpType::kQuery);
  EXPECT_EQ(op.value().doc, "d1");
  EXPECT_FALSE(op.value().is_update());
}

TEST(OperationTest, ParseUpdate) {
  auto op = parse_operation(
      "update d2 insert into /products ::= <product><id>13</id></product>");
  ASSERT_TRUE(op.is_ok()) << op.status().to_string();
  EXPECT_EQ(op.value().type, OpType::kUpdate);
  EXPECT_EQ(op.value().doc, "d2");
  EXPECT_TRUE(op.value().is_update());
  EXPECT_EQ(op.value().update.kind, xupdate::UpdateKind::kInsert);
}

TEST(OperationTest, RoundTrip) {
  for (const char* text :
       {"query d1 /site/people/person",
        "query f3 //person[@id='p7']/emailaddress",
        "update d2 remove /products/product[id='4']",
        "update d2 change /products/product[id='4']/price ::= 9.99",
        "update d1 insert after /a/b ::= <c/>"}) {
    auto op = parse_operation(text);
    ASSERT_TRUE(op.is_ok()) << text;
    auto reparsed = parse_operation(op.value().to_string());
    ASSERT_TRUE(reparsed.is_ok()) << op.value().to_string();
    EXPECT_EQ(reparsed.value().to_string(), op.value().to_string());
  }
}

TEST(OperationTest, ParseErrors) {
  EXPECT_FALSE(parse_operation("").is_ok());
  EXPECT_FALSE(parse_operation("query").is_ok());
  EXPECT_FALSE(parse_operation("query d1").is_ok());
  EXPECT_FALSE(parse_operation("scan d1 /a").is_ok());
  EXPECT_FALSE(parse_operation("query d1 not-absolute").is_ok());
  EXPECT_FALSE(parse_operation("update d1 explode /a ::= x").is_ok());
}

TEST(TxnIdTest, EncodingRoundTrips) {
  const TxnId id = make_txn_id(123456789, 42);
  EXPECT_EQ(txn_coordinator(id), 42u);
  EXPECT_EQ(txn_begin_micros(id), 123456789u);
}

TEST(TxnIdTest, NewerBeginsCompareGreater) {
  // The deadlock victim rule depends on id order == begin order.
  EXPECT_LT(make_txn_id(1000, 999), make_txn_id(1001, 0));
  EXPECT_LT(make_txn_id(1000, 0), make_txn_id(1000, 1));  // site tie-break
}

TEST(TxnStateTest, Names) {
  EXPECT_STREQ(txn_state_name(TxnState::kActive), "active");
  EXPECT_STREQ(txn_state_name(TxnState::kWaiting), "waiting");
  EXPECT_STREQ(txn_state_name(TxnState::kCommitted), "committed");
  EXPECT_STREQ(txn_state_name(TxnState::kAborted), "aborted");
  EXPECT_STREQ(txn_state_name(TxnState::kFailed), "failed");
}

std::vector<Operation> two_ops() {
  auto a = parse_operation("query d1 /site/people");
  auto b = parse_operation("query d1 /site/regions");
  return {a.value(), b.value()};
}

TEST(TransactionTest, NextOperationAdvancesWithExecution) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  EXPECT_EQ(txn.next_operation(), 0u);
  txn.state_of(0).executed = true;
  EXPECT_EQ(txn.next_operation(), 1u);
  txn.state_of(1).executed = true;
  EXPECT_EQ(txn.next_operation(), 2u);  // == op_count -> commit point
}

TEST(TransactionTest, SitesAccumulate) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  txn.add_sites({1, 2});
  txn.add_sites({2, 3});
  EXPECT_EQ(txn.sites(), (std::set<net::SiteId>{1, 2, 3}));
}

TEST(TransactionTest, CompletionLatchHandsResultToWaiter) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  EXPECT_FALSE(txn.completed());
  std::thread completer([&] {
    TxnResult result;
    result.id = txn.id();
    result.state = TxnState::kCommitted;
    txn.complete(std::move(result));
  });
  const TxnResult result = txn.await();
  completer.join();
  EXPECT_EQ(result.state, TxnState::kCommitted);
  EXPECT_TRUE(txn.completed());
}

TEST(TransactionTest, FirstCompletionWins) {
  Transaction txn(make_txn_id(1, 0), two_ops());
  TxnResult aborted;
  aborted.state = TxnState::kAborted;
  txn.complete(std::move(aborted));
  TxnResult committed;
  committed.state = TxnState::kCommitted;
  txn.complete(std::move(committed));  // ignored
  EXPECT_EQ(txn.await().state, TxnState::kAborted);
}

}  // namespace
}  // namespace dtx::txn
