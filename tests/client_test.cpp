// Tests for the typed client layer (src/client): TxnBuilder validation,
// PreparedTxn reuse, each routing policy, the structured abort taxonomy,
// await_for deadlines and session-level retries.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "client/client.hpp"
#include "client/txn_builder.hpp"
#include "dtx/cluster.hpp"

namespace dtx::client {
namespace {

using namespace std::chrono_literals;
using core::Cluster;
using core::ClusterOptions;
using txn::AbortReason;
using txn::TxnState;

constexpr const char* kPeopleXml =
    "<site><people>"
    "<person id=\"p1\"><name>Ana</name><phone>111</phone></person>"
    "<person id=\"p2\"><name>Bruno</name><phone>222</phone></person>"
    "</people></site>";

ClusterOptions small_options(std::size_t sites = 2) {
  ClusterOptions options;
  options.site_count = sites;
  options.network.latency = std::chrono::microseconds(50);
  options.site.detect_period = std::chrono::microseconds(5'000);
  options.site.retry_interval = std::chrono::microseconds(10'000);
  options.site.poll_interval = std::chrono::microseconds(500);
  return options;
}

// --- TxnBuilder / PreparedTxn ------------------------------------------------

TEST(TxnBuilderTest, BuildsTypedOperations) {
  auto txn = TxnBuilder()
                 .query("d1", "/site/people/person[@id='p1']/name")
                 .change("d1", "/site/people/person[@id='p1']/phone", "999")
                 .insert("d1", "/site/people", "<person id=\"p9\"/>")
                 .remove("d1", "/site/people/person[@id='p9']")
                 .build();
  ASSERT_TRUE(txn.is_ok()) << txn.status().to_string();
  EXPECT_EQ(txn.value().size(), 4u);
  EXPECT_FALSE(txn.value().read_only());
  EXPECT_EQ(txn.value().ops()[0].type, txn::OpType::kQuery);
  EXPECT_EQ(txn.value().ops()[1].update.kind, xupdate::UpdateKind::kChange);
}

TEST(TxnBuilderTest, ReportsFirstErrorWithOperationIndex) {
  auto txn = TxnBuilder()
                 .query("d1", "/site/people")
                 .query("d1", "not-absolute")  // op 1: invalid xpath
                 .query("d1", "also bad")      // later error is shadowed
                 .build();
  ASSERT_FALSE(txn.is_ok());
  EXPECT_EQ(txn.status().code(), util::Code::kInvalidArgument);
  EXPECT_NE(txn.status().message().find("operation 1"), std::string::npos)
      << txn.status().message();
}

TEST(TxnBuilderTest, RejectsEmptyTransaction) {
  auto txn = TxnBuilder().build();
  ASSERT_FALSE(txn.is_ok());
  EXPECT_EQ(txn.status().code(), util::Code::kInvalidArgument);
}

TEST(TxnBuilderTest, BuilderIsReusableAfterBuild) {
  TxnBuilder builder;
  auto first = builder.query("d1", "/site/people").build();
  ASSERT_TRUE(first.is_ok());
  auto second = builder.query("d2", "/site/regions").build();
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(second.value().ops()[0].doc, "d2");
  EXPECT_EQ(first.value().ops()[0].doc, "d1");  // untouched by the reuse
}

TEST(TxnBuilderTest, TextualAdapterRoundTrips) {
  const std::vector<std::string> texts = {
      "query d1 /site/people/person[@id='p1']/name",
      "update d1 change /site/people/person[@id='p1']/phone ::= 999"};
  auto txn = PreparedTxn::parse(texts);
  ASSERT_TRUE(txn.is_ok()) << txn.status().to_string();
  auto reparsed = PreparedTxn::parse(txn.value().to_text());
  ASSERT_TRUE(reparsed.is_ok());
  EXPECT_EQ(reparsed.value().to_text(), txn.value().to_text());

  auto bad = PreparedTxn::parse({"scan d1 /site"});
  EXPECT_FALSE(bad.is_ok());
}

// --- routing -----------------------------------------------------------------

TEST(RoutingTest, ExplicitSiteCoordinates) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  auto txn = TxnBuilder().query("d1", "/site/people/person/name").build();
  ASSERT_TRUE(txn.is_ok());
  for (net::SiteId site = 0; site < 2; ++site) {
    SessionOptions options;
    options.routing = RoutingPolicy::explicit_site(site);
    Session session = client.session(options);
    EXPECT_EQ(session.route(txn.value()), site);
    auto handle = session.submit(txn.value());
    ASSERT_TRUE(handle.is_ok());
    EXPECT_EQ(handle.value().coordinator(), site);
    EXPECT_EQ(txn::txn_coordinator(handle.value().id()), site);
    EXPECT_EQ(handle.value().await().state, TxnState::kCommitted);
  }
}

TEST(RoutingTest, RoundRobinCyclesOverSites) {
  Cluster cluster(small_options(3));
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1, 2}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  SessionOptions options;
  options.routing = RoutingPolicy::round_robin();
  Session session = client.session(options);
  auto txn = TxnBuilder().query("d1", "/site/people/person/name").build();
  ASSERT_TRUE(txn.is_ok());

  std::set<net::SiteId> coordinators;
  std::vector<TxnHandle> handles;
  for (int i = 0; i < 6; ++i) {
    auto handle = session.submit(txn.value());
    ASSERT_TRUE(handle.is_ok());
    coordinators.insert(handle.value().coordinator());
    handles.push_back(std::move(handle).value());
  }
  for (TxnHandle& handle : handles) {
    EXPECT_EQ(handle.await().state, TxnState::kCommitted);
  }
  EXPECT_EQ(coordinators, (std::set<net::SiteId>{0, 1, 2}));
}

TEST(RoutingTest, CatalogAffinityPicksHostingSite) {
  // d_hot lives only at site 2; a transaction dominated by d_hot must be
  // coordinated there (every operation is then local — no remote fan-out).
  Cluster cluster(small_options(3));
  ASSERT_TRUE(cluster.load_document("d0", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("d_hot", kPeopleXml, {2}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  SessionOptions options;
  options.routing = RoutingPolicy::catalog_affinity();
  Session session = client.session(options);

  auto txn = TxnBuilder()
                 .query("d_hot", "/site/people/person[@id='p1']/name")
                 .change("d_hot", "/site/people/person[@id='p1']/phone", "9")
                 .query("d0", "/site/people/person/name")
                 .build();
  ASSERT_TRUE(txn.is_ok());
  EXPECT_EQ(session.route(txn.value()), 2u);
  auto handle = session.submit(txn.value());
  ASSERT_TRUE(handle.is_ok());
  EXPECT_EQ(handle.value().coordinator(), 2u);
  EXPECT_EQ(handle.value().await().state, TxnState::kCommitted);

  // All-local transaction: affinity routing leaves remote_ops untouched.
  const std::uint64_t remote_before = cluster.stats().remote_ops;
  auto local = TxnBuilder()
                   .query("d_hot", "/site/people/person/name")
                   .build();
  ASSERT_TRUE(local.is_ok());
  auto result = session.execute(local.value());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_EQ(cluster.stats().remote_ops, remote_before);
}

// --- abort taxonomy ----------------------------------------------------------

TEST(AbortReasonTest, UnprocessableUpdateIsTypedAndNotRetried) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", "<site><people/></site>", {0, 1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  SessionOptions options;
  options.retry.max_retries = 5;  // must NOT apply: deterministic failure
  options.retry.max_deadlock_retries = 5;
  options.retry.backoff = std::chrono::microseconds(0);
  Session session = client.session(options);

  // Inserting relative to the root is structurally impossible.
  auto txn = TxnBuilder()
                 .insert("d1", "/site", "<bad/>", xupdate::InsertWhere::kAfter)
                 .build();
  ASSERT_TRUE(txn.is_ok());
  auto result = session.execute(txn.value());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  EXPECT_EQ(result.value().reason, AbortReason::kUnprocessableUpdate);
  EXPECT_FALSE(result.value().detail.empty());
  EXPECT_EQ(session.retries(), 0u);  // deterministic aborts are final
}

TEST(AbortReasonTest, UnknownDocumentIsParseError) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);
  Session session = client.session();

  auto txn = TxnBuilder().query("ghost", "/site/people").build();
  ASSERT_TRUE(txn.is_ok());  // validation against the catalog is server-side
  auto result = session.execute(txn.value());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().state, TxnState::kAborted);
  EXPECT_EQ(result.value().reason, AbortReason::kParseError);
  EXPECT_FALSE(txn::abort_reason_retryable(result.value().reason));
}

TEST(AbortReasonTest, LockWaitExhaustionIsTyped) {
  // One slow *holder* (its second operation is remote over a 30 ms-latency
  // link, so it keeps document a's locks for >= 60 ms) and one bounded
  // *waiter* (max_wait_episodes = 1, fast retry backstop). The waiter holds
  // nothing else, so no wait-for cycle can ever exist — the only way it
  // terminates early is the lock-wait bound, typed kLockWaitExhausted.
  // Two coordinator workers so the waiter is scheduled while the holder's
  // worker blocks on the remote round trip.
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  options.network.latency = std::chrono::milliseconds(30);
  options.site.coordinator_workers = 2;
  options.site.detect_period = std::chrono::hours(1);
  options.site.retry_interval = std::chrono::microseconds(2'000);
  options.site.max_wait_episodes = 1;
  // The holder must take read locks for the waiter to block on: force the
  // read-only transaction down the locked path (MVCC would serve it from
  // a snapshot and never conflict).
  options.site.snapshot_reads = false;
  Cluster cluster(options);
  ASSERT_TRUE(cluster.load_document("a", kPeopleXml, {0}).is_ok());
  ASSERT_TRUE(cluster.load_document("r", kPeopleXml, {1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);
  Session session = client.session(
      SessionOptions{RoutingPolicy::explicit_site(0), {}, 0us});

  auto holder_txn = TxnBuilder()
                        .query("a", "/site/people/person/name")  // ST on a
                        .query("r", "/site/people/person/name")  // slow remote
                        .build();
  auto waiter_txn = TxnBuilder()
                        .insert("a", "/site/people", "<person id=\"w\"/>")
                        .build();
  ASSERT_TRUE(holder_txn.is_ok() && waiter_txn.is_ok());

  bool saw_exhaustion = false;
  for (int round = 0; round < 10 && !saw_exhaustion; ++round) {
    auto holder = session.submit(holder_txn.value());
    ASSERT_TRUE(holder.is_ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    auto waiter = session.execute(waiter_txn.value());
    ASSERT_TRUE(waiter.is_ok());
    if (waiter.value().state == TxnState::kAborted) {
      EXPECT_EQ(waiter.value().reason, AbortReason::kLockWaitExhausted)
          << txn::abort_reason_name(waiter.value().reason);
      EXPECT_FALSE(waiter.value().deadlock_victim);
      EXPECT_GT(waiter.value().wait_episodes, 1u);
      saw_exhaustion = true;
    }
    EXPECT_EQ(holder.value().await().state, TxnState::kCommitted);
  }
  // The 10 ms head start makes the collision all but certain every round.
  EXPECT_TRUE(saw_exhaustion);
}

TEST(AbortReasonTest, DeadlockVictimIsTypedAndSessionRetriesIt) {
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document(
                      "a", "<site><people><person id=\"1\"/></people></site>",
                      {0})
                  .is_ok());
  ASSERT_TRUE(cluster
                  .load_document(
                      "b", "<site><people><person id=\"2\"/></people></site>",
                      {1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  SessionOptions session_options;
  session_options.retry.max_deadlock_retries = 50;
  session_options.retry.backoff = std::chrono::microseconds(2'000);
  std::atomic<int> committed{0};
  std::atomic<std::uint32_t> retries_seen{0};
  auto run_adversary = [&](net::SiteId home, const std::string& first,
                           const std::string& second, const char* tag) {
    SessionOptions adversary_options = session_options;
    adversary_options.routing = RoutingPolicy::explicit_site(home);
    Session session = client.session(adversary_options);
    for (int i = 0; i < 10; ++i) {
      auto txn = TxnBuilder()
                     .query(first, "/site/people/person/@id")
                     .insert(second, "/site/people",
                             "<person id=\"" + std::string(tag) +
                                 std::to_string(i) + "\"/>")
                     .build();
      ASSERT_TRUE(txn.is_ok());
      auto result = session.execute(txn.value());
      ASSERT_TRUE(result.is_ok());
      if (result.value().state == TxnState::kCommitted) ++committed;
      retries_seen += session.retries();
    }
  };
  std::thread adversary([&] { run_adversary(0, "a", "b", "w"); });
  run_adversary(1, "b", "a", "m");
  adversary.join();
  // With deadlock retries every transaction eventually commits.
  EXPECT_EQ(committed.load(), 20);
}

// --- await_for ---------------------------------------------------------------

TEST(TxnHandleTest, AwaitForReturnsResultWithinDeadline) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);
  Session session = client.session();

  auto txn = TxnBuilder().query("d1", "/site/people/person/name").build();
  ASSERT_TRUE(txn.is_ok());
  auto handle = session.submit(txn.value());
  ASSERT_TRUE(handle.is_ok());
  auto result = handle.value().await_for(5s);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(result.value().state, TxnState::kCommitted);
  EXPECT_TRUE(handle.value().done());
}

TEST(TxnHandleTest, AwaitForTimesOutOnBlockedTransaction) {
  // Detector off and an hour-long lock-wait backstop: a conflicting pair
  // blocks indefinitely, so a short await_for must report kTimeout instead
  // of hanging (the old await() would never return here).
  ClusterOptions options = small_options();
  options.protocol = lock::ProtocolKind::kXdglPlain;
  options.site.detect_period = std::chrono::hours(1);
  options.site.retry_interval = std::chrono::hours(1);
  Cluster cluster(options);
  ASSERT_TRUE(cluster
                  .load_document(
                      "a", "<site><people><person id=\"1\"/></people></site>",
                      {0})
                  .is_ok());
  ASSERT_TRUE(cluster
                  .load_document(
                      "b", "<site><people><person id=\"2\"/></people></site>",
                      {1})
                  .is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);

  Session at0 = client.session(
      SessionOptions{RoutingPolicy::explicit_site(0), {}, 0us});
  Session at1 = client.session(
      SessionOptions{RoutingPolicy::explicit_site(1), {}, 0us});
  auto t1 = TxnBuilder()
                .query("a", "/site/people/person/@id")
                .insert("b", "/site/people", "<person id=\"x\"/>")
                .build();
  auto t2 = TxnBuilder()
                .query("b", "/site/people/person/@id")
                .insert("a", "/site/people", "<person id=\"y\"/>")
                .build();
  ASSERT_TRUE(t1.is_ok() && t2.is_ok());

  auto h1 = at0.submit(t1.value());
  auto h2 = at1.submit(t2.value());
  ASSERT_TRUE(h1.is_ok() && h2.is_ok());

  // At least one of the two must still be in flight after a short
  // deadline whenever they truly collided; in every case await_for
  // returns promptly (bounded), which is the property under test.
  auto r1 = h1.value().await_for(150ms);
  auto r2 = h2.value().await_for(150ms);
  if (!r1.is_ok()) {
    EXPECT_EQ(r1.status().code(), util::Code::kTimeout);
  }
  if (!r2.is_ok()) {
    EXPECT_EQ(r2.status().code(), util::Code::kTimeout);
  }

  // Shutdown completes the stragglers ("site shut down" = kSiteFailure).
  cluster.stop();
  auto final1 = h1.value().await_for(5s);
  auto final2 = h2.value().await_for(5s);
  ASSERT_TRUE(final1.is_ok() && final2.is_ok());
}

// --- pipelined submission ----------------------------------------------------

TEST(SessionTest, SubmitAllPipelinesTransactions) {
  Cluster cluster(small_options());
  ASSERT_TRUE(cluster.load_document("d1", kPeopleXml, {0, 1}).is_ok());
  ASSERT_TRUE(cluster.start().is_ok());
  Client client(cluster);
  Session session = client.session(
      SessionOptions{RoutingPolicy::round_robin(), {}, 0us});

  std::vector<PreparedTxn> txns;
  for (int i = 0; i < 8; ++i) {
    auto txn = TxnBuilder()
                   .query("d1", "/site/people/person[@id='p1']/name")
                   .build();
    ASSERT_TRUE(txn.is_ok());
    txns.push_back(std::move(txn).value());
  }
  auto handles = session.submit_all(txns);
  ASSERT_TRUE(handles.is_ok());
  ASSERT_EQ(handles.value().size(), txns.size());
  for (TxnHandle& handle : handles.value()) {
    auto result = handle.await_for(10s);
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value().state, TxnState::kCommitted);
    EXPECT_EQ(result.value().rows[0][0], "Ana");
  }
  EXPECT_EQ(cluster.stats().committed, 8u);
}

}  // namespace
}  // namespace dtx::client
