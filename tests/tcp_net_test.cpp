// TcpNetwork loopback tests: two in-process endpoints over 127.0.0.1
// exercising the real transport — handshake, request/reply in both
// directions, every payload shape, dropped connections, reconnect with
// backoff, and corrupt-frame rejection. Skipped (GTEST_SKIP) when the
// sandbox forbids binding a loopback socket; CI runs them with the
// "socket" ctest label.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <variant>

#include "net/codec.hpp"
#include "net/tcp_network.hpp"
#include "txn/operation.hpp"

namespace dtx::net {
namespace {

using namespace std::chrono_literals;

/// Binding loopback may be forbidden in sandboxes; probe once.
bool loopback_available() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  const bool ok =
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

#define REQUIRE_LOOPBACK()                                         \
  if (!loopback_available()) {                                     \
    GTEST_SKIP() << "cannot bind 127.0.0.1 in this environment";   \
  }

/// A listening endpoint (site 0) and a dialing endpoint (`dialer_id`)
/// connected to it over loopback.
struct LoopbackPair {
  std::unique_ptr<TcpNetwork> listener;  // site 0
  std::unique_ptr<TcpNetwork> dialer;
  Mailbox* listener_box = nullptr;
  Mailbox* dialer_box = nullptr;

  static std::unique_ptr<LoopbackPair> make(SiteId dialer_id = 1) {
    auto pair = std::make_unique<LoopbackPair>();
    TcpOptions listen_options;
    listen_options.listen = "127.0.0.1:0";
    pair->listener = std::make_unique<TcpNetwork>(0, listen_options);
    pair->listener_box = &pair->listener->register_site(0);
    if (!pair->listener->start()) return nullptr;

    TcpOptions dial_options;
    dial_options.peers[0] =
        "127.0.0.1:" + std::to_string(pair->listener->listen_port());
    dial_options.reconnect_min = 10ms;
    dial_options.reconnect_max = 100ms;
    pair->dialer = std::make_unique<TcpNetwork>(dialer_id, dial_options);
    pair->dialer_box = &pair->dialer->register_site(dialer_id);
    if (!pair->dialer->start()) return nullptr;
    return pair;
  }

  bool wait_connected(std::chrono::milliseconds timeout = 3000ms) const {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (dialer->peer_connected(0)) return true;
      std::this_thread::sleep_for(5ms);
    }
    return false;
  }
};

TEST(TcpNetworkTest, PortZeroResolvesToARealPort) {
  REQUIRE_LOOPBACK();
  TcpOptions options;
  options.listen = "127.0.0.1:0";
  TcpNetwork network(0, options);
  ASSERT_TRUE(static_cast<bool>(network.start()));
  EXPECT_NE(network.listen_port(), 0);
}

TEST(TcpNetworkTest, RequestReplyBothDirections) {
  REQUIRE_LOOPBACK();
  auto pair = LoopbackPair::make();
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->wait_connected());

  // Dialer -> listener over the dialed connection.
  pair->dialer->send(Message{1, 0, WakeTxn{11}});
  auto request = pair->listener_box->pop(3s);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->from, 1u);
  EXPECT_EQ(std::get<WakeTxn>(request->payload).txn, 11u);

  // Listener -> dialer over the accepted connection (bound by the Hello
  // that necessarily preceded the message above).
  pair->listener->send(Message{0, 1, CommitAck{11, true}});
  auto reply = pair->dialer_box->pop(3s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(std::get<CommitAck>(reply->payload).ok);
}

TEST(TcpNetworkTest, AllPayloadShapesSurviveTheWire) {
  REQUIRE_LOOPBACK();
  auto pair = LoopbackPair::make();
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->wait_connected());

  std::vector<Payload> payloads;
  ExecuteOperation exec;
  exec.txn = 7;
  exec.coordinator = 1;
  exec.op = txn::parse_operation(
                "update d1 insert into /site/people ::= <person id=\"p9\"/>")
                .value();
  payloads.emplace_back(exec);
  OperationResult result;
  result.txn = 7;
  result.executed = true;
  result.rows = {"a", "", std::string(5000, 'z')};
  payloads.emplace_back(result);
  WfgReply wfg;
  wfg.probe = 3;
  wfg.edges = {{1, 2}, {3, 4}};
  payloads.emplace_back(wfg);
  SnapshotReadRequest snap;
  snap.txn = 9;
  snap.op_indices = {0};
  snap.ops = {txn::parse_operation("query d1 /a/b").value()};
  payloads.emplace_back(snap);
  ClientReply client_reply;
  client_reply.seq = 4;
  client_reply.accepted = true;
  client_reply.response_ms = 1.5;
  client_reply.rows = {{"x"}};
  payloads.emplace_back(client_reply);
  RecoveryPullReply pull;
  pull.doc = "d1";
  pull.ok = true;
  pull.snapshot = "<site/>";
  pull.log = "v=1 t=2 n=0\n";
  payloads.emplace_back(pull);

  for (const Payload& payload : payloads) {
    pair->dialer->send(Message{1, 0, payload});
    auto got = pair->listener_box->pop(3s);
    ASSERT_TRUE(got.has_value()) << payload_name(payload);
    // Byte-exact arrival: same codec frame on both ends.
    EXPECT_EQ(codec::encode(*got), codec::encode(Message{1, 0, payload}))
        << payload_name(payload);
  }
}

TEST(TcpNetworkTest, SitesListsPeersButNeverClients) {
  REQUIRE_LOOPBACK();
  auto pair = LoopbackPair::make(kClientIdBase + 42);
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->wait_connected());

  // The client endpoint appears in neither side's site list.
  for (SiteId site : pair->listener->sites()) EXPECT_FALSE(is_client_id(site));
  for (SiteId site : pair->dialer->sites()) EXPECT_FALSE(is_client_id(site));

  // ... but replies still route to it: submit/reply as a remote client.
  pair->dialer->send(Message{kClientIdBase + 42, 0, WakeTxn{5}});
  auto request = pair->listener_box->pop(3s);
  ASSERT_TRUE(request.has_value());
  pair->listener->send(
      Message{0, kClientIdBase + 42, CommitAck{5, true}});
  auto reply = pair->dialer_box->pop(3s);
  ASSERT_TRUE(reply.has_value());
}

TEST(TcpNetworkTest, ReconnectsAfterDroppedConnectionsWithBackoff) {
  REQUIRE_LOOPBACK();
  auto pair = LoopbackPair::make();
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->wait_connected());
  const TcpStats before = pair->dialer->tcp_stats();

  pair->dialer->drop_connections();
  ASSERT_TRUE(pair->wait_connected());

  const TcpStats after = pair->dialer->tcp_stats();
  EXPECT_GT(after.disconnects, before.disconnects);
  EXPECT_GT(after.reconnects, before.reconnects);
  EXPECT_GT(after.connects, before.connects);

  // The healed connection carries traffic again.
  pair->dialer->send(Message{1, 0, WakeTxn{21}});
  auto got = pair->listener_box->pop(3s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<WakeTxn>(got->payload).txn, 21u);
}

TEST(TcpNetworkTest, BackoffCapsWhilePeerStaysDown) {
  REQUIRE_LOOPBACK();
  // Dial a port nobody listens on: every attempt fails, the dial counter
  // keeps growing, and the backoff cap keeps the rate bounded.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::bind(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);  // nothing listens here now

  TcpOptions options;
  options.peers[0] = "127.0.0.1:" + std::to_string(dead_port);
  options.reconnect_min = 5ms;
  options.reconnect_max = 40ms;
  TcpNetwork network(1, options);
  network.register_site(1);
  ASSERT_TRUE(static_cast<bool>(network.start()));

  std::this_thread::sleep_for(300ms);
  const TcpStats stats = network.tcp_stats();
  EXPECT_GE(stats.dials, 3u);   // it kept trying
  EXPECT_LE(stats.dials, 70u);  // ... but backoff bounded the rate
  EXPECT_EQ(stats.connects, 0u);
  EXPECT_FALSE(network.peer_connected(0));

  // Messages toward the unreachable peer are dropped and counted, not
  // queued forever.
  const std::uint64_t dropped_before = network.stats().messages_dropped;
  network.send(Message{1, 0, WakeTxn{1}});
  EXPECT_GE(network.stats().messages_dropped + 1, dropped_before + 1);
}

TEST(TcpNetworkTest, CorruptFrameDropsTheConnection) {
  REQUIRE_LOOPBACK();
  TcpOptions options;
  options.listen = "127.0.0.1:0";
  TcpNetwork network(0, options);
  network.register_site(0);
  ASSERT_TRUE(static_cast<bool>(network.start()));

  // Raw TCP client: a valid Hello, then garbage.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(network.listen_port());
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::string hello = codec::encode(
      Message{kClientIdBase + 1, 0, Hello{kClientIdBase + 1,
                                          codec::kProtocolVersion}});
  ASSERT_EQ(::send(fd, hello.data(), hello.size(), 0),
            static_cast<ssize_t>(hello.size()));
  const std::string garbage = "definitely not a DTX frame";
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));

  // The server must reject the frame and close the connection: recv sees
  // EOF and the rejection counter moves.
  char buffer[64];
  const auto deadline = std::chrono::steady_clock::now() + 3s;
  ssize_t n = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    n = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (n == 0) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(n, 0) << "server did not close the poisoned connection";
  ::close(fd);
  EXPECT_GE(network.tcp_stats().frames_rejected, 1u);
}

TEST(TcpNetworkTest, MessagesToThePastPeerDropAfterItsConnectionDies) {
  REQUIRE_LOOPBACK();
  auto pair = LoopbackPair::make();
  ASSERT_NE(pair, nullptr);
  ASSERT_TRUE(pair->wait_connected());

  // Kill the dialer entirely; the listener's accepted route dies with it.
  pair->dialer.reset();
  std::this_thread::sleep_for(50ms);

  const std::uint64_t dropped_before =
      pair->listener->stats().messages_dropped;
  pair->listener->send(Message{0, 1, WakeTxn{9}});
  // Either the route was already torn down (counted drop) or the bytes
  // vanish with the dead socket — in both cases nothing explodes and no
  // reply ever comes. The send must at least not crash; when the route is
  // gone the drop is counted.
  EXPECT_GE(pair->listener->stats().messages_dropped, dropped_before);
}

TEST(TcpNetworkTest, LocalSendsBypassTheWire) {
  REQUIRE_LOOPBACK();
  TcpOptions options;
  options.listen = "127.0.0.1:0";
  TcpNetwork network(0, options);
  Mailbox& box = network.register_site(0);
  ASSERT_TRUE(static_cast<bool>(network.start()));
  network.send(Message{0, 0, WakeTxn{33}});
  auto got = box.pop(1s);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<WakeTxn>(got->payload).txn, 33u);
  EXPECT_EQ(network.stats().messages_sent, 1u);
  EXPECT_GT(network.stats().bytes_sent, 0u);  // codec-sized accounting
}

}  // namespace
}  // namespace dtx::net
