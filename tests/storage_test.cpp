#include <gtest/gtest.h>

#include <filesystem>

#include "storage/file_store.hpp"
#include "storage/memory_store.hpp"

namespace dtx::storage {
namespace {

namespace fs = std::filesystem;

template <typename T>
std::unique_ptr<StorageBackend> make_store(const fs::path& dir);

template <>
std::unique_ptr<StorageBackend> make_store<MemoryStore>(const fs::path&) {
  return std::make_unique<MemoryStore>();
}

template <>
std::unique_ptr<StorageBackend> make_store<FileStore>(const fs::path& dir) {
  return std::make_unique<FileStore>(dir);
}

template <typename T>
class StorageBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dtx_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    store_ = make_store<T>(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::unique_ptr<StorageBackend> store_;
};

using Backends = ::testing::Types<MemoryStore, FileStore>;
TYPED_TEST_SUITE(StorageBackendTest, Backends);

TYPED_TEST(StorageBackendTest, StoreThenLoad) {
  ASSERT_TRUE(this->store_->store("d1", "<people/>").is_ok());
  auto loaded = this->store_->load("d1");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value(), "<people/>");
}

TYPED_TEST(StorageBackendTest, LoadMissingIsNotFound) {
  auto loaded = this->store_->load("ghost");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::Code::kNotFound);
}

TYPED_TEST(StorageBackendTest, OverwriteReplaces) {
  ASSERT_TRUE(this->store_->store("d", "<v1/>").is_ok());
  ASSERT_TRUE(this->store_->store("d", "<v2/>").is_ok());
  EXPECT_EQ(this->store_->load("d").value(), "<v2/>");
}

TYPED_TEST(StorageBackendTest, AppendCreatesAndExtends) {
  // append() is the log-structured write path (the presumed-abort commit
  // log): creates on first use, extends in place afterwards.
  ASSERT_TRUE(this->store_->append("log", "1\n").is_ok());
  ASSERT_TRUE(this->store_->append("log", "2\n").is_ok());
  EXPECT_EQ(this->store_->load("log").value(), "1\n2\n");
  // Appending after a full store extends the stored value.
  ASSERT_TRUE(this->store_->store("log", "7\n").is_ok());
  ASSERT_TRUE(this->store_->append("log", "8\n").is_ok());
  EXPECT_EQ(this->store_->load("log").value(), "7\n8\n");
}

TYPED_TEST(StorageBackendTest, ExistsAndList) {
  EXPECT_FALSE(this->store_->exists("a"));
  ASSERT_TRUE(this->store_->store("b", "<b/>").is_ok());
  ASSERT_TRUE(this->store_->store("a", "<a/>").is_ok());
  EXPECT_TRUE(this->store_->exists("a"));
  EXPECT_EQ(this->store_->list(), (std::vector<std::string>{"a", "b"}));
}

TYPED_TEST(StorageBackendTest, RemoveWorksOnce) {
  ASSERT_TRUE(this->store_->store("d", "<d/>").is_ok());
  EXPECT_TRUE(this->store_->remove("d").is_ok());
  EXPECT_FALSE(this->store_->exists("d"));
  EXPECT_FALSE(this->store_->remove("d").is_ok());
}

TYPED_TEST(StorageBackendTest, LargePayloadRoundTrips) {
  std::string big = "<doc>";
  for (int i = 0; i < 5000; ++i) {
    big += "<item id=\"" + std::to_string(i) + "\">payload</item>";
  }
  big += "</doc>";
  ASSERT_TRUE(this->store_->store("big", big).is_ok());
  EXPECT_EQ(this->store_->load("big").value(), big);
}

TEST(MemoryStoreTest, StoreCountTracksPersists) {
  MemoryStore store;
  EXPECT_EQ(store.store_count(), 0u);
  ASSERT_TRUE(store.store("a", "<a/>").is_ok());
  ASSERT_TRUE(store.store("a", "<a2/>").is_ok());
  EXPECT_EQ(store.store_count(), 2u);
}

TEST(FileStoreTest, PersistsAcrossInstances) {
  const fs::path dir =
      fs::temp_directory_path() / "dtx_storage_reopen_test";
  fs::remove_all(dir);
  {
    FileStore store(dir);
    ASSERT_TRUE(store.store("d1", "<people/>").is_ok());
  }
  {
    FileStore store(dir);
    EXPECT_TRUE(store.exists("d1"));
    EXPECT_EQ(store.load("d1").value(), "<people/>");
  }
  fs::remove_all(dir);
}

TEST(FileStoreTest, FilesAreNamedAfterDocuments) {
  const fs::path dir = fs::temp_directory_path() / "dtx_storage_name_test";
  fs::remove_all(dir);
  FileStore store(dir);
  ASSERT_TRUE(store.store("catalog", "<c/>").is_ok());
  EXPECT_TRUE(fs::exists(dir / "catalog.xml"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dtx::storage
