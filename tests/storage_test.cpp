#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dtx/wal.hpp"
#include "storage/file_store.hpp"
#include "storage/memory_store.hpp"

namespace dtx::storage {
namespace {

namespace wal = core::wal;

namespace fs = std::filesystem;

template <typename T>
std::unique_ptr<StorageBackend> make_store(const fs::path& dir);

template <>
std::unique_ptr<StorageBackend> make_store<MemoryStore>(const fs::path&) {
  return std::make_unique<MemoryStore>();
}

template <>
std::unique_ptr<StorageBackend> make_store<FileStore>(const fs::path& dir) {
  return std::make_unique<FileStore>(dir);
}

template <typename T>
class StorageBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dtx_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    store_ = make_store<T>(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
  std::unique_ptr<StorageBackend> store_;
};

using Backends = ::testing::Types<MemoryStore, FileStore>;
TYPED_TEST_SUITE(StorageBackendTest, Backends);

TYPED_TEST(StorageBackendTest, StoreThenLoad) {
  ASSERT_TRUE(this->store_->store("d1", "<people/>").is_ok());
  auto loaded = this->store_->load("d1");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value(), "<people/>");
}

TYPED_TEST(StorageBackendTest, LoadMissingIsNotFound) {
  auto loaded = this->store_->load("ghost");
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.status().code(), util::Code::kNotFound);
}

TYPED_TEST(StorageBackendTest, OverwriteReplaces) {
  ASSERT_TRUE(this->store_->store("d", "<v1/>").is_ok());
  ASSERT_TRUE(this->store_->store("d", "<v2/>").is_ok());
  EXPECT_EQ(this->store_->load("d").value(), "<v2/>");
}

TYPED_TEST(StorageBackendTest, AppendCreatesAndExtends) {
  // append() is the log-structured write path (the presumed-abort commit
  // log): creates on first use, extends in place afterwards.
  ASSERT_TRUE(this->store_->append("log", "1\n").is_ok());
  ASSERT_TRUE(this->store_->append("log", "2\n").is_ok());
  EXPECT_EQ(this->store_->load("log").value(), "1\n2\n");
  // Appending after a full store extends the stored value.
  ASSERT_TRUE(this->store_->store("log", "7\n").is_ok());
  ASSERT_TRUE(this->store_->append("log", "8\n").is_ok());
  EXPECT_EQ(this->store_->load("log").value(), "7\n8\n");
}

TYPED_TEST(StorageBackendTest, ExistsAndList) {
  EXPECT_FALSE(this->store_->exists("a"));
  ASSERT_TRUE(this->store_->store("b", "<b/>").is_ok());
  ASSERT_TRUE(this->store_->store("a", "<a/>").is_ok());
  EXPECT_TRUE(this->store_->exists("a"));
  EXPECT_EQ(this->store_->list(), (std::vector<std::string>{"a", "b"}));
}

TYPED_TEST(StorageBackendTest, RemoveWorksOnce) {
  ASSERT_TRUE(this->store_->store("d", "<d/>").is_ok());
  EXPECT_TRUE(this->store_->remove("d").is_ok());
  EXPECT_FALSE(this->store_->exists("d"));
  EXPECT_FALSE(this->store_->remove("d").is_ok());
}

TYPED_TEST(StorageBackendTest, LargePayloadRoundTrips) {
  std::string big = "<doc>";
  for (int i = 0; i < 5000; ++i) {
    big += "<item id=\"" + std::to_string(i) + "\">payload</item>";
  }
  big += "</doc>";
  ASSERT_TRUE(this->store_->store("big", big).is_ok());
  EXPECT_EQ(this->store_->load("big").value(), big);
}

TYPED_TEST(StorageBackendTest, ReadLogOfMissingEntryIsEmpty) {
  auto log = this->store_->read_log("never-written");
  ASSERT_TRUE(log.is_ok());
  EXPECT_TRUE(log.value().empty());
  // Unlike load(), which reports kNotFound.
  EXPECT_EQ(this->store_->load("never-written").status().code(),
            util::Code::kNotFound);
}

TYPED_TEST(StorageBackendTest, TruncateResetsAndCreates) {
  ASSERT_TRUE(this->store_->append("log", "abc").is_ok());
  ASSERT_TRUE(this->store_->truncate("log").is_ok());
  EXPECT_EQ(this->store_->read_log("log").value(), "");
  ASSERT_TRUE(this->store_->append("log", "d").is_ok());
  EXPECT_EQ(this->store_->read_log("log").value(), "d");
  // Truncating a never-written entry is not an error.
  EXPECT_TRUE(this->store_->truncate("fresh").is_ok());
}

// --- WAL framing and crash-window recovery (dtx/wal.hpp) ---------------------
//
// Storage-level fault injection: the torn tails and half-finished
// checkpoints below are byte states a process crash can leave behind; the
// log framing must resolve every one of them exactly.

class WalFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.store("d", kBase).is_ok());
  }

  /// Appends a commit record and returns its encoded bytes.
  std::string append_record(std::uint64_t version, std::uint64_t txn,
                            const std::vector<std::string>& ops) {
    const std::string raw = wal::encode_record(version, txn, ops);
    EXPECT_TRUE(store_.append(wal::log_key("d"), raw).is_ok());
    return raw;
  }

  static constexpr const char* kBase = "<r><a>1</a></r>";
  MemoryStore store_;
};

TEST_F(WalFormatTest, RecordAndMarkerRoundTrip) {
  const std::vector<std::string> ops = {
      "update d change /r/a ::= 2", "update d insert into /r ::= <b/>"};
  const std::string raw = wal::encode_record(7, 42, ops) +
                          wal::encode_checkpoint(7, 123, {40, 41, 42});
  const wal::LogScan scan = wal::scan_log(raw);
  ASSERT_EQ(scan.entries.size(), 2u);
  EXPECT_FALSE(scan.torn);
  EXPECT_EQ(scan.entries[0].kind, wal::LogEntry::Kind::kRecord);
  EXPECT_EQ(scan.entries[0].version, 7u);
  EXPECT_EQ(scan.entries[0].txn, 42u);
  EXPECT_EQ(scan.entries[0].ops, ops);
  EXPECT_EQ(scan.entries[1].kind, wal::LogEntry::Kind::kCheckpoint);
  EXPECT_EQ(scan.entries[1].hash, 123u);
  EXPECT_EQ(scan.entries[1].ids,
            (std::vector<lock::TxnId>{40, 41, 42}));
  // The captured raw spans re-concatenate to the input.
  EXPECT_EQ(scan.entries[0].raw + scan.entries[1].raw, raw);
}

TEST_F(WalFormatTest, TornTailIsDetectedAndDropped) {
  const std::string good =
      append_record(1, 10, {"update d change /r/a ::= 2"});
  // A crash mid-append leaves a prefix of the next record.
  const std::string torn =
      wal::encode_record(2, 11, {"update d change /r/a ::= 3"});
  ASSERT_TRUE(
      store_.append(wal::log_key("d"), torn.substr(0, torn.size() - 4))
          .is_ok());

  const wal::LogScan scan =
      wal::scan_log(store_.read_log(wal::log_key("d")).value());
  EXPECT_TRUE(scan.torn);
  ASSERT_EQ(scan.entries.size(), 1u);
  EXPECT_EQ(scan.valid_bytes, good.size());

  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_TRUE(durable.value().torn_tail);
  EXPECT_TRUE(durable.value().needs_repair);
  EXPECT_EQ(durable.value().version, 1u);  // the valid prefix survives
  ASSERT_TRUE(wal::repair(store_, "d", durable.value()).is_ok());
  EXPECT_EQ(store_.read_log(wal::log_key("d")).value(), good);
  auto again = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again.value().needs_repair);
}

TEST_F(WalFormatTest, PayloadCorruptionInvalidatesTheFrame) {
  std::string raw = wal::encode_record(1, 10, {"update d change /r/a ::= 2"});
  raw[raw.size() - 3] ^= 0x1;  // flip a payload byte under the hash
  ASSERT_TRUE(store_.append(wal::log_key("d"), raw).is_ok());
  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_EQ(durable.value().version, 0u);
  EXPECT_TRUE(durable.value().needs_repair);
}

TEST_F(WalFormatTest, CrashBetweenMarkerAndSnapshotReplaysTheTail) {
  // Two commits, then a checkpoint that crashed after the marker append
  // but before the snapshot store: bytes are still the version-0 base.
  append_record(1, 10, {"update d change /r/a ::= 2"});
  append_record(2, 11, {"update d change /r/a ::= 3"});
  const std::string new_bytes = "<r><a>3</a></r>";
  ASSERT_TRUE(store_
                  .append(wal::log_key("d"),
                          wal::encode_checkpoint(
                              2, wal::fnv1a(new_bytes), {10, 11}))
                  .is_ok());

  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_TRUE(durable.value().consistent);
  EXPECT_EQ(durable.value().checkpoint_version, 0u);  // base unmoved
  EXPECT_EQ(durable.value().version, 2u);
  ASSERT_EQ(durable.value().tail.size(), 2u);
  auto materialized = wal::materialize(store_, "d");
  ASSERT_TRUE(materialized.is_ok());
  EXPECT_NE(materialized.value().find(">3<"), std::string::npos);
  // Repair drops the unfulfilled marker; the records stay.
  ASSERT_TRUE(wal::repair(store_, "d", durable.value()).is_ok());
  auto again = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(again.is_ok());
  EXPECT_FALSE(again.value().needs_repair);
  EXPECT_EQ(again.value().version, 2u);
}

TEST_F(WalFormatTest, CrashBetweenSnapshotAndCompactionSkipsCoveredRecords) {
  // The checkpoint wrote marker + snapshot but crashed before compacting:
  // the log still holds records the snapshot already contains.
  append_record(1, 10, {"update d change /r/a ::= 2"});
  const std::string new_bytes = "<r><a>2</a></r>";
  ASSERT_TRUE(
      store_
          .append(wal::log_key("d"),
                  wal::encode_checkpoint(1, wal::fnv1a(new_bytes), {10}))
          .is_ok());
  ASSERT_TRUE(store_.store("d", new_bytes).is_ok());

  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_EQ(durable.value().checkpoint_version, 1u);
  EXPECT_EQ(durable.value().version, 1u);
  EXPECT_TRUE(durable.value().tail.empty());  // record 1 is in the bytes
  EXPECT_EQ(durable.value().checkpoint_ids, (std::vector<lock::TxnId>{10}));
  EXPECT_TRUE(durable.value().needs_repair);
  ASSERT_TRUE(wal::repair(store_, "d", durable.value()).is_ok());
  // Compacted down to exactly the marker.
  EXPECT_EQ(store_.read_log(wal::log_key("d")).value(),
            durable.value().marker_raw);
  auto materialized = wal::materialize(store_, "d");
  ASSERT_TRUE(materialized.is_ok());
  EXPECT_NE(materialized.value().find(">2<"), std::string::npos);
}

TEST_F(WalFormatTest, RecordsAfterACompletedCheckpointReplay) {
  // Full checkpoint at v1, then two more commits: replay starts at the
  // marker, not the base.
  append_record(1, 10, {"update d change /r/a ::= 2"});
  const std::string snap = "<r><a>2</a></r>";
  const std::string marker =
      wal::encode_checkpoint(1, wal::fnv1a(snap), {10});
  ASSERT_TRUE(store_.store("d", snap).is_ok());
  ASSERT_TRUE(store_.store(wal::log_key("d"), marker).is_ok());
  append_record(2, 11, {"update d change /r/a ::= 3"});
  append_record(3, 12, {"update d insert into /r ::= <b>x</b>"});

  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_FALSE(durable.value().needs_repair);
  EXPECT_EQ(durable.value().checkpoint_version, 1u);
  EXPECT_EQ(durable.value().version, 3u);
  ASSERT_EQ(durable.value().tail.size(), 2u);
  auto materialized = wal::materialize(store_, "d");
  ASSERT_TRUE(materialized.is_ok());
  EXPECT_NE(materialized.value().find(">3<"), std::string::npos);
  EXPECT_NE(materialized.value().find("<b>x</b>"), std::string::npos);
}

TEST_F(WalFormatTest, VersionGapStopsTheTail) {
  append_record(1, 10, {"update d change /r/a ::= 2"});
  append_record(3, 12, {"update d change /r/a ::= 9"});  // 2 is missing
  auto durable = wal::read_durable_doc(store_, "d");
  ASSERT_TRUE(durable.is_ok());
  EXPECT_EQ(durable.value().version, 1u);
  EXPECT_TRUE(durable.value().needs_repair);
  auto materialized = wal::materialize(store_, "d");
  ASSERT_TRUE(materialized.is_ok());
  EXPECT_NE(materialized.value().find(">2<"), std::string::npos);
}

TEST(MemoryStoreTest, StoreCountTracksPersists) {
  MemoryStore store;
  EXPECT_EQ(store.store_count(), 0u);
  ASSERT_TRUE(store.store("a", "<a/>").is_ok());
  ASSERT_TRUE(store.store("a", "<a2/>").is_ok());
  EXPECT_EQ(store.store_count(), 2u);
}

TEST(FileStoreTest, PersistsAcrossInstances) {
  const fs::path dir =
      fs::temp_directory_path() / "dtx_storage_reopen_test";
  fs::remove_all(dir);
  {
    FileStore store(dir);
    ASSERT_TRUE(store.store("d1", "<people/>").is_ok());
  }
  {
    FileStore store(dir);
    EXPECT_TRUE(store.exists("d1"));
    EXPECT_EQ(store.load("d1").value(), "<people/>");
  }
  fs::remove_all(dir);
}

TEST(FileStoreTest, FilesAreNamedAfterDocuments) {
  const fs::path dir = fs::temp_directory_path() / "dtx_storage_name_test";
  fs::remove_all(dir);
  FileStore store(dir);
  ASSERT_TRUE(store.store("catalog", "<c/>").is_ok());
  EXPECT_TRUE(fs::exists(dir / "catalog.xml"));
  fs::remove_all(dir);
}

// Regression (thread-safety annotation sweep): FileStore had no internal
// synchronization. Two concurrent store() calls for one document shared
// the "<name>.xml.tmp" staging file, so one writer's rename could publish
// the other's half-written bytes; concurrent append() streams could
// interleave within a record. Every call must be atomic at the backend's
// granularity — a load observes exactly one writer's payload, and the log
// is a permutation of whole appended records.
TEST(FileStoreTest, ConcurrentStoresNeverPublishATornSnapshot) {
  const fs::path dir = fs::temp_directory_path() / "dtx_storage_race_test";
  fs::remove_all(dir);
  FileStore store(dir);

  // Payloads big enough that a torn mix is all but certain to be seen if
  // the staging file is shared, each filled with a writer-unique byte.
  constexpr int kWriters = 4;
  constexpr int kRounds = 50;
  std::vector<std::string> payloads;
  payloads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    payloads.push_back("<doc w='" + std::to_string(w) + "'>" +
                       std::string(64 * 1024, static_cast<char>('a' + w)) +
                       "</doc>");
  }

  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(store.store("d1", payloads[w]).is_ok());
      }
    });
  }
  std::atomic<bool> done{false};
  threads.emplace_back([&] {  // concurrent reader: every load is whole
    while (!done.load()) {
      auto loaded = store.load("d1");
      if (!loaded.is_ok()) continue;  // not yet published
      const bool intact =
          std::find(payloads.begin(), payloads.end(), loaded.value()) !=
          payloads.end();
      EXPECT_TRUE(intact) << "torn snapshot of " << loaded.value().size()
                          << " bytes";
      if (!intact) break;
    }
  });
  for (std::size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  done = true;
  threads.back().join();

  auto final_load = store.load("d1");
  ASSERT_TRUE(final_load.is_ok());
  EXPECT_NE(std::find(payloads.begin(), payloads.end(), final_load.value()),
            payloads.end());
  fs::remove_all(dir);
}

TEST(FileStoreTest, ConcurrentAppendsKeepRecordsWhole) {
  const fs::path dir = fs::temp_directory_path() / "dtx_storage_append_test";
  fs::remove_all(dir);
  FileStore store(dir);

  constexpr int kWriters = 4;
  constexpr int kRecords = 100;
  std::vector<std::thread> threads;
  threads.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      const std::string record =
          std::string(1, static_cast<char>('A' + w)) + std::string(512, '.') +
          "\n";
      for (int i = 0; i < kRecords; ++i) {
        ASSERT_TRUE(store.append("log", record).is_ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  auto log = store.read_log("log");
  ASSERT_TRUE(log.is_ok());
  // Whole-record atomicity: the log splits into exactly kWriters*kRecords
  // lines, each a tag byte plus its own filler — no interleaving.
  std::istringstream lines(log.value());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ASSERT_EQ(line.size(), 513u);
    EXPECT_EQ(line.substr(1), std::string(512, '.'));
    EXPECT_GE(line[0], 'A');
    EXPECT_LE(line[0], 'A' + kWriters - 1);
    ++count;
  }
  EXPECT_EQ(count, kWriters * kRecords);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dtx::storage
