#include "txn/operation.hpp"

#include "util/strings.hpp"
#include "xpath/parser.hpp"

namespace dtx::txn {

namespace {

using util::Code;
using util::Result;
using util::Status;

}  // namespace

std::string Operation::to_string() const {
  if (type == OpType::kQuery) {
    return "query " + doc + " " + query.to_string();
  }
  return "update " + doc + " " + update.to_string();
}

Result<Operation> parse_operation(std::string_view text) {
  const std::string_view trimmed = util::trim(text);
  const std::size_t first_space = trimmed.find(' ');
  if (first_space == std::string_view::npos) {
    return Status(Code::kInvalidArgument,
                  "operation needs '<verb> <doc> <body>'");
  }
  const std::string_view verb = trimmed.substr(0, first_space);
  const std::string_view rest = util::trim(trimmed.substr(first_space + 1));
  const std::size_t second_space = rest.find(' ');
  if (second_space == std::string_view::npos) {
    return Status(Code::kInvalidArgument, "operation missing body");
  }
  std::string doc(rest.substr(0, second_space));
  const std::string_view body = util::trim(rest.substr(second_space + 1));

  if (verb == "query") {
    return make_query(std::move(doc), body);
  }
  if (verb == "update") {
    auto update = xupdate::parse_update(body);
    if (!update) return update.status();
    return make_update(std::move(doc), std::move(update).value());
  }
  return Status(Code::kInvalidArgument,
                "unknown operation verb '" + std::string(verb) + "'");
}

Result<Operation> make_query(std::string doc, std::string_view xpath) {
  auto path = xpath::parse(xpath);
  if (!path) return path.status();
  Operation op;
  op.type = OpType::kQuery;
  op.doc = std::move(doc);
  op.query = std::move(path).value();
  return op;
}

Operation make_update(std::string doc, xupdate::UpdateOp update) {
  Operation op;
  op.type = OpType::kUpdate;
  op.doc = std::move(doc);
  op.update = std::move(update);
  return op;
}

}  // namespace dtx::txn
