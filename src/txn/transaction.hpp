// Coordinator-side transaction record and the client-facing result type.
//
// Transaction ids encode the begin instant: id = (begin_micros << 10) | site.
// Begin instants are taken from a monotonic clock shared by the in-process
// cluster, so the paper's victim rule — "the most recent transaction
// involved in the circle is rolled back" — reduces to picking the maximum
// id on the cycle (wfg::WaitForGraph::newest_on_cycle).
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lock/lock_table.hpp"
#include "net/message.hpp"
#include "txn/abort_reason.hpp"
#include "txn/operation.hpp"
#include "util/sync.hpp"

namespace dtx::txn {

using lock::TxnId;
using net::SiteId;

/// Builds a transaction id from a begin timestamp and the coordinator site.
TxnId make_txn_id(std::uint64_t begin_micros, SiteId site) noexcept;
SiteId txn_coordinator(TxnId id) noexcept;
std::uint64_t txn_begin_micros(TxnId id) noexcept;

/// Paper §2.2: "one can always say that a transaction either commits,
/// aborts or fails", plus the transient active / wait states.
enum class TxnState : std::uint8_t {
  kActive,
  kWaiting,     ///< blocked on a lock conflict
  kCommitted,
  kAborted,     ///< rolled back (deadlock victim or unprocessable)
  kFailed,      ///< abort could not be completed at some site
};

const char* txn_state_name(TxnState state) noexcept;

/// What the client receives when the transaction terminates.
struct TxnResult {
  TxnId id = 0;
  TxnState state = TxnState::kAborted;
  /// Per-operation query rows (empty vectors for updates).
  std::vector<std::vector<std::string>> rows;
  /// Client-observed response time.
  double response_ms = 0.0;
  /// True when the transaction was the victim of deadlock resolution.
  bool deadlock_victim = false;
  /// How many times an operation entered wait mode before acquiring locks.
  std::uint32_t wait_episodes = 0;
  /// Why the transaction did not commit (kNone when committed). Clients
  /// branch on this code; `detail` is the human-readable context only.
  AbortReason reason = AbortReason::kNone;
  /// Failure detail for aborted / failed transactions (diagnostics only —
  /// never string-match this; use `reason`).
  std::string detail;
};

/// Coordinator-side record. Owned by the coordinator site; the embedded
/// latch hands the result back to the waiting client thread.
class Transaction {
 public:
  Transaction(TxnId id, std::vector<Operation> ops)
      : id_(id), ops_(std::move(ops)), states_(ops_.size()) {}

  [[nodiscard]] TxnId id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<Operation>& ops() const noexcept {
    return ops_;
  }
  [[nodiscard]] std::size_t op_count() const noexcept { return ops_.size(); }

  [[nodiscard]] OperationState& state_of(std::size_t index) {
    return states_.at(index);
  }

  /// True when no operation is an update — eligible for the MVCC
  /// snapshot-read path (the engine-side mirror of the client's
  /// PreparedTxn::read_only()).
  [[nodiscard]] bool read_only() const noexcept {
    for (const Operation& op : ops_) {
      if (op.is_update()) return false;
    }
    return true;
  }

  /// Index of the first non-executed operation, or op_count() when done
  /// (the paper's transaction.next_operation()).
  [[nodiscard]] std::size_t next_operation() const;

  [[nodiscard]] TxnState state() const noexcept { return state_; }
  void set_state(TxnState state) noexcept { state_ = state; }

  /// Sites that executed at least one operation (commit/abort fan-out,
  /// Alg. 5/6 l. 2: transaction.get_sites()).
  [[nodiscard]] const std::set<SiteId>& sites() const noexcept {
    return sites_;
  }
  void add_sites(const std::vector<SiteId>& sites) {
    sites_.insert(sites.begin(), sites.end());
  }

  void note_wait_episode() noexcept { ++wait_episodes_; }
  [[nodiscard]] std::uint32_t wait_episodes() const noexcept {
    return wait_episodes_;
  }

  void mark_deadlock_victim() noexcept { deadlock_victim_ = true; }
  [[nodiscard]] bool deadlock_victim() const noexcept {
    return deadlock_victim_;
  }

  /// Catalog epoch the coordinator routed this transaction under. Stamped
  /// once at claim time; the coordinator re-validates it before commit and
  /// the catalog drain waits for older-epoch transactions to terminate.
  void set_catalog_epoch(std::uint64_t epoch) noexcept {
    catalog_epoch_ = epoch;
  }
  [[nodiscard]] std::uint64_t catalog_epoch() const noexcept {
    return catalog_epoch_;
  }

  /// Records why the transaction is being aborted; the first recorded
  /// reason wins (the root cause, not a cascading cleanup failure). Like
  /// the other scheduler-side fields, only the claiming coordinator worker
  /// touches this.
  void set_abort_reason(AbortReason reason) noexcept {
    if (abort_reason_ == AbortReason::kNone) abort_reason_ = reason;
  }
  [[nodiscard]] AbortReason abort_reason() const noexcept {
    return abort_reason_;
  }

  // --- completion latch ------------------------------------------------------
  /// Publishes the final result and wakes the client.
  void complete(TxnResult result);
  /// Registers a hook fired once, with the final result, when the
  /// transaction terminates — the push-style counterpart of await() (the
  /// remote-client path: the dispatcher turns the result into a
  /// ClientReply without parking a thread). Fires immediately when the
  /// transaction already completed. At most one hook; it runs on the
  /// completing thread, outside the latch, so it may call back into the
  /// engine but must not block.
  void set_on_complete(std::function<void(const TxnResult&)> hook);
  /// Blocks the client until the transaction terminates.
  TxnResult await();
  /// Bounded wait: the result, or std::nullopt when `timeout` elapses
  /// first (the transaction keeps running; call again or abandon the
  /// handle). Prefer this over await() in anything user-facing.
  std::optional<TxnResult> await_for(std::chrono::microseconds timeout);
  [[nodiscard]] bool completed() const;

 private:
  TxnId id_;
  std::vector<Operation> ops_;
  std::vector<OperationState> states_;
  TxnState state_ = TxnState::kActive;
  std::set<SiteId> sites_;
  std::uint32_t wait_episodes_ = 0;
  bool deadlock_victim_ = false;
  std::uint64_t catalog_epoch_ = 0;
  AbortReason abort_reason_ = AbortReason::kNone;

  mutable sync::Mutex latch_mutex_{sync::LockRank::kTxnLatch};
  sync::CondVar latch_cv_;
  bool done_ DTX_GUARDED_BY(latch_mutex_) = false;
  // Written once under the latch by complete(); read lock-free afterwards
  // (await returns it after observing done_, the hook runs post-publish).
  TxnResult result_;
  std::function<void(const TxnResult&)> on_complete_
      DTX_GUARDED_BY(latch_mutex_);
};

}  // namespace dtx::txn
