#include "txn/transaction.hpp"

namespace dtx::txn {

namespace {
constexpr int kSiteBits = 10;
constexpr TxnId kSiteMask = (TxnId{1} << kSiteBits) - 1;
}  // namespace

TxnId make_txn_id(std::uint64_t begin_micros, SiteId site) noexcept {
  return (begin_micros << kSiteBits) | (site & kSiteMask);
}

SiteId txn_coordinator(TxnId id) noexcept {
  return static_cast<SiteId>(id & kSiteMask);
}

std::uint64_t txn_begin_micros(TxnId id) noexcept { return id >> kSiteBits; }

const char* txn_state_name(TxnState state) noexcept {
  switch (state) {
    case TxnState::kActive: return "active";
    case TxnState::kWaiting: return "waiting";
    case TxnState::kCommitted: return "committed";
    case TxnState::kAborted: return "aborted";
    case TxnState::kFailed: return "failed";
  }
  return "?";
}

std::size_t Transaction::next_operation() const {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (!states_[i].executed) return i;
  }
  return states_.size();
}

void Transaction::complete(TxnResult result) {
  std::function<void(const TxnResult&)> hook;
  {
    sync::MutexLock lock(latch_mutex_);
    if (done_) return;  // first completion wins (e.g. abort vs late commit)
    done_ = true;
    result_ = std::move(result);
    hook = std::move(on_complete_);
    on_complete_ = nullptr;
  }
  latch_cv_.notify_all();
  if (hook) hook(result_);
}

void Transaction::set_on_complete(
    std::function<void(const TxnResult&)> hook) {
  bool fire = false;
  {
    sync::MutexLock lock(latch_mutex_);
    if (done_) {
      fire = true;
    } else {
      on_complete_ = std::move(hook);
    }
  }
  if (fire && hook) hook(result_);
}

TxnResult Transaction::await() {
  sync::MutexLock lock(latch_mutex_);
  latch_cv_.wait(latch_mutex_, [&] { return done_; });
  return result_;
}

std::optional<TxnResult> Transaction::await_for(
    std::chrono::microseconds timeout) {
  sync::MutexLock lock(latch_mutex_);
  if (!latch_cv_.wait_for(latch_mutex_, timeout, [&] { return done_; })) {
    return std::nullopt;
  }
  return result_;
}

bool Transaction::completed() const {
  sync::MutexLock lock(latch_mutex_);
  return done_;
}

}  // namespace dtx::txn
