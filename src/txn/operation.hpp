// One operation of a DTX transaction: a query (XPath subset) or an update
// (the five-verb update language), always against a named document.
//
// Textual form (the wire / workload format):
//   query  <doc> <absolute-xpath>
//   update <doc> <update-syntax>            e.g. update d2 insert into /products ::= <product/>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "txn/abort_reason.hpp"
#include "util/status.hpp"
#include "xpath/ast.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::txn {

enum class OpType : std::uint8_t { kQuery, kUpdate };

struct Operation {
  OpType type = OpType::kQuery;
  std::string doc;  ///< target document name (routing key)

  xpath::Path query;          // kQuery
  xupdate::UpdateOp update;   // kUpdate

  /// Serializes back to the textual form (round-trippable).
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] bool is_update() const noexcept {
    return type == OpType::kUpdate;
  }
};

/// Parses the textual form above.
util::Result<Operation> parse_operation(std::string_view text);

/// Convenience constructors.
util::Result<Operation> make_query(std::string doc, std::string_view xpath);
Operation make_update(std::string doc, xupdate::UpdateOp op);

/// Runtime execution state of one operation at the coordinator (the paper's
/// operation.set_executed / not_adquire_locking / aborted / deadlock flags).
struct OperationState {
  bool executed = false;
  bool lock_conflict = false;
  bool failed = false;
  bool deadlock = false;
  std::uint32_t attempts = 0;  ///< execution attempts (wait-mode retries)
  std::vector<std::string> rows;  ///< query result (string values)
  /// Failure taxonomy + human-readable detail (kFailed outcomes).
  AbortReason reason = AbortReason::kNone;
  std::string error;

  void reset_attempt() noexcept {
    lock_conflict = false;
    failed = false;
    deadlock = false;
    rows.clear();
    reason = AbortReason::kNone;
    error.clear();
  }
};

}  // namespace dtx::txn
