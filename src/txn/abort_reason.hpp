// Structured abort taxonomy: why a transaction terminated without
// committing. The paper only distinguishes commit / abort / fail (§2.2);
// production clients need to branch on the *cause* — a deadlock victim is
// worth resubmitting, a malformed operation never is — so the reason is
// carried as a code from the participant that observed it, through the
// coordinator, to the client (txn::TxnResult::reason), instead of a
// free-form string callers would have to pattern-match.
#pragma once

#include <cstdint>

namespace dtx::txn {

enum class AbortReason : std::uint8_t {
  kNone = 0,             ///< committed (or not yet terminated)
  kDeadlockVictim,       ///< rolled back by deadlock resolution (Alg. 3/4)
  kLockWaitExhausted,    ///< exceeded SiteOptions::max_wait_episodes
  kParseError,           ///< parse / validation failure (bad operation text,
                         ///< unknown document)
  kSiteFailure,          ///< participant timeout, unacknowledged commit /
                         ///< abort, site shutdown
  kUnprocessableUpdate,  ///< data-layer failure applying the operation
                         ///< (e.g. insert relative to a root node)
  kStaleCatalog,         ///< routed under an outdated catalog epoch (or to a
                         ///< replica still importing) — retry re-routes
};

/// Stable lowercase name ("deadlock-victim", ...) for logs and shells.
const char* abort_reason_name(AbortReason reason) noexcept;

/// True for transient causes a client may retry (deadlock victim, lock-wait
/// exhausted, site failure). Parse and unprocessable-update aborts are
/// deterministic: resubmitting the same transaction fails the same way.
bool abort_reason_retryable(AbortReason reason) noexcept;

}  // namespace dtx::txn
