#include "txn/abort_reason.hpp"

namespace dtx::txn {

const char* abort_reason_name(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::kNone: return "none";
    case AbortReason::kDeadlockVictim: return "deadlock-victim";
    case AbortReason::kLockWaitExhausted: return "lock-wait-exhausted";
    case AbortReason::kParseError: return "parse-error";
    case AbortReason::kSiteFailure: return "site-failure";
    case AbortReason::kUnprocessableUpdate: return "unprocessable-update";
    case AbortReason::kStaleCatalog: return "stale-catalog";
  }
  return "?";
}

bool abort_reason_retryable(AbortReason reason) noexcept {
  switch (reason) {
    case AbortReason::kDeadlockVictim:
    case AbortReason::kLockWaitExhausted:
    case AbortReason::kSiteFailure:
    case AbortReason::kStaleCatalog:
      return true;
    case AbortReason::kNone:
    case AbortReason::kParseError:
    case AbortReason::kUnprocessableUpdate:
      return false;
  }
  return false;
}

}  // namespace dtx::txn
