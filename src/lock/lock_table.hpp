// The site-local lock table. Targets are opaque (scope, node) pairs:
//  * XDGL        -> (document id, DataGuide node id)
//  * Node2PL     -> (document id, instance node id)
//  * DocLock2PL  -> (document id, 0)
//
// Acquisition is immediate-or-conflict: DTX never queues a request inside
// the table — a conflicting operation is undone and its transaction enters
// wait mode (Alg. 1 l. 9 / l. 17), to be retried after the blockers release.
//
// Concurrency: the table is split into `shard_count` independently-locked
// shards keyed by NodeKeyHash. Single-target calls touch one shard mutex;
// batch calls (try_acquire_all / rollback) lock every involved shard in
// ascending index order, so concurrent cross-shard batches stay
// all-or-nothing without self-deadlock. Counters are kept per shard and
// aggregated on read — a LockTable is safe to call from any number of
// threads. The default of one shard reproduces the historical
// single-monitor behavior exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lock/lock_modes.hpp"
#include "util/sync.hpp"

namespace dtx::lock {

/// Transaction identifier. Globally unique across sites (the DTX runtime
/// packs the coordinator site id into the high bits).
using TxnId = std::uint64_t;

/// Value condition of a logical lock. XDGL locks DataGuide nodes, which
/// summarize *every* instance with a label path — so a lock may carry a
/// value annotation restricting it to instances matching an equality
/// predicate (e.g. person[@id='4']). Two locks on the same guide node whose
/// conditions name different values cannot touch the same instance and are
/// therefore compatible even when their modes conflict. 0 means
/// unconditioned ("any instance"), which conflicts by mode alone.
using ValueCondition = std::uint64_t;
inline constexpr ValueCondition kAnyValue = 0;

/// Hashes a predicate literal into a condition (never returns kAnyValue;
/// a hash collision merely merges two conditions — a safe over-conflict).
ValueCondition value_condition_of(std::string_view literal) noexcept;

struct LockTarget {
  std::uint64_t scope = 0;  ///< site-local document id
  std::uint64_t node = 0;   ///< guide / instance node id (0 = whole scope)
  ValueCondition value = kAnyValue;

  bool operator==(const LockTarget&) const = default;
};

/// Conflicts are detected per (scope, node); the value takes part only in
/// the compatibility rule above.
struct NodeKey {
  std::uint64_t scope = 0;
  std::uint64_t node = 0;
  bool operator==(const NodeKey&) const = default;
};

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& key) const noexcept {
    // splitmix-style mix of the two words.
    std::uint64_t x = key.scope * 0x9e3779b97f4a7c15ULL + key.node;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};

struct LockRequest {
  LockTarget target;
  LockMode mode = LockMode::kIS;
};

/// Outcome of a single-target acquisition attempt.
struct AcquireOutcome {
  bool granted = false;
  /// Transactions whose held locks block the request (empty when granted).
  std::vector<TxnId> conflicts;
};

/// Record of what a successful batch acquisition changed. DTX keeps one per
/// (transaction, operation) so a remote operation that failed to lock at a
/// *different* site can release exactly the locks it took here (Alg. 1
/// l. 16: undo_operation) without touching locks earlier operations of the
/// same transaction still hold under Strict 2PL.
struct AcquisitionJournal {
  struct Item {
    LockTarget target;
    bool new_entry = false;  ///< false = mode upgrade of an existing entry
    ModeMask old_mask = 0;   ///< prior mask for upgrades
  };
  std::vector<Item> items;

  [[nodiscard]] bool empty() const noexcept { return items.empty(); }
};

class LockTable {
 public:
  /// `shard_count` independently-locked shards; 0 is clamped to 1.
  explicit LockTable(std::size_t shard_count = 1);
  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Attempts to acquire one lock. Same-transaction re-requests are granted
  /// (and skipped entirely when an already-held mode covers the request).
  AcquireOutcome try_acquire(TxnId txn, const LockRequest& request);

  /// Attempts a batch all-or-nothing: on the first conflict every lock newly
  /// acquired by this call is released and the conflict set is returned.
  /// On success, `journal` (when non-null) records the changes so rollback()
  /// can revert this batch alone later. Every shard the batch touches is
  /// held for the duration, so concurrent batches observe it atomically.
  AcquireOutcome try_acquire_all(TxnId txn,
                                 const std::vector<LockRequest>& requests,
                                 AcquisitionJournal* journal = nullptr);

  /// Reverts a previously successful batch (newest item first).
  void rollback(TxnId txn, const AcquisitionJournal& journal);

  /// Releases everything the transaction holds (commit / abort — Strict
  /// 2PL releases only at transaction end). Shards are drained one at a
  /// time; under Strict 2PL a monotone release needs no cross-shard atomicity.
  void release_all(TxnId txn);

  /// True when the transaction holds `mode` (or a covering mode) on exactly
  /// this target (scope, node and value condition).
  [[nodiscard]] bool holds(TxnId txn, const LockTarget& target,
                           LockMode mode) const;

  /// All transactions currently holding any lock.
  [[nodiscard]] std::vector<TxnId> holders() const;

  /// Number of (transaction, target) lock entries currently held
  /// (aggregated over shards).
  [[nodiscard]] std::size_t entry_count() const;

  /// Total successful acquisitions since construction — the "lock
  /// management overhead" counter reported by the benches.
  [[nodiscard]] std::uint64_t acquisition_count() const;
  /// Total conflicted (denied) acquisition attempts since construction.
  [[nodiscard]] std::uint64_t conflict_count() const;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Shard a target's conflict state lives in (tests / diagnostics).
  [[nodiscard]] std::size_t shard_of(const LockTarget& target) const noexcept {
    return shard_index(NodeKey{target.scope, target.node});
  }

  /// Per-shard counter snapshot (load-balance diagnostics).
  struct ShardStats {
    std::size_t entries = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t conflicts = 0;
  };
  [[nodiscard]] std::vector<ShardStats> shard_stats() const;

  /// Diagnostic dump ("doc 1 guide 56: t3=ST t7=IX").
  [[nodiscard]] std::string dump() const;

 private:
  struct Holder {
    TxnId txn = 0;
    ValueCondition value = kAnyValue;
    ModeMask mask = 0;
  };
  struct TargetState {
    // Few holders per target in practice; linear scan beats a map.
    std::vector<Holder> holders;
  };
  struct Shard {
    /// Multi-acquire: batch calls hold several shard mutexes at once, all
    /// at the same rank, ordered by ascending shard index (lock_shards).
    mutable sync::Mutex mutex{sync::LockRank::kLockTableShard,
                              sync::kMultiAcquire};
    std::unordered_map<NodeKey, TargetState, NodeKeyHash> targets
        DTX_GUARDED_BY(mutex);
    std::unordered_map<TxnId, std::vector<LockTarget>> by_txn
        DTX_GUARDED_BY(mutex);
    std::size_t entry_count DTX_GUARDED_BY(mutex) = 0;
    std::uint64_t acquisitions DTX_GUARDED_BY(mutex) = 0;
    std::uint64_t conflict_attempts DTX_GUARDED_BY(mutex) = 0;
  };

  /// What a successful acquisition changed, for batch unwinding.
  enum class Change { kNone, kNewEntry, kUpgrade };

  [[nodiscard]] std::size_t shard_index(const NodeKey& key) const noexcept {
    return NodeKeyHash{}(key) % shards_.size();
  }

  /// Core acquisition against one shard; the caller holds its mutex.
  AcquireOutcome acquire_in(Shard& shard, TxnId txn,
                            const LockRequest& request, Change& change,
                            ModeMask& old_mask) DTX_REQUIRES(shard.mutex);

  /// Reverts journal items; the caller holds every involved shard's mutex.
  /// The hold set is data-dependent, so it is re-established per item with
  /// AssertHeld rather than a REQUIRES clause.
  void rollback_locked(TxnId txn, const AcquisitionJournal& journal);

  /// Locks the given shard indices (duplicates fine) in ascending order —
  /// the one shard-ordering rule every cross-shard batch goes through.
  /// The guards travel through the returned vector, which the static
  /// analysis cannot follow; callers AssertHeld per shard they touch.
  [[nodiscard]] std::vector<sync::MovableMutexLock> lock_shards(
      std::vector<std::size_t> involved) const;

  // Shards are heap-allocated so the table stays movable-free but the
  // mutexes have stable addresses.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dtx::lock
