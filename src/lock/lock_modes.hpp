// The eight XDGL lock modes and their compatibility matrix (paper §2):
//
//   SI (shared into), SA (shared after), SB (shared before): shared locks
//      taken on the reference node of an insertion — they prevent concurrent
//      modification of that node while staying compatible with one another,
//      so independent inserts around the same node do not conflict.
//   X  (exclusive): the node being modified.
//   ST (shared tree): protects a DataGuide subtree from any update.
//   XT (exclusive tree): protects a DataGuide subtree from reads and updates.
//   IS (intention shared): on each ancestor of a node locked in shared mode.
//   IX (intention exclusive): on each ancestor of a node locked exclusively.
//
// The exact matrix is defined in the XDGL paper (Pleshachkov et al., ADBIS
// 2005), which this article references but does not reprint. The matrix
// below is reconstructed to honour every behaviour the article states:
//   * ST is incompatible with IX (drives the §2.4 deadlock example);
//   * SI/SA/SB are *shared*: mutually compatible and compatible with reads,
//     incompatible with X/XT on the same node;
//   * XT conflicts with everything (no reads below an exclusive tree);
//   * X conflicts with everything (pending node modifications are invisible
//     under read-committed, so no other lock may coexist).
// plus classic multigranularity rules (IS/IX compatible with each other).
#pragma once

#include <cstdint>
#include <string>

namespace dtx::lock {

enum class LockMode : std::uint8_t {
  kIS = 0,
  kIX = 1,
  kSI = 2,
  kSA = 3,
  kSB = 4,
  kST = 5,
  kXT = 6,
  kX = 7,
};

inline constexpr int kLockModeCount = 8;

const char* lock_mode_name(LockMode mode) noexcept;

/// True when a lock held in `held` allows another transaction to acquire
/// `requested` on the same target.
bool compatible(LockMode held, LockMode requested) noexcept;

/// True when a transaction already holding `held` needs no extra lock to
/// perform what `requested` permits (e.g. X covers everything, ST covers IS).
/// Used to skip redundant same-transaction acquisitions.
bool covers(LockMode held, LockMode requested) noexcept;

/// Bitmask helpers: lock tables store a per-(txn, target) mode set.
using ModeMask = std::uint8_t;

constexpr ModeMask mask_of(LockMode mode) noexcept {
  return static_cast<ModeMask>(1u << static_cast<unsigned>(mode));
}

/// True when `requested` is compatible with every mode in `held_mask`.
bool mask_compatible(ModeMask held_mask, LockMode requested) noexcept;

/// True when some mode in `held_mask` covers `requested`.
bool mask_covers(ModeMask held_mask, LockMode requested) noexcept;

/// "IS|ST" style rendering for diagnostics.
std::string mask_to_string(ModeMask mask);

}  // namespace dtx::lock
