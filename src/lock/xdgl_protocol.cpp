// XDGL lock rules (paper §2), applied to DataGuide nodes:
//
//   Query:     ST on every target guide node, IS on each of its ancestors;
//              ST + IS-on-ancestors on predicate-path targets.
//   Insert:    X on the (guide node of the) node to be inserted, IX on its
//              ancestors; SI / SB / SA on the connecting node (by insert
//              position) and IS on its ancestors; ST + IS on predicate
//              targets.
//   Remove:    XT on the target guide nodes, IX on ancestors; ST + IS on
//              predicate targets.
//   Rename:    X on the target guide node, IX on ancestors.
//   Change:    X on the target guide node, IX on ancestors.
//   Transpose: XT on the source guide node, IX on ancestors; SI on the
//              destination node, IS on ancestors; X + IX for the subtree's
//              new guide location.
//
// Locks are *logical*: each carries the value condition guide matching
// extracted from equality predicates (person[@id='4']), and inserted
// entities are conditioned on their own id attribute. Locks on the same
// guide node under different conditions are compatible (see lock_table.hpp)
// — point operations on different instances proceed concurrently, while
// scans and unconditioned operations conflict conservatively. This is the
// DataGuide-level concurrency the paper credits XDGL with.
#include <string>
#include <vector>

#include "dataguide/guide_match.hpp"
#include "lock/protocol.hpp"

namespace dtx::lock {

namespace {

using dataguide::GuideNode;
using dataguide::GuideTarget;
using util::Code;
using util::Result;
using util::Status;
using xupdate::InsertWhere;
using xupdate::UpdateKind;
using xupdate::UpdateOp;

class XdglProtocol final : public LockProtocol {
 public:
  /// `logical_locks` = false drops every value condition (the "xdgl-plain"
  /// variant): locks then concern all instances of a guide path, which is
  /// how the JCSS article's worked example behaves.
  explicit XdglProtocol(bool logical_locks) : logical_locks_(logical_locks) {}

  [[nodiscard]] const char* name() const noexcept override {
    return logical_locks_ ? "xdgl" : "xdgl-plain";
  }

  Result<std::vector<LockRequest>> locks_for_query(
      const xpath::Path& path, const DocContext& context) override {
    std::vector<LockRequest> requests;
    const dataguide::MatchResult match = dataguide::match(path, context.guide);
    for (const GuideTarget& target : match.targets) {
      add_with_ancestors(requests, context.scope, target, LockMode::kST,
                         LockMode::kIS);
    }
    for (const GuideTarget& target : match.predicate_targets) {
      add_with_ancestors(requests, context.scope, target, LockMode::kST,
                         LockMode::kIS);
    }
    return requests;
  }

  Result<std::vector<LockRequest>> locks_for_update(
      const UpdateOp& op, const DocContext& context,
      const xupdate::FragmentProbe* probe) override {
    switch (op.kind) {
      case UpdateKind::kInsert: return locks_for_insert(op, context, probe);
      case UpdateKind::kRemove:
        return locks_for_tree_write(op, context, LockMode::kXT);
      case UpdateKind::kRename:
      case UpdateKind::kChange:
        return locks_for_tree_write(op, context, LockMode::kX);
      case UpdateKind::kTranspose: return locks_for_transpose(op, context);
    }
    return Status(Code::kInternal, "unknown update kind");
  }

 private:
  bool logical_locks_;

  [[nodiscard]] ValueCondition condition_of(const std::string& condition) const {
    if (!logical_locks_ || condition.empty()) return kAnyValue;
    return value_condition_of(condition);
  }

  /// Pushes `node_mode` on the guide node and `ancestor_mode` on each
  /// ancestor (root-first keeps acquisition order deterministic). The
  /// ancestors inherit the target's value condition: an intention lock for
  /// a point operation only announces work on the matching instance.
  void add_with_ancestors(std::vector<LockRequest>& requests,
                          std::uint64_t scope, const GuideTarget& target,
                          LockMode node_mode, LockMode ancestor_mode) const {
    const ValueCondition value = condition_of(target.condition);
    std::vector<GuideNode*> ancestors;
    for (GuideNode* cursor = target.node->parent(); cursor != nullptr;
         cursor = cursor->parent()) {
      ancestors.push_back(cursor);
    }
    for (auto it = ancestors.rbegin(); it != ancestors.rend(); ++it) {
      requests.push_back(LockRequest{
          LockTarget{scope, (*it)->id(), value}, ancestor_mode});
    }
    requests.push_back(LockRequest{
        LockTarget{scope, target.node->id(), value}, node_mode});
  }

  void add_predicate_locks(std::vector<LockRequest>& requests,
                           std::uint64_t scope,
                           const dataguide::MatchResult& match) const {
    for (const GuideTarget& target : match.predicate_targets) {
      add_with_ancestors(requests, scope, target, LockMode::kST,
                         LockMode::kIS);
    }
  }

  /// Resolves (creating on demand) the guide child of `parent` with the
  /// given label — the guide position of a node about to be inserted.
  static GuideNode* ensure_guide_child(dataguide::DataGuide& guide,
                                       GuideNode* parent,
                                       const std::string& label) {
    if (GuideNode* existing = parent->child_labelled(label)) return existing;
    std::vector<std::string> labels;
    std::vector<GuideNode*> chain;
    for (GuideNode* cursor = parent; cursor != nullptr;
         cursor = cursor->parent()) {
      chain.push_back(cursor);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      labels.push_back((*it)->label());
    }
    labels.push_back(label);
    return guide.ensure_path(labels);
  }

  Result<std::vector<LockRequest>> locks_for_insert(
      const UpdateOp& op, const DocContext& context,
      const xupdate::FragmentProbe* probe) {
    std::vector<LockRequest> requests;
    const dataguide::MatchResult match =
        dataguide::match(op.target, context.guide);
    add_predicate_locks(requests, context.scope, match);

    // Fragment facts: the root label locates the new guide node; the id
    // attribute (when present) conditions the exclusive lock to the new
    // instance, so independent inserts do not serialize. A compiled plan
    // passes them pre-probed; otherwise parse the fragment here.
    std::string fragment_label;
    std::string fragment_condition;
    if (probe != nullptr) {
      fragment_label = probe->root_label;
      if (probe->has_id) fragment_condition = "@id=" + probe->id_value;
    } else {
      auto probed = xupdate::probe_fragment(op);
      if (!probed) return probed.status();
      fragment_label = std::move(probed.value().root_label);
      if (probed.value().has_id) {
        fragment_condition = "@id=" + probed.value().id_value;
      }
    }

    const LockMode connect_mode = op.where == InsertWhere::kInto
                                      ? LockMode::kSI
                                      : (op.where == InsertWhere::kBefore
                                             ? LockMode::kSB
                                             : LockMode::kSA);
    for (const GuideTarget& target : match.targets) {
      // The connecting node: the target itself for insert-into, its parent
      // for before/after.
      GuideNode* connecting = op.where == InsertWhere::kInto
                                  ? target.node
                                  : target.node->parent();
      if (connecting == nullptr) {
        return Status(Code::kInvalidArgument,
                      "cannot insert beside the document root");
      }
      add_with_ancestors(requests, context.scope,
                         GuideTarget{connecting, target.condition},
                         connect_mode, LockMode::kIS);
      GuideNode* inserted_guide =
          ensure_guide_child(context.guide, connecting, fragment_label);
      add_with_ancestors(requests, context.scope,
                         GuideTarget{inserted_guide, fragment_condition},
                         LockMode::kX, LockMode::kIX);
    }
    return requests;
  }

  Result<std::vector<LockRequest>> locks_for_tree_write(
      const UpdateOp& op, const DocContext& context, LockMode target_mode) {
    std::vector<LockRequest> requests;
    const dataguide::MatchResult match =
        dataguide::match(op.target, context.guide);
    add_predicate_locks(requests, context.scope, match);
    for (const GuideTarget& target : match.targets) {
      add_with_ancestors(requests, context.scope, target, target_mode,
                         LockMode::kIX);
    }
    return requests;
  }

  Result<std::vector<LockRequest>> locks_for_transpose(
      const UpdateOp& op, const DocContext& context) {
    std::vector<LockRequest> requests;
    const dataguide::MatchResult source =
        dataguide::match(op.target, context.guide);
    add_predicate_locks(requests, context.scope, source);
    for (const GuideTarget& target : source.targets) {
      add_with_ancestors(requests, context.scope, target, LockMode::kXT,
                         LockMode::kIX);
    }
    const dataguide::MatchResult destination =
        dataguide::match(op.destination, context.guide);
    add_predicate_locks(requests, context.scope, destination);
    for (const GuideTarget& dest : destination.targets) {
      add_with_ancestors(requests, context.scope, dest, LockMode::kSI,
                         LockMode::kIS);
      // The subtree's new guide location under the destination.
      for (const GuideTarget& moved : source.targets) {
        GuideNode* new_child = ensure_guide_child(context.guide, dest.node,
                                                  moved.node->label());
        add_with_ancestors(requests, context.scope,
                           GuideTarget{new_child, moved.condition},
                           LockMode::kX, LockMode::kIX);
      }
    }
    return requests;
  }
};

}  // namespace

std::unique_ptr<LockProtocol> make_xdgl_protocol(bool logical_locks) {
  return std::make_unique<XdglProtocol>(logical_locks);
}

}  // namespace dtx::lock
