#include "lock/protocol.hpp"

namespace dtx::lock {

const char* protocol_kind_name(ProtocolKind kind) noexcept {
  switch (kind) {
    case ProtocolKind::kXdgl: return "xdgl";
    case ProtocolKind::kXdglPlain: return "xdgl-plain";
    case ProtocolKind::kNode2pl: return "node2pl";
    case ProtocolKind::kDocLock2pl: return "doclock";
  }
  return "?";
}

util::Result<ProtocolKind> parse_protocol_kind(const std::string& name) {
  if (name == "xdgl") return ProtocolKind::kXdgl;
  if (name == "xdgl-plain" || name == "xdglplain") {
    return ProtocolKind::kXdglPlain;
  }
  if (name == "node2pl") return ProtocolKind::kNode2pl;
  if (name == "doclock" || name == "doclock2pl") {
    return ProtocolKind::kDocLock2pl;
  }
  return util::Status(util::Code::kInvalidArgument,
                      "unknown protocol '" + name +
                          "' (expected xdgl, xdgl-plain, node2pl or doclock)");
}

// xdgl_protocol.cpp
std::unique_ptr<LockProtocol> make_xdgl_protocol(bool logical_locks);
std::unique_ptr<LockProtocol> make_node2pl_protocol();   // node2pl_protocol.cpp
std::unique_ptr<LockProtocol> make_doclock_protocol();   // doclock_protocol.cpp

std::unique_ptr<LockProtocol> make_protocol(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kXdgl: return make_xdgl_protocol(true);
    case ProtocolKind::kXdglPlain: return make_xdgl_protocol(false);
    case ProtocolKind::kNode2pl: return make_node2pl_protocol();
    case ProtocolKind::kDocLock2pl: return make_doclock_protocol();
  }
  return nullptr;
}

}  // namespace dtx::lock
