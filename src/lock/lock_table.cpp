#include "lock/lock_table.hpp"

#include <algorithm>
#include <set>

namespace dtx::lock {

ValueCondition value_condition_of(std::string_view literal) noexcept {
  // FNV-1a, pinned away from kAnyValue.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : literal) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash == kAnyValue ? 1 : hash;
}

namespace {

/// Two locks on the same guide node can only collide when at least one is
/// unconditioned or their conditions name the same value.
bool values_may_overlap(ValueCondition a, ValueCondition b) noexcept {
  return a == kAnyValue || b == kAnyValue || a == b;
}

}  // namespace

LockTable::LockTable(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AcquireOutcome LockTable::try_acquire(TxnId txn, const LockRequest& request) {
  Shard& shard =
      *shards_[shard_index({request.target.scope, request.target.node})];
  sync::MutexLock lock(shard.mutex);
  Change change = Change::kNone;
  ModeMask old_mask = 0;
  return acquire_in(shard, txn, request, change, old_mask);
}

AcquireOutcome LockTable::acquire_in(Shard& shard, TxnId txn,
                                     const LockRequest& request,
                                     Change& change, ModeMask& old_mask) {
  change = Change::kNone;
  const NodeKey key{request.target.scope, request.target.node};
  TargetState& state = shard.targets[key];

  // Conflict check against other transactions; find our own entry meanwhile.
  Holder* own = nullptr;
  std::vector<TxnId> conflicts;
  for (Holder& holder : state.holders) {
    if (holder.txn == txn) {
      if (holder.value == request.target.value) own = &holder;
      continue;  // never conflicts with itself, under any condition
    }
    if (!values_may_overlap(holder.value, request.target.value)) continue;
    if (!mask_compatible(holder.mask, request.mode)) {
      conflicts.push_back(holder.txn);
    }
  }
  if (!conflicts.empty()) {
    ++shard.conflict_attempts;
    if (state.holders.empty()) shard.targets.erase(key);
    return AcquireOutcome{false, std::move(conflicts)};
  }

  if (own != nullptr && mask_covers(own->mask, request.mode)) {
    // Already effectively held; no bookkeeping change, no counter bump —
    // re-walking shared ancestors must not inflate the overhead metric.
    return AcquireOutcome{true, {}};
  }
  ++shard.acquisitions;
  if (own != nullptr) {
    change = Change::kUpgrade;
    old_mask = own->mask;
    own->mask |= mask_of(request.mode);
    return AcquireOutcome{true, {}};
  }
  change = Change::kNewEntry;
  state.holders.push_back(
      Holder{txn, request.target.value, mask_of(request.mode)});
  shard.by_txn[txn].push_back(request.target);
  ++shard.entry_count;
  return AcquireOutcome{true, {}};
}

std::vector<sync::MovableMutexLock> LockTable::lock_shards(
    std::vector<std::size_t> involved) const {
  // Ascending index order: concurrent batches always order the same way,
  // so cross-shard all-or-nothing cannot self-deadlock. (The rank checker
  // admits the equal-rank re-acquisitions because the shard mutexes are
  // constructed multi-acquire.)
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());
  std::vector<sync::MovableMutexLock> guards;
  guards.reserve(involved.size());
  for (const std::size_t index : involved) {
    guards.emplace_back(shards_[index]->mutex);
  }
  return guards;
}

AcquireOutcome LockTable::try_acquire_all(
    TxnId txn, const std::vector<LockRequest>& requests,
    AcquisitionJournal* journal) {
  if (requests.empty()) return AcquireOutcome{true, {}};

  std::vector<std::size_t> involved;
  involved.reserve(requests.size());
  for (const LockRequest& request : requests) {
    involved.push_back(
        shard_index({request.target.scope, request.target.node}));
  }
  const auto guards = lock_shards(involved);

  // All-or-nothing: on conflict, every change this batch made (new entries
  // and mode upgrades alike) is rolled back before returning.
  AcquisitionJournal local;
  AcquisitionJournal& record = journal != nullptr ? *journal : local;
  const std::size_t record_base = record.items.size();

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const LockRequest& request = requests[i];
    Shard& shard = *shards_[involved[i]];
    shard.mutex.AssertHeld();  // held via `guards`
    Change change = Change::kNone;
    ModeMask old_mask = 0;
    AcquireOutcome outcome =
        acquire_in(shard, txn, request, change, old_mask);
    if (outcome.granted) {
      if (change != Change::kNone) {
        record.items.push_back(AcquisitionJournal::Item{
            request.target, change == Change::kNewEntry, old_mask});
      }
      continue;
    }
    // Unwind this batch's changes in reverse (shards still held).
    AcquisitionJournal batch;
    batch.items.assign(record.items.begin() +
                           static_cast<std::ptrdiff_t>(record_base),
                       record.items.end());
    record.items.resize(record_base);
    rollback_locked(txn, batch);
    return outcome;
  }
  return AcquireOutcome{true, {}};
}

void LockTable::rollback(TxnId txn, const AcquisitionJournal& journal) {
  if (journal.items.empty()) return;
  std::vector<std::size_t> involved;
  involved.reserve(journal.items.size());
  for (const AcquisitionJournal::Item& item : journal.items) {
    involved.push_back(shard_index({item.target.scope, item.target.node}));
  }
  const auto guards = lock_shards(std::move(involved));
  rollback_locked(txn, journal);
}

void LockTable::rollback_locked(TxnId txn, const AcquisitionJournal& journal) {
  for (auto it = journal.items.rbegin(); it != journal.items.rend(); ++it) {
    const NodeKey key{it->target.scope, it->target.node};
    Shard& shard = *shards_[shard_index(key)];
    shard.mutex.AssertHeld();  // held via the caller's lock_shards guards
    const auto state_it = shard.targets.find(key);
    if (state_it == shard.targets.end()) continue;
    auto& holders = state_it->second.holders;
    const auto holder =
        std::find_if(holders.begin(), holders.end(), [&](const Holder& h) {
          return h.txn == txn && h.value == it->target.value;
        });
    if (holder == holders.end()) continue;
    if (!it->new_entry) {
      holder->mask = it->old_mask;
    } else {
      holders.erase(holder);
      --shard.entry_count;
      auto& owned = shard.by_txn[txn];
      const auto owned_it = std::find(owned.begin(), owned.end(), it->target);
      if (owned_it != owned.end()) owned.erase(owned_it);
      if (owned.empty()) shard.by_txn.erase(txn);
      if (holders.empty()) shard.targets.erase(state_it);
    }
  }
}

void LockTable::release_all(TxnId txn) {
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    sync::MutexLock lock(shard.mutex);
    const auto it = shard.by_txn.find(txn);
    if (it == shard.by_txn.end()) continue;
    for (const LockTarget& target : it->second) {
      const NodeKey key{target.scope, target.node};
      const auto state_it = shard.targets.find(key);
      if (state_it == shard.targets.end()) continue;
      auto& holders = state_it->second.holders;
      const auto holder =
          std::find_if(holders.begin(), holders.end(), [&](const Holder& h) {
            return h.txn == txn && h.value == target.value;
          });
      if (holder != holders.end()) {
        holders.erase(holder);
        --shard.entry_count;
      }
      if (holders.empty()) shard.targets.erase(state_it);
    }
    shard.by_txn.erase(txn);
  }
}

bool LockTable::holds(TxnId txn, const LockTarget& target,
                      LockMode mode) const {
  const NodeKey key{target.scope, target.node};
  const Shard& shard = *shards_[shard_index(key)];
  sync::MutexLock lock(shard.mutex);
  const auto it = shard.targets.find(key);
  if (it == shard.targets.end()) return false;
  for (const Holder& holder : it->second.holders) {
    if (holder.txn == txn && holder.value == target.value) {
      return (holder.mask & mask_of(mode)) != 0 ||
             mask_covers(holder.mask, mode);
    }
  }
  return false;
}

std::vector<TxnId> LockTable::holders() const {
  std::set<TxnId> unique_holders;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    sync::MutexLock lock(shard.mutex);
    for (const auto& [txn, targets] : shard.by_txn) {
      (void)targets;
      unique_holders.insert(txn);
    }
  }
  return std::vector<TxnId>(unique_holders.begin(), unique_holders.end());
}

std::size_t LockTable::entry_count() const {
  std::size_t total = 0;
  for (const auto& shard_ptr : shards_) {
    sync::MutexLock lock(shard_ptr->mutex);
    total += shard_ptr->entry_count;
  }
  return total;
}

std::uint64_t LockTable::acquisition_count() const {
  std::uint64_t total = 0;
  for (const auto& shard_ptr : shards_) {
    sync::MutexLock lock(shard_ptr->mutex);
    total += shard_ptr->acquisitions;
  }
  return total;
}

std::uint64_t LockTable::conflict_count() const {
  std::uint64_t total = 0;
  for (const auto& shard_ptr : shards_) {
    sync::MutexLock lock(shard_ptr->mutex);
    total += shard_ptr->conflict_attempts;
  }
  return total;
}

std::vector<LockTable::ShardStats> LockTable::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard_ptr : shards_) {
    sync::MutexLock lock(shard_ptr->mutex);
    out.push_back(ShardStats{shard_ptr->entry_count, shard_ptr->acquisitions,
                             shard_ptr->conflict_attempts});
  }
  return out;
}

std::string LockTable::dump() const {
  std::string out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    sync::MutexLock lock(shard.mutex);
    for (const auto& [key, state] : shard.targets) {
      // Separate appends (not one operator+ chain): GCC 12's -Wrestrict
      // false-positives on rvalue string concatenation chains (PR105329).
      out += "doc ";
      out += std::to_string(key.scope);
      out += " node ";
      out += std::to_string(key.node);
      out += ':';
      for (const Holder& holder : state.holders) {
        out += " t";
        out += std::to_string(holder.txn);
        out += '=';
        out += mask_to_string(holder.mask);
        if (holder.value != kAnyValue) {
          out += '@';
          out += std::to_string(holder.value % 997);
        }
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace dtx::lock
