#include "lock/lock_table.hpp"

#include <algorithm>

namespace dtx::lock {

ValueCondition value_condition_of(std::string_view literal) noexcept {
  // FNV-1a, pinned away from kAnyValue.
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : literal) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash == kAnyValue ? 1 : hash;
}

namespace {

/// Two locks on the same guide node can only collide when at least one is
/// unconditioned or their conditions name the same value.
bool values_may_overlap(ValueCondition a, ValueCondition b) noexcept {
  return a == kAnyValue || b == kAnyValue || a == b;
}

}  // namespace

AcquireOutcome LockTable::try_acquire(TxnId txn, const LockRequest& request) {
  Change change = Change::kNone;
  ModeMask old_mask = 0;
  return acquire_internal(txn, request, change, old_mask);
}

AcquireOutcome LockTable::acquire_internal(TxnId txn,
                                           const LockRequest& request,
                                           Change& change, ModeMask& old_mask) {
  change = Change::kNone;
  const NodeKey key{request.target.scope, request.target.node};
  TargetState& state = targets_[key];

  // Conflict check against other transactions; find our own entry meanwhile.
  Holder* own = nullptr;
  std::vector<TxnId> conflicts;
  for (Holder& holder : state.holders) {
    if (holder.txn == txn) {
      if (holder.value == request.target.value) own = &holder;
      continue;  // never conflicts with itself, under any condition
    }
    if (!values_may_overlap(holder.value, request.target.value)) continue;
    if (!mask_compatible(holder.mask, request.mode)) {
      conflicts.push_back(holder.txn);
    }
  }
  if (!conflicts.empty()) {
    ++conflict_attempts_;
    if (state.holders.empty()) targets_.erase(key);
    return AcquireOutcome{false, std::move(conflicts)};
  }

  if (own != nullptr && mask_covers(own->mask, request.mode)) {
    // Already effectively held; no bookkeeping change, no counter bump —
    // re-walking shared ancestors must not inflate the overhead metric.
    return AcquireOutcome{true, {}};
  }
  ++acquisitions_;
  if (own != nullptr) {
    change = Change::kUpgrade;
    old_mask = own->mask;
    own->mask |= mask_of(request.mode);
    return AcquireOutcome{true, {}};
  }
  change = Change::kNewEntry;
  state.holders.push_back(
      Holder{txn, request.target.value, mask_of(request.mode)});
  by_txn_[txn].push_back(request.target);
  ++entry_count_;
  return AcquireOutcome{true, {}};
}

AcquireOutcome LockTable::try_acquire_all(
    TxnId txn, const std::vector<LockRequest>& requests,
    AcquisitionJournal* journal) {
  // All-or-nothing: on conflict, every change this batch made (new entries
  // and mode upgrades alike) is rolled back before returning.
  AcquisitionJournal local;
  AcquisitionJournal& record = journal != nullptr ? *journal : local;
  const std::size_t record_base = record.items.size();

  for (const LockRequest& request : requests) {
    Change change = Change::kNone;
    ModeMask old_mask = 0;
    AcquireOutcome outcome =
        acquire_internal(txn, request, change, old_mask);
    if (outcome.granted) {
      if (change != Change::kNone) {
        record.items.push_back(AcquisitionJournal::Item{
            request.target, change == Change::kNewEntry, old_mask});
      }
      continue;
    }
    // Unwind this batch's changes in reverse.
    AcquisitionJournal batch;
    batch.items.assign(record.items.begin() +
                           static_cast<std::ptrdiff_t>(record_base),
                       record.items.end());
    record.items.resize(record_base);
    rollback(txn, batch);
    return outcome;
  }
  return AcquireOutcome{true, {}};
}

void LockTable::rollback(TxnId txn, const AcquisitionJournal& journal) {
  for (auto it = journal.items.rbegin(); it != journal.items.rend(); ++it) {
    const NodeKey key{it->target.scope, it->target.node};
    const auto state_it = targets_.find(key);
    if (state_it == targets_.end()) continue;
    auto& holders = state_it->second.holders;
    const auto holder =
        std::find_if(holders.begin(), holders.end(), [&](const Holder& h) {
          return h.txn == txn && h.value == it->target.value;
        });
    if (holder == holders.end()) continue;
    if (!it->new_entry) {
      holder->mask = it->old_mask;
    } else {
      holders.erase(holder);
      --entry_count_;
      auto& owned = by_txn_[txn];
      const auto owned_it = std::find(owned.begin(), owned.end(), it->target);
      if (owned_it != owned.end()) owned.erase(owned_it);
      if (owned.empty()) by_txn_.erase(txn);
      if (holders.empty()) targets_.erase(state_it);
    }
  }
}

void LockTable::release_all(TxnId txn) {
  const auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return;
  for (const LockTarget& target : it->second) {
    const NodeKey key{target.scope, target.node};
    const auto state_it = targets_.find(key);
    if (state_it == targets_.end()) continue;
    auto& holders = state_it->second.holders;
    const auto holder =
        std::find_if(holders.begin(), holders.end(), [&](const Holder& h) {
          return h.txn == txn && h.value == target.value;
        });
    if (holder != holders.end()) {
      holders.erase(holder);
      --entry_count_;
    }
    if (holders.empty()) targets_.erase(state_it);
  }
  by_txn_.erase(txn);
}

bool LockTable::holds(TxnId txn, const LockTarget& target,
                      LockMode mode) const {
  const auto it = targets_.find(NodeKey{target.scope, target.node});
  if (it == targets_.end()) return false;
  for (const Holder& holder : it->second.holders) {
    if (holder.txn == txn && holder.value == target.value) {
      return (holder.mask & mask_of(mode)) != 0 ||
             mask_covers(holder.mask, mode);
    }
  }
  return false;
}

std::vector<TxnId> LockTable::holders() const {
  std::vector<TxnId> out;
  out.reserve(by_txn_.size());
  for (const auto& [txn, targets] : by_txn_) out.push_back(txn);
  return out;
}

std::string LockTable::dump() const {
  std::string out;
  for (const auto& [key, state] : targets_) {
    out += "doc " + std::to_string(key.scope) + " node " +
           std::to_string(key.node) + ":";
    for (const Holder& holder : state.holders) {
      out += " t" + std::to_string(holder.txn) + "=" +
             mask_to_string(holder.mask);
      if (holder.value != kAnyValue) {
        out += "@" + std::to_string(holder.value % 997);
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace dtx::lock
