// The pluggable concurrency-control protocol interface. The paper stresses
// that DTX "was conceived in a flexible fashion, so that other concurrency
// control protocols can be employed" by swapping only the lock/document
// representation structure and the lock application/release rules — this
// interface is exactly that swap point.
//
// A protocol maps an operation (query or update) to the set of locks it must
// hold before executing. The DTX lock manager (Alg. 3) acquires the set
// all-or-nothing and, on conflict, reports the blocking transactions for the
// wait-for graph.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataguide/dataguide.hpp"
#include "lock/lock_table.hpp"
#include "util/status.hpp"
#include "xml/document.hpp"
#include "xpath/ast.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::lock {

/// Everything a protocol may consult when computing a lock set for one
/// document replica at one site.
struct DocContext {
  std::uint64_t scope;             ///< site-local document id (lock key space)
  xml::Document& document;         ///< the instance tree
  dataguide::DataGuide& guide;     ///< the document's DataGuide
};

class LockProtocol {
 public:
  virtual ~LockProtocol() = default;

  [[nodiscard]] virtual const char* name() const noexcept = 0;

  /// Lock set for a read-only XPath query.
  virtual util::Result<std::vector<LockRequest>> locks_for_query(
      const xpath::Path& path, const DocContext& context) = 0;

  /// Lock set for an update operation. `probe` optionally carries the
  /// pre-computed fragment facts of an insert (query::Plan compiles it
  /// once); when null, protocols that need them probe the fragment
  /// themselves.
  virtual util::Result<std::vector<LockRequest>> locks_for_update(
      const xupdate::UpdateOp& op, const DocContext& context,
      const xupdate::FragmentProbe* probe) = 0;

  /// Probe-less convenience (non-virtual on purpose: a default argument on
  /// the virtual would bind by static type).
  util::Result<std::vector<LockRequest>> locks_for_update(
      const xupdate::UpdateOp& op, const DocContext& context) {
    return locks_for_update(op, context, nullptr);
  }
};

enum class ProtocolKind {
  kXdgl,        ///< DTX's protocol: DataGuide targets, 8 modes, logical
                ///< (value-conditioned) locks as in the XDGL paper
  kXdglPlain,   ///< XDGL without value conditions: every lock on a guide
                ///< node concerns all instances of that path, as the JCSS
                ///< article's §2.4 example behaves — maximally conservative,
                ///< reproduces the article's high DTX deadlock counts
  kNode2pl,     ///< tree-locking baseline on instance nodes
  kDocLock2pl,  ///< whole-document S/X baseline ("traditional" technique)
};

const char* protocol_kind_name(ProtocolKind kind) noexcept;

/// Parses "xdgl" / "node2pl" / "doclock".
util::Result<ProtocolKind> parse_protocol_kind(const std::string& name);

std::unique_ptr<LockProtocol> make_protocol(ProtocolKind kind);

}  // namespace dtx::lock
