#include "lock/lock_modes.hpp"

namespace dtx::lock {

namespace {

// Row = held, column = requested. Order: IS IX SI SA SB ST XT X.
constexpr bool kCompatible[kLockModeCount][kLockModeCount] = {
    /* IS */ {true, true, true, true, true, true, false, false},
    /* IX */ {true, true, true, true, true, false, false, false},
    /* SI */ {true, true, true, true, true, true, false, false},
    /* SA */ {true, true, true, true, true, true, false, false},
    /* SB */ {true, true, true, true, true, true, false, false},
    /* ST */ {true, false, true, true, true, true, false, false},
    /* XT */ {false, false, false, false, false, false, false, false},
    /* X  */ {false, false, false, false, false, false, false, false},
};

// covers[held][requested]: holding `held`, is `requested` redundant?
//  * every mode covers itself;
//  * XT (exclusive tree) covers everything on the same node;
//  * X covers everything except the tree locks (it protects one node, not
//    the subtree);
//  * ST covers IS and the shared insert locks (a whole-subtree read lock
//    already prevents modification of the node);
//  * SI/SA/SB cover IS (they are shared locks on the node itself).
constexpr bool kCovers[kLockModeCount][kLockModeCount] = {
    /* IS */ {true, false, false, false, false, false, false, false},
    /* IX */ {true, true, false, false, false, false, false, false},
    /* SI */ {true, false, true, false, false, false, false, false},
    /* SA */ {true, false, false, true, false, false, false, false},
    /* SB */ {true, false, false, false, true, false, false, false},
    /* ST */ {true, false, true, true, true, true, false, false},
    /* XT */ {true, true, true, true, true, true, true, true},
    /* X  */ {true, true, true, true, true, false, false, true},
};

}  // namespace

const char* lock_mode_name(LockMode mode) noexcept {
  switch (mode) {
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kSI: return "SI";
    case LockMode::kSA: return "SA";
    case LockMode::kSB: return "SB";
    case LockMode::kST: return "ST";
    case LockMode::kXT: return "XT";
    case LockMode::kX: return "X";
  }
  return "?";
}

bool compatible(LockMode held, LockMode requested) noexcept {
  return kCompatible[static_cast<int>(held)][static_cast<int>(requested)];
}

bool covers(LockMode held, LockMode requested) noexcept {
  return kCovers[static_cast<int>(held)][static_cast<int>(requested)];
}

bool mask_compatible(ModeMask held_mask, LockMode requested) noexcept {
  for (int i = 0; i < kLockModeCount; ++i) {
    if ((held_mask & (1u << i)) != 0 &&
        !compatible(static_cast<LockMode>(i), requested)) {
      return false;
    }
  }
  return true;
}

bool mask_covers(ModeMask held_mask, LockMode requested) noexcept {
  for (int i = 0; i < kLockModeCount; ++i) {
    if ((held_mask & (1u << i)) != 0 &&
        covers(static_cast<LockMode>(i), requested)) {
      return true;
    }
  }
  return false;
}

std::string mask_to_string(ModeMask mask) {
  std::string out;
  for (int i = 0; i < kLockModeCount; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    if (!out.empty()) out += '|';
    out += lock_mode_name(static_cast<LockMode>(i));
  }
  return out.empty() ? "-" : out;
}

}  // namespace dtx::lock
