// Whole-document locking baseline — the "traditional technique which makes
// use of a complete lock on the document" the paper mentions (§3.2). One
// S lock per queried document, one X lock per updated document; the target
// node id 0 denotes the whole scope.
#include <vector>

#include "lock/protocol.hpp"

namespace dtx::lock {

namespace {

class DocLockProtocol final : public LockProtocol {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "doclock";
  }

  util::Result<std::vector<LockRequest>> locks_for_query(
      const xpath::Path& path, const DocContext& context) override {
    (void)path;
    return std::vector<LockRequest>{
        LockRequest{LockTarget{context.scope, 0}, LockMode::kST}};
  }

  util::Result<std::vector<LockRequest>> locks_for_update(
      const xupdate::UpdateOp& op, const DocContext& context,
      const xupdate::FragmentProbe* /*probe*/) override {
    (void)op;
    return std::vector<LockRequest>{
        LockRequest{LockTarget{context.scope, 0}, LockMode::kX}};
  }
};

}  // namespace

std::unique_ptr<LockProtocol> make_doclock_protocol() {
  return std::make_unique<DocLockProtocol>();
}

}  // namespace dtx::lock
