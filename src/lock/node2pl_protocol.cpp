// Node2PL baseline: the tree-locking strategy the paper uses to stand in
// for the related work ("we opted for adapting DTX and using a locking
// protocol in trees (Node2PL), since the majority of related works uses
// protocols with this characteristic").
//
// Locks are placed on *instance* nodes of the document tree, not on the
// DataGuide: reading a node S-locks its entire subtree node by node (with IS
// on the ancestors); writing X-locks the affected subtree node by node (with
// IX on the ancestors). Two consequences the paper measures:
//   * the number of locks grows with the document size ("if the document
//     grows, the number of locks also increases"), so lock-management
//     overhead is much higher than XDGL's; and
//   * granularity is coarse — a writer excludes every reader of the whole
//     subtree — so concurrency (and with it the deadlock count) is lower.
//
// Mode reuse: kST / kX / kIS / kIX serve as this protocol's S / X / IS / IX;
// the compatibility matrix restricted to those four modes is the classic
// multigranularity matrix.
#include <vector>

#include "lock/protocol.hpp"
#include "xpath/evaluator.hpp"

namespace dtx::lock {

namespace {

using util::Code;
using util::Result;
using util::Status;
using xml::Node;
using xupdate::InsertWhere;
using xupdate::UpdateKind;
using xupdate::UpdateOp;

class Node2plProtocol final : public LockProtocol {
 public:
  [[nodiscard]] const char* name() const noexcept override {
    return "node2pl";
  }

  Result<std::vector<LockRequest>> locks_for_query(
      const xpath::Path& path, const DocContext& context) override {
    std::vector<LockRequest> requests;
    for (Node* target : xpath::evaluate(path, context.document)) {
      add_subtree(requests, context.scope, target, LockMode::kST);
      add_ancestors(requests, context.scope, target, LockMode::kIS);
    }
    return requests;
  }

  Result<std::vector<LockRequest>> locks_for_update(
      const UpdateOp& op, const DocContext& context,
      const xupdate::FragmentProbe* /*probe*/) override {
    std::vector<LockRequest> requests;
    std::vector<Node*> targets = xpath::evaluate(op.target, context.document);
    switch (op.kind) {
      case UpdateKind::kInsert:
        for (Node* target : targets) {
          // The write happens under the connecting node: lock its whole
          // subtree exclusively (tree-lock granularity).
          Node* connecting =
              op.where == InsertWhere::kInto ? target : target->parent();
          if (connecting == nullptr) {
            return Status(Code::kInvalidArgument,
                          "cannot insert beside the document root");
          }
          add_subtree(requests, context.scope, connecting, LockMode::kX);
          add_ancestors(requests, context.scope, connecting, LockMode::kIX);
        }
        break;
      case UpdateKind::kRemove:
      case UpdateKind::kRename:
      case UpdateKind::kChange:
        for (Node* target : targets) {
          add_subtree(requests, context.scope, target, LockMode::kX);
          add_ancestors(requests, context.scope, target, LockMode::kIX);
        }
        break;
      case UpdateKind::kTranspose: {
        for (Node* target : targets) {
          add_subtree(requests, context.scope, target, LockMode::kX);
          add_ancestors(requests, context.scope, target, LockMode::kIX);
        }
        for (Node* dest :
             xpath::evaluate(op.destination, context.document)) {
          add_subtree(requests, context.scope, dest, LockMode::kX);
          add_ancestors(requests, context.scope, dest, LockMode::kIX);
        }
        break;
      }
    }
    return requests;
  }

 private:
  static void add_subtree(std::vector<LockRequest>& requests,
                          std::uint64_t scope, Node* root, LockMode mode) {
    root->visit([&](const Node& node) {
      requests.push_back(LockRequest{LockTarget{scope, node.id()}, mode});
      return true;
    });
  }

  static void add_ancestors(std::vector<LockRequest>& requests,
                            std::uint64_t scope, Node* node, LockMode mode) {
    std::vector<Node*> chain;
    for (Node* cursor = node->parent(); cursor != nullptr;
         cursor = cursor->parent()) {
      chain.push_back(cursor);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      requests.push_back(LockRequest{LockTarget{scope, (*it)->id()}, mode});
    }
  }
};

}  // namespace

std::unique_ptr<LockProtocol> make_node2pl_protocol() {
  return std::make_unique<Node2plProtocol>();
}

}  // namespace dtx::lock
