#include "xml/document.hpp"

#include <cassert>

namespace dtx::xml {

Document::Document(std::string name) : name_(std::move(name)) {}

Node* Document::set_root(std::unique_ptr<Node> root) {
  assert(root == nullptr || root->is_element());
  if (root_ != nullptr) unregister_subtree(*root_);
  root_ = std::move(root);
  return root_.get();
}

std::unique_ptr<Node> Document::create_element(std::string tag) {
  auto node = std::make_unique<Node>(NodeKind::kElement, allocate_id(),
                                     std::move(tag));
  register_node(node.get());
  return node;
}

std::unique_ptr<Node> Document::create_text(std::string text) {
  auto node =
      std::make_unique<Node>(NodeKind::kText, allocate_id(), std::move(text));
  register_node(node.get());
  return node;
}

void Document::register_node(Node* node) { index_[node->id()] = node; }

Node* Document::find(NodeId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : it->second;
}

void Document::unregister_subtree(const Node& node) {
  index_.erase(node.id());
  for (const auto& child : node.children()) unregister_subtree(*child);
}

std::size_t Document::node_count() const {
  return root_ == nullptr ? 0 : root_->subtree_size();
}

bool Document::deep_equal(const Document& other) const {
  if ((root_ == nullptr) != (other.root_ == nullptr)) return false;
  return root_ == nullptr || root_->deep_equal(*other.root_);
}

std::unique_ptr<Document> Document::clone(std::string new_name) const {
  auto copy = std::make_unique<Document>(std::move(new_name));
  if (root_ != nullptr) copy->set_root(root_->clone(*copy));
  return copy;
}

}  // namespace dtx::xml
