// A Document owns one XML tree and allocates the stable node ids used by
// undo logs and the DataGuide extents.
//
// Replica note: each DTX site parses its own copy of a document from storage,
// so node ids are site-local. Operations travel between sites as language
// level specifications (XPath + update spec) and are re-evaluated locally;
// node ids never cross the wire.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "xml/node.hpp"

namespace dtx::xml {

class Document {
 public:
  explicit Document(std::string name);

  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] Node* root() const noexcept { return root_.get(); }
  [[nodiscard]] bool has_root() const noexcept { return root_ != nullptr; }

  /// Installs a root element (replaces any existing tree).
  Node* set_root(std::unique_ptr<Node> root);

  /// Creates a detached element / text node registered with this document.
  [[nodiscard]] std::unique_ptr<Node> create_element(std::string tag);
  [[nodiscard]] std::unique_ptr<Node> create_text(std::string text);

  /// Id lookup. May return a node that is currently detached from the tree
  /// (e.g. held by an undo log); returns nullptr for unknown ids.
  [[nodiscard]] Node* find(NodeId id) const;

  /// Removes the subtree rooted at `node` from the id index. Call before
  /// permanently destroying a detached subtree; harmless to skip for nodes
  /// that live until the document dies.
  void unregister_subtree(const Node& node);

  /// Number of nodes in the live tree (0 when empty).
  [[nodiscard]] std::size_t node_count() const;

  /// Deep structural equality of the live trees (names, values, attributes).
  [[nodiscard]] bool deep_equal(const Document& other) const;

  /// Full deep copy (fresh ids) under a new name.
  [[nodiscard]] std::unique_ptr<Document> clone(std::string new_name) const;

 private:
  friend class Node;

  NodeId allocate_id() noexcept { return next_id_++; }
  void register_node(Node* node);

  std::string name_;
  std::unique_ptr<Node> root_;
  NodeId next_id_ = 1;  // 0 is kInvalidNodeId
  std::unordered_map<NodeId, Node*> index_;
};

}  // namespace dtx::xml
