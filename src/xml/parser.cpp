#include "xml/parser.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace dtx::xml {

namespace {

using util::Code;
using util::Result;
using util::Status;

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Parser {
 public:
  Parser(std::string_view text, Document& document, ParseOptions options)
      : text_(text), document_(document), options_(options) {}

  Result<std::unique_ptr<Node>> parse_document_element() {
    skip_prolog();
    if (at_end()) return error("no root element found");
    auto root = parse_element();
    if (!root) return root;
    skip_misc();
    if (!at_end()) return error("trailing content after root element");
    return root;
  }

 private:
  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }
  [[nodiscard]] bool looking_at(std::string_view prefix) const noexcept {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  Status error(const std::string& what) const {
    std::size_t line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return Status(Code::kInvalidArgument,
                  "XML parse error at line " + std::to_string(line) + ": " +
                      what);
  }

  void skip_whitespace() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
  }

  /// Skips declaration, DOCTYPE, comments and PIs before / after the root.
  void skip_prolog() {
    for (;;) {
      skip_whitespace();
      if (looking_at("<?")) {
        skip_until("?>");
      } else if (looking_at("<!--")) {
        skip_until("-->");
      } else if (looking_at("<!DOCTYPE")) {
        skip_doctype();
      } else {
        return;
      }
    }
  }

  void skip_misc() {
    for (;;) {
      skip_whitespace();
      if (looking_at("<?")) {
        skip_until("?>");
      } else if (looking_at("<!--")) {
        skip_until("-->");
      } else {
        return;
      }
    }
  }

  void skip_until(std::string_view terminator) {
    const std::size_t found = text_.find(terminator, pos_);
    pos_ = found == std::string_view::npos ? text_.size()
                                           : found + terminator.size();
  }

  void skip_doctype() {
    // DOCTYPE may contain a bracketed internal subset.
    int brackets = 0;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '[') ++brackets;
      else if (c == ']') --brackets;
      else if (c == '>' && brackets <= 0) return;
    }
  }

  Result<std::string> parse_name() {
    if (at_end() || !is_name_start(peek())) return error("expected a name");
    const std::size_t start = pos_;
    while (!at_end() && is_name_char(peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<std::unique_ptr<Node>> parse_element() {
    if (at_end() || peek() != '<') return error("expected '<'");
    ++pos_;
    auto name = parse_name();
    if (!name) return name.status();
    auto element = document_.create_element(std::move(name).value());

    // Attributes.
    for (;;) {
      skip_whitespace();
      if (at_end()) return error("unterminated start tag");
      if (peek() == '>') {
        ++pos_;
        break;
      }
      if (looking_at("/>")) {
        pos_ += 2;
        return element;
      }
      auto attr_name = parse_name();
      if (!attr_name) return attr_name.status();
      skip_whitespace();
      if (at_end() || peek() != '=') return error("expected '=' in attribute");
      ++pos_;
      skip_whitespace();
      auto attr_value = parse_quoted();
      if (!attr_value) return attr_value.status();
      element->set_attribute(attr_name.value(),
                             std::move(attr_value).value());
    }

    // Content.
    for (;;) {
      if (at_end()) return error("unterminated element <" + element->name() + ">");
      if (looking_at("</")) {
        pos_ += 2;
        auto close = parse_name();
        if (!close) return close.status();
        if (close.value() != element->name()) {
          return error("mismatched close tag </" + close.value() +
                       "> for <" + element->name() + ">");
        }
        skip_whitespace();
        if (at_end() || peek() != '>') return error("expected '>'");
        ++pos_;
        return element;
      }
      if (looking_at("<!--")) {
        skip_until("-->");
        continue;
      }
      if (looking_at("<![CDATA[")) {
        pos_ += 9;
        const std::size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) return error("unterminated CDATA");
        element->append_child(
            document_.create_text(std::string(text_.substr(pos_, end - pos_))));
        pos_ = end + 3;
        continue;
      }
      if (looking_at("<?")) {
        skip_until("?>");
        continue;
      }
      if (peek() == '<') {
        auto child = parse_element();
        if (!child) return child;
        element->append_child(std::move(child).value());
        continue;
      }
      // Character data up to the next markup.
      const std::size_t start = pos_;
      while (!at_end() && peek() != '<') ++pos_;
      std::string raw(text_.substr(start, pos_ - start));
      std::string value = util::xml_unescape(raw);
      const bool all_space =
          util::trim(value).empty();
      if (!(options_.strip_whitespace_text && all_space)) {
        element->append_child(document_.create_text(std::move(value)));
      }
    }
  }

  Result<std::string> parse_quoted() {
    if (at_end() || (peek() != '"' && peek() != '\'')) {
      return error("expected a quoted value");
    }
    const char quote = text_[pos_++];
    const std::size_t start = pos_;
    while (!at_end() && peek() != quote) ++pos_;
    if (at_end()) return error("unterminated quoted value");
    std::string value = util::xml_unescape(text_.substr(start, pos_ - start));
    ++pos_;  // closing quote
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Document& document_;
  ParseOptions options_;
};

}  // namespace

Result<std::unique_ptr<Document>> parse(std::string_view text,
                                        std::string document_name,
                                        const ParseOptions& options) {
  auto document = std::make_unique<Document>(std::move(document_name));
  Parser parser(text, *document, options);
  auto root = parser.parse_document_element();
  if (!root) return root.status();
  document->set_root(std::move(root).value());
  return document;
}

Result<std::unique_ptr<Node>> parse_fragment(std::string_view text,
                                             Document& document,
                                             const ParseOptions& options) {
  Parser parser(text, document, options);
  return parser.parse_document_element();
}

}  // namespace dtx::xml
