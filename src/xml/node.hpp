// In-memory XML node. DTX manipulates documents entirely in main memory
// (paper §2: "XML data handling is conducted in the main memory") and only
// talks to the storage backend at load / persist time.
//
// The model is deliberately small: elements with attributes, and text nodes.
// Comments and processing instructions are skipped at parse time; they play
// no role in the paper's query/update languages.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dtx::xml {

/// Stable per-document node identifier. Ids survive moves (transpose) and
/// are never reused within a document's lifetime, so undo logs and lock
/// bookkeeping can refer to nodes by value.
using NodeId = std::uint64_t;

inline constexpr NodeId kInvalidNodeId = 0;

enum class NodeKind : std::uint8_t { kElement, kText };

class Document;

class Node {
 public:
  Node(NodeKind kind, NodeId id, std::string name_or_value);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeKind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_element() const noexcept {
    return kind_ == NodeKind::kElement;
  }
  [[nodiscard]] bool is_text() const noexcept {
    return kind_ == NodeKind::kText;
  }
  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Element tag name; empty for text nodes.
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name);

  /// Text content for text nodes; unused for elements.
  [[nodiscard]] const std::string& value() const noexcept { return value_; }
  void set_value(std::string value);

  // --- attributes (elements only) -----------------------------------------
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  attributes() const noexcept {
    return attributes_;
  }
  /// nullptr when absent.
  [[nodiscard]] const std::string* attribute(std::string_view name) const;
  void set_attribute(std::string_view name, std::string value);
  /// Returns true when an attribute was removed.
  bool remove_attribute(std::string_view name);

  // --- tree structure ------------------------------------------------------
  [[nodiscard]] Node* parent() const noexcept { return parent_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& children()
      const noexcept {
    return children_;
  }
  [[nodiscard]] std::size_t child_count() const noexcept {
    return children_.size();
  }
  [[nodiscard]] Node* child(std::size_t index) const {
    return children_.at(index).get();
  }

  /// Index of this node within its parent; 0 for a root.
  [[nodiscard]] std::size_t index_in_parent() const;

  /// Inserts a child at position (clamped to [0, child_count()]). Takes
  /// ownership; returns the raw pointer for convenience.
  Node* insert_child(std::size_t position, std::unique_ptr<Node> child);
  Node* append_child(std::unique_ptr<Node> child) {
    return insert_child(children_.size(), std::move(child));
  }

  /// Detaches and returns the child at position.
  std::unique_ptr<Node> remove_child(std::size_t position);

  /// First element child with the given tag name, or nullptr.
  [[nodiscard]] Node* first_child_named(std::string_view tag) const;

  /// All element children with the given tag name.
  [[nodiscard]] std::vector<Node*> children_named(std::string_view tag) const;

  /// Concatenated text of direct text children (the common "leaf value").
  [[nodiscard]] std::string text() const;

  /// Concatenated text of the entire subtree in document order.
  [[nodiscard]] std::string deep_text() const;

  /// "/site/people/person" style label path from the root to this node.
  /// Text nodes contribute the pseudo-label "#text".
  [[nodiscard]] std::string label_path() const;

  /// Number of nodes in this subtree (including this node).
  [[nodiscard]] std::size_t subtree_size() const;

  /// Depth of this node (root = 0).
  [[nodiscard]] std::size_t depth() const;

  /// True when `other` is this node or a descendant of it.
  [[nodiscard]] bool contains(const Node& other) const;

  /// Structural equality: kind, name/value, attributes (ordered) and
  /// children. Node ids are ignored.
  [[nodiscard]] bool deep_equal(const Node& other) const;

  /// Deep copy with fresh ids allocated from `id_source` (a Document).
  [[nodiscard]] std::unique_ptr<Node> clone(Document& id_source) const;

  /// Pre-order visit of this subtree; return false from the visitor to prune
  /// descent below a node.
  template <typename Visitor>
  void visit(Visitor&& visitor) const {
    if (!visitor(*this)) return;
    for (const auto& child : children_) child->visit(visitor);
  }

 private:
  friend class Document;

  NodeKind kind_;
  NodeId id_;
  std::string name_;   // element tag
  std::string value_;  // text payload
  std::vector<std::pair<std::string, std::string>> attributes_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
};

}  // namespace dtx::xml
