#include "xml/node.hpp"

#include <algorithm>
#include <cassert>

#include "xml/document.hpp"

namespace dtx::xml {

Node::Node(NodeKind kind, NodeId id, std::string name_or_value)
    : kind_(kind), id_(id) {
  if (kind == NodeKind::kElement) {
    name_ = std::move(name_or_value);
  } else {
    value_ = std::move(name_or_value);
  }
}

void Node::set_name(std::string name) {
  assert(is_element());
  name_ = std::move(name);
}

void Node::set_value(std::string value) { value_ = std::move(value); }

const std::string* Node::attribute(std::string_view name) const {
  for (const auto& [key, value] : attributes_) {
    if (key == name) return &value;
  }
  return nullptr;
}

void Node::set_attribute(std::string_view name, std::string value) {
  assert(is_element());
  for (auto& [key, existing] : attributes_) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(std::string(name), std::move(value));
}

bool Node::remove_attribute(std::string_view name) {
  const auto it = std::find_if(
      attributes_.begin(), attributes_.end(),
      [&](const auto& pair) { return pair.first == name; });
  if (it == attributes_.end()) return false;
  attributes_.erase(it);
  return true;
}

std::size_t Node::index_in_parent() const {
  if (parent_ == nullptr) return 0;
  for (std::size_t i = 0; i < parent_->children_.size(); ++i) {
    if (parent_->children_[i].get() == this) return i;
  }
  assert(false && "node not found in its parent's child list");
  return 0;
}

Node* Node::insert_child(std::size_t position, std::unique_ptr<Node> child) {
  assert(is_element() && "text nodes cannot have children");
  assert(child != nullptr);
  assert(child->parent_ == nullptr && "child must be detached first");
  position = std::min(position, children_.size());
  child->parent_ = this;
  Node* raw = child.get();
  children_.insert(children_.begin() + static_cast<std::ptrdiff_t>(position),
                   std::move(child));
  return raw;
}

std::unique_ptr<Node> Node::remove_child(std::size_t position) {
  assert(position < children_.size());
  std::unique_ptr<Node> child =
      std::move(children_[position]);
  children_.erase(children_.begin() + static_cast<std::ptrdiff_t>(position));
  child->parent_ = nullptr;
  return child;
}

Node* Node::first_child_named(std::string_view tag) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == tag) return child.get();
  }
  return nullptr;
}

std::vector<Node*> Node::children_named(std::string_view tag) const {
  std::vector<Node*> out;
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == tag) out.push_back(child.get());
  }
  return out;
}

std::string Node::text() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) out += child->value();
  }
  return out;
}

std::string Node::deep_text() const {
  if (is_text()) return value_;
  std::string out;
  for (const auto& child : children_) out += child->deep_text();
  return out;
}

std::string Node::label_path() const {
  std::vector<const Node*> chain;
  for (const Node* node = this; node != nullptr; node = node->parent_) {
    chain.push_back(node);
  }
  std::string path;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    path += '/';
    path += (*it)->is_element() ? (*it)->name_ : "#text";
  }
  return path;
}

std::size_t Node::subtree_size() const {
  std::size_t total = 1;
  for (const auto& child : children_) total += child->subtree_size();
  return total;
}

std::size_t Node::depth() const {
  std::size_t d = 0;
  for (const Node* node = parent_; node != nullptr; node = node->parent_) ++d;
  return d;
}

bool Node::contains(const Node& other) const {
  for (const Node* node = &other; node != nullptr; node = node->parent_) {
    if (node == this) return true;
  }
  return false;
}

bool Node::deep_equal(const Node& other) const {
  if (kind_ != other.kind_ || name_ != other.name_ || value_ != other.value_ ||
      attributes_ != other.attributes_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->deep_equal(*other.children_[i])) return false;
  }
  return true;
}

std::unique_ptr<Node> Node::clone(Document& id_source) const {
  std::unique_ptr<Node> copy =
      is_element() ? id_source.create_element(name_)
                   : id_source.create_text(value_);
  copy->attributes_ = attributes_;
  for (const auto& child : children_) {
    copy->append_child(child->clone(id_source));
  }
  return copy;
}

}  // namespace dtx::xml
