// Fluent tree builder used by tests, examples and the XMark generator.
//
//   xml::Builder b("people");
//   b.root("people")
//      .child("person").attr("id", "4")
//        .child("name").text("Ana").up()
//      .up();
//   auto doc = b.take();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "xml/document.hpp"

namespace dtx::xml {

class Builder {
 public:
  explicit Builder(std::string document_name);

  /// Creates the root element and positions the cursor on it.
  Builder& root(std::string tag);

  /// Appends an element child under the cursor and descends into it.
  Builder& child(std::string tag);

  /// Appends a text child under the cursor (cursor does not move).
  Builder& text(std::string value);

  /// Appends `<tag>value</tag>` under the cursor (cursor does not move).
  Builder& leaf(std::string tag, std::string value);

  /// Sets an attribute on the cursor element.
  Builder& attr(std::string name, std::string value);

  /// Moves the cursor to the parent element.
  Builder& up();

  /// Current cursor node (for id capture in tests).
  [[nodiscard]] Node* cursor() const noexcept { return cursor_; }

  /// Finishes and returns the document. The builder becomes empty.
  [[nodiscard]] std::unique_ptr<Document> take();

 private:
  std::unique_ptr<Document> document_;
  Node* cursor_ = nullptr;
};

}  // namespace dtx::xml
