#include "xml/builder.hpp"

#include <cassert>

namespace dtx::xml {

Builder::Builder(std::string document_name)
    : document_(std::make_unique<Document>(std::move(document_name))) {}

Builder& Builder::root(std::string tag) {
  assert(!document_->has_root() && "root() called twice");
  cursor_ = document_->set_root(document_->create_element(std::move(tag)));
  return *this;
}

Builder& Builder::child(std::string tag) {
  assert(cursor_ != nullptr && "call root() first");
  cursor_ = cursor_->append_child(document_->create_element(std::move(tag)));
  return *this;
}

Builder& Builder::text(std::string value) {
  assert(cursor_ != nullptr);
  cursor_->append_child(document_->create_text(std::move(value)));
  return *this;
}

Builder& Builder::leaf(std::string tag, std::string value) {
  assert(cursor_ != nullptr);
  Node* element =
      cursor_->append_child(document_->create_element(std::move(tag)));
  element->append_child(document_->create_text(std::move(value)));
  return *this;
}

Builder& Builder::attr(std::string name, std::string value) {
  assert(cursor_ != nullptr);
  cursor_->set_attribute(name, std::move(value));
  return *this;
}

Builder& Builder::up() {
  assert(cursor_ != nullptr && cursor_->parent() != nullptr);
  cursor_ = cursor_->parent();
  return *this;
}

std::unique_ptr<Document> Builder::take() {
  cursor_ = nullptr;
  return std::move(document_);
}

}  // namespace dtx::xml
