#include "xml/serializer.hpp"

#include "util/strings.hpp"

namespace dtx::xml {

namespace {

void serialize_node(const Node& node, const SerializeOptions& options,
                    int depth, std::string& out) {
  const auto newline_indent = [&](int d) {
    if (!options.indent) return;
    out += '\n';
    out.append(static_cast<std::size_t>(d) * 2, ' ');
  };

  if (node.is_text()) {
    out += util::xml_escape(node.value());
    return;
  }

  out += '<';
  out += node.name();
  for (const auto& [name, value] : node.attributes()) {
    out += ' ';
    out += name;
    out += "=\"";
    out += util::xml_escape(value);
    out += '"';
  }
  if (node.children().empty()) {
    out += "/>";
    return;
  }
  out += '>';

  const bool element_only = [&] {
    for (const auto& child : node.children()) {
      if (child->is_text()) return false;
    }
    return true;
  }();

  for (const auto& child : node.children()) {
    if (element_only) newline_indent(depth + 1);
    serialize_node(*child, options, depth + 1, out);
  }
  if (element_only) newline_indent(depth);

  out += "</";
  out += node.name();
  out += '>';
}

}  // namespace

std::string serialize(const Node& node, const SerializeOptions& options) {
  std::string out;
  serialize_node(node, options, 0, out);
  return out;
}

std::string serialize(const Document& document,
                      const SerializeOptions& options) {
  std::string out;
  if (options.declaration) out += "<?xml version=\"1.0\"?>";
  if (document.has_root()) {
    if (options.declaration && options.indent) out += '\n';
    serialize_node(*document.root(), options, 0, out);
  }
  return out;
}

std::size_t serialized_size(const Node& node) {
  // Cheap upper-bound-free measurement: serialize into a counter-ish string.
  // Documents in the experiments are small enough that exactness beats the
  // complexity of a streaming counter.
  return serialize(node).size();
}

}  // namespace dtx::xml
