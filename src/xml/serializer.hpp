// XML serializer: the inverse of xml::parse. Used by the file storage
// backend, operation shipping (insert payloads travel as XML text) and the
// undo log (removed subtrees are checkpointed as text in tests).
#pragma once

#include <string>

#include "xml/document.hpp"

namespace dtx::xml {

struct SerializeOptions {
  /// Pretty-print with 2-space indentation; compact single line otherwise.
  bool indent = false;
  /// Emit the <?xml version="1.0"?> declaration (documents only).
  bool declaration = false;
};

/// Serializes the subtree rooted at `node`.
std::string serialize(const Node& node, const SerializeOptions& options = {});

/// Serializes the whole document (empty string when it has no root).
std::string serialize(const Document& document,
                      const SerializeOptions& options = {});

/// Serialized byte size without materializing the string.
std::size_t serialized_size(const Node& node);

}  // namespace dtx::xml
