// Recursive-descent XML parser covering the subset DTX stores and generates:
// declaration, elements, attributes, character data with the five predefined
// entities, comments and CDATA (skipped / folded into text). DOCTYPE and
// processing instructions are skipped. Namespaces are treated literally
// (prefix kept inside the tag name).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "util/status.hpp"
#include "xml/document.hpp"

namespace dtx::xml {

struct ParseOptions {
  /// Drop text nodes that are pure whitespace between elements (on by
  /// default: XMark-style data documents are element-structured).
  bool strip_whitespace_text = true;
};

/// Parses `text` into a new document named `document_name`.
util::Result<std::unique_ptr<Document>> parse(
    std::string_view text, std::string document_name,
    const ParseOptions& options = {});

/// Parses a fragment (single element subtree) into an existing document's id
/// space, returning a detached subtree.
util::Result<std::unique_ptr<Node>> parse_fragment(
    std::string_view text, Document& document,
    const ParseOptions& options = {});

}  // namespace dtx::xml
