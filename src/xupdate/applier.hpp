// Applies update operations to a document, recording inverses in an UndoLog.
// Locking is NOT done here — the lock manager (Alg. 3) acquires XDGL locks
// before the applier runs; the applier is purely structural.
#pragma once

#include "dataguide/dataguide.hpp"
#include "util/status.hpp"
#include "xml/document.hpp"
#include "xupdate/undo_log.hpp"
#include "xupdate/update_op.hpp"

namespace dtx::xupdate {

struct ApplyResult {
  /// Number of target nodes the operation affected.
  std::size_t affected = 0;
};

/// Applies `op` to `document`. All matched targets are updated; matching
/// zero targets is not an error (affected == 0), mirroring XQuery Update
/// semantics on empty sequences.
///
/// When `guide` is non-null it is maintained incrementally alongside the
/// structural change (the DTX DataManager always passes its document's
/// guide; pass the same pointer to the UndoLog calls that roll the change
/// back).
///
/// On error the document is left untouched (the applier validates before
/// mutating; partially-applied multi-target updates are unwound through the
/// undo log before returning).
util::Result<ApplyResult> apply(const UpdateOp& op, xml::Document& document,
                                UndoLog& undo,
                                dataguide::DataGuide* guide = nullptr);

}  // namespace dtx::xupdate
