#include "xupdate/update_op.hpp"

#include "util/strings.hpp"
#include "xml/parser.hpp"
#include "xpath/parser.hpp"

namespace dtx::xupdate {

namespace {

using util::Code;
using util::Result;
using util::Status;

constexpr std::string_view kSeparator = " ::= ";

Status invalid(const std::string& what) {
  return Status(Code::kInvalidArgument, "update parse error: " + what);
}

}  // namespace

const char* update_kind_name(UpdateKind kind) noexcept {
  switch (kind) {
    case UpdateKind::kInsert: return "insert";
    case UpdateKind::kRemove: return "remove";
    case UpdateKind::kRename: return "rename";
    case UpdateKind::kChange: return "change";
    case UpdateKind::kTranspose: return "transpose";
  }
  return "?";
}

std::string UpdateOp::to_string() const {
  std::string out = update_kind_name(kind);
  if (kind == UpdateKind::kInsert) {
    switch (where) {
      case InsertWhere::kInto: out += " into "; break;
      case InsertWhere::kBefore: out += " before "; break;
      case InsertWhere::kAfter: out += " after "; break;
    }
  } else {
    out += ' ';
  }
  out += target.to_string();
  switch (kind) {
    case UpdateKind::kInsert:
      out += kSeparator;
      out += content_xml;
      break;
    case UpdateKind::kRename:
    case UpdateKind::kChange:
      out += kSeparator;
      out += new_text;
      break;
    case UpdateKind::kTranspose:
      out += kSeparator;
      out += destination.to_string();
      break;
    case UpdateKind::kRemove:
      break;
  }
  return out;
}

Result<UpdateOp> parse_update(std::string_view text) {
  const std::string_view trimmed = util::trim(text);
  const std::size_t space = trimmed.find(' ');
  if (space == std::string_view::npos) return invalid("missing operands");
  const std::string_view verb = trimmed.substr(0, space);
  std::string_view rest = util::trim(trimmed.substr(space + 1));

  const auto split_payload =
      [&](std::string_view input) -> Result<std::pair<std::string, std::string>> {
    const std::size_t sep = input.find(kSeparator);
    if (sep == std::string_view::npos) {
      return invalid("expected ' ::= ' separator");
    }
    return std::make_pair(
        std::string(util::trim(input.substr(0, sep))),
        std::string(util::trim(input.substr(sep + kSeparator.size()))));
  };

  if (verb == "insert") {
    InsertWhere where = InsertWhere::kInto;
    if (util::starts_with(rest, "into ")) {
      rest = util::trim(rest.substr(5));
    } else if (util::starts_with(rest, "before ")) {
      where = InsertWhere::kBefore;
      rest = util::trim(rest.substr(7));
    } else if (util::starts_with(rest, "after ")) {
      where = InsertWhere::kAfter;
      rest = util::trim(rest.substr(6));
    } else {
      return invalid("insert requires into/before/after");
    }
    auto parts = split_payload(rest);
    if (!parts) return parts.status();
    return make_insert(parts.value().first, parts.value().second, where);
  }
  if (verb == "remove") {
    return make_remove(rest);
  }
  if (verb == "rename") {
    auto parts = split_payload(rest);
    if (!parts) return parts.status();
    return make_rename(parts.value().first, parts.value().second);
  }
  if (verb == "change") {
    auto parts = split_payload(rest);
    if (!parts) return parts.status();
    return make_change(parts.value().first, parts.value().second);
  }
  if (verb == "transpose") {
    auto parts = split_payload(rest);
    if (!parts) return parts.status();
    return make_transpose(parts.value().first, parts.value().second);
  }
  return invalid("unknown verb '" + std::string(verb) + "'");
}

Result<UpdateOp> make_insert(std::string_view target_xpath,
                             std::string_view fragment_xml,
                             InsertWhere where) {
  auto target = xpath::parse(target_xpath);
  if (!target) return target.status();
  UpdateOp op;
  op.kind = UpdateKind::kInsert;
  op.where = where;
  op.target = std::move(target).value();
  op.content_xml = std::string(fragment_xml);
  if (op.target.targets_attribute()) {
    return invalid("insert target must be an element path");
  }
  if (op.content_xml.empty()) return invalid("insert requires content");
  return op;
}

Result<UpdateOp> make_remove(std::string_view target_xpath) {
  auto target = xpath::parse(target_xpath);
  if (!target) return target.status();
  UpdateOp op;
  op.kind = UpdateKind::kRemove;
  op.target = std::move(target).value();
  if (op.target.targets_attribute()) {
    return invalid("remove target must be an element path");
  }
  return op;
}

Result<UpdateOp> make_rename(std::string_view target_xpath,
                             std::string new_name) {
  auto target = xpath::parse(target_xpath);
  if (!target) return target.status();
  UpdateOp op;
  op.kind = UpdateKind::kRename;
  op.target = std::move(target).value();
  op.new_text = std::move(new_name);
  if (op.new_text.empty()) return invalid("rename requires a new name");
  if (op.target.targets_attribute()) {
    return invalid("rename target must be an element path");
  }
  return op;
}

Result<UpdateOp> make_change(std::string_view target_xpath,
                             std::string new_value) {
  auto target = xpath::parse(target_xpath);
  if (!target) return target.status();
  UpdateOp op;
  op.kind = UpdateKind::kChange;
  op.target = std::move(target).value();
  op.new_text = std::move(new_value);
  return op;
}

Result<FragmentProbe> probe_fragment(const UpdateOp& op) {
  if (op.kind != UpdateKind::kInsert) {
    return Status(Code::kInvalidArgument,
                  "fragment probe only applies to insert operations");
  }
  auto probe = xml::parse(op.content_xml, "probe");
  if (!probe) return probe.status();
  FragmentProbe out;
  out.root_label = probe.value()->root()->name();
  if (const std::string* id = probe.value()->root()->attribute("id")) {
    out.id_value = *id;
    out.has_id = true;
  }
  return out;
}

Result<UpdateOp> make_transpose(std::string_view target_xpath,
                                std::string_view destination_xpath) {
  auto target = xpath::parse(target_xpath);
  if (!target) return target.status();
  auto destination = xpath::parse(destination_xpath);
  if (!destination) return destination.status();
  UpdateOp op;
  op.kind = UpdateKind::kTranspose;
  op.target = std::move(target).value();
  op.destination = std::move(destination).value();
  if (op.target.targets_attribute() || op.destination.targets_attribute()) {
    return invalid("transpose paths must be element paths");
  }
  return op;
}

}  // namespace dtx::xupdate
