// The DTX update language: the five operation types the paper adopts from
// XDGL — insert, remove, transpose, rename and change (§2: "This language
// has five types of update operations").
//
// Textual form (used on the wire between sites and in workload files):
//
//   insert into  <target-xpath> ::= <xml fragment>
//   insert before <target-xpath> ::= <xml fragment>
//   insert after <target-xpath> ::= <xml fragment>
//   remove <target-xpath>
//   rename <target-xpath> ::= <new-name>
//   change <target-xpath> ::= <new-text-value>
//   transpose <target-xpath> ::= <destination-xpath>
#pragma once

#include <cstdint>
#include <string>

#include "util/status.hpp"
#include "xpath/ast.hpp"

namespace dtx::xupdate {

enum class UpdateKind : std::uint8_t {
  kInsert,
  kRemove,
  kRename,
  kChange,
  kTranspose,
};

const char* update_kind_name(UpdateKind kind) noexcept;

/// Where an insert places the new content relative to the target node.
/// The three positions mirror XDGL's three shared insert locks:
/// kInto -> SI, kBefore -> SB, kAfter -> SA.
enum class InsertWhere : std::uint8_t { kInto, kBefore, kAfter };

struct UpdateOp {
  UpdateKind kind = UpdateKind::kInsert;
  xpath::Path target;

  // kInsert
  InsertWhere where = InsertWhere::kInto;
  std::string content_xml;

  // kRename: new element name; kChange: new text value.
  std::string new_text;

  // kTranspose: where the target subtree moves to (appended as last child).
  xpath::Path destination;

  [[nodiscard]] std::string to_string() const;
};

/// Parses the textual form above.
util::Result<UpdateOp> parse_update(std::string_view text);

/// Facts about an insert operation's XML fragment that lock protocols need
/// *before* touching the DataGuide: the root label locates the new guide
/// node and the root's id attribute (when present) conditions the exclusive
/// lock to the new instance. Probing parses `content_xml`, so compiled
/// plans (query::Plan) hoist the probe out of the per-execution path.
struct FragmentProbe {
  std::string root_label;
  std::string id_value;
  bool has_id = false;
};

/// Probes the fragment of a kInsert operation (error for other kinds or a
/// malformed fragment).
util::Result<FragmentProbe> probe_fragment(const UpdateOp& op);

// --- convenience constructors ---------------------------------------------
util::Result<UpdateOp> make_insert(std::string_view target_xpath,
                                   std::string_view fragment_xml,
                                   InsertWhere where = InsertWhere::kInto);
util::Result<UpdateOp> make_remove(std::string_view target_xpath);
util::Result<UpdateOp> make_rename(std::string_view target_xpath,
                                   std::string new_name);
util::Result<UpdateOp> make_change(std::string_view target_xpath,
                                   std::string new_value);
util::Result<UpdateOp> make_transpose(std::string_view target_xpath,
                                      std::string_view destination_xpath);

}  // namespace dtx::xupdate
