// Per-(transaction, document) undo log. Every mutation the applier performs
// appends an inverse entry; rollback replays the entries in reverse order
// (paper §2: "upon abortion, the transaction undoes all its effects on the
// required data").
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataguide/dataguide.hpp"
#include "xml/document.hpp"

namespace dtx::xupdate {

class UndoLog {
 public:
  UndoLog() = default;
  UndoLog(const UndoLog&) = delete;
  UndoLog& operator=(const UndoLog&) = delete;
  UndoLog(UndoLog&&) = default;
  UndoLog& operator=(UndoLog&&) = default;

  /// Undo of an insert: detach and destroy the node with this id.
  void record_insert(xml::NodeId inserted);

  /// Undo of a remove: reattach `subtree` under `parent` at `position`.
  void record_remove(xml::NodeId parent, std::size_t position,
                     std::unique_ptr<xml::Node> subtree);

  /// Undo of a rename: restore the old element name.
  void record_rename(xml::NodeId node, std::string old_name);

  /// Undo of a text-value change: restore the old value.
  void record_set_value(xml::NodeId node, std::string old_value);

  /// Undo of a transpose: move `node` back under `old_parent` at
  /// `old_position`.
  void record_move(xml::NodeId node, xml::NodeId old_parent,
                   std::size_t old_position);

  /// Marks a checkpoint and returns a token; undo_to unwinds back to it.
  /// Used to undo a single failed operation without aborting the
  /// transaction (Alg. 3 l. 12).
  [[nodiscard]] std::size_t checkpoint() const noexcept {
    return entries_.size();
  }

  /// Rolls back every entry recorded after `token` (newest first). Pass the
  /// same `guide` the forward application maintained (or nullptr for none).
  void undo_to(std::size_t token, xml::Document& document,
               dataguide::DataGuide* guide = nullptr);

  /// Rolls back everything (transaction abort).
  void undo_all(xml::Document& document,
                dataguide::DataGuide* guide = nullptr) {
    undo_to(0, document, guide);
  }

  /// Commit: drops the log. Detached subtrees held for potential reattach
  /// are unregistered from the document and destroyed.
  void commit(xml::Document& document);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  enum class Kind : std::uint8_t {
    kDetachInserted,
    kReattach,
    kRename,
    kSetValue,
    kMoveBack,
  };

  struct Entry {
    Kind kind;
    xml::NodeId node = xml::kInvalidNodeId;
    xml::NodeId parent = xml::kInvalidNodeId;
    std::size_t position = 0;
    std::string text;
    std::unique_ptr<xml::Node> subtree;
  };

  void undo_entry(Entry& entry, xml::Document& document,
                  dataguide::DataGuide* guide);

  std::vector<Entry> entries_;
};

}  // namespace dtx::xupdate
