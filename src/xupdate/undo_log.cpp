#include "xupdate/undo_log.hpp"

#include <cassert>

namespace dtx::xupdate {

void UndoLog::record_insert(xml::NodeId inserted) {
  Entry entry;
  entry.kind = Kind::kDetachInserted;
  entry.node = inserted;
  entries_.push_back(std::move(entry));
}

void UndoLog::record_remove(xml::NodeId parent, std::size_t position,
                            std::unique_ptr<xml::Node> subtree) {
  assert(subtree != nullptr);
  Entry entry;
  entry.kind = Kind::kReattach;
  entry.parent = parent;
  entry.position = position;
  entry.subtree = std::move(subtree);
  entries_.push_back(std::move(entry));
}

void UndoLog::record_rename(xml::NodeId node, std::string old_name) {
  Entry entry;
  entry.kind = Kind::kRename;
  entry.node = node;
  entry.text = std::move(old_name);
  entries_.push_back(std::move(entry));
}

void UndoLog::record_set_value(xml::NodeId node, std::string old_value) {
  Entry entry;
  entry.kind = Kind::kSetValue;
  entry.node = node;
  entry.text = std::move(old_value);
  entries_.push_back(std::move(entry));
}

void UndoLog::record_move(xml::NodeId node, xml::NodeId old_parent,
                          std::size_t old_position) {
  Entry entry;
  entry.kind = Kind::kMoveBack;
  entry.node = node;
  entry.parent = old_parent;
  entry.position = old_position;
  entries_.push_back(std::move(entry));
}

void UndoLog::undo_entry(Entry& entry, xml::Document& document,
                         dataguide::DataGuide* guide) {
  switch (entry.kind) {
    case Kind::kDetachInserted: {
      xml::Node* node = document.find(entry.node);
      assert(node != nullptr && node->parent() != nullptr);
      if (guide != nullptr) {
        guide->on_subtree_removed(*node, node->parent()->label_path());
      }
      std::unique_ptr<xml::Node> detached =
          node->parent()->remove_child(node->index_in_parent());
      document.unregister_subtree(*detached);
      break;
    }
    case Kind::kReattach: {
      xml::Node* parent = document.find(entry.parent);
      assert(parent != nullptr);
      xml::Node* attached =
          parent->insert_child(entry.position, std::move(entry.subtree));
      if (guide != nullptr) {
        guide->on_subtree_added(*attached, parent->label_path());
      }
      break;
    }
    case Kind::kRename: {
      xml::Node* node = document.find(entry.node);
      assert(node != nullptr);
      const std::string current_name = node->name();
      node->set_name(std::move(entry.text));
      if (guide != nullptr) {
        const std::string parent_path =
            node->parent() == nullptr ? "" : node->parent()->label_path();
        guide->on_subtree_renamed(*node, parent_path, current_name);
      }
      break;
    }
    case Kind::kSetValue: {
      xml::Node* node = document.find(entry.node);
      assert(node != nullptr);
      node->set_value(std::move(entry.text));
      break;
    }
    case Kind::kMoveBack: {
      xml::Node* node = document.find(entry.node);
      xml::Node* old_parent = document.find(entry.parent);
      assert(node != nullptr && old_parent != nullptr &&
             node->parent() != nullptr);
      if (guide != nullptr) {
        guide->on_subtree_removed(*node, node->parent()->label_path());
      }
      std::unique_ptr<xml::Node> detached =
          node->parent()->remove_child(node->index_in_parent());
      xml::Node* attached =
          old_parent->insert_child(entry.position, std::move(detached));
      if (guide != nullptr) {
        guide->on_subtree_added(*attached, old_parent->label_path());
      }
      break;
    }
  }
}

void UndoLog::undo_to(std::size_t token, xml::Document& document,
                      dataguide::DataGuide* guide) {
  while (entries_.size() > token) {
    undo_entry(entries_.back(), document, guide);
    entries_.pop_back();
  }
}

void UndoLog::commit(xml::Document& document) {
  for (Entry& entry : entries_) {
    if (entry.kind == Kind::kReattach && entry.subtree != nullptr) {
      document.unregister_subtree(*entry.subtree);
      entry.subtree.reset();
    }
  }
  entries_.clear();
}

}  // namespace dtx::xupdate
