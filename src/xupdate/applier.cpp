#include "xupdate/applier.hpp"

#include <cassert>

#include "xml/parser.hpp"
#include "xpath/evaluator.hpp"

namespace dtx::xupdate {

namespace {

using dataguide::DataGuide;
using util::Code;
using util::Result;
using util::Status;
using xml::Node;

Status invalid(const std::string& what) {
  return Status(Code::kInvalidArgument, "update apply error: " + what);
}

/// Guide hook wrappers that tolerate a null guide.
void guide_added(DataGuide* guide, const Node& node) {
  if (guide != nullptr && node.parent() != nullptr) {
    guide->on_subtree_added(node, node.parent()->label_path());
  }
}

void guide_removing(DataGuide* guide, const Node& node) {
  if (guide != nullptr && node.parent() != nullptr) {
    guide->on_subtree_removed(node, node.parent()->label_path());
  }
}

Result<ApplyResult> apply_insert(const UpdateOp& op, xml::Document& document,
                                 UndoLog& undo, DataGuide* guide) {
  std::vector<Node*> targets = xpath::evaluate(op.target, document);
  std::size_t affected = 0;
  for (Node* target : targets) {
    auto fragment = xml::parse_fragment(op.content_xml, document);
    if (!fragment) return fragment.status();
    Node* inserted = nullptr;
    switch (op.where) {
      case InsertWhere::kInto:
        if (!target->is_element()) return invalid("insert-into a non-element");
        inserted = target->append_child(std::move(fragment).value());
        break;
      case InsertWhere::kBefore:
      case InsertWhere::kAfter: {
        Node* parent = target->parent();
        if (parent == nullptr) {
          return invalid("cannot insert beside the document root");
        }
        std::size_t position = target->index_in_parent();
        if (op.where == InsertWhere::kAfter) ++position;
        inserted = parent->insert_child(position, std::move(fragment).value());
        break;
      }
    }
    guide_added(guide, *inserted);
    undo.record_insert(inserted->id());
    ++affected;
  }
  return ApplyResult{affected};
}

Result<ApplyResult> apply_remove(const UpdateOp& op, xml::Document& document,
                                 UndoLog& undo, DataGuide* guide) {
  std::vector<Node*> targets = xpath::evaluate(op.target, document);
  // Removing a node invalidates the positions of later targets under the
  // same parent; remove in reverse document order so recorded positions stay
  // valid for re-attachment in reverse.
  std::size_t affected = 0;
  for (auto it = targets.rbegin(); it != targets.rend(); ++it) {
    Node* target = *it;
    Node* parent = target->parent();
    if (parent == nullptr) return invalid("cannot remove the document root");
    guide_removing(guide, *target);
    const std::size_t position = target->index_in_parent();
    std::unique_ptr<Node> detached = parent->remove_child(position);
    undo.record_remove(parent->id(), position, std::move(detached));
    ++affected;
  }
  return ApplyResult{affected};
}

Result<ApplyResult> apply_rename(const UpdateOp& op, xml::Document& document,
                                 UndoLog& undo, DataGuide* guide) {
  std::vector<Node*> targets = xpath::evaluate(op.target, document);
  std::size_t affected = 0;
  for (Node* target : targets) {
    if (!target->is_element()) return invalid("rename of a non-element");
    if (target->parent() == nullptr) {
      // Renaming the root would re-root the whole DataGuide; the DTX update
      // language does not need it and the guide keeps one root label.
      return invalid("cannot rename the document root");
    }
    const std::string old_name = target->name();
    undo.record_rename(target->id(), old_name);
    target->set_name(op.new_text);
    if (guide != nullptr && target->parent() != nullptr) {
      guide->on_subtree_renamed(*target, target->parent()->label_path(),
                                old_name);
    }
    ++affected;
  }
  return ApplyResult{affected};
}

Result<ApplyResult> apply_change(const UpdateOp& op, xml::Document& document,
                                 UndoLog& undo, DataGuide* guide) {
  std::vector<Node*> targets = xpath::evaluate(op.target, document);
  std::size_t affected = 0;
  for (Node* target : targets) {
    if (target->is_text()) {
      undo.record_set_value(target->id(), target->value());
      target->set_value(op.new_text);
      ++affected;
      continue;
    }
    // Element: replace its direct text content. Existing text children are
    // removed (reverse order, as in apply_remove), then one new text node is
    // appended.
    for (std::size_t i = target->child_count(); i-- > 0;) {
      if (!target->child(i)->is_text()) continue;
      guide_removing(guide, *target->child(i));
      std::unique_ptr<Node> detached = target->remove_child(i);
      undo.record_remove(target->id(), i, std::move(detached));
    }
    Node* text = target->append_child(document.create_text(op.new_text));
    guide_added(guide, *text);
    undo.record_insert(text->id());
    ++affected;
  }
  return ApplyResult{affected};
}

Result<ApplyResult> apply_transpose(const UpdateOp& op,
                                    xml::Document& document, UndoLog& undo,
                                    DataGuide* guide) {
  std::vector<Node*> targets = xpath::evaluate(op.target, document);
  std::vector<Node*> destinations = xpath::evaluate(op.destination, document);
  if (targets.empty()) return ApplyResult{0};
  if (destinations.size() != 1) {
    return invalid("transpose destination must select exactly one node (got " +
                   std::to_string(destinations.size()) + ")");
  }
  Node* destination = destinations.front();
  if (!destination->is_element()) {
    return invalid("transpose destination must be an element");
  }
  std::size_t affected = 0;
  for (Node* target : targets) {
    if (target->parent() == nullptr) {
      return invalid("cannot transpose the document root");
    }
    if (target->contains(*destination)) {
      return invalid("transpose destination lies inside the moved subtree");
    }
    if (target == destination) return invalid("transpose onto itself");
    Node* old_parent = target->parent();
    const std::size_t old_position = target->index_in_parent();
    guide_removing(guide, *target);
    std::unique_ptr<Node> detached = old_parent->remove_child(old_position);
    Node* moved = destination->append_child(std::move(detached));
    guide_added(guide, *moved);
    undo.record_move(target->id(), old_parent->id(), old_position);
    ++affected;
  }
  return ApplyResult{affected};
}

}  // namespace

Result<ApplyResult> apply(const UpdateOp& op, xml::Document& document,
                          UndoLog& undo, DataGuide* guide) {
  const std::size_t checkpoint = undo.checkpoint();
  Result<ApplyResult> result = [&]() -> Result<ApplyResult> {
    switch (op.kind) {
      case UpdateKind::kInsert:
        return apply_insert(op, document, undo, guide);
      case UpdateKind::kRemove:
        return apply_remove(op, document, undo, guide);
      case UpdateKind::kRename:
        return apply_rename(op, document, undo, guide);
      case UpdateKind::kChange:
        return apply_change(op, document, undo, guide);
      case UpdateKind::kTranspose:
        return apply_transpose(op, document, undo, guide);
    }
    return Status(Code::kInternal, "unknown update kind");
  }();
  if (!result) {
    // Leave the document (and guide) untouched on error.
    undo.undo_to(checkpoint, document, guide);
  }
  return result;
}

}  // namespace dtx::xupdate
