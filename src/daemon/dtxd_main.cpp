// dtxd — one DTX site as a daemon process. See daemon.hpp for the flag
// surface; a 3-site cluster on one machine looks like
//
//   dtxd --site=0 --listen=127.0.0.1:7100
//        --peers=1=127.0.0.1:7101,2=127.0.0.1:7102
//        --store=/tmp/dtx/site0 --docs=catalog:0,1,2
//        --load=catalog:seed.xml
//
// (one line in the shell; the same with site/listen/store rotated for
// sites 1 and 2). A new site joins a running cluster with
//
//   dtxd --site=3 --listen=127.0.0.1:7103 --store=/tmp/dtx/site3
//        --join=0=127.0.0.1:7100
//
// SIGTERM / SIGINT stop the site cleanly; SIGUSR1 decommissions it
// (replicas migrate away, then the process exits); kill -9 is the crash
// the recovery path exists for.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "daemon/daemon.hpp"
#include "util/log.hpp"

namespace {

std::atomic<bool> g_stop{false};
std::atomic<bool> g_leave{false};

void on_signal(int /*signum*/) { g_stop.store(true); }
void on_leave(int /*signum*/) { g_leave.store(true); }

}  // namespace

int main(int argc, char** argv) {
  dtx::util::Flags flags(argc, argv);
  dtx::util::set_log_level(static_cast<dtx::util::LogLevel>(
      flags.get_int("log_level",
                    static_cast<int>(dtx::util::LogLevel::kInfo))));

  auto config = dtx::daemon::config_from_flags(flags);
  if (!config) {
    std::fprintf(stderr, "dtxd: %s\n", config.status().to_string().c_str());
    return 2;
  }

  dtx::daemon::Daemon daemon(std::move(config).value());
  dtx::util::Status started = daemon.start();
  if (!started) {
    std::fprintf(stderr, "dtxd: %s\n", started.to_string().c_str());
    return 1;
  }
  // The multi-process harness reads this line to learn a port-0 listener's
  // actual port.
  std::printf("dtxd listening on port %u\n",
              static_cast<unsigned>(daemon.listen_port()));
  std::fflush(stdout);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGUSR1, on_leave);
  bool leaving = false;
  while (!g_stop.load()) {
    if (g_leave.load() && !leaving) {
      leaving = true;
      daemon.begin_decommission();
    }
    if (leaving && daemon.decommissioned()) {
      // Every replica migrated to the surviving members; exiting now
      // loses nothing.
      std::printf("dtxd decommissioned\n");
      std::fflush(stdout);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  daemon.stop();
  return 0;
}
