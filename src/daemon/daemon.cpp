#include "daemon/daemon.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <variant>

#include "dtx/recovery.hpp"
#include "dtx/wal.hpp"
#include "lock/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dtx::daemon {

using util::Code;
using util::Result;
using util::Status;

namespace {

Result<net::SiteId> parse_site_id(const std::string& text) {
  try {
    const unsigned long value = std::stoul(text);
    if (value >= net::kClientIdBase) {
      return Status(Code::kInvalidArgument,
                    "site id " + text + " is in the client range");
    }
    return static_cast<net::SiteId>(value);
  } catch (const std::exception&) {
    return Status(Code::kInvalidArgument, "bad site id '" + text + "'");
  }
}

/// "0=host:port,1=host:port" -> address book.
Result<std::map<net::SiteId, std::string>> parse_peers(
    const std::string& text) {
  std::map<net::SiteId, std::string> out;
  for (const std::string& entry : util::split(text, ',')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--peers entry must be id=host:port, got '" + entry + "'");
    }
    auto id = parse_site_id(entry.substr(0, eq));
    if (!id) return id.status();
    out[id.value()] = entry.substr(eq + 1);
  }
  return out;
}

/// "d1:0,1,2;d2:0,2" -> catalog entries.
Result<std::vector<std::pair<std::string, std::vector<net::SiteId>>>>
parse_docs(const std::string& text) {
  std::vector<std::pair<std::string, std::vector<net::SiteId>>> out;
  for (const std::string& entry : util::split(text, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--docs entry must be name:site,site..., got '" + entry +
                        "'");
    }
    std::vector<net::SiteId> sites;
    for (const std::string& id_text :
         util::split(entry.substr(colon + 1), ',')) {
      if (id_text.empty()) continue;
      auto id = parse_site_id(id_text);
      if (!id) return id.status();
      sites.push_back(id.value());
    }
    if (sites.empty()) {
      return Status(Code::kInvalidArgument,
                    "--docs entry '" + entry + "' lists no sites");
    }
    out.emplace_back(entry.substr(0, colon), std::move(sites));
  }
  return out;
}

/// "d1:/path.xml;d2:/other.xml" -> seed list (first ':' separates).
Result<std::vector<std::pair<std::string, std::string>>> parse_loads(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& entry : util::split(text, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--load entry must be name:path, got '" + entry + "'");
    }
    out.emplace_back(entry.substr(0, colon), entry.substr(colon + 1));
  }
  return out;
}

net::TcpOptions make_tcp_options(const DaemonConfig& config) {
  net::TcpOptions options;  // keep the default reconnect backoff window
  options.listen = config.listen;
  options.peers = config.peers;
  return options;
}

}  // namespace

Result<DaemonConfig> config_from_flags(const util::Flags& flags) {
  DaemonConfig config;
  if (!flags.has("site") || !flags.has("listen") || !flags.has("store")) {
    return Status(Code::kInvalidArgument,
                  "dtxd needs --site=N --listen=host:port --store=DIR");
  }
  auto site_id = parse_site_id(flags.get_string("site", "0"));
  if (!site_id) return site_id.status();
  config.site.id = site_id.value();
  config.listen = flags.get_string("listen", "");
  config.store_dir = flags.get_string("store", "");

  auto peers = parse_peers(flags.get_string("peers", ""));
  if (!peers) return peers.status();
  config.peers = std::move(peers).value();
  config.peers.erase(config.site.id);

  auto docs = parse_docs(flags.get_string("docs", ""));
  if (!docs) return docs.status();
  config.docs = std::move(docs).value();

  auto loads = parse_loads(flags.get_string("load", ""));
  if (!loads) return loads.status();
  config.loads = std::move(loads).value();

  config.connect_wait = std::chrono::milliseconds(
      flags.get_int("connect_wait_ms", config.connect_wait.count()));
  config.sync_timeout = std::chrono::milliseconds(
      flags.get_int("sync_timeout_ms", config.sync_timeout.count()));

  auto protocol =
      lock::parse_protocol_kind(flags.get_string("protocol", "xdgl"));
  if (!protocol) return protocol.status();
  config.site.protocol = protocol.value();
  config.site.coordinator_workers = static_cast<std::size_t>(flags.get_int(
      "coordinator_workers",
      static_cast<std::int64_t>(config.site.coordinator_workers)));
  config.site.participant_workers = static_cast<std::size_t>(flags.get_int(
      "participant_workers",
      static_cast<std::int64_t>(config.site.participant_workers)));
  config.site.lock_shards = static_cast<std::size_t>(flags.get_int(
      "lock_shards", static_cast<std::int64_t>(config.site.lock_shards)));
  config.site.checkpoint_interval = static_cast<std::size_t>(
      flags.get_int("checkpoint_interval",
                    static_cast<std::int64_t>(config.site.checkpoint_interval)));
  config.site.max_wait_episodes = static_cast<std::uint32_t>(flags.get_int(
      "max_wait_episodes",
      static_cast<std::int64_t>(config.site.max_wait_episodes)));
  config.site.snapshot_reads =
      flags.get_bool("snapshot_reads", config.site.snapshot_reads);
  config.site.orphan_txn_timeout = std::chrono::microseconds(
      flags.get_int("orphan_timeout_ms",
                    config.site.orphan_txn_timeout.count() / 1000) *
      1000);
  config.site.response_timeout = std::chrono::microseconds(
      flags.get_int("response_timeout_ms",
                    config.site.response_timeout.count() / 1000) *
      1000);
  config.site.commit_ack_rounds = static_cast<std::uint32_t>(flags.get_int(
      "commit_ack_rounds",
      static_cast<std::int64_t>(config.site.commit_ack_rounds)));
  config.site.detect_period = std::chrono::microseconds(
      flags.get_int("detect_period_us", config.site.detect_period.count()));
  return config;
}

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      store_(std::filesystem::path(config_.store_dir)),
      network_(config_.site.id, make_tcp_options(config_)) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  for (const auto& [name, sites] : config_.docs) {
    Status placed = catalog_.add_document(name, sites);
    if (!placed) return placed;
  }
  Status up = network_.start();
  if (!up) return up;
  Status seeded = seed_documents();
  if (!seeded) return seeded;
  Status recovered = recover_documents();
  if (!recovered) return recovered;
  site_ = std::make_unique<core::Site>(config_.site, network_, catalog_,
                                       store_);
  Status started = site_->start();
  if (!started) return started;
  DTX_INFO() << "dtxd: site " + std::to_string(config_.site.id) +
                     " serving on port " +
                     std::to_string(network_.listen_port());
  return Status::ok();
}

void Daemon::stop() {
  if (site_ != nullptr) site_->stop();
  network_.interrupt_all();
}

Status Daemon::seed_documents() {
  for (const auto& [name, path] : config_.loads) {
    if (!catalog_.has_document(name)) {
      return Status(Code::kInvalidArgument,
                    "--load document '" + name + "' is not in --docs");
    }
    const std::vector<net::SiteId> hosts = catalog_.sites_of(name);
    if (std::find(hosts.begin(), hosts.end(), config_.site.id) ==
        hosts.end()) {
      continue;  // seeded by its hosting daemons
    }
    if (store_.exists(name)) continue;  // restart — durable state wins
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status(Code::kNotFound,
                    "cannot read --load file '" + path + "'");
    }
    std::ostringstream xml;
    xml << in.rdbuf();
    Status stored = store_.store(name, xml.str());
    if (!stored) return stored;
  }
  return Status::ok();
}

void Daemon::answer_pull(const net::RecoveryPullRequest& request) {
  net::RecoveryPullReply reply;
  reply.doc = request.doc;
  const std::vector<net::SiteId> hosts = catalog_.sites_of(request.doc);
  const bool hosted = std::find(hosts.begin(), hosts.end(),
                                config_.site.id) != hosts.end();
  if (hosted && store_.exists(request.doc)) {
    // No engine is running locally yet, so one read is already stable.
    auto durable = core::recovery::read_stable(store_, request.doc, 1);
    if (durable) {
      reply.ok = true;
      reply.version = durable.value().version;
      reply.snapshot = std::move(durable.value().snapshot);
      reply.log = core::recovery::flatten_log(durable.value());
    }
  }
  network_.send(net::Message{config_.site.id, request.requester,
                             std::move(reply)});
}

Status Daemon::recover_documents() {
  using Clock = std::chrono::steady_clock;

  // Which documents are hosted here, and which peers replicate them.
  std::vector<std::string> hosted;
  std::set<net::SiteId> relevant_peers;
  for (const std::string& doc : catalog_.documents()) {
    const std::vector<net::SiteId> hosts = catalog_.sites_of(doc);
    if (std::find(hosts.begin(), hosts.end(), config_.site.id) ==
        hosts.end()) {
      continue;
    }
    hosted.push_back(doc);
    for (net::SiteId peer : hosts) {
      if (peer != config_.site.id && config_.peers.count(peer) != 0) {
        relevant_peers.insert(peer);
      }
    }
  }
  if (hosted.empty()) return Status::ok();

  // The daemon pops its own mailbox during recovery, before the Site
  // exists; SiteContext's register_site later returns this same mailbox.
  // Anything popped here that is not recovery traffic (a client already
  // connected through the transport, an engine message from a running
  // peer) is parked and re-queued for the dispatcher before Site::start —
  // dropping it would time out a client whose connect raced our startup.
  net::Mailbox& mailbox = network_.register_site(config_.site.id);
  std::vector<net::Message> deferred;

  // Bounded wait for the replicating peers to connect. Peers that stay
  // down simply contribute no state — the engine serves what it has and
  // they recover from us later.
  const Clock::time_point connect_deadline =
      Clock::now() + config_.connect_wait;
  auto all_connected = [&] {
    return std::all_of(relevant_peers.begin(), relevant_peers.end(),
                       [&](net::SiteId p) { return network_.peer_connected(p); });
  };
  while (!all_connected() && Clock::now() < connect_deadline) {
    // Answer early pulls from peers restarting alongside us.
    while (auto message = mailbox.try_pop()) {
      if (const auto* pull = std::get_if<net::RecoveryPullRequest>(
              &message->payload)) {
        answer_pull(*pull);
      } else if (!std::holds_alternative<net::RecoveryPullReply>(
                     message->payload)) {
        deferred.push_back(std::move(*message));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Fan the pulls out and collect replies; keep answering peer pulls
  // meanwhile so simultaneous restarts cannot starve each other.
  std::map<std::string, std::set<net::SiteId>> outstanding;
  std::map<std::string, std::vector<core::wal::DurableDoc>> states;
  std::size_t waiting = 0;
  for (const std::string& doc : hosted) {
    for (net::SiteId peer : catalog_.sites_of(doc)) {
      if (peer == config_.site.id || !network_.peer_connected(peer)) continue;
      network_.send(net::Message{
          config_.site.id, peer,
          net::RecoveryPullRequest{doc, config_.site.id}});
      outstanding[doc].insert(peer);
      ++waiting;
    }
  }
  const Clock::time_point sync_deadline = Clock::now() + config_.sync_timeout;
  while (waiting > 0 && Clock::now() < sync_deadline) {
    auto message = mailbox.pop(std::chrono::microseconds(50'000));
    if (!message) continue;
    if (const auto* pull =
            std::get_if<net::RecoveryPullRequest>(&message->payload)) {
      answer_pull(*pull);
      continue;
    }
    auto* reply = std::get_if<net::RecoveryPullReply>(&message->payload);
    if (reply == nullptr) {
      deferred.push_back(std::move(*message));  // for the dispatcher
      continue;
    }
    auto pending = outstanding.find(reply->doc);
    if (pending == outstanding.end() ||
        pending->second.erase(message->from) == 0) {
      continue;  // duplicate or unsolicited
    }
    --waiting;
    if (!reply->ok) continue;  // peer has no stable state of this doc
    auto durable = core::recovery::from_wire(reply->doc, reply->snapshot,
                                             reply->log);
    if (!durable) {
      DTX_WARN() << "dtxd: discarding recovery pull of '" + reply->doc +
                         "' from site " + std::to_string(message->from) +
                         ": " + durable.status().message();
      continue;
    }
    states[reply->doc].push_back(std::move(durable).value());
  }

  core::recovery::SyncStats sync_stats;
  for (const std::string& doc : hosted) {
    std::vector<core::wal::DurableDoc>& peer_states = states[doc];
    if (!store_.exists(doc)) {
      // Nothing local at all (fresh store, no --load seed): adopt the
      // freshest peer wholesale; with no peer state either, the document
      // cannot be served.
      const core::wal::DurableDoc* best = nullptr;
      for (const core::wal::DurableDoc& peer : peer_states) {
        if (best == nullptr || peer.version > best->version) best = &peer;
      }
      if (best == nullptr) {
        return Status(Code::kNotFound,
                      "document '" + doc +
                          "' is hosted here but neither the store, --load "
                          "nor any peer supplied it");
      }
      Status stored = store_.store(doc, best->snapshot);
      if (!stored) return stored;
      const std::string log = core::recovery::flatten_log(*best);
      if (!log.empty()) {
        stored = store_.store(core::wal::log_key(doc), log);
        if (!stored) return stored;
      }
      ++sync_stats.full_syncs;
      continue;
    }
    Status synced =
        core::recovery::sync_document(store_, doc, peer_states, sync_stats);
    if (!synced) return synced;
  }
  if (sync_stats.log_suffix_syncs + sync_stats.full_syncs > 0) {
    DTX_INFO() << "dtxd: recovery synced " +
            std::to_string(sync_stats.log_suffix_syncs) + " log suffix(es), " +
            std::to_string(sync_stats.full_syncs) + " full adoption(s)";
  }
  // Re-queue the traffic that arrived while we were recovering; the Site's
  // dispatcher picks it up as soon as it starts.
  for (net::Message& message : deferred) {
    mailbox.push(std::move(message), Clock::now());
  }
  return Status::ok();
}

}  // namespace dtx::daemon
