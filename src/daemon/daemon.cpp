#include "daemon/daemon.hpp"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <variant>

#include "dtx/inspector.hpp"
#include "dtx/recovery.hpp"
#include "dtx/wal.hpp"
#include "lock/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace dtx::daemon {

using util::Code;
using util::Result;
using util::Status;

namespace {

Result<net::SiteId> parse_site_id(const std::string& text) {
  try {
    const unsigned long value = std::stoul(text);
    if (value >= net::kClientIdBase) {
      return Status(Code::kInvalidArgument,
                    "site id " + text + " is in the client range");
    }
    return static_cast<net::SiteId>(value);
  } catch (const std::exception&) {
    return Status(Code::kInvalidArgument, "bad site id '" + text + "'");
  }
}

/// "0=host:port,1=host:port" -> address book.
Result<std::map<net::SiteId, std::string>> parse_peers(
    const std::string& text) {
  std::map<net::SiteId, std::string> out;
  for (const std::string& entry : util::split(text, ',')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--peers entry must be id=host:port, got '" + entry + "'");
    }
    auto id = parse_site_id(entry.substr(0, eq));
    if (!id) return id.status();
    out[id.value()] = entry.substr(eq + 1);
  }
  return out;
}

/// "d1:0,1,2;d2:0,2" -> catalog entries.
Result<std::vector<std::pair<std::string, std::vector<net::SiteId>>>>
parse_docs(const std::string& text) {
  std::vector<std::pair<std::string, std::vector<net::SiteId>>> out;
  for (const std::string& entry : util::split(text, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--docs entry must be name:site,site..., got '" + entry +
                        "'");
    }
    std::vector<net::SiteId> sites;
    for (const std::string& id_text :
         util::split(entry.substr(colon + 1), ',')) {
      if (id_text.empty()) continue;
      auto id = parse_site_id(id_text);
      if (!id) return id.status();
      sites.push_back(id.value());
    }
    if (sites.empty()) {
      return Status(Code::kInvalidArgument,
                    "--docs entry '" + entry + "' lists no sites");
    }
    out.emplace_back(entry.substr(0, colon), std::move(sites));
  }
  return out;
}

/// "d1:/path.xml;d2:/other.xml" -> seed list (first ':' separates).
Result<std::vector<std::pair<std::string, std::string>>> parse_loads(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& entry : util::split(text, ';')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status(Code::kInvalidArgument,
                    "--load entry must be name:path, got '" + entry + "'");
    }
    out.emplace_back(entry.substr(0, colon), entry.substr(colon + 1));
  }
  return out;
}

net::TcpOptions make_tcp_options(const DaemonConfig& config) {
  net::TcpOptions options;  // keep the default reconnect backoff window
  options.listen = config.listen;
  options.peers = config.peers;
  if (config.join) options.peers[config.join_seed] = config.join_seed_address;
  return options;
}

/// Boot-flag catalog: the --docs placement plus the flag address book, at
/// epoch 0 so any membership-managed epoch (durable record, CatalogUpdate,
/// JoinReply) strictly wins.
placement::CatalogEpoch boot_epoch(const DaemonConfig& config) {
  placement::CatalogEpoch epoch;
  auto add_member = [&epoch](net::SiteId site) {
    if (!epoch.is_member(site)) epoch.members.push_back(site);
  };
  for (const auto& [name, sites] : config.docs) {
    std::vector<net::SiteId> sorted = sites;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (const net::SiteId site : sorted) add_member(site);
    epoch.placement[name] = std::move(sorted);
  }
  for (const auto& [site, address] : config.peers) {
    add_member(site);
    epoch.addresses[site] = address;
  }
  if (!config.join) {
    // A joiner is NOT a boot member — it enters via the join protocol.
    add_member(config.site.id);
    // Own dialable address, when knowable before the listener binds
    // (explicit --advertise, or a --listen with a real port). Rebalances
    // carry it into every distributed epoch.
    std::string advertise = config.advertise;
    if (advertise.empty() && config.listen.rfind(":0") !=
                                 config.listen.size() - 2) {
      advertise = config.listen;
    }
    if (!advertise.empty()) epoch.addresses[config.site.id] = advertise;
  }
  std::sort(epoch.members.begin(), epoch.members.end());
  return epoch;
}

}  // namespace

Result<DaemonConfig> config_from_flags(const util::Flags& flags) {
  DaemonConfig config;
  if (!flags.has("site") || !flags.has("listen") || !flags.has("store")) {
    return Status(Code::kInvalidArgument,
                  "dtxd needs --site=N --listen=host:port --store=DIR");
  }
  auto site_id = parse_site_id(flags.get_string("site", "0"));
  if (!site_id) return site_id.status();
  config.site.id = site_id.value();
  config.listen = flags.get_string("listen", "");
  config.store_dir = flags.get_string("store", "");

  auto peers = parse_peers(flags.get_string("peers", ""));
  if (!peers) return peers.status();
  config.peers = std::move(peers).value();
  config.peers.erase(config.site.id);

  auto docs = parse_docs(flags.get_string("docs", ""));
  if (!docs) return docs.status();
  config.docs = std::move(docs).value();

  auto loads = parse_loads(flags.get_string("load", ""));
  if (!loads) return loads.status();
  config.loads = std::move(loads).value();

  config.advertise = flags.get_string("advertise", "");
  const std::string join = flags.get_string("join", "");
  if (!join.empty()) {
    const std::size_t eq = join.find('=');
    if (eq == std::string::npos || eq + 1 == join.size()) {
      return Status(Code::kInvalidArgument,
                    "--join must be seed_id=host:port, got '" + join + "'");
    }
    auto seed = parse_site_id(join.substr(0, eq));
    if (!seed) return seed.status();
    if (seed.value() == config.site.id) {
      return Status(Code::kInvalidArgument,
                    "--join seed must be another site");
    }
    config.join = true;
    config.join_seed = seed.value();
    config.join_seed_address = join.substr(eq + 1);
  }

  auto policy = placement::parse_placement_policy(
      flags.get_string("policy",
                       placement::placement_policy_name(
                           config.site.placement_policy)));
  if (!policy) return policy.status();
  config.site.placement_policy = policy.value();
  config.site.replication = static_cast<std::size_t>(flags.get_int(
      "replication", static_cast<std::int64_t>(config.site.replication)));

  config.connect_wait = std::chrono::milliseconds(
      flags.get_int("connect_wait_ms", config.connect_wait.count()));
  config.sync_timeout = std::chrono::milliseconds(
      flags.get_int("sync_timeout_ms", config.sync_timeout.count()));

  auto protocol =
      lock::parse_protocol_kind(flags.get_string("protocol", "xdgl"));
  if (!protocol) return protocol.status();
  config.site.protocol = protocol.value();
  config.site.coordinator_workers = static_cast<std::size_t>(flags.get_int(
      "coordinator_workers",
      static_cast<std::int64_t>(config.site.coordinator_workers)));
  config.site.participant_workers = static_cast<std::size_t>(flags.get_int(
      "participant_workers",
      static_cast<std::int64_t>(config.site.participant_workers)));
  config.site.lock_shards = static_cast<std::size_t>(flags.get_int(
      "lock_shards", static_cast<std::int64_t>(config.site.lock_shards)));
  config.site.checkpoint_interval = static_cast<std::size_t>(
      flags.get_int("checkpoint_interval",
                    static_cast<std::int64_t>(config.site.checkpoint_interval)));
  config.site.max_wait_episodes = static_cast<std::uint32_t>(flags.get_int(
      "max_wait_episodes",
      static_cast<std::int64_t>(config.site.max_wait_episodes)));
  config.site.snapshot_reads =
      flags.get_bool("snapshot_reads", config.site.snapshot_reads);
  config.site.orphan_txn_timeout = std::chrono::microseconds(
      flags.get_int("orphan_timeout_ms",
                    config.site.orphan_txn_timeout.count() / 1000) *
      1000);
  config.site.response_timeout = std::chrono::microseconds(
      flags.get_int("response_timeout_ms",
                    config.site.response_timeout.count() / 1000) *
      1000);
  config.site.commit_ack_rounds = static_cast<std::uint32_t>(flags.get_int(
      "commit_ack_rounds",
      static_cast<std::int64_t>(config.site.commit_ack_rounds)));
  config.site.detect_period = std::chrono::microseconds(
      flags.get_int("detect_period_us", config.site.detect_period.count()));
  return config;
}

Daemon::Daemon(DaemonConfig config)
    : config_(std::move(config)),
      store_(std::filesystem::path(config_.store_dir)),
      catalog_(boot_epoch(config_)),
      network_(config_.site.id, make_tcp_options(config_)) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  Status up = network_.start();
  if (!up) return up;
  Status cataloged = load_or_boot_catalog();
  if (!cataloged) return cataloged;
  if (config_.join && catalog_.epoch() == 0) {
    // First boot of a joiner: no durable catalog yet — run the handshake.
    // (A restart resumes from the durable epoch instead; the engine's
    // fence + pull path finishes any interrupted migration.)
    Status joined = run_join_handshake();
    if (!joined) return joined;
  } else {
    Status seeded = seed_documents();
    if (!seeded) return seeded;
    Status recovered = recover_documents();
    if (!recovered) return recovered;
  }
  site_ = std::make_unique<core::Site>(config_.site, network_, catalog_,
                                       store_);
  Status started = site_->start();
  if (!started) return started;
  DTX_INFO() << "dtxd: site " + std::to_string(config_.site.id) +
                     " serving on port " +
                     std::to_string(network_.listen_port());
  return Status::ok();
}

void Daemon::stop() {
  if (site_ != nullptr && !stopped_) {
    stopped_ = true;
    site_->stop();
    const core::SiteStats stats = site_->stats();
    DTX_INFO() << "dtxd: site " + std::to_string(config_.site.id) + " " +
                      core::describe_tcp(network_.tcp_stats()) +
                      " | placement: catalog_epoch=" +
                      std::to_string(stats.catalog_epoch) +
                      " stale_catalog_aborts=" +
                      std::to_string(stats.stale_catalog_aborts) +
                      " migrations=" + std::to_string(stats.migrations) +
                      " migrated_bytes=" + std::to_string(stats.migrated_bytes);
  }
  network_.interrupt_all();
}

void Daemon::begin_decommission() {
  if (site_ == nullptr) return;
  // The decommission order is a JoinRequest naming the site itself,
  // self-sent through the transport so it runs on the dispatcher like any
  // operator-issued admin message.
  network_.send(net::Message{config_.site.id, config_.site.id,
                             net::JoinRequest{config_.site.id, ""}});
}

Status Daemon::load_or_boot_catalog() {
  // The boot-flag catalog (epoch 0) is already installed; a durable
  // `~catalog` record from a previous membership change strictly wins.
  auto text = store_.load(core::SiteContext::kCatalogKey);
  if (!text) return Status::ok();  // fresh store — boot flags stand
  auto parsed = placement::CatalogEpoch::parse(text.value());
  if (!parsed) {
    return Status(Code::kInternal,
                  "durable catalog unreadable: " + parsed.status().message());
  }
  placement::CatalogEpoch durable = std::move(parsed).value();
  // The durable address book supersedes (and extends) the --peers flags:
  // members admitted after this daemon's flags were written live only here.
  for (const auto& [site, address] : durable.addresses) {
    if (site == config_.site.id || address.empty()) continue;
    config_.peers[site] = address;
    network_.add_peer(site, address);
  }
  catalog_.install(std::move(durable));
  DTX_INFO() << "dtxd: site " + std::to_string(config_.site.id) +
                     " resuming from durable catalog epoch " +
                     std::to_string(catalog_.epoch());
  return Status::ok();
}

Status Daemon::run_join_handshake() {
  using Clock = std::chrono::steady_clock;
  // Advertised address: --advertise, else the listen host with the
  // actually-bound port (resolves a port-0 listen).
  std::string advertise = config_.advertise;
  if (advertise.empty()) {
    const std::size_t colon = config_.listen.rfind(':');
    advertise = config_.listen.substr(0, colon) + ":" +
                std::to_string(network_.listen_port());
  }
  net::Mailbox& mailbox = network_.register_site(config_.site.id);
  std::vector<net::Message> deferred;
  const Clock::time_point deadline =
      Clock::now() + config_.connect_wait + std::chrono::seconds(30);
  Clock::time_point last_sent{};
  std::string last_refusal;
  while (Clock::now() < deadline) {
    const Clock::time_point now = Clock::now();
    if (now - last_sent >= std::chrono::milliseconds(500)) {
      // Resend until admitted: the transport is lossy while the seed
      // connection establishes, and the seed defers the reply until the
      // old epoch drained at every member.
      network_.send(net::Message{
          config_.site.id, config_.join_seed,
          net::JoinRequest{config_.site.id, advertise}});
      last_sent = now;
    }
    auto message = mailbox.pop(std::chrono::microseconds(50'000));
    if (!message) continue;
    const auto* reply = std::get_if<net::JoinReply>(&message->payload);
    if (reply == nullptr) {
      // Early migration pushes and client traffic: park for the
      // dispatcher — the Site picks them up the moment it starts.
      deferred.push_back(std::move(*message));
      continue;
    }
    if (!reply->ok) {
      last_refusal = reply->error;  // transient (another change in flight)
      continue;
    }
    auto parsed = placement::CatalogEpoch::parse(reply->catalog);
    if (!parsed) {
      return Status(Code::kInternal,
                    "join reply catalog unreadable: " +
                        parsed.status().message());
    }
    placement::CatalogEpoch admitted = std::move(parsed).value();
    if (!admitted.is_member(config_.site.id)) {
      return Status(Code::kInternal, "join reply catalog omits this site");
    }
    for (const auto& [site, address] : admitted.addresses) {
      if (site == config_.site.id || address.empty()) continue;
      config_.peers[site] = address;
      network_.add_peer(site, address);
    }
    // Persist before installing (mirrors Site::install_epoch): a crash
    // right after admission must restart as a member, not re-join.
    Status saved =
        store_.store(core::SiteContext::kCatalogKey, admitted.to_text());
    if (!saved) return saved;
    catalog_.install(std::move(admitted));
    DTX_INFO() << "dtxd: site " + std::to_string(config_.site.id) +
                       " joined at catalog epoch " +
                       std::to_string(catalog_.epoch());
    for (net::Message& parked : deferred) {
      mailbox.push(std::move(parked), Clock::now());
    }
    return Status::ok();
  }
  std::string detail = last_refusal.empty()
                           ? "no JoinReply from seed site " +
                                 std::to_string(config_.join_seed)
                           : "seed refused: " + last_refusal;
  return Status(Code::kUnavailable, "join timed out: " + detail);
}

Status Daemon::seed_documents() {
  for (const auto& [name, path] : config_.loads) {
    if (!catalog_.has_document(name)) {
      return Status(Code::kInvalidArgument,
                    "--load document '" + name + "' is not in --docs");
    }
    const std::vector<net::SiteId> hosts = catalog_.sites_of(name);
    if (std::find(hosts.begin(), hosts.end(), config_.site.id) ==
        hosts.end()) {
      continue;  // seeded by its hosting daemons
    }
    if (store_.exists(name)) continue;  // restart — durable state wins
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status(Code::kNotFound,
                    "cannot read --load file '" + path + "'");
    }
    std::ostringstream xml;
    xml << in.rdbuf();
    Status stored = store_.store(name, xml.str());
    if (!stored) return stored;
  }
  return Status::ok();
}

void Daemon::answer_pull(const net::RecoveryPullRequest& request) {
  net::RecoveryPullReply reply;
  reply.doc = request.doc;
  const std::vector<net::SiteId> hosts = catalog_.sites_of(request.doc);
  const bool hosted = std::find(hosts.begin(), hosts.end(),
                                config_.site.id) != hosts.end();
  if (hosted && store_.exists(request.doc)) {
    // No engine is running locally yet, so one read is already stable.
    auto durable = core::recovery::read_stable(store_, request.doc, 1);
    if (durable) {
      reply.ok = true;
      reply.version = durable.value().version;
      reply.snapshot = std::move(durable.value().snapshot);
      reply.log = core::recovery::flatten_log(durable.value());
    }
  }
  network_.send(net::Message{config_.site.id, request.requester,
                             std::move(reply)});
}

Status Daemon::recover_documents() {
  using Clock = std::chrono::steady_clock;

  // Which documents are hosted here, and which peers replicate them.
  std::vector<std::string> hosted;
  std::set<net::SiteId> relevant_peers;
  for (const std::string& doc : catalog_.documents()) {
    const std::vector<net::SiteId> hosts = catalog_.sites_of(doc);
    if (std::find(hosts.begin(), hosts.end(), config_.site.id) ==
        hosts.end()) {
      continue;
    }
    hosted.push_back(doc);
    for (net::SiteId peer : hosts) {
      if (peer != config_.site.id && config_.peers.count(peer) != 0) {
        relevant_peers.insert(peer);
      }
    }
  }
  if (hosted.empty()) return Status::ok();

  // The daemon pops its own mailbox during recovery, before the Site
  // exists; SiteContext's register_site later returns this same mailbox.
  // Anything popped here that is not recovery traffic (a client already
  // connected through the transport, an engine message from a running
  // peer) is parked and re-queued for the dispatcher before Site::start —
  // dropping it would time out a client whose connect raced our startup.
  net::Mailbox& mailbox = network_.register_site(config_.site.id);
  std::vector<net::Message> deferred;

  // Bounded wait for the replicating peers to connect. Peers that stay
  // down simply contribute no state — the engine serves what it has and
  // they recover from us later.
  const Clock::time_point connect_deadline =
      Clock::now() + config_.connect_wait;
  auto all_connected = [&] {
    return std::all_of(relevant_peers.begin(), relevant_peers.end(),
                       [&](net::SiteId p) { return network_.peer_connected(p); });
  };
  while (!all_connected() && Clock::now() < connect_deadline) {
    // Answer early pulls from peers restarting alongside us.
    while (auto message = mailbox.try_pop()) {
      if (const auto* pull = std::get_if<net::RecoveryPullRequest>(
              &message->payload)) {
        answer_pull(*pull);
      } else if (!std::holds_alternative<net::RecoveryPullReply>(
                     message->payload)) {
        deferred.push_back(std::move(*message));
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Fan the pulls out and collect replies; keep answering peer pulls
  // meanwhile so simultaneous restarts cannot starve each other.
  std::map<std::string, std::set<net::SiteId>> outstanding;
  std::map<std::string, std::vector<core::wal::DurableDoc>> states;
  std::size_t waiting = 0;
  for (const std::string& doc : hosted) {
    for (net::SiteId peer : catalog_.sites_of(doc)) {
      if (peer == config_.site.id || !network_.peer_connected(peer)) continue;
      network_.send(net::Message{
          config_.site.id, peer,
          net::RecoveryPullRequest{doc, config_.site.id}});
      outstanding[doc].insert(peer);
      ++waiting;
    }
  }
  const Clock::time_point sync_deadline = Clock::now() + config_.sync_timeout;
  while (waiting > 0 && Clock::now() < sync_deadline) {
    auto message = mailbox.pop(std::chrono::microseconds(50'000));
    if (!message) continue;
    if (const auto* pull =
            std::get_if<net::RecoveryPullRequest>(&message->payload)) {
      answer_pull(*pull);
      continue;
    }
    auto* reply = std::get_if<net::RecoveryPullReply>(&message->payload);
    if (reply == nullptr) {
      deferred.push_back(std::move(*message));  // for the dispatcher
      continue;
    }
    auto pending = outstanding.find(reply->doc);
    if (pending == outstanding.end() ||
        pending->second.erase(message->from) == 0) {
      continue;  // duplicate or unsolicited
    }
    --waiting;
    if (!reply->ok) continue;  // peer has no stable state of this doc
    auto durable = core::recovery::from_wire(reply->doc, reply->snapshot,
                                             reply->log);
    if (!durable) {
      DTX_WARN() << "dtxd: discarding recovery pull of '" + reply->doc +
                         "' from site " + std::to_string(message->from) +
                         ": " + durable.status().message();
      continue;
    }
    states[reply->doc].push_back(std::move(durable).value());
  }

  core::recovery::SyncStats sync_stats;
  for (const std::string& doc : hosted) {
    std::vector<core::wal::DurableDoc>& peer_states = states[doc];
    if (!store_.exists(doc)) {
      // Nothing local at all (fresh store, no --load seed): adopt the
      // freshest peer wholesale; with no peer state either, the document
      // cannot be served.
      const core::wal::DurableDoc* best = nullptr;
      for (const core::wal::DurableDoc& peer : peer_states) {
        if (best == nullptr || peer.version > best->version) best = &peer;
      }
      if (best == nullptr) {
        if (catalog_.epoch() > 0) {
          // Membership-managed cluster: the replica is still migrating to
          // this site — Site::start() fences it and the pull path
          // converges once the sources come up.
          continue;
        }
        return Status(Code::kNotFound,
                      "document '" + doc +
                          "' is hosted here but neither the store, --load "
                          "nor any peer supplied it");
      }
      Status stored = store_.store(doc, best->snapshot);
      if (!stored) return stored;
      const std::string log = core::recovery::flatten_log(*best);
      if (!log.empty()) {
        stored = store_.store(core::wal::log_key(doc), log);
        if (!stored) return stored;
      }
      ++sync_stats.full_syncs;
      continue;
    }
    Status synced =
        core::recovery::sync_document(store_, doc, peer_states, sync_stats);
    if (!synced) return synced;
  }
  if (sync_stats.log_suffix_syncs + sync_stats.full_syncs > 0) {
    DTX_INFO() << "dtxd: recovery synced " +
            std::to_string(sync_stats.log_suffix_syncs) + " log suffix(es), " +
            std::to_string(sync_stats.full_syncs) + " full adoption(s)";
  }
  // Re-queue the traffic that arrived while we were recovering; the Site's
  // dispatcher picks it up as soon as it starts.
  for (net::Message& message : deferred) {
    mailbox.push(std::move(message), Clock::now());
  }
  return Status::ok();
}

}  // namespace dtx::daemon
