// dtxd: one DTX site as a standalone OS process. The daemon wires the real
// transport (net::TcpNetwork) under the unchanged engine (core::Site): a
// FileStore for durability, a catalog parsed from flags, startup recovery
// that pulls peer replica state over the wire (RecoveryPullRequest — the
// network form of Cluster::restart_site's store-to-store sync), and then
// the ordinary Site lifecycle. Remote clients (client::RemoteSession,
// `dtxsh --connect`) submit transactions over the same connections the
// sites use among themselves.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dtx/site.hpp"
#include "net/tcp_network.hpp"
#include "storage/file_store.hpp"
#include "util/flags.hpp"
#include "util/status.hpp"

namespace dtx::daemon {

struct DaemonConfig {
  /// Engine knobs; `site.id` is this daemon's site id. `placement_policy`
  /// and `replication` (flags --policy / --replication) govern every
  /// rebalance this daemon seeds.
  core::SiteOptions site;
  /// Listen address "host:port" (port 0 = kernel-assigned).
  std::string listen;
  /// Address other members should dial; defaults to `listen` with the
  /// actually-bound port substituted (resolves port 0).
  std::string advertise;
  /// Peer address book: site id -> "host:port" (own id ignored).
  std::map<net::SiteId, std::string> peers;
  /// FileStore root for this site's replicas, logs and commit log.
  std::string store_dir;
  /// Catalog: document name -> hosting sites (identical on every daemon).
  /// Ignored when the store holds a durable `~catalog` record — a
  /// membership-managed cluster's own epoch always wins over boot flags.
  std::vector<std::pair<std::string, std::vector<net::SiteId>>> docs;
  /// Seed data: document name -> XML file, stored only when the local
  /// store does not already hold the document (first boot, not restart).
  std::vector<std::pair<std::string, std::string>> loads;
  /// --join=ID=host:port: boot as a NEW member. The daemon dials the seed
  /// site, runs the join protocol (JoinRequest/JoinReply), installs the
  /// rebalanced catalog and lets the engine's migration machinery pull its
  /// replicas. A restart with a durable catalog skips the handshake.
  bool join = false;
  net::SiteId join_seed = 0;
  std::string join_seed_address;
  /// Startup bound on waiting for peer connections before recovery pulls.
  std::chrono::milliseconds connect_wait{3000};
  /// Startup bound on collecting RecoveryPullReplies.
  std::chrono::milliseconds sync_timeout{3000};
};

/// Builds a config from --key=value flags:
///   --site=N --listen=host:port --store=DIR           (required)
///   --peers=0=host:port,1=host:port                   (other sites)
///   --docs=name:0,1,2;name2:0,2                       (the catalog)
///   --load=name:/path.xml;name2:/path2.xml            (first-boot seeds)
///   --join=ID=host:port                               (join via seed site)
///   --advertise=host:port                             (dialable address)
///   --policy=fixed|round_robin|hash_ring --replication=N
///   --connect_wait_ms=N --sync_timeout_ms=N
/// plus engine knobs: --protocol=xdgl|node2pl|doclock, --coordinator_workers,
/// --participant_workers, --lock_shards, --checkpoint_interval,
/// --max_wait_episodes, --snapshot_reads, --orphan_timeout_ms,
/// --response_timeout_ms, --commit_ack_rounds, --detect_period_us.
util::Result<DaemonConfig> config_from_flags(const util::Flags& flags);

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Full startup: catalog, transport, seed loads, recovery pulls from
  /// live peers, then Site::start(). Returns the first failure.
  util::Status start();

  /// Stops the site and the transport. Idempotent.
  void stop();

  /// Starts an orderly leave (SIGUSR1): the site rebalances the catalog
  /// without itself and migrates its replicas away. Poll decommissioned()
  /// for completion, then stop().
  void begin_decommission();
  [[nodiscard]] bool decommissioned() const noexcept {
    return site_ != nullptr && site_->decommissioned();
  }

  [[nodiscard]] bool running() const noexcept {
    return site_ != nullptr && site_->running();
  }
  [[nodiscard]] core::Site& site() { return *site_; }
  [[nodiscard]] net::TcpNetwork& network() noexcept { return network_; }
  [[nodiscard]] std::uint16_t listen_port() const {
    return network_.listen_port();
  }

 private:
  /// Seeds catalog_: the durable `~catalog` record when the store holds
  /// one, the --docs boot layout (with the address book baked in)
  /// otherwise.
  util::Status load_or_boot_catalog();
  /// First-boot --join handshake: JoinRequest to the seed, install the
  /// JoinReply catalog, dial every member.
  util::Status run_join_handshake();
  /// Stores --load seeds that are hosted here and not yet present.
  util::Status seed_documents();
  /// Pulls peer replica state for every hosted document and runs
  /// recovery::sync_document. Answers peers' own pulls while waiting, so
  /// simultaneously (re)starting daemons cannot deadlock each other.
  util::Status recover_documents();
  void answer_pull(const net::RecoveryPullRequest& request);

  DaemonConfig config_;
  storage::FileStore store_;
  core::Catalog catalog_;
  net::TcpNetwork network_;
  std::unique_ptr<core::Site> site_;
  bool stopped_ = false;
};

}  // namespace dtx::daemon
