// Versioned placement catalog. Each site owns a mutable `Catalog` holding an
// immutable `placement::CatalogEpoch` snapshot behind a shared_ptr; hot paths
// take a `view()` once per decision (one ref-count bump) and read hosting
// sets by const reference from the pinned epoch, so routing is never torn
// across a catalog change and never copies a site vector per operation.
// `install()` replaces the snapshot only with a strictly newer epoch —
// duplicated or reordered `CatalogUpdate` deliveries are no-ops.
//
// DTX routes an operation to every hosting site (paper §2.2: "in order to
// carry out an operation, a transaction must obtain the necessary locks at
// all the target sites"); with partial replication the hosting set is the
// epoch's per-document placement rather than the full member list.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "placement/placement.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"

namespace dtx::core {

using net::SiteId;

class Catalog {
 public:
  using View = std::shared_ptr<const placement::CatalogEpoch>;

  Catalog();
  explicit Catalog(placement::CatalogEpoch epoch);
  Catalog(const Catalog& other);
  Catalog& operator=(const Catalog& other) = delete;

  /// Registers a document hosted at `sites` (deduplicated, sorted) in the
  /// current epoch. Pre-start configuration only — does not bump the epoch.
  util::Status add_document(const std::string& name,
                            std::vector<SiteId> sites);

  /// The current epoch snapshot. Hold the view across one routing decision
  /// (or one transaction) and read `view->sites_of(doc)` by const reference.
  [[nodiscard]] View view() const;

  /// Current epoch number.
  [[nodiscard]] std::uint64_t epoch() const;

  /// Installs a newer epoch; returns false (and keeps the current one) when
  /// `next.epoch` is not strictly greater.
  bool install(placement::CatalogEpoch next);

  // Cold-path conveniences (inspector, harnesses). Hot paths use view().
  [[nodiscard]] std::vector<SiteId> sites_of(const std::string& name) const;
  [[nodiscard]] bool has_document(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> documents() const;
  [[nodiscard]] std::vector<std::string> documents_at(SiteId site) const;

 private:
  mutable sync::Mutex mutex_{sync::LockRank::kCatalog};
  View current_ DTX_GUARDED_BY(mutex_);
};

}  // namespace dtx::core
