// Placement catalog: which sites host a replica / fragment of each document.
// DTX routes an operation to every hosting site (paper §2.2: "in order to
// carry out an operation, a transaction must obtain the necessary locks at
// all the target sites"). The catalog is static configuration shared by all
// sites, set up by the Cluster from the chosen replication / fragmentation
// scheme.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "util/status.hpp"

namespace dtx::core {

using net::SiteId;

class Catalog {
 public:
  /// Registers a document hosted at `sites` (deduplicated, sorted).
  util::Status add_document(const std::string& name,
                            std::vector<SiteId> sites);

  /// Hosting sites of a document; empty when unknown.
  [[nodiscard]] std::vector<SiteId> sites_of(const std::string& name) const;

  [[nodiscard]] bool has_document(const std::string& name) const;

  /// All registered document names, sorted.
  [[nodiscard]] std::vector<std::string> documents() const;

  /// Documents hosted by one site, sorted.
  [[nodiscard]] std::vector<std::string> documents_at(SiteId site) const;

 private:
  std::map<std::string, std::vector<SiteId>> placement_;
};

}  // namespace dtx::core
