#include "dtx/recovery.hpp"

#include <optional>
#include <set>

#include "storage/memory_store.hpp"

namespace dtx::core::recovery {

using util::Code;
using util::Result;
using util::Status;

Result<wal::DurableDoc> read_stable(storage::StorageBackend& store,
                                    const std::string& doc, int attempts) {
  Result<wal::DurableDoc> state = wal::read_durable_doc(store, doc);
  for (int attempt = 1;
       state && !state.value().consistent && attempt < attempts; ++attempt) {
    state = wal::read_durable_doc(store, doc);
  }
  if (!state) return state.status();
  if (!state.value().consistent) {
    return Status(Code::kInternal,
                  "recovery sync of '" + doc +
                      "' could not observe a stable replica");
  }
  return state;
}

std::string flatten_log(const wal::DurableDoc& durable) {
  std::string log = durable.marker_raw;
  for (const wal::LogEntry& record : durable.tail) log += record.raw;
  return log;
}

Result<wal::DurableDoc> from_wire(const std::string& doc,
                                  const std::string& snapshot,
                                  const std::string& log) {
  // Round the wire form through a scratch backend so the one durable-state
  // resolver (wal::read_durable_doc) validates it — a truncated or
  // tampered pull fails here instead of poisoning the local store.
  storage::MemoryStore scratch;
  Status stored = scratch.store(doc, snapshot);
  if (!stored) return stored;
  if (!log.empty()) {
    stored = scratch.store(wal::log_key(doc), log);
    if (!stored) return stored;
  }
  auto durable = wal::read_durable_doc(scratch, doc);
  if (!durable) return durable.status();
  if (durable.value().needs_repair || !durable.value().consistent) {
    return Status(Code::kInvalidArgument,
                  "pulled state of '" + doc +
                      "' is not a repaired durable document");
  }
  return durable;
}

Status sync_document(storage::StorageBackend& store, const std::string& doc,
                     const std::vector<wal::DurableDoc>& peers,
                     SyncStats& stats) {
  auto local = wal::read_durable_doc(store, doc);
  if (!local) return local.status();
  if (local.value().needs_repair) {
    // Drop the crash's torn tail / interrupted-checkpoint leftovers
    // before anything is appended after them.
    Status repaired = wal::repair(store, doc, local.value());
    if (!repaired) return repaired;
  }
  std::set<lock::TxnId> local_ids(local.value().checkpoint_ids.begin(),
                                  local.value().checkpoint_ids.end());
  for (const wal::LogEntry& record : local.value().tail) {
    local_ids.insert(record.txn);
  }

  const wal::DurableDoc* best = nullptr;
  for (const wal::DurableDoc& peer : peers) {
    if (best == nullptr || peer.version > best->version) best = &peer;
  }
  if (best == nullptr) return Status::ok();  // unreplicated document

  const bool hidden_missing = [&] {
    for (const lock::TxnId id : best->checkpoint_ids) {
      if (local_ids.count(id) == 0) return true;
    }
    return false;
  }();
  if (hidden_missing) {
    // A commit this replica is missing sits inside the peer's compacted
    // snapshot — its record is gone, so adopt checkpoint + log wholesale
    // (regardless of which side counts more commits: the record cannot be
    // recovered any other way). Local tail records whose commit the peer
    // does not hold anywhere are re-appended on top — the marker ids
    // prove the adopted snapshot cannot already contain them, so
    // replaying them is safe, and dropping them would lose a durable
    // commit decision.
    std::set<lock::TxnId> peer_ids(best->checkpoint_ids.begin(),
                                   best->checkpoint_ids.end());
    std::uint64_t next_version = best->version;
    std::string log = best->marker_raw;
    for (const wal::LogEntry& record : best->tail) {
      log += record.raw;
      peer_ids.insert(record.txn);
    }
    for (const wal::LogEntry& record : local.value().tail) {
      if (peer_ids.count(record.txn) != 0) continue;
      log += wal::encode_record(++next_version, record.txn, record.ops);
    }
    Status stored = store.store(doc, best->snapshot);
    if (!stored) return stored;
    stored = log.empty() ? store.truncate(wal::log_key(doc))
                         : store.store(wal::log_key(doc), log);
    if (!stored) return stored;
    ++stats.full_syncs;
    return Status::ok();
  }
  // Log-suffix shipping: append the peer records this replica lacks, in
  // peer commit order, renumbered to continue the local tail.
  std::string suffix;
  std::uint64_t next_version = local.value().version;
  for (const wal::LogEntry& record : best->tail) {
    if (local_ids.count(record.txn) != 0) continue;
    suffix += wal::encode_record(++next_version, record.txn, record.ops);
  }
  if (suffix.empty()) return Status::ok();  // nothing missing / peer behind
  Status appended = store.append(wal::log_key(doc), suffix);
  if (!appended) return appended;
  ++stats.log_suffix_syncs;
  return Status::ok();
}

}  // namespace dtx::core::recovery
