// Coordinator (paper Alg. 1): the scheduler of locally-submitted
// transactions. One operation of one available transaction at a time per
// worker — the Site runs `SiteOptions::coordinator_workers` threads over one
// shared Coordinator, so several local transactions progress concurrently
// while each individual transaction is still executed one operation at a
// time by exactly one worker (the `executing` claim in SiteContext).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "dtx/site_context.hpp"

namespace dtx::core {

class Coordinator {
 public:
  explicit Coordinator(SiteContext& ctx) : ctx_(ctx) {}

  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Worker body. Any number of threads may run it concurrently; every
  /// shared-state transition goes through ctx_.coord_mutex.
  void run();

 private:
  using Clock = SiteContext::Clock;
  using TransactionPtr = std::shared_ptr<txn::Transaction>;

  /// Drains victim aborts (Alg. 4 hands them to the scheduler). Victims
  /// claimed by another worker are parked in deferred_victims. Unlocks /
  /// relocks `lock` around each abort (coord_mutex is held again on
  /// return, which is all the REQUIRES clause promises).
  void process_victims(sync::UniqueLock& lock)
      DTX_REQUIRES(ctx_.coord_mutex);

  /// Lost-wakeup backstop: re-readies waiting transactions whose retry
  /// interval elapsed.
  void retry_overdue_waiters() DTX_REQUIRES(ctx_.coord_mutex);

  void execute_one_operation(const TransactionPtr& txn);

  /// MVCC fast path for read-only transactions: every operation is a
  /// query, so the whole transaction executes in one round against
  /// versioned snapshots — zero locks, zero wait-for entries, no 2PC
  /// (nothing was written anywhere, so commit is trivial and abort
  /// requires no remote cleanup). See dtx/snapshot_store.hpp.
  void execute_snapshot(const TransactionPtr& txn);

  void execute_local(const TransactionPtr& txn, std::size_t op_index);
  void execute_remote(const TransactionPtr& txn, std::size_t op_index,
                      const std::vector<SiteId>& sites);
  void commit_transaction(const TransactionPtr& txn);
  void abort_transaction(const TransactionPtr& txn, bool deadlock_victim);
  /// Retryable abort because the catalog moved under the transaction (or a
  /// replica it needs is still importing); counts stale_catalog_aborts.
  void abort_stale_catalog(const TransactionPtr& txn);
  void fail_transaction(const TransactionPtr& txn);
  void finish_transaction(const TransactionPtr& txn, txn::TxnState state);

  /// Hands the worker's claim back, parking the transaction as waiting. A
  /// pending wake re-readies it instead; a deferred victim abort runs now.
  void enter_wait(const TransactionPtr& txn);

  /// Hands the worker's claim back, re-queueing the transaction. A deferred
  /// victim abort runs now instead.
  void requeue(const TransactionPtr& txn);

  /// The one claim-handback sequence both of the above go through: consume
  /// a parked victim abort (claim retained, abort runs), else release the
  /// claim and park (`park`, unless a wake overtook us) or re-queue.
  void hand_back_claim(const TransactionPtr& txn, bool park);

  /// Blocks until every site in `expected` answered (txn, op, attempt) or
  /// the response timeout elapsed. Returns the replies collected.
  std::map<SiteId, net::OperationResult> await_responses(
      lock::TxnId txn, std::uint32_t op_index, std::uint32_t attempt,
      const std::set<SiteId>& expected);

  /// Blocks for commit/abort acks from `expected`. Returns site -> ok.
  std::map<SiteId, bool> await_acks(lock::TxnId txn,
                                    const std::set<SiteId>& expected,
                                    bool commit);

  /// Blocks until every serving site answered the snapshot read or the
  /// response timeout elapsed. Returns the replies collected.
  std::map<SiteId, net::SnapshotReadReply> await_snapshot_replies(
      lock::TxnId txn, const std::set<SiteId>& expected);

  SiteContext& ctx_;
};

}  // namespace dtx::core
