// Shared state of one DTX site engine. The Site facade owns exactly one
// SiteContext; the Coordinator worker pool (Alg. 1), the Participant
// executors (Alg. 2) and the dispatcher all operate on it.
//
// Scheduler-state invariant: an uncompleted transaction coordinated here is
// in exactly one of
//   ready      — queued for a coordinator worker,
//   waiting    — parked on a lock conflict (woken by WakeTxn / the retry
//                backstop),
//   executing  — claimed by one coordinator worker for one operation.
// Transitions happen under coord_mutex, which is what makes a *pool* of
// coordinator workers safe: no two workers can claim the same transaction,
// and victim aborts for an executing transaction are parked in
// deferred_victims until its worker hands the claim back.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "dtx/catalog.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/deadlock_detector.hpp"
#include "dtx/lock_manager.hpp"
#include "net/sim_network.hpp"
#include "query/plan_cache.hpp"
#include "storage/storage.hpp"
#include "txn/transaction.hpp"
#include "util/histogram.hpp"

namespace dtx::core {

/// Microseconds since the steady-clock epoch — the shared timebase of
/// transaction ids (Site::next_txn_id) and response-time accounting
/// (Coordinator::finish_transaction). One helper so the two can't drift.
inline std::uint64_t steady_now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SiteOptions {
  SiteId id = 0;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;
  /// Coordinator (Alg. 1) worker threads pulling ready transactions from the
  /// shared queue. 1 = the paper's single scheduler loop, preserved
  /// bit-for-bit; >1 keeps several local transactions in flight at once.
  std::size_t coordinator_workers = 1;
  /// Participant (Alg. 2) executor threads. Safe at any count: the
  /// coordinator's await barriers order every per-transaction message pair.
  std::size_t participant_workers = 1;
  /// Shards of the site lock table (1 = single-monitor behavior).
  std::size_t lock_shards = 1;
  /// Site plan cache: compiled operations shared across transactions and
  /// workers (participant executes + the coordinator's local path). 0
  /// disables caching — every execution compiles a private plan, the
  /// parse-per-execute baseline of bench/abl_plan_cache.
  std::size_t plan_cache_capacity = 1024;
  /// Independently-locked LRU shards of the plan cache.
  std::size_t plan_cache_shards = 8;
  /// Distributed deadlock detection period (Alg. 4 cadence).
  std::chrono::microseconds detect_period{20'000};
  /// Probe reply collection timeout.
  std::chrono::microseconds detect_reply_timeout{200'000};
  /// Fallback retry interval for waiting transactions (wake messages are
  /// the fast path; this is the lost-wakeup backstop).
  std::chrono::microseconds retry_interval{50'000};
  /// Aborts a transaction whose operations entered wait mode more than
  /// this many times (txn::AbortReason::kLockWaitExhausted) instead of
  /// letting it wait forever. 0 = unlimited (the paper's behavior).
  std::uint32_t max_wait_episodes = 0;
  /// How long the coordinator waits for participant replies / acks before
  /// treating the operation as failed.
  std::chrono::microseconds response_timeout{10'000'000};
  /// Mailbox / queue poll granularity.
  std::chrono::microseconds poll_interval{2'000};
};

struct SiteStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t failed = 0;
  /// Deadlocks this site resolved: victim aborts executed by this
  /// coordinator (distributed cycles) + local-cycle aborts.
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t distributed_cycles_found = 0;
  std::uint64_t wait_episodes = 0;
  std::uint64_t remote_ops_processed = 0;
  LockManagerStats lock_manager;
  /// Site plan-cache counters (hits / misses / evictions / entries).
  query::PlanCacheStats plan_cache;
  /// Client-observed response time of every transaction coordinated here
  /// (committed and aborted), recorded at completion.
  util::Histogram response_ms;
};

struct SiteContext {
  using Clock = std::chrono::steady_clock;

  SiteContext(SiteOptions opts, net::SimNetwork& net, const Catalog& cat,
              storage::StorageBackend& store)
      : options(opts),
        network(net),
        mailbox(net.register_site(opts.id)),
        catalog(cat),
        data(store),
        locks(opts.protocol, data, opts.lock_shards),
        plans(opts.plan_cache_capacity, opts.plan_cache_shards),
        detector(opts.detect_period, opts.detect_reply_timeout) {}

  SiteContext(const SiteContext&) = delete;
  SiteContext& operator=(const SiteContext&) = delete;

  SiteOptions options;
  net::SimNetwork& network;
  net::Mailbox& mailbox;
  const Catalog& catalog;
  DataManager data;
  LockManager locks;
  /// Compiled-plan cache shared by the participant executors and the
  /// coordinator's local-execution path (internally synchronized).
  query::PlanCache plans;
  DeadlockDetector detector;

  std::atomic<bool> running{false};

  // --- scheduler state (coord_mutex) -----------------------------------------
  mutable std::mutex coord_mutex;
  std::condition_variable coord_cv;
  std::deque<std::shared_ptr<txn::Transaction>> ready;
  std::map<lock::TxnId, std::shared_ptr<txn::Transaction>> transactions;
  std::map<lock::TxnId, Clock::time_point> waiting;
  std::set<lock::TxnId> pending_wakes;
  std::deque<lock::TxnId> victim_aborts;
  /// Transactions currently claimed by a coordinator worker.
  std::set<lock::TxnId> executing;
  /// Victim aborts parked because the transaction was executing.
  std::set<lock::TxnId> deferred_victims;
  std::uint64_t last_begin_micros = 0;

  // --- participant work queue (part_mutex) -----------------------------------
  std::mutex part_mutex;
  std::condition_variable part_cv;
  std::deque<net::Message> participant_queue;
  /// Transactions a participant worker is currently serving. Workers skip
  /// queued messages of active transactions, so per-transaction requests
  /// are processed serially and in arrival order even with a pool —
  /// without this, a stale UndoOperation could undo a newer attempt, or an
  /// AbortRequest could release locks while an ExecuteOperation of the
  /// same transaction is still acquiring them (leaking locks forever).
  std::set<lock::TxnId> participant_active;

  // --- remote-operation response collection (resp_mutex) ---------------------
  struct ResponseSlot {
    std::uint32_t attempt = 0;
    std::map<SiteId, net::OperationResult> replies;
  };
  std::mutex resp_mutex;
  std::condition_variable resp_cv;
  std::map<std::pair<lock::TxnId, std::uint32_t>, ResponseSlot> responses;

  // --- commit / abort ack collection (ack_mutex) ------------------------------
  struct AckSlot {
    bool commit = false;
    std::map<SiteId, bool> acks;
  };
  std::mutex ack_mutex;
  std::condition_variable ack_cv;
  std::map<lock::TxnId, AckSlot> acks;

  // --- stats (stats_mutex) ----------------------------------------------------
  mutable std::mutex stats_mutex;
  SiteStats stats;

  // --- messaging helpers ------------------------------------------------------
  void send(SiteId to, net::Payload payload) {
    network.send(net::Message{options.id, to, std::move(payload)});
  }

  void send_wakes(const std::vector<WakeNotice>& wakes) {
    for (const WakeNotice& wake : wakes) {
      send(wake.coordinator, net::WakeTxn{wake.waiter});
    }
  }
};

}  // namespace dtx::core
