// Shared state of one DTX site engine. The Site facade owns exactly one
// SiteContext; the Coordinator worker pool (Alg. 1), the Participant
// executors (Alg. 2) and the dispatcher all operate on it.
//
// Scheduler-state invariant: an uncompleted transaction coordinated here is
// in exactly one of
//   ready      — queued for a coordinator worker,
//   waiting    — parked on a lock conflict (woken by WakeTxn / the retry
//                backstop),
//   executing  — claimed by one coordinator worker for one operation.
// Transitions happen under coord_mutex, which is what makes a *pool* of
// coordinator workers safe: no two workers can claim the same transaction,
// and victim aborts for an executing transaction are parked in
// deferred_victims until its worker hands the claim back.
//
// Crash/recovery: the engine components that a crash wipes — DataManager,
// LockManager, PlanCache — live behind owning pointers so Site::restart()
// can rebuild them from the storage backend (rebuild_engine()); everything
// else (stats, txn-id clock, detector) survives the way a monitoring
// sidecar would.
#pragma once

#include <atomic>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "dtx/catalog.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/deadlock_detector.hpp"
#include "dtx/lock_manager.hpp"
#include "dtx/snapshot_store.hpp"
#include "net/network.hpp"
#include "query/plan_cache.hpp"
#include "storage/storage.hpp"
#include "txn/transaction.hpp"
#include "util/histogram.hpp"
#include "util/sync.hpp"

namespace dtx::core {

/// Microseconds since the steady-clock epoch — the shared timebase of
/// transaction ids (Site::next_txn_id) and response-time accounting
/// (Coordinator::finish_transaction). One helper so the two can't drift.
inline std::uint64_t steady_now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct SiteOptions {
  SiteId id = 0;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;
  /// Coordinator (Alg. 1) worker threads pulling ready transactions from the
  /// shared queue. 1 = the paper's single scheduler loop, preserved
  /// bit-for-bit; >1 keeps several local transactions in flight at once.
  std::size_t coordinator_workers = 1;
  /// Participant (Alg. 2) executor threads. Safe at any count: the
  /// coordinator's await barriers order every per-transaction message pair.
  std::size_t participant_workers = 1;
  /// Shards of the site lock table (1 = single-monitor behavior).
  std::size_t lock_shards = 1;
  /// Site plan cache: compiled operations shared across transactions and
  /// workers (participant executes + the coordinator's local path). 0
  /// disables caching — every execution compiles a private plan, the
  /// parse-per-execute baseline of bench/abl_plan_cache.
  std::size_t plan_cache_capacity = 1024;
  /// Independently-locked LRU shards of the plan cache.
  std::size_t plan_cache_shards = 8;
  /// Redo-log checkpoint policy (dtx/wal.hpp): compact a document's log
  /// into a fresh snapshot after this many logged update operations. 1 ≈
  /// the historical snapshot-per-commit durability (the O(document) bench
  /// baseline); 0 disables the op-count trigger.
  std::size_t checkpoint_interval = 64;
  /// ... or after this many appended log bytes (0 disables; both 0 =
  /// never compact, restart replays the whole log).
  std::size_t checkpoint_log_bytes = 1 << 20;
  /// Distributed deadlock detection period (Alg. 4 cadence).
  std::chrono::microseconds detect_period{20'000};
  /// Probe reply collection timeout.
  std::chrono::microseconds detect_reply_timeout{200'000};
  /// Fallback retry interval for waiting transactions (wake messages are
  /// the fast path; this is the lost-wakeup backstop).
  std::chrono::microseconds retry_interval{50'000};
  /// Aborts a transaction whose operations entered wait mode more than
  /// this many times (txn::AbortReason::kLockWaitExhausted) instead of
  /// letting it wait forever. 0 = unlimited (the paper's behavior).
  std::uint32_t max_wait_episodes = 0;
  /// How long the coordinator waits for participant replies / acks before
  /// treating the operation as failed.
  std::chrono::microseconds response_timeout{10'000'000};
  /// Commit fan-out rounds: the first CommitRequest broadcast plus up to
  /// (commit_ack_rounds - 1) resends to sites that have not acked, each
  /// waiting response_timeout. Rides a commit decision through partitions
  /// shorter than the combined window.
  std::uint32_t commit_ack_rounds = 3;
  /// Presumed-abort orphan sweep: a remote transaction holding state here
  /// that has been silent this long gets a TxnStatusRequest to its
  /// coordinator; after orphan_query_limit unanswered probes its effects
  /// are rolled back (undo log) and its locks released. 0 disables the
  /// sweep (the seed behavior: orphans hold locks forever).
  std::chrono::microseconds orphan_txn_timeout{30'000'000};
  /// Unanswered status probes before presuming abort.
  std::uint32_t orphan_query_limit = 3;
  /// MVCC snapshot reads (dtx/snapshot_store.hpp): read-only transactions
  /// are served from versioned document snapshots — zero locks, zero
  /// wait-for entries, no 2PC round. false = the locked baseline (read-only
  /// transactions take the normal Alg. 1 path); the ablation bench flips
  /// this.
  bool snapshot_reads = true;
  /// Per-document version-chain bound: how many committed deltas stay in
  /// memory for advancing cached snapshot trees (0 = unlimited). Targets
  /// that age out fall back to wal::materialize_at.
  std::size_t snapshot_chain_depth = 32;
  /// Byte bound on the total delta text of one document's chain
  /// (0 = unlimited).
  std::size_t snapshot_chain_bytes = 1 << 22;
  /// Mailbox / queue poll granularity.
  std::chrono::microseconds poll_interval{2'000};
  /// Placement policy + replication factor this site uses when it *drives*
  /// a membership change (seeding a join, computing its own departure).
  /// Every member of one cluster must agree on these — the rebalance is
  /// deterministic, but only the driving site computes it.
  placement::PlacementPolicy placement_policy =
      placement::PlacementPolicy::kHashRing;
  /// Replicas per document after a rebalance (0 = full replication).
  std::size_t replication = 0;
};

struct SiteStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t failed = 0;
  /// Deadlocks this site resolved: victim aborts executed by this
  /// coordinator (distributed cycles) + local-cycle aborts.
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t distributed_cycles_found = 0;
  std::uint64_t wait_episodes = 0;
  std::uint64_t remote_ops_processed = 0;
  /// Crash-recovery accounting: orphaned remote transactions resolved by
  /// the presumed-abort sweep (committed after a status reply / rolled
  /// back), commit-request resends, and completed restarts of this site.
  std::uint64_t orphans_committed = 0;
  std::uint64_t orphans_aborted = 0;
  std::uint64_t commit_resends = 0;
  std::uint64_t restarts = 0;
  /// Aborts the coordinator could not classify (defensive fallback in
  /// finish_transaction; audited to be unreachable — see the regression
  /// test in chaos_test.cpp).
  std::uint64_t unclassified_aborts = 0;
  /// Read-only transactions this coordinator served via the MVCC
  /// snapshot-read path (they also count in `committed`).
  std::uint64_t snapshot_txns = 0;
  /// Placement & membership (src/placement): the installed catalog epoch
  /// (snapshot, not a counter), requests rejected for epoch mismatch or a
  /// still-importing replica, and replica migrations adopted here.
  std::uint64_t catalog_epoch = 0;
  std::uint64_t stale_catalog_aborts = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_bytes = 0;
  LockManagerStats lock_manager;
  /// Site plan-cache counters (hits / misses / evictions / entries).
  query::PlanCacheStats plan_cache;
  /// MVCC snapshot-store counters (views served, chain hits vs
  /// materialize fallbacks, chain memory high-water).
  SnapshotStats snapshots;
  /// Client-observed response time of every transaction coordinated here
  /// (committed and aborted), recorded at completion.
  util::Histogram response_ms;
};

struct SiteContext {
  using Clock = std::chrono::steady_clock;

  SiteContext(SiteOptions opts, net::Network& net, Catalog& cat,
              storage::StorageBackend& backing_store)
      : options(opts),
        network(net),
        mailbox(net.register_site(opts.id)),
        catalog(cat),
        store(backing_store),
        detector(opts.detect_period, opts.detect_reply_timeout) {
    rebuild_engine();
  }

  SiteContext(const SiteContext&) = delete;
  SiteContext& operator=(const SiteContext&) = delete;

  SiteOptions options;
  net::Network& network;
  net::Mailbox& mailbox;
  /// This site's own catalog replica: updated by CatalogUpdate messages
  /// (membership changes), read by every routing / serving decision.
  Catalog& catalog;
  storage::StorageBackend& store;

  /// Wipes and reconstructs the crash-volatile engine components. Only
  /// valid while no worker thread is running (construction, restart). The
  /// SnapshotStore is built first: DataManager::load_all registers every
  /// recovered document into it and persist publishes committed deltas.
  void rebuild_engine() {
    snaps_ = std::make_unique<SnapshotStore>(
        store, options.snapshot_reads, options.snapshot_chain_depth,
        options.snapshot_chain_bytes);
    data_ = std::make_unique<DataManager>(store, options.checkpoint_interval,
                                          options.checkpoint_log_bytes,
                                          snaps_.get());
    locks_ = std::make_unique<LockManager>(options.protocol, *data_,
                                           options.lock_shards);
    plans_ = std::make_unique<query::PlanCache>(options.plan_cache_capacity,
                                                options.plan_cache_shards);
  }

  [[nodiscard]] DataManager& data() noexcept { return *data_; }
  [[nodiscard]] LockManager& locks() noexcept { return *locks_; }
  [[nodiscard]] query::PlanCache& plans() noexcept { return *plans_; }
  [[nodiscard]] SnapshotStore& snaps() noexcept { return *snaps_; }

  DeadlockDetector detector;

  std::atomic<bool> running{false};

  // --- scheduler state (coord_mutex) -----------------------------------------
  mutable sync::Mutex coord_mutex{sync::LockRank::kSiteCoordinator};
  sync::CondVar coord_cv;
  std::deque<std::shared_ptr<txn::Transaction>> ready
      DTX_GUARDED_BY(coord_mutex);
  std::map<lock::TxnId, std::shared_ptr<txn::Transaction>> transactions
      DTX_GUARDED_BY(coord_mutex);
  std::map<lock::TxnId, Clock::time_point> waiting
      DTX_GUARDED_BY(coord_mutex);
  std::set<lock::TxnId> pending_wakes DTX_GUARDED_BY(coord_mutex);
  std::deque<lock::TxnId> victim_aborts DTX_GUARDED_BY(coord_mutex);
  /// Transactions currently claimed by a coordinator worker.
  std::set<lock::TxnId> executing DTX_GUARDED_BY(coord_mutex);
  /// Victim aborts parked because the transaction was executing.
  std::set<lock::TxnId> deferred_victims DTX_GUARDED_BY(coord_mutex);
  std::uint64_t last_begin_micros DTX_GUARDED_BY(coord_mutex) = 0;

  /// Recent terminal outcomes of transactions coordinated here, answering
  /// presumed-abort status probes (TxnStatusRequest) from participants that
  /// lost contact mid-transaction. Bounded FIFO. Only *commit* decisions
  /// are durable (the presumed-abort commit log below); everything else
  /// dies with a crash, which absence-reads as aborted — the contract.
  std::map<lock::TxnId, bool> recent_outcomes
      DTX_GUARDED_BY(coord_mutex);  // txn -> committed
  std::deque<lock::TxnId> outcome_fifo DTX_GUARDED_BY(coord_mutex);
  static constexpr std::size_t kOutcomeCacheCapacity = 8192;

  void record_outcome(lock::TxnId txn, bool committed_outcome)
      DTX_REQUIRES(coord_mutex) {
    if (recent_outcomes.emplace(txn, committed_outcome).second) {
      outcome_fifo.push_back(txn);
      while (outcome_fifo.size() > kOutcomeCacheCapacity) {
        recent_outcomes.erase(outcome_fifo.front());
        outcome_fifo.pop_front();
      }
    }
  }

  /// Presumed-abort commit log: storage key holding one line per committed
  /// distributed transaction. The coordinator appends *before* the first
  /// CommitRequest leaves — without this, a coordinator crash inside the
  /// commit fan-out would answer later status probes kUnknown and a replica
  /// that already persisted would diverge from one that presumed abort.
  static constexpr const char* kCommitLogKey = "~outcomes";

  /// Durable catalog record: the text form of the newest installed epoch
  /// (CatalogEpoch::to_text), written at every install. A restarting site
  /// resumes under the epoch it had accepted — a kill -9 mid-migration
  /// cannot roll the membership view back to a pre-flip generation.
  static constexpr const char* kCatalogKey = "~catalog";

  /// Durably records a commit decision — one appended line, O(1) in the
  /// log size.
  util::Status append_commit_record(lock::TxnId txn)
      DTX_REQUIRES(coord_mutex) {
    std::string line = std::to_string(txn);
    line += '\n';
    return store.append(kCommitLogKey, line);
  }

  /// Reloads the commit log into the outcome cache (restart, before the
  /// worker threads spawn — the mutex is uncontended and taken only for
  /// the annotations' sake). Only the newest kOutcomeCacheCapacity records
  /// survive the FIFO, matching what the cache would have held; older
  /// orphans read kUnknown = presumed abort.
  void load_commit_log() {
    auto text = store.load(kCommitLogKey);
    if (!text) return;
    sync::MutexLock lock(coord_mutex);
    const std::string& log = text.value();
    std::size_t begin = 0;
    while (begin < log.size()) {
      const std::size_t end = log.find('\n', begin);
      if (end == std::string::npos) break;
      const lock::TxnId txn = std::strtoull(log.c_str() + begin, nullptr, 10);
      if (txn != 0) record_outcome(txn, /*committed=*/true);
      begin = end + 1;
    }
  }

  // --- participant work queue (part_mutex) -----------------------------------
  sync::Mutex part_mutex{sync::LockRank::kSiteParticipant};
  sync::CondVar part_cv;
  std::deque<net::Message> participant_queue DTX_GUARDED_BY(part_mutex);
  /// Transactions a participant worker is currently serving. Workers skip
  /// queued messages of active transactions, so per-transaction requests
  /// are processed serially and in arrival order even with a pool —
  /// without this, a stale UndoOperation could undo a newer attempt, or an
  /// AbortRequest could release locks while an ExecuteOperation of the
  /// same transaction is still acquiring them (leaking locks forever).
  std::set<lock::TxnId> participant_active DTX_GUARDED_BY(part_mutex);

  /// Participant-side record of every remote transaction with state at
  /// this site: who coordinates it, when it was last heard from (the
  /// presumed-abort sweep input), how many status probes went unanswered,
  /// and the last reply per operation so duplicated ExecuteOperations are
  /// answered from cache instead of re-executing (exactly-once effects
  /// under at-least-once delivery).
  struct RemoteTxn {
    SiteId coordinator = 0;
    Clock::time_point last_seen{};
    std::uint32_t unanswered_probes = 0;
    /// Catalog epoch the transaction was routed under (its first
    /// ExecuteOperation here) — the catalog drain (CatalogAck) waits until
    /// no remote transaction of an older epoch still has state at this site.
    std::uint64_t epoch = 0;
    std::map<std::uint32_t, net::OperationResult> last_replies;
  };
  std::map<lock::TxnId, RemoteTxn> remote_txns DTX_GUARDED_BY(part_mutex);

  /// Importing fence: documents this site hosts
  /// under the current epoch but whose replica has not been adopted yet
  /// (awaiting MigrateDoc / a recovery pull). Participant executes,
  /// snapshot serving and the coordinator's local path reject fenced
  /// documents with the retryable kStaleCatalog until adoption unfences.
  std::set<std::string> importing_docs DTX_GUARDED_BY(part_mutex);

  [[nodiscard]] bool is_importing(const std::string& doc) {
    sync::MutexLock lock(part_mutex);
    return importing_docs.count(doc) != 0;
  }

  // --- remote-operation response collection (resp_mutex) ---------------------
  struct ResponseSlot {
    std::uint32_t attempt = 0;
    std::map<SiteId, net::OperationResult> replies;
  };
  sync::Mutex resp_mutex{sync::LockRank::kSiteResponses};
  sync::CondVar resp_cv;
  std::map<std::pair<lock::TxnId, std::uint32_t>, ResponseSlot> responses
      DTX_GUARDED_BY(resp_mutex);
  /// Snapshot-read reply collection (also resp_mutex / resp_cv): one slot
  /// per in-flight read-only transaction, filled by the dispatcher with
  /// each serving site's SnapshotReadReply.
  std::map<lock::TxnId, std::map<SiteId, net::SnapshotReadReply>>
      snapshot_replies DTX_GUARDED_BY(resp_mutex);

  // --- commit / abort ack collection (ack_mutex) ------------------------------
  struct AckSlot {
    bool commit = false;
    std::map<SiteId, bool> acks;
  };
  sync::Mutex ack_mutex{sync::LockRank::kSiteAcks};
  sync::CondVar ack_cv;
  std::map<lock::TxnId, AckSlot> acks DTX_GUARDED_BY(ack_mutex);

  // --- stats (stats_mutex) ----------------------------------------------------
  mutable sync::Mutex stats_mutex{sync::LockRank::kSiteStats};
  SiteStats stats DTX_GUARDED_BY(stats_mutex);

  // --- messaging helpers ------------------------------------------------------
  void send(SiteId to, net::Payload payload) {
    network.send(net::Message{options.id, to, std::move(payload)});
  }

  void send_wakes(const std::vector<WakeNotice>& wakes) {
    for (const WakeNotice& wake : wakes) {
      send(wake.coordinator, net::WakeTxn{wake.waiter});
    }
  }

 private:
  std::unique_ptr<SnapshotStore> snaps_;
  std::unique_ptr<DataManager> data_;
  std::unique_ptr<LockManager> locks_;
  std::unique_ptr<query::PlanCache> plans_;
};

}  // namespace dtx::core
