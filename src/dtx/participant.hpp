// Participant (paper Alg. 2): executes remote operations and the commit /
// abort / fail messages of distributed transactions ("this procedure is also
// common to the coordinator" — every site runs both roles). The Site runs
// `SiteOptions::participant_workers` threads over one shared Participant.
// Workers only pick up a request when no other worker is serving the same
// transaction (SiteContext::participant_active), so per-transaction
// requests are processed serially and in arrival order — the ordering the
// seed's single participant thread provided; requests of *different*
// transactions run concurrently.
#pragma once

#include "dtx/site_context.hpp"

namespace dtx::core {

class Participant {
 public:
  explicit Participant(SiteContext& ctx) : ctx_(ctx) {}

  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  /// Worker body: pops the participant queue and serves requests. Any
  /// number of threads may run it concurrently.
  void run();

 private:
  void handle_execute(const net::ExecuteOperation& request);
  /// MVCC serving path: evaluates a read-only transaction's queries
  /// against this site's versioned snapshots. Stateless single round — no
  /// locks, no undo logs, no remote-transaction tracking, so the orphan
  /// sweep and the commit/abort fan-out never see these transactions.
  void handle_snapshot_read(const net::SnapshotReadRequest& request);
  void handle_undo(const net::UndoOperation& request);
  void handle_commit(const net::CommitRequest& request, SiteId from);
  void handle_abort(const net::AbortRequest& request, SiteId from);
  void handle_fail(const net::FailNotice& request);
  /// Presumed-abort resolution of an orphaned remote transaction: commit
  /// it (the coordinator decided commit and the CommitRequest was lost) or
  /// roll it back via the undo log (aborted / coordinator lost its state).
  void handle_status_reply(const net::TxnStatusReply& reply);

  /// Catalog anti-entropy, piggybacked on epoch-mismatched requests: a
  /// peer behind this site's epoch is sent the current catalog
  /// (CatalogUpdate); a peer ahead is asked for its catalog
  /// (JoinRequest{self} — answered with a JoinReply by the idempotent
  /// already-member path). No-op when the epochs agree.
  void gossip_catalog(SiteId peer, std::uint64_t peer_epoch);

  /// Refreshes the orphan-sweep clock of a tracked remote transaction.
  void touch_remote_txn(lock::TxnId txn);
  /// Drops the tracking record (transaction terminated at this site).
  void forget_remote_txn(lock::TxnId txn);

  SiteContext& ctx_;
};

}  // namespace dtx::core
