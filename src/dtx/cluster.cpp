#include "dtx/cluster.hpp"

#include "storage/file_store.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), network_(options_.network) {
  stores_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(i))));
    }
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::load_document(const std::string& name, const std::string& xml,
                              const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "load documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
  }
  Status placed = catalog_.add_document(name, sites);
  if (!placed) return placed;
  for (SiteId site : sites) {
    Status stored = stores_[site]->store(name, xml);
    if (!stored) return stored;
  }
  return Status::ok();
}

Status Cluster::declare_document(const std::string& name,
                                 const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "declare documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
    if (!stores_[site]->exists(name)) {
      return Status(Code::kNotFound, "document '" + name +
                                         "' not stored at site " +
                                         std::to_string(site));
    }
  }
  return catalog_.add_document(name, sites);
}

Status Cluster::start() {
  if (started_) return Status::ok();
  sites_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    SiteOptions site_options = options_.site;
    site_options.id = static_cast<SiteId>(i);
    site_options.protocol = options_.protocol;
    sites_.push_back(std::make_unique<Site>(site_options, network_, catalog_,
                                            *stores_[i]));
  }
  for (auto& site : sites_) {
    Status status = site->start();
    if (!status) return status;
  }
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  for (auto& site : sites_) {
    if (site != nullptr) site->stop();
  }
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit(
    SiteId site, std::vector<txn::Operation> ops) {
  if (!started_) return Status(Code::kInternal, "cluster not started");
  if (site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return sites_[site]->submit(std::move(ops));
}

Result<txn::TxnResult> Cluster::execute(SiteId site,
                                        std::vector<txn::Operation> ops) {
  auto handle = submit(site, std::move(ops));
  if (!handle) return handle.status();
  return handle.value()->await();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return submit(site, std::move(ops));
}

Result<txn::TxnResult> Cluster::execute_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  auto handle = submit_text(site, op_texts);
  if (!handle) return handle.status();
  return handle.value()->await();
}

ClusterStats Cluster::stats() {
  ClusterStats out;
  for (auto& site : sites_) {
    if (site == nullptr) continue;
    const SiteStats s = site->stats();
    out.committed += s.committed;
    out.aborted += s.aborted;
    out.failed += s.failed;
    out.deadlock_aborts += s.deadlock_aborts;
    out.wait_episodes += s.wait_episodes;
    out.lock_acquisitions += s.lock_manager.lock_acquisitions;
    out.lock_conflicts += s.lock_manager.conflicts;
    out.remote_ops += s.remote_ops_processed;
    out.plan_cache.merge(s.plan_cache);
    out.response_ms.merge(s.response_ms);
  }
  out.network = network_.stats();
  return out;
}

}  // namespace dtx::core
