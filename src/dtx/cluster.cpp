#include "dtx/cluster.hpp"

#include <algorithm>
#include <optional>

#include "dtx/wal.hpp"
#include "storage/file_store.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), network_(options_.network) {
  stores_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(i))));
    }
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::load_document(const std::string& name, const std::string& xml,
                              const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "load documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
  }
  Status placed = catalog_.add_document(name, sites);
  if (!placed) return placed;
  for (SiteId site : sites) {
    Status stored = stores_[site]->store(name, xml);
    if (!stored) return stored;
  }
  return Status::ok();
}

Status Cluster::declare_document(const std::string& name,
                                 const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "declare documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
    if (!stores_[site]->exists(name)) {
      return Status(Code::kNotFound, "document '" + name +
                                         "' not stored at site " +
                                         std::to_string(site));
    }
  }
  return catalog_.add_document(name, sites);
}

Status Cluster::start() {
  if (started_) return Status::ok();
  sites_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    SiteOptions site_options = options_.site;
    site_options.id = static_cast<SiteId>(i);
    site_options.protocol = options_.protocol;
    sites_.push_back(std::make_unique<Site>(site_options, network_, catalog_,
                                            *stores_[i]));
  }
  for (auto& site : sites_) {
    Status status = site->start();
    if (!status) return status;
  }
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  for (auto& site : sites_) {
    if (site != nullptr) site->stop();
  }
}

Status Cluster::crash_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  sites_[site]->crash();
  return Status::ok();
}

Status Cluster::restart_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (sites_[site]->running()) {
    // Refuse BEFORE the recovery sync below: overwriting a running site's
    // store would race its own persists and rewind fresher state.
    return Status(Code::kInternal, "site is running");
  }
  // Recovery sync: for every document this site hosts, catch the local
  // redo log up to the freshest peer replica. A record's version number
  // is a per-replica position (commits of non-conflicting transactions
  // may land in different orders at different replicas), so replicas are
  // compared by committed-transaction-id *set* — checkpoint-marker ids
  // plus tail record ids enumerate exactly which commits a replica
  // holds. The normal path appends the peer records this replica is
  // missing, renumbered onto the local tail — O(missed commits), not
  // O(document); their operations commute with everything already here
  // (conflicting commits are identically ordered everywhere). Only when
  // the freshest peer compacted a missing commit into its snapshot is
  // its whole checkpoint + log adopted. Peer stores are read directly —
  // the in-process stand-in for the state transfer a production restart
  // would perform; backends synchronize per call, and
  // wal::read_durable_doc flags a read that straddled a live peer's
  // checkpoint so it is simply retried.
  for (const std::string& doc : catalog_.documents()) {
    const std::vector<SiteId> hosts = catalog_.sites_of(doc);
    if (std::find(hosts.begin(), hosts.end(), site) == hosts.end()) continue;
    auto local = wal::read_durable_doc(*stores_[site], doc);
    if (!local) return local.status();
    if (local.value().needs_repair) {
      // Drop the crash's torn tail / interrupted-checkpoint leftovers
      // before anything is appended after them.
      Status repaired = wal::repair(*stores_[site], doc, local.value());
      if (!repaired) return repaired;
    }
    std::set<lock::TxnId> local_ids(local.value().checkpoint_ids.begin(),
                                    local.value().checkpoint_ids.end());
    for (const wal::LogEntry& record : local.value().tail) {
      local_ids.insert(record.txn);
    }

    std::optional<wal::DurableDoc> best;
    for (SiteId peer : hosts) {
      if (peer == site) continue;
      util::Result<wal::DurableDoc> state =
          wal::read_durable_doc(*stores_[peer], doc);
      for (int attempt = 0;
           state && !state.value().consistent && attempt < 50; ++attempt) {
        state = wal::read_durable_doc(*stores_[peer], doc);
      }
      if (!state) return state.status();
      if (!state.value().consistent) {
        return Status(Code::kInternal,
                      "recovery sync of '" + doc +
                          "' could not observe a stable replica at site " +
                          std::to_string(peer));
      }
      if (!best.has_value() ||
          state.value().version > best.value().version) {
        best = std::move(state).value();
      }
    }
    if (!best.has_value()) continue;  // unreplicated document

    const bool hidden_missing = [&] {
      for (const lock::TxnId id : best.value().checkpoint_ids) {
        if (local_ids.count(id) == 0) return true;
      }
      return false;
    }();
    if (hidden_missing) {
      // A commit this replica is missing sits inside the peer's compacted
      // snapshot — its record is gone, so adopt checkpoint + log
      // wholesale (regardless of which side counts more commits: the
      // record cannot be recovered any other way). Local tail records
      // whose commit the peer does not hold anywhere are re-appended on
      // top — the marker ids prove the adopted snapshot cannot already
      // contain them, so replaying them is safe, and dropping them would
      // lose a durable commit decision.
      std::set<lock::TxnId> peer_ids(best.value().checkpoint_ids.begin(),
                                     best.value().checkpoint_ids.end());
      std::uint64_t next_version = best.value().version;
      std::string log = best.value().marker_raw;
      for (const wal::LogEntry& record : best.value().tail) {
        log += record.raw;
        peer_ids.insert(record.txn);
      }
      for (const wal::LogEntry& record : local.value().tail) {
        if (peer_ids.count(record.txn) != 0) continue;
        log += wal::encode_record(++next_version, record.txn, record.ops);
      }
      Status stored = stores_[site]->store(doc, best.value().snapshot);
      if (!stored) return stored;
      stored = log.empty() ? stores_[site]->truncate(wal::log_key(doc))
                           : stores_[site]->store(wal::log_key(doc), log);
      if (!stored) return stored;
      full_syncs_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Log-suffix shipping: append the peer records this replica lacks, in
    // peer commit order, renumbered to continue the local tail.
    std::string suffix;
    std::uint64_t next_version = local.value().version;
    for (const wal::LogEntry& record : best.value().tail) {
      if (local_ids.count(record.txn) != 0) continue;
      suffix += wal::encode_record(++next_version, record.txn, record.ops);
    }
    if (suffix.empty()) continue;  // nothing missing (or peer is behind)
    Status appended = stores_[site]->append(wal::log_key(doc), suffix);
    if (!appended) return appended;
    log_suffix_syncs_.fetch_add(1, std::memory_order_relaxed);
  }
  return sites_[site]->restart();
}

bool Cluster::site_running(SiteId site) const {
  return site < sites_.size() && sites_[site] != nullptr &&
         sites_[site]->running();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit(
    SiteId site, std::vector<txn::Operation> ops) {
  if (!started_) return Status(Code::kInternal, "cluster not started");
  if (site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return sites_[site]->submit(std::move(ops));
}

Result<txn::TxnResult> Cluster::execute(SiteId site,
                                        std::vector<txn::Operation> ops) {
  auto handle = submit(site, std::move(ops));
  if (!handle) return handle.status();
  return handle.value()->await();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return submit(site, std::move(ops));
}

Result<txn::TxnResult> Cluster::execute_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  auto handle = submit_text(site, op_texts);
  if (!handle) return handle.status();
  return handle.value()->await();
}

ClusterStats Cluster::stats() {
  ClusterStats out;
  for (auto& site : sites_) {
    if (site == nullptr) continue;
    const SiteStats s = site->stats();
    out.committed += s.committed;
    out.aborted += s.aborted;
    out.failed += s.failed;
    out.deadlock_aborts += s.deadlock_aborts;
    out.wait_episodes += s.wait_episodes;
    out.lock_acquisitions += s.lock_manager.lock_acquisitions;
    out.lock_conflicts += s.lock_manager.conflicts;
    out.remote_ops += s.remote_ops_processed;
    out.orphans_committed += s.orphans_committed;
    out.orphans_aborted += s.orphans_aborted;
    out.commit_resends += s.commit_resends;
    out.restarts += s.restarts;
    out.unclassified_aborts += s.unclassified_aborts;
    out.plan_cache.merge(s.plan_cache);
    out.snapshot_txns += s.snapshot_txns;
    out.snapshots.merge(s.snapshots);
    out.response_ms.merge(s.response_ms);
  }
  out.log_suffix_syncs = log_suffix_syncs_.load(std::memory_order_relaxed);
  out.full_syncs = full_syncs_.load(std::memory_order_relaxed);
  out.network = network_.stats();
  out.faults = network_.fault_stats();
  return out;
}

}  // namespace dtx::core
