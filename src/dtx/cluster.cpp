#include "dtx/cluster.hpp"

#include <algorithm>

#include "storage/file_store.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), network_(options_.network) {
  stores_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(i))));
    }
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::load_document(const std::string& name, const std::string& xml,
                              const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "load documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
  }
  Status placed = catalog_.add_document(name, sites);
  if (!placed) return placed;
  for (SiteId site : sites) {
    Status stored = stores_[site]->store(name, xml);
    if (!stored) return stored;
  }
  return Status::ok();
}

Status Cluster::declare_document(const std::string& name,
                                 const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "declare documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
    if (!stores_[site]->exists(name)) {
      return Status(Code::kNotFound, "document '" + name +
                                         "' not stored at site " +
                                         std::to_string(site));
    }
  }
  return catalog_.add_document(name, sites);
}

Status Cluster::start() {
  if (started_) return Status::ok();
  sites_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    SiteOptions site_options = options_.site;
    site_options.id = static_cast<SiteId>(i);
    site_options.protocol = options_.protocol;
    sites_.push_back(std::make_unique<Site>(site_options, network_, catalog_,
                                            *stores_[i]));
  }
  for (auto& site : sites_) {
    Status status = site->start();
    if (!status) return status;
  }
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  for (auto& site : sites_) {
    if (site != nullptr) site->stop();
  }
}

Status Cluster::crash_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  sites_[site]->crash();
  return Status::ok();
}

Status Cluster::restart_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (sites_[site]->running()) {
    // Refuse BEFORE the recovery sync below: overwriting a running site's
    // store would race its own persists and rewind fresher state.
    return Status(Code::kInternal, "site is running");
  }
  // Recovery sync: for every document this site hosts, adopt the bytes of
  // the replica with the highest commit version. Commits are serialized
  // per document by strict 2PL identically at every replica, so "highest
  // version" is a total order and equal versions mean equal bytes. Peer
  // stores are read directly — the in-process stand-in for the state
  // transfer (or shared storage) a production restart would perform before
  // rejoining; backends synchronize themselves, so concurrent commits at
  // live peers are safe.
  for (const std::string& doc : catalog_.documents()) {
    const std::vector<SiteId> hosts = catalog_.sites_of(doc);
    if (std::find(hosts.begin(), hosts.end(), site) == hosts.end()) continue;
    const std::uint64_t local_version =
        DataManager::stored_version(*stores_[site], doc);
    std::uint64_t best_version = local_version;
    SiteId best_site = site;
    for (SiteId peer : hosts) {
      if (peer == site) continue;
      const std::uint64_t version =
          DataManager::stored_version(*stores_[peer], doc);
      if (version > best_version) {
        best_version = version;
        best_site = peer;
      }
    }
    if (best_site != site) {
      // The winning peer may be live and mid-commit: verify the stamp's
      // content hash against the loaded bytes so a torn (version, bytes)
      // pair is never adopted — mislabeling v+1 bytes as v would break
      // "equal versions mean equal bytes" for every later sync.
      for (int attempt = 0;; ++attempt) {
        const DataManager::StoredStamp stamp =
            DataManager::stored_stamp(*stores_[best_site], doc);
        auto xml = stores_[best_site]->load(doc);
        if (!xml) return xml.status();
        if (!stamp.has_hash ||
            stamp.hash == DataManager::content_hash(xml.value())) {
          Status stored = stores_[site]->store(doc, xml.value());
          if (!stored) return stored;
          stored = stores_[site]->store(
              DataManager::version_key(doc),
              std::to_string(stamp.version) + " " +
                  std::to_string(DataManager::content_hash(xml.value())));
          if (!stored) return stored;
          break;
        }
        if (attempt >= 50) {
          return Status(Code::kInternal,
                        "recovery sync of '" + doc +
                            "' could not observe a stable peer snapshot");
        }
      }
      continue;
    }
    if (best_site == site && best_version == local_version) {
      // No strictly fresher peer. Still adopt an equal-version peer copy
      // when the bytes differ: this site's snapshot may hold changes of a
      // transaction that was rolled back after the snapshot was taken
      // (a restart adopted a dirty whole-document persist) — at equal
      // commit version the peers' resolved copy is the truth.
      for (SiteId peer : hosts) {
        if (peer == site) continue;
        if (DataManager::stored_version(*stores_[peer], doc) !=
            local_version) {
          continue;
        }
        auto peer_xml = stores_[peer]->load(doc);
        auto local_xml = stores_[site]->load(doc);
        if (peer_xml && local_xml &&
            peer_xml.value() != local_xml.value()) {
          best_site = peer;
        }
        break;  // lowest-id equal-version peer decides, deterministically
      }
      if (best_site == site) continue;
    }
    // Equal-version adoption (quiescent path): stamp with a hash of the
    // adopted bytes so later syncs can verify consistency.
    auto xml = stores_[best_site]->load(doc);
    if (!xml) return xml.status();
    Status stored = stores_[site]->store(doc, xml.value());
    if (!stored) return stored;
    stored = stores_[site]->store(
        DataManager::version_key(doc),
        std::to_string(best_version) + " " +
            std::to_string(DataManager::content_hash(xml.value())));
    if (!stored) return stored;
  }
  return sites_[site]->restart();
}

bool Cluster::site_running(SiteId site) const {
  return site < sites_.size() && sites_[site] != nullptr &&
         sites_[site]->running();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit(
    SiteId site, std::vector<txn::Operation> ops) {
  if (!started_) return Status(Code::kInternal, "cluster not started");
  if (site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return sites_[site]->submit(std::move(ops));
}

Result<txn::TxnResult> Cluster::execute(SiteId site,
                                        std::vector<txn::Operation> ops) {
  auto handle = submit(site, std::move(ops));
  if (!handle) return handle.status();
  return handle.value()->await();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return submit(site, std::move(ops));
}

Result<txn::TxnResult> Cluster::execute_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  auto handle = submit_text(site, op_texts);
  if (!handle) return handle.status();
  return handle.value()->await();
}

ClusterStats Cluster::stats() {
  ClusterStats out;
  for (auto& site : sites_) {
    if (site == nullptr) continue;
    const SiteStats s = site->stats();
    out.committed += s.committed;
    out.aborted += s.aborted;
    out.failed += s.failed;
    out.deadlock_aborts += s.deadlock_aborts;
    out.wait_episodes += s.wait_episodes;
    out.lock_acquisitions += s.lock_manager.lock_acquisitions;
    out.lock_conflicts += s.lock_manager.conflicts;
    out.remote_ops += s.remote_ops_processed;
    out.orphans_committed += s.orphans_committed;
    out.orphans_aborted += s.orphans_aborted;
    out.commit_resends += s.commit_resends;
    out.restarts += s.restarts;
    out.unclassified_aborts += s.unclassified_aborts;
    out.plan_cache.merge(s.plan_cache);
    out.response_ms.merge(s.response_ms);
  }
  out.network = network_.stats();
  out.faults = network_.fault_stats();
  return out;
}

}  // namespace dtx::core
