#include "dtx/cluster.hpp"

#include <algorithm>
#include <thread>

#include "dtx/recovery.hpp"
#include "dtx/wal.hpp"
#include "storage/file_store.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), network_(options_.network) {
  stores_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(i))));
    }
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::load_document(const std::string& name, const std::string& xml,
                              const std::vector<SiteId>& sites) {
  sync::ExclusiveLock lock(membership_mutex_);
  if (started_) {
    return Status(Code::kInternal, "load documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
  }
  Status placed = catalog_.add_document(name, sites);
  if (!placed) return placed;
  for (SiteId site : sites) {
    Status stored = stores_[site]->store(name, xml);
    if (!stored) return stored;
  }
  return Status::ok();
}

Status Cluster::declare_document(const std::string& name,
                                 const std::vector<SiteId>& sites) {
  sync::ExclusiveLock lock(membership_mutex_);
  if (started_) {
    return Status(Code::kInternal, "declare documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
    if (!stores_[site]->exists(name)) {
      return Status(Code::kNotFound, "document '" + name +
                                         "' not stored at site " +
                                         std::to_string(site));
    }
  }
  return catalog_.add_document(name, sites);
}

Status Cluster::start() {
  sync::ExclusiveLock lock(membership_mutex_);
  if (started_) return Status::ok();
  sites_.reserve(options_.site_count);
  catalogs_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    SiteOptions site_options = options_.site;
    site_options.id = static_cast<SiteId>(i);
    site_options.protocol = options_.protocol;
    // Each site evolves its own catalog replica (membership installs),
    // exactly like real daemons — the configured placement is the seed.
    catalogs_.push_back(std::make_unique<Catalog>(catalog_));
    sites_.push_back(std::make_unique<Site>(site_options, network_,
                                            *catalogs_[i], *stores_[i]));
  }
  for (auto& site : sites_) {
    Status status = site->start();
    if (!status) return status;
  }
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  sync::SharedLock lock(membership_mutex_);
  for (auto& site : sites_) {
    if (site != nullptr) site->stop();
  }
}

Site* Cluster::site_ptr(SiteId site) const {
  sync::SharedLock lock(membership_mutex_);
  return site < sites_.size() ? sites_[site].get() : nullptr;
}

Status Cluster::crash_site(SiteId site) {
  Site* target = nullptr;
  {
    sync::SharedLock lock(membership_mutex_);
    if (started_ && site < sites_.size()) target = sites_[site].get();
  }
  if (target == nullptr) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  target->crash();
  return Status::ok();
}

Status Cluster::restart_site(SiteId site) {
  sync::SharedLock lock(membership_mutex_);
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (sites_[site]->running()) {
    // Refuse BEFORE the recovery sync below: overwriting a running site's
    // store would race its own persists and rewind fresher state.
    return Status(Code::kInternal, "site is running");
  }
  // Recovery sync (recovery::sync_document): for every document this site
  // hosts, catch the local redo log up to the freshest peer replica. Peer
  // stores are read directly — the in-process stand-in for the
  // RecoveryPullRequest state transfer a dtxd restart performs over the
  // network; backends synchronize per call, and read_stable retries reads
  // that straddled a live peer's checkpoint. Hosting sets come from the
  // restarting site's own catalog replica (it matches the durable
  // ~catalog the site resumes under); peers without the bytes (already
  // dropped after a placement flip) are skipped.
  recovery::SyncStats sync_stats;
  const Catalog::View view = catalogs_[site]->view();
  for (const std::string& doc : view->documents_at(site)) {
    std::vector<wal::DurableDoc> peers;
    for (SiteId peer : view->sites_of(doc)) {
      if (peer == site || peer >= stores_.size()) continue;
      if (!stores_[peer]->exists(doc)) continue;
      auto state = recovery::read_stable(*stores_[peer], doc);
      if (!state) return state.status();
      peers.push_back(std::move(state).value());
    }
    if (!stores_[site]->exists(doc)) {
      // Never adopted here (a kill mid-join): leave it to the importing
      // fence + pull path after restart.
      continue;
    }
    Status synced =
        recovery::sync_document(*stores_[site], doc, peers, sync_stats);
    if (!synced) return synced;
  }
  log_suffix_syncs_.fetch_add(sync_stats.log_suffix_syncs,
                              std::memory_order_relaxed);
  full_syncs_.fetch_add(sync_stats.full_syncs, std::memory_order_relaxed);
  return sites_[site]->restart();
}

bool Cluster::site_running(SiteId site) const {
  Site* target = site_ptr(site);
  return target != nullptr && target->running();
}

Result<SiteId> Cluster::add_site() {
  // Grow the membership vectors under the exclusive lock, then run the
  // join protocol on raw element pointers — elements never move again, so
  // client threads resolving site ids (shared lock) are unaffected by the
  // wait below.
  SiteId id = 0;
  SiteId seed = 0;
  Site* joiner = nullptr;
  Catalog* joiner_catalog = nullptr;
  storage::StorageBackend* joiner_store = nullptr;
  {
    sync::ExclusiveLock lock(membership_mutex_);
    if (!started_) return Status(Code::kInternal, "cluster not started");
    bool have_seed = false;
    for (std::size_t i = 0; i < sites_.size(); ++i) {
      if (sites_[i] != nullptr && sites_[i]->running()) {
        seed = static_cast<SiteId>(i);
        have_seed = true;
        break;
      }
    }
    if (!have_seed) return Status(Code::kInternal, "no running seed site");

    id = static_cast<SiteId>(sites_.size());
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(id))));
    }
    // The joiner bootstraps from the seed's current view (it is not a member
    // of that epoch — the join flip admits it) and is constructed before the
    // JoinRequest so migration pushes queue in its mailbox.
    catalogs_.push_back(std::make_unique<Catalog>(*catalogs_[seed]));
    SiteOptions site_options = options_.site;
    site_options.id = id;
    site_options.protocol = options_.protocol;
    sites_.push_back(std::make_unique<Site>(site_options, network_,
                                            *catalogs_[id], *stores_[id]));
    joiner = sites_[id].get();
    joiner_catalog = catalogs_[id].get();
    joiner_store = stores_[id].get();
  }

  // Join protocol over the sim LAN, via a transient admin endpoint. The
  // request is re-sent on a timer: the request, the reply, or the seed's
  // own drain round-trips may all be dropped by an injected fault, and a
  // transient refusal (another change in flight, drain timeout) clears
  // once the seed's previous change settles — so keep asking until the
  // deadline.
  const SiteId admin = kAdminIdBase + 2 * id;
  net::Mailbox& mailbox = network_.register_site(admin);
  const auto deadline = net::Mailbox::Clock::now() +
                        8 * options_.site.response_timeout;
  auto next_send = net::Mailbox::Clock::now();
  net::JoinReply reply;
  bool replied = false;
  std::string last_refusal = "join timed out";
  while (!replied && net::Mailbox::Clock::now() < deadline) {
    if (net::Mailbox::Clock::now() >= next_send) {
      next_send = net::Mailbox::Clock::now() + options_.site.response_timeout;
      network_.send(net::Message{admin, seed, net::JoinRequest{id, ""}});
    }
    auto message = mailbox.pop(std::chrono::microseconds(20'000));
    if (!message) continue;
    if (const auto* join = std::get_if<net::JoinReply>(&message->payload)) {
      if (join->ok) {
        reply = *join;
        replied = true;
      } else {
        last_refusal = "join refused: " + join->error;
      }
    }
  }
  if (!replied) return Status(Code::kInternal, last_refusal);
  auto parsed = placement::CatalogEpoch::parse(reply.catalog);
  if (!parsed) return parsed.status();
  joiner_catalog->install(parsed.value());
  catalog_.install(std::move(parsed).value());

  Status status = joiner->start();
  if (!status) return status;

  // Block until every replica the new epoch hosts at the joiner is durable
  // there (adopted from a migration push or its own pull).
  const Catalog::View view = joiner_catalog->view();
  const std::vector<std::string> gained = view->documents_at(id);
  const auto migrated = [&] {
    for (const std::string& doc : gained) {
      if (!joiner_store->exists(doc)) return false;
    }
    return true;
  };
  while (!migrated()) {
    if (net::Mailbox::Clock::now() >= deadline) {
      return Status(Code::kInternal, "replica migration to joiner timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return id;
}

Status Cluster::remove_site(SiteId site) {
  Site* victim = nullptr;
  {
    sync::SharedLock lock(membership_mutex_);
    if (started_ && site < sites_.size()) victim = sites_[site].get();
  }
  if (victim == nullptr) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (!victim->running()) {
    return Status(Code::kInternal, "site is not running");
  }
  // The decommission order is a JoinRequest naming the victim itself; the
  // victim computes the post-departure epoch, broadcasts it, ships every
  // replica it holds to the new hosts and flips decommissioned().
  const SiteId admin = kAdminIdBase + 2 * site + 1;
  (void)network_.register_site(admin);
  const auto deadline = net::Mailbox::Clock::now() +
                        std::chrono::seconds(30) +
                        4 * options_.site.response_timeout;
  // Re-send the order on a timer: the single self-addressed message may be
  // dropped by an injected fault, and begin_leave() is idempotent.
  auto next_send = net::Mailbox::Clock::now();
  while (!victim->decommissioned()) {
    if (net::Mailbox::Clock::now() >= next_send) {
      next_send = net::Mailbox::Clock::now() + options_.site.response_timeout;
      network_.send(net::Message{admin, site, net::JoinRequest{site, ""}});
    }
    if (net::Mailbox::Clock::now() >= deadline) {
      return Status(Code::kInternal, "decommission timed out");
    }
    if (!victim->running()) {
      return Status(Code::kInternal, "site stopped before draining");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  victim->stop();
  // Refresh the admin view from a survivor's replica.
  sync::SharedLock lock(membership_mutex_);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (i != site && sites_[i] != nullptr && sites_[i]->running()) {
      catalog_.install(placement::CatalogEpoch(*catalogs_[i]->view()));
      break;
    }
  }
  return Status::ok();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit(
    SiteId site, std::vector<txn::Operation> ops) {
  Site* target = nullptr;
  {
    sync::SharedLock lock(membership_mutex_);
    if (started_ && site < sites_.size()) target = sites_[site].get();
  }
  if (target == nullptr) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return target->submit(std::move(ops));
}

Result<txn::TxnResult> Cluster::execute(SiteId site,
                                        std::vector<txn::Operation> ops) {
  auto handle = submit(site, std::move(ops));
  if (!handle) return handle.status();
  return handle.value()->await();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return submit(site, std::move(ops));
}

Result<txn::TxnResult> Cluster::execute_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  auto handle = submit_text(site, op_texts);
  if (!handle) return handle.status();
  return handle.value()->await();
}

ClusterStats Cluster::stats() {
  ClusterStats out;
  sync::SharedLock lock(membership_mutex_);
  for (auto& site : sites_) {
    if (site == nullptr) continue;
    const SiteStats s = site->stats();
    out.committed += s.committed;
    out.aborted += s.aborted;
    out.failed += s.failed;
    out.deadlock_aborts += s.deadlock_aborts;
    out.wait_episodes += s.wait_episodes;
    out.lock_acquisitions += s.lock_manager.lock_acquisitions;
    out.lock_conflicts += s.lock_manager.conflicts;
    out.remote_ops += s.remote_ops_processed;
    out.orphans_committed += s.orphans_committed;
    out.orphans_aborted += s.orphans_aborted;
    out.commit_resends += s.commit_resends;
    out.restarts += s.restarts;
    out.unclassified_aborts += s.unclassified_aborts;
    out.catalog_epoch = std::max(out.catalog_epoch, s.catalog_epoch);
    out.stale_catalog_aborts += s.stale_catalog_aborts;
    out.migrations += s.migrations;
    out.migrated_bytes += s.migrated_bytes;
    out.plan_cache.merge(s.plan_cache);
    out.snapshot_txns += s.snapshot_txns;
    out.snapshots.merge(s.snapshots);
    out.response_ms.merge(s.response_ms);
  }
  out.log_suffix_syncs = log_suffix_syncs_.load(std::memory_order_relaxed);
  out.full_syncs = full_syncs_.load(std::memory_order_relaxed);
  out.network = network_.stats();
  out.faults = network_.fault_stats();
  return out;
}

}  // namespace dtx::core
