#include "dtx/cluster.hpp"

#include <algorithm>

#include "dtx/recovery.hpp"
#include "dtx/wal.hpp"
#include "storage/file_store.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)), network_(options_.network) {
  stores_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    if (options_.storage_dir.empty()) {
      stores_.push_back(std::make_unique<storage::MemoryStore>());
    } else {
      stores_.push_back(std::make_unique<storage::FileStore>(
          std::filesystem::path(options_.storage_dir) /
          ("site" + std::to_string(i))));
    }
  }
}

Cluster::~Cluster() { stop(); }

Status Cluster::load_document(const std::string& name, const std::string& xml,
                              const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "load documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
  }
  Status placed = catalog_.add_document(name, sites);
  if (!placed) return placed;
  for (SiteId site : sites) {
    Status stored = stores_[site]->store(name, xml);
    if (!stored) return stored;
  }
  return Status::ok();
}

Status Cluster::declare_document(const std::string& name,
                                 const std::vector<SiteId>& sites) {
  if (started_) {
    return Status(Code::kInternal, "declare documents before start()");
  }
  for (SiteId site : sites) {
    if (site >= stores_.size()) {
      return Status(Code::kInvalidArgument,
                    "site " + std::to_string(site) + " out of range");
    }
    if (!stores_[site]->exists(name)) {
      return Status(Code::kNotFound, "document '" + name +
                                         "' not stored at site " +
                                         std::to_string(site));
    }
  }
  return catalog_.add_document(name, sites);
}

Status Cluster::start() {
  if (started_) return Status::ok();
  sites_.reserve(options_.site_count);
  for (std::size_t i = 0; i < options_.site_count; ++i) {
    SiteOptions site_options = options_.site;
    site_options.id = static_cast<SiteId>(i);
    site_options.protocol = options_.protocol;
    sites_.push_back(std::make_unique<Site>(site_options, network_, catalog_,
                                            *stores_[i]));
  }
  for (auto& site : sites_) {
    Status status = site->start();
    if (!status) return status;
  }
  started_ = true;
  return Status::ok();
}

void Cluster::stop() {
  for (auto& site : sites_) {
    if (site != nullptr) site->stop();
  }
}

Status Cluster::crash_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  sites_[site]->crash();
  return Status::ok();
}

Status Cluster::restart_site(SiteId site) {
  if (!started_ || site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (sites_[site]->running()) {
    // Refuse BEFORE the recovery sync below: overwriting a running site's
    // store would race its own persists and rewind fresher state.
    return Status(Code::kInternal, "site is running");
  }
  // Recovery sync (recovery::sync_document): for every document this site
  // hosts, catch the local redo log up to the freshest peer replica. Peer
  // stores are read directly — the in-process stand-in for the
  // RecoveryPullRequest state transfer a dtxd restart performs over the
  // network; backends synchronize per call, and read_stable retries reads
  // that straddled a live peer's checkpoint.
  recovery::SyncStats sync_stats;
  for (const std::string& doc : catalog_.documents()) {
    const std::vector<SiteId> hosts = catalog_.sites_of(doc);
    if (std::find(hosts.begin(), hosts.end(), site) == hosts.end()) continue;
    std::vector<wal::DurableDoc> peers;
    for (SiteId peer : hosts) {
      if (peer == site) continue;
      auto state = recovery::read_stable(*stores_[peer], doc);
      if (!state) return state.status();
      peers.push_back(std::move(state).value());
    }
    Status synced =
        recovery::sync_document(*stores_[site], doc, peers, sync_stats);
    if (!synced) return synced;
  }
  log_suffix_syncs_.fetch_add(sync_stats.log_suffix_syncs,
                              std::memory_order_relaxed);
  full_syncs_.fetch_add(sync_stats.full_syncs, std::memory_order_relaxed);
  return sites_[site]->restart();
}

bool Cluster::site_running(SiteId site) const {
  return site < sites_.size() && sites_[site] != nullptr &&
         sites_[site]->running();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit(
    SiteId site, std::vector<txn::Operation> ops) {
  if (!started_) return Status(Code::kInternal, "cluster not started");
  if (site >= sites_.size()) {
    return Status(Code::kInvalidArgument,
                  "site " + std::to_string(site) + " out of range");
  }
  if (ops.empty()) {
    return Status(Code::kInvalidArgument,
                  "transaction needs at least one operation");
  }
  return sites_[site]->submit(std::move(ops));
}

Result<txn::TxnResult> Cluster::execute(SiteId site,
                                        std::vector<txn::Operation> ops) {
  auto handle = submit(site, std::move(ops));
  if (!handle) return handle.status();
  return handle.value()->await();
}

Result<std::shared_ptr<txn::Transaction>> Cluster::submit_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  std::vector<txn::Operation> ops;
  ops.reserve(op_texts.size());
  for (const std::string& text : op_texts) {
    auto op = txn::parse_operation(text);
    if (!op) return op.status();
    ops.push_back(std::move(op).value());
  }
  return submit(site, std::move(ops));
}

Result<txn::TxnResult> Cluster::execute_text(
    SiteId site, const std::vector<std::string>& op_texts) {
  auto handle = submit_text(site, op_texts);
  if (!handle) return handle.status();
  return handle.value()->await();
}

ClusterStats Cluster::stats() {
  ClusterStats out;
  for (auto& site : sites_) {
    if (site == nullptr) continue;
    const SiteStats s = site->stats();
    out.committed += s.committed;
    out.aborted += s.aborted;
    out.failed += s.failed;
    out.deadlock_aborts += s.deadlock_aborts;
    out.wait_episodes += s.wait_episodes;
    out.lock_acquisitions += s.lock_manager.lock_acquisitions;
    out.lock_conflicts += s.lock_manager.conflicts;
    out.remote_ops += s.remote_ops_processed;
    out.orphans_committed += s.orphans_committed;
    out.orphans_aborted += s.orphans_aborted;
    out.commit_resends += s.commit_resends;
    out.restarts += s.restarts;
    out.unclassified_aborts += s.unclassified_aborts;
    out.plan_cache.merge(s.plan_cache);
    out.snapshot_txns += s.snapshot_txns;
    out.snapshots.merge(s.snapshots);
    out.response_ms.merge(s.response_ms);
  }
  out.log_suffix_syncs = log_suffix_syncs_.load(std::memory_order_relaxed);
  out.full_syncs = full_syncs_.load(std::memory_order_relaxed);
  out.network = network_.stats();
  out.faults = network_.fault_stats();
  return out;
}

}  // namespace dtx::core
