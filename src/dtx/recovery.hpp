// Replica recovery sync: catching a restarting site's redo logs up to the
// freshest peer replica of each document it hosts. One algorithm, two
// transports — Cluster::restart_site reads peer stores directly (the
// in-process cluster), dtxd pulls peer state over the network
// (RecoveryPullRequest/Reply) — both feed the same sync_document().
//
// A record's version number is a per-replica position (commits of
// non-conflicting transactions may land in different orders at different
// replicas), so replicas are compared by committed-transaction-id *set*:
// checkpoint-marker ids plus tail record ids enumerate exactly which
// commits a replica holds. The normal path appends the peer records this
// replica is missing, renumbered onto the local tail — O(missed commits),
// not O(document); their operations commute with everything already here
// (conflicting commits are identically ordered everywhere). Only when the
// freshest peer compacted a missing commit into its snapshot is its whole
// checkpoint + log adopted, with local-unique tail records re-appended on
// top so no durable commit decision is lost.
#pragma once

#include <string>
#include <vector>

#include "dtx/wal.hpp"
#include "storage/storage.hpp"
#include "util/status.hpp"

namespace dtx::core::recovery {

struct SyncStats {
  /// Documents caught up by appending a peer's record suffix.
  std::uint64_t log_suffix_syncs = 0;
  /// Documents that adopted a whole peer checkpoint + log.
  std::uint64_t full_syncs = 0;
};

/// Reads a stable durable state of `doc`, retrying reads that straddled a
/// live writer's checkpoint (wal::read_durable_doc flags those via
/// `consistent`). Errors out after `attempts` unstable reads.
util::Result<wal::DurableDoc> read_stable(storage::StorageBackend& store,
                                          const std::string& doc,
                                          int attempts = 50);

/// The serialized log of a durable state — exactly the bytes a repaired
/// replica stores under wal::log_key (checkpoint marker + record tail).
/// This is what RecoveryPullReply ships.
std::string flatten_log(const wal::DurableDoc& durable);

/// Reconstructs a durable state from its wire form (snapshot bytes + the
/// flattened log) — the receiving side of a recovery pull.
util::Result<wal::DurableDoc> from_wire(const std::string& doc,
                                        const std::string& snapshot,
                                        const std::string& log);

/// Catches the local replica of `doc` in `store` up to the freshest of
/// `peers` (each a stable durable state of the same document; empty =
/// unreplicated, no-op). Repairs the local log first (torn tails,
/// interrupted checkpoints), then ships the missing record suffix or
/// adopts the best peer's checkpoint as described above. Call only while
/// the local site is down.
util::Status sync_document(storage::StorageBackend& store,
                           const std::string& doc,
                           const std::vector<wal::DurableDoc>& peers,
                           SyncStats& stats);

}  // namespace dtx::core::recovery
