// DEPRECATED client session — superseded by the typed client layer
// (dtx::client::{Client, Session, TxnBuilder}; see src/client/client.hpp).
// Kept for one PR as a thin shim so out-of-tree callers migrate on their
// own schedule: Connection is now a Session pinned to one site by an
// explicit routing policy, and its textual execute() parses each operation
// once through PreparedTxn::parse before submission.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/client.hpp"
#include "dtx/cluster.hpp"

namespace dtx::core {

/// The session retry policy now lives in the client layer. Note the old
/// `retry_all_aborts` flag is gone: it was gated behind
/// max_deadlock_retries (true with max_deadlock_retries = 0 never retried
/// anything) — non-deadlock retryable aborts now have their own
/// independent `max_retries` budget.
using RetryPolicy = client::RetryPolicy;

class [[deprecated("use dtx::client::Client / Session")]] Connection {
 public:
  /// Binds the session to one site of the cluster (its Listener).
  Connection(Cluster& cluster, SiteId site, RetryPolicy policy = {})
      : client_(cluster),
        session_(client_.session(client::SessionOptions{
            client::RoutingPolicy::explicit_site(site), policy,
            std::chrono::microseconds{0}})),
        site_(site) {}

  [[nodiscard]] SiteId site() const noexcept { return site_; }

  /// Executes a transaction, retrying per the policy. The returned result
  /// is the final attempt's outcome; retries() reports the count consumed
  /// by the last execute call.
  util::Result<txn::TxnResult> execute(
      const std::vector<std::string>& op_texts);

  /// Fire-and-forget submission (no retry handling).
  util::Result<std::shared_ptr<txn::Transaction>> submit(
      const std::vector<std::string>& op_texts) {
    return client_.cluster().submit_text(site_, op_texts);
  }

  [[nodiscard]] std::uint32_t retries() const noexcept {
    return session_.retries();
  }

 private:
  client::Client client_;
  client::Session session_;
  SiteId site_;
};

}  // namespace dtx::core
