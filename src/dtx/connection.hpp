// Client connection: the application-facing session the paper describes
// ("to submit a transaction to DTX, the client makes a connection with an
// instance of DTX and sends the transaction").
//
// The paper leaves re-submission after a deadlock abort to the application
// ("It is the responsibility of the application client c2 to decide if it
// resubmits transaction t2"); RetryPolicy packages that decision so callers
// get at-most-N automatic retries of deadlock victims.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dtx/cluster.hpp"

namespace dtx::core {

struct RetryPolicy {
  /// Maximum automatic re-submissions after a deadlock abort (0 = never).
  std::uint32_t max_deadlock_retries = 0;
  /// Also retry plain (non-deadlock) aborts.
  bool retry_all_aborts = false;
  /// Linear backoff between attempts (attempt N sleeps N * backoff).
  /// Essential under the paper's newest-transaction victim rule: an
  /// immediately resubmitted victim re-enters as the newest transaction
  /// and loses every subsequent cycle against a steady stream of older
  /// competitors (victim starvation); backing off lets it land in a gap.
  std::chrono::microseconds backoff{2'000};
};

class Connection {
 public:
  /// Binds the session to one site of the cluster (its Listener).
  Connection(Cluster& cluster, SiteId site, RetryPolicy policy = {})
      : cluster_(cluster), site_(site), policy_(policy) {}

  [[nodiscard]] SiteId site() const noexcept { return site_; }

  /// Executes a transaction, retrying per the policy. The returned result
  /// is the final attempt's outcome; retries() reports the count consumed
  /// by the last execute call.
  util::Result<txn::TxnResult> execute(
      const std::vector<std::string>& op_texts);

  /// Fire-and-forget submission (no retry handling).
  util::Result<std::shared_ptr<txn::Transaction>> submit(
      const std::vector<std::string>& op_texts) {
    return cluster_.submit(site_, op_texts);
  }

  [[nodiscard]] std::uint32_t retries() const noexcept { return retries_; }

 private:
  Cluster& cluster_;
  SiteId site_;
  RetryPolicy policy_;
  std::uint32_t retries_ = 0;
};

}  // namespace dtx::core
