#include "dtx/catalog.hpp"

#include <algorithm>

namespace dtx::core {

util::Status Catalog::add_document(const std::string& name,
                                   std::vector<SiteId> sites) {
  if (sites.empty()) {
    return util::Status(util::Code::kInvalidArgument,
                        "document '" + name + "' needs at least one site");
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  if (placement_.count(name) != 0) {
    return util::Status(util::Code::kAlreadyExists,
                        "document '" + name + "' already placed");
  }
  placement_[name] = std::move(sites);
  return util::Status::ok();
}

std::vector<SiteId> Catalog::sites_of(const std::string& name) const {
  const auto it = placement_.find(name);
  return it == placement_.end() ? std::vector<SiteId>{} : it->second;
}

bool Catalog::has_document(const std::string& name) const {
  return placement_.count(name) != 0;
}

std::vector<std::string> Catalog::documents() const {
  std::vector<std::string> names;
  names.reserve(placement_.size());
  for (const auto& [name, sites] : placement_) {
    (void)sites;
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> Catalog::documents_at(SiteId site) const {
  std::vector<std::string> names;
  for (const auto& [name, sites] : placement_) {
    if (std::find(sites.begin(), sites.end(), site) != sites.end()) {
      names.push_back(name);
    }
  }
  return names;
}

}  // namespace dtx::core
