#include "dtx/catalog.hpp"

#include <algorithm>

namespace dtx::core {

Catalog::Catalog()
    : current_(std::make_shared<const placement::CatalogEpoch>()) {}

Catalog::Catalog(placement::CatalogEpoch epoch)
    : current_(std::make_shared<const placement::CatalogEpoch>(
          std::move(epoch))) {}

Catalog::Catalog(const Catalog& other) : current_(other.view()) {}

util::Status Catalog::add_document(const std::string& name,
                                   std::vector<SiteId> sites) {
  if (sites.empty()) {
    return util::Status(util::Code::kInvalidArgument,
                        "document '" + name + "' needs at least one site");
  }
  std::sort(sites.begin(), sites.end());
  sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
  sync::MutexLock lock(mutex_);
  if (current_->has_document(name)) {
    return util::Status(util::Code::kAlreadyExists,
                        "document '" + name + "' already placed");
  }
  placement::CatalogEpoch next = *current_;
  for (const SiteId site : sites) {
    if (!next.is_member(site)) next.members.push_back(site);
  }
  std::sort(next.members.begin(), next.members.end());
  next.placement[name] = std::move(sites);
  current_ = std::make_shared<const placement::CatalogEpoch>(std::move(next));
  return util::Status::ok();
}

Catalog::View Catalog::view() const {
  sync::MutexLock lock(mutex_);
  return current_;
}

std::uint64_t Catalog::epoch() const {
  sync::MutexLock lock(mutex_);
  return current_->epoch;
}

bool Catalog::install(placement::CatalogEpoch next) {
  sync::MutexLock lock(mutex_);
  if (next.epoch <= current_->epoch) return false;
  current_ = std::make_shared<const placement::CatalogEpoch>(std::move(next));
  return true;
}

std::vector<SiteId> Catalog::sites_of(const std::string& name) const {
  return view()->sites_of(name);
}

bool Catalog::has_document(const std::string& name) const {
  return view()->has_document(name);
}

std::vector<std::string> Catalog::documents() const {
  return view()->documents();
}

std::vector<std::string> Catalog::documents_at(SiteId site) const {
  return view()->documents_at(site);
}

}  // namespace dtx::core
