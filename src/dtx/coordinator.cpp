#include "dtx/coordinator.hpp"

#include <algorithm>
#include <chrono>

#include "dtx/snapshot_read.hpp"
#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using txn::Transaction;
using txn::TxnState;

namespace {

void drop_from_ready(std::deque<std::shared_ptr<Transaction>>& ready,
                     const std::shared_ptr<Transaction>& txn) {
  ready.erase(std::remove(ready.begin(), ready.end(), txn), ready.end());
}

}  // namespace

void Coordinator::run() {
  while (ctx_.running.load()) {
    TransactionPtr next;
    {
      sync::UniqueLock lock(ctx_.coord_mutex);
      ctx_.coord_cv.wait_for(ctx_.coord_mutex, ctx_.options.poll_interval, [&] {
        return !ctx_.running.load() || !ctx_.ready.empty() ||
               !ctx_.victim_aborts.empty();
      });
      if (!ctx_.running.load()) return;

      // Victim aborts first (Alg. 4 hands them to the scheduler).
      process_victims(lock);
      retry_overdue_waiters();

      if (ctx_.ready.empty()) continue;
      next = ctx_.ready.front();
      ctx_.ready.pop_front();
      if (next->completed() || next->state() != TxnState::kActive) continue;
      ctx_.executing.insert(next->id());
    }
    if (ctx_.options.snapshot_reads && next->read_only()) {
      execute_snapshot(next);
    } else {
      execute_one_operation(next);
    }
  }
}

void Coordinator::process_victims(sync::UniqueLock& lock) {
  while (!ctx_.victim_aborts.empty()) {
    const TxnId victim = ctx_.victim_aborts.front();
    ctx_.victim_aborts.pop_front();
    const auto it = ctx_.transactions.find(victim);
    if (it == ctx_.transactions.end() || it->second->completed()) continue;
    if (ctx_.executing.count(victim) != 0) {
      // Another worker is mid-operation on the victim: park the abort; that
      // worker applies it the moment it hands its claim back.
      ctx_.deferred_victims.insert(victim);
      continue;
    }
    TransactionPtr txn = it->second;
    ctx_.waiting.erase(victim);
    drop_from_ready(ctx_.ready, txn);
    ctx_.executing.insert(victim);  // claim for the duration of the abort
    lock.unlock();
    abort_transaction(txn, /*deadlock_victim=*/true);
    lock.lock();
  }
}

void Coordinator::retry_overdue_waiters() {
  const auto now = Clock::now();
  for (auto it = ctx_.waiting.begin(); it != ctx_.waiting.end();) {
    const auto txn_it = ctx_.transactions.find(it->first);
    if (txn_it == ctx_.transactions.end()) {
      it = ctx_.waiting.erase(it);
      continue;
    }
    if (now - it->second >= ctx_.options.retry_interval) {
      txn_it->second->set_state(TxnState::kActive);
      ctx_.ready.push_back(txn_it->second);
      it = ctx_.waiting.erase(it);
    } else {
      ++it;
    }
  }
}

void Coordinator::execute_one_operation(const TransactionPtr& txn) {
  const std::size_t op_index = txn->next_operation();
  if (op_index == txn->op_count()) {
    // Alg. 1 l. 24-26: no operation left -> commit.
    commit_transaction(txn);
    return;
  }
  // Pin the catalog for this routing decision. The transaction was stamped
  // with the epoch current at submit; if the catalog moved since, its
  // earlier operations executed at old-epoch replicas — abort retryably
  // (kStaleCatalog) so the client resubmits routed under the new epoch.
  // This is also what makes the membership drain fast: no old-epoch
  // transaction starts new work after the flip.
  const Catalog::View view = ctx_.catalog.view();
  if (view->epoch != txn->catalog_epoch()) {
    abort_stale_catalog(txn);
    return;
  }
  const txn::Operation& op = txn->ops()[op_index];
  const std::vector<SiteId>& sites = view->sites_of(op.doc);
  if (sites.empty()) {
    txn->state_of(op_index).failed = true;
    txn->state_of(op_index).reason = txn::AbortReason::kParseError;
    txn->state_of(op_index).error =
        "document '" + op.doc + "' is not in the catalog";
    txn->set_abort_reason(txn::AbortReason::kParseError);
    abort_transaction(txn, false);
    return;
  }
  if (sites.size() == 1 && sites.front() == ctx_.options.id) {
    if (ctx_.is_importing(op.doc)) {
      // This replica is still being migrated in; the data is not here yet.
      abort_stale_catalog(txn);
      return;
    }
    execute_local(txn, op_index);
  } else {
    execute_remote(txn, op_index, sites);
  }
}

void Coordinator::abort_stale_catalog(const TransactionPtr& txn) {
  txn->set_abort_reason(txn::AbortReason::kStaleCatalog);
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.stale_catalog_aborts;
  }
  abort_transaction(txn, false);
}

void Coordinator::execute_snapshot(const TransactionPtr& txn) {
  // The snapshot path never touches the LockManager and never populates
  // txn->sites(), so every exit is a bare finish_transaction: there are no
  // locks to release, no undo logs, no abort fan-out, no durable outcome
  // record needed (nothing a crash could leave half-applied).
  //
  // Operations are grouped per serving site — the local site whenever it
  // hosts the document, else the lowest-id replica — and each site
  // evaluates its whole group against one consistent cut, so a
  // transaction's view is consistent per serving site (the per-replica
  // version semantics of dtx/wal.hpp; cross-site cuts are independent).
  const Catalog::View view = ctx_.catalog.view();
  if (view->epoch != txn->catalog_epoch()) {
    // Snapshot reads hold no locks; a bare stale-catalog finish suffices.
    txn->set_abort_reason(txn::AbortReason::kStaleCatalog);
    {
      sync::MutexLock lock(ctx_.stats_mutex);
      ++ctx_.stats.stale_catalog_aborts;
    }
    finish_transaction(txn, TxnState::kAborted);
    return;
  }
  std::map<SiteId, net::SnapshotReadRequest> groups;
  for (std::size_t i = 0; i < txn->op_count(); ++i) {
    const txn::Operation& op = txn->ops()[i];
    txn::OperationState& state = txn->state_of(i);
    ++state.attempts;
    const std::vector<SiteId>& sites = view->sites_of(op.doc);
    if (sites.empty()) {
      state.failed = true;
      state.reason = txn::AbortReason::kParseError;
      state.error = "document '" + op.doc + "' is not in the catalog";
      txn->set_abort_reason(txn::AbortReason::kParseError);
      finish_transaction(txn, TxnState::kAborted);
      return;
    }
    const bool local =
        std::find(sites.begin(), sites.end(), ctx_.options.id) != sites.end();
    net::SnapshotReadRequest& request =
        groups[local ? ctx_.options.id : sites.front()];
    request.txn = txn->id();
    request.coordinator = ctx_.options.id;
    request.epoch = view->epoch;
    request.op_indices.push_back(static_cast<std::uint32_t>(i));
    request.ops.push_back(op);
  }

  std::set<SiteId> remote;
  for (const auto& [site, request] : groups) {
    (void)request;
    if (site != ctx_.options.id) remote.insert(site);
  }
  if (!remote.empty()) {
    sync::MutexLock lock(ctx_.resp_mutex);
    ctx_.snapshot_replies[txn->id()].clear();
  }
  for (const auto& [site, request] : groups) {
    if (site != ctx_.options.id) ctx_.send(site, request);
  }

  // Serve the local group inline while remote sites work in parallel.
  std::vector<net::SnapshotReadReply> replies;
  const auto local_group = groups.find(ctx_.options.id);
  if (local_group != groups.end()) {
    replies.push_back(serve_snapshot_read(ctx_, txn->id(), view->epoch,
                                          local_group->second.op_indices,
                                          local_group->second.ops));
  }
  if (!remote.empty()) {
    std::map<SiteId, net::SnapshotReadReply> collected =
        await_snapshot_replies(txn->id(), remote);
    {
      sync::MutexLock lock(ctx_.resp_mutex);
      ctx_.snapshot_replies.erase(txn->id());
    }
    if (!ctx_.running.load()) return;  // halt() completes the txn
    if (collected.size() != remote.size()) {
      txn->set_abort_reason(txn::AbortReason::kSiteFailure);
      for (const auto& [site, request] : groups) {
        if (site != ctx_.options.id && collected.count(site) == 0) {
          txn::OperationState& state =
              txn->state_of(request.op_indices.front());
          state.failed = true;
          state.reason = txn::AbortReason::kSiteFailure;
          state.error = "snapshot-read timeout (site " +
                        std::to_string(site) + ")";
          break;
        }
      }
      finish_transaction(txn, TxnState::kAborted);
      return;
    }
    for (auto& [site, reply] : collected) {
      (void)site;
      replies.push_back(std::move(reply));
    }
  }

  for (net::SnapshotReadReply& reply : replies) {
    if (!reply.ok) {
      const txn::AbortReason reason = reply.reason != txn::AbortReason::kNone
                                          ? reply.reason
                                          : txn::AbortReason::kSiteFailure;
      txn->set_abort_reason(reason);
      if (!reply.op_indices.empty()) {
        txn::OperationState& state = txn->state_of(reply.op_indices.front());
        state.failed = true;
        state.reason = reason;
        state.error = std::move(reply.error);
      }
      finish_transaction(txn, TxnState::kAborted);
      return;
    }
    for (std::size_t k = 0; k < reply.op_indices.size(); ++k) {
      txn::OperationState& state = txn->state_of(reply.op_indices[k]);
      state.executed = true;
      state.rows = std::move(reply.rows[k]);
    }
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.snapshot_txns;
  }
  finish_transaction(txn, TxnState::kCommitted);
}

void Coordinator::execute_local(const TransactionPtr& txn,
                                std::size_t op_index) {
  // Alg. 1 l. 6-10. The local path resolves through the same site plan
  // cache as remote executes, so a wait-mode retry reuses its plan.
  const txn::Operation& op = txn->ops()[op_index];
  txn::OperationState& state = txn->state_of(op_index);
  ++state.attempts;
  state.reset_attempt();
  auto plan = ctx_.plans().resolve(op);
  if (!plan) {
    state.failed = true;
    state.reason = txn::AbortReason::kParseError;
    state.error = plan.status().to_string();
    txn->set_abort_reason(txn::AbortReason::kParseError);
    abort_transaction(txn, false);
    return;
  }
  OpOutcome outcome = ctx_.locks().process_operation(
      txn->id(), static_cast<std::uint32_t>(op_index), *plan.value(),
      ctx_.options.id);
  switch (outcome.kind) {
    case OpOutcome::Kind::kExecuted:
      state.executed = true;
      state.rows = std::move(outcome.rows);
      txn->add_sites({ctx_.options.id});
      requeue(txn);
      return;
    case OpOutcome::Kind::kConflict:
      enter_wait(txn);
      return;
    case OpOutcome::Kind::kDeadlock:
      state.deadlock = true;
      abort_transaction(txn, /*deadlock_victim=*/true);
      return;
    case OpOutcome::Kind::kFailed:
      state.failed = true;
      state.reason = txn::AbortReason::kUnprocessableUpdate;
      state.error = std::move(outcome.error);
      txn->set_abort_reason(txn::AbortReason::kUnprocessableUpdate);
      abort_transaction(txn, false);
      return;
  }
}

void Coordinator::execute_remote(const TransactionPtr& txn,
                                 std::size_t op_index,
                                 const std::vector<SiteId>& sites) {
  // Alg. 1 l. 12-22.
  const txn::Operation& op = txn->ops()[op_index];
  txn::OperationState& state = txn->state_of(op_index);
  ++state.attempts;
  state.reset_attempt();
  const auto attempt = state.attempts;

  const std::set<SiteId> expected(sites.begin(), sites.end());
  {
    sync::MutexLock lock(ctx_.resp_mutex);
    SiteContext::ResponseSlot& slot =
        ctx_.responses[{txn->id(), static_cast<std::uint32_t>(op_index)}];
    slot.attempt = attempt;
    slot.replies.clear();
  }
  for (SiteId site : sites) {
    ctx_.send(site, net::ExecuteOperation{
                        txn->id(), static_cast<std::uint32_t>(op_index),
                        attempt, ctx_.options.id, txn->catalog_epoch(), op});
  }
  const std::map<SiteId, net::OperationResult> replies = await_responses(
      txn->id(), static_cast<std::uint32_t>(op_index), attempt, expected);
  {
    sync::MutexLock lock(ctx_.resp_mutex);
    ctx_.responses.erase({txn->id(), static_cast<std::uint32_t>(op_index)});
  }
  if (!ctx_.running.load()) return;

  bool any_conflict = false;
  bool any_failed = replies.size() != expected.size();  // timeout == failure
  bool any_deadlock = false;
  txn::AbortReason participant_reason = txn::AbortReason::kNone;
  std::string participant_error;
  std::vector<SiteId> executed_at;
  for (const auto& [site, reply] : replies) {
    if (reply.executed) executed_at.push_back(site);
    any_conflict |= reply.lock_conflict;
    any_failed |= reply.failed;
    any_deadlock |= reply.deadlock;
    if (reply.failed && participant_reason == txn::AbortReason::kNone) {
      participant_reason = reply.reason;
      participant_error =
          reply.error + " (site " + std::to_string(site) + ")";
    }
  }

  if (any_failed || any_deadlock) {
    // Alg. 1 l. 19-21. Sites that executed the operation are cleaned up by
    // the abort broadcast (it reaches every site of the transaction).
    txn->add_sites(executed_at);
    state.failed = any_failed;
    state.deadlock = any_deadlock;
    if (replies.size() != expected.size()) {
      state.reason = txn::AbortReason::kSiteFailure;
      state.error = "participant response timeout";
    } else if (any_failed) {
      state.reason = participant_reason != txn::AbortReason::kNone
                         ? participant_reason
                         : txn::AbortReason::kSiteFailure;
      state.error = participant_error.empty()
                        ? "operation failed at a participant site"
                        : std::move(participant_error);
    }
    if (any_failed) txn->set_abort_reason(state.reason);
    abort_transaction(txn, any_deadlock);
    return;
  }
  if (any_conflict) {
    // Alg. 1 l. 15-17: undo the operation wherever it executed; wait.
    for (SiteId site : executed_at) {
      ctx_.send(site, net::UndoOperation{
                          txn->id(), static_cast<std::uint32_t>(op_index)});
    }
    enter_wait(txn);
    return;
  }

  // Executed everywhere: adopt the rows of the lowest-id replica.
  state.executed = true;
  txn->add_sites(std::vector<SiteId>(expected.begin(), expected.end()));
  for (const auto& [site, reply] : replies) {
    if (reply.executed) {
      state.rows = reply.rows;
      break;  // map iteration is ordered by site id
    }
  }
  requeue(txn);
}

void Coordinator::enter_wait(const TransactionPtr& txn) {
  txn->note_wait_episode();
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.wait_episodes;
  }
  if (ctx_.options.max_wait_episodes != 0 &&
      txn->wait_episodes() > ctx_.options.max_wait_episodes) {
    // The transaction keeps losing its locks; give up instead of letting
    // the client wait unboundedly. The claim is still ours, so a plain
    // abort is safe (finish_transaction clears any deferred victim mark).
    txn->set_abort_reason(txn::AbortReason::kLockWaitExhausted);
    abort_transaction(txn, /*deadlock_victim=*/false);
    return;
  }
  hand_back_claim(txn, /*park=*/true);
}

void Coordinator::requeue(const TransactionPtr& txn) {
  hand_back_claim(txn, /*park=*/false);
}

void Coordinator::hand_back_claim(const TransactionPtr& txn, bool park) {
  bool abort_now = false;
  bool requeued = false;
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    if (ctx_.deferred_victims.erase(txn->id()) != 0) {
      abort_now = true;  // claim retained; abort below
    } else if (park && ctx_.pending_wakes.erase(txn->id()) == 0) {
      txn->set_state(TxnState::kWaiting);
      ctx_.executing.erase(txn->id());
      ctx_.waiting[txn->id()] = Clock::now();
    } else {
      // Plain requeue — or a wake overtook the park; retry immediately.
      txn->set_state(TxnState::kActive);
      ctx_.executing.erase(txn->id());
      ctx_.ready.push_back(txn);
      requeued = true;
    }
  }
  if (abort_now) {
    abort_transaction(txn, /*deadlock_victim=*/true);
  } else if (requeued) {
    ctx_.coord_cv.notify_all();
  }
}

std::map<SiteId, net::OperationResult> Coordinator::await_responses(
    TxnId txn, std::uint32_t op_index, std::uint32_t attempt,
    const std::set<SiteId>& expected) {
  const auto deadline = Clock::now() + ctx_.options.response_timeout;
  sync::MutexLock lock(ctx_.resp_mutex);
  const auto key = std::make_pair(txn, op_index);
  for (;;) {
    const auto it = ctx_.responses.find(key);
    if (it == ctx_.responses.end() || it->second.attempt != attempt) {
      return {};
    }
    if (it->second.replies.size() >= expected.size()) {
      return it->second.replies;
    }
    if (!ctx_.running.load() || Clock::now() >= deadline) {
      return it->second.replies;  // partial (timeout / shutdown)
    }
    ctx_.resp_cv.wait_until(ctx_.resp_mutex, deadline);
  }
}

std::map<SiteId, bool> Coordinator::await_acks(TxnId txn,
                                               const std::set<SiteId>& expected,
                                               bool commit) {
  (void)commit;
  const auto deadline = Clock::now() + ctx_.options.response_timeout;
  sync::MutexLock lock(ctx_.ack_mutex);
  for (;;) {
    const auto it = ctx_.acks.find(txn);
    if (it == ctx_.acks.end()) return {};
    if (it->second.acks.size() >= expected.size()) return it->second.acks;
    if (!ctx_.running.load() || Clock::now() >= deadline) {
      return it->second.acks;
    }
    ctx_.ack_cv.wait_until(ctx_.ack_mutex, deadline);
  }
}

std::map<SiteId, net::SnapshotReadReply> Coordinator::await_snapshot_replies(
    TxnId txn, const std::set<SiteId>& expected) {
  const auto deadline = Clock::now() + ctx_.options.response_timeout;
  sync::MutexLock lock(ctx_.resp_mutex);
  for (;;) {
    const auto it = ctx_.snapshot_replies.find(txn);
    if (it == ctx_.snapshot_replies.end()) return {};
    if (it->second.size() >= expected.size()) return it->second;
    if (!ctx_.running.load() || Clock::now() >= deadline) {
      return it->second;  // partial (timeout / shutdown)
    }
    ctx_.resp_cv.wait_until(ctx_.resp_mutex, deadline);
  }
}

void Coordinator::commit_transaction(const TransactionPtr& txn) {
  // Algorithm 5, hardened for partial failure (presumed-abort style).
  // Every operation executed at every replica, so the coordinator now
  // takes the commit decision by persisting *locally first* and appending
  // the durable commit record — then broadcasts. From the decision on,
  // the transaction is never rolled back anywhere (the seed aborted on a
  // missing ack, which left replicas that had already persisted diverged):
  //
  //  1. local persist + release (a failure here still aborts cleanly —
  //     nothing was sent yet);
  //  2. durable commit record (answers status probes across a crash);
  //  3. CommitRequest fan-out with bounded resends for unacked sites.
  //
  // Coordinator-first ordering also means a participant that crashes
  // around the decision finds the committed bytes at the coordinator's
  // store the moment it rejoins (Cluster recovery sync); sites that miss
  // the request — partitioned, or briefly down — are served by the
  // resends and, past those, by the presumed-abort status probe their
  // orphan sweep sends (answered "committed" from the record of step 2).
  // Epoch re-validation: never take a commit decision under a catalog the
  // cluster has moved past. Participants fence new-epoch executes, but
  // CommitRequests carry no epoch — this check is what keeps a flip from
  // racing a commit into a replica that is being migrated away, and it
  // bounds the membership drain (see Site::epoch_drained).
  if (ctx_.catalog.epoch() != txn->catalog_epoch()) {
    abort_stale_catalog(txn);
    return;
  }
  std::set<SiteId> remote = txn->sites();
  remote.erase(ctx_.options.id);

  // Step 1 — Alg. 5 l. 10-11: persist and release locally.
  std::vector<WakeNotice> wakes;
  util::Status status = ctx_.locks().commit(txn->id(), wakes);
  ctx_.send_wakes(wakes);
  if (!status) {
    // Nothing persisted and nothing broadcast: a plain abort is sound.
    txn->set_abort_reason(txn::AbortReason::kSiteFailure);
    abort_transaction(txn, false);
    return;
  }
  if (remote.empty()) {
    finish_transaction(txn, TxnState::kCommitted);
    return;
  }

  // Step 2 — the decision outlives this worker and this site.
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    ctx_.record_outcome(txn->id(), /*committed=*/true);
    const util::Status logged = ctx_.append_commit_record(txn->id());
    if (!logged) {
      DTX_ERROR() << "txn " << txn->id()
                  << ": commit log append failed: " << logged.to_string();
    }
  }

  // Step 3 — fan-out with resends.
  {
    sync::MutexLock lock(ctx_.ack_mutex);
    SiteContext::AckSlot& slot = ctx_.acks[txn->id()];
    slot.commit = true;
    slot.acks.clear();
  }
  const std::uint32_t rounds =
      std::max<std::uint32_t>(1, ctx_.options.commit_ack_rounds);
  std::set<SiteId> pending = remote;
  std::map<SiteId, bool> acks;
  for (std::uint32_t round = 0; round < rounds && !pending.empty();
       ++round) {
    if (round > 0) {
      sync::MutexLock lock(ctx_.stats_mutex);
      ctx_.stats.commit_resends += pending.size();
    }
    for (SiteId site : pending) {
      ctx_.send(site, net::CommitRequest{txn->id()});
    }
    acks = await_acks(txn->id(), remote, /*commit=*/true);
    for (const auto& [site, ok] : acks) {
      (void)ok;
      pending.erase(site);
    }
    if (!ctx_.running.load()) break;
  }
  {
    sync::MutexLock lock(ctx_.ack_mutex);
    ctx_.acks.erase(txn->id());
  }
  // Unacked or not-ok sites hold a stale replica until their orphan probe
  // (answered from the outcome record) or the next recovery sync catches
  // them up; the decision stands regardless.
  for (SiteId site : pending) {
    DTX_WARN() << "txn " << txn->id() << ": commit unacked at site " << site
               << " after " << rounds << " rounds";
  }
  for (const auto& [site, ok] : acks) {
    if (!ok) {
      DTX_WARN() << "txn " << txn->id() << ": commit not served at site "
                 << site;
    }
  }
  finish_transaction(txn, TxnState::kCommitted);
}

void Coordinator::abort_transaction(const TransactionPtr& txn,
                                    bool deadlock_victim) {
  // Algorithm 6.
  if (deadlock_victim) txn->mark_deadlock_victim();
  std::set<SiteId> remote = txn->sites();
  remote.erase(ctx_.options.id);
  if (!remote.empty()) {
    {
      sync::MutexLock lock(ctx_.ack_mutex);
      SiteContext::AckSlot& slot = ctx_.acks[txn->id()];
      slot.commit = false;
      slot.acks.clear();
    }
    for (SiteId site : remote) {
      ctx_.send(site, net::AbortRequest{txn->id()});
    }
    const std::map<SiteId, bool> acks =
        await_acks(txn->id(), remote, /*commit=*/false);
    {
      sync::MutexLock lock(ctx_.ack_mutex);
      ctx_.acks.erase(txn->id());
    }
    bool all_ok = acks.size() == remote.size();
    for (const auto& [site, ok] : acks) all_ok &= ok;
    if (!all_ok && ctx_.running.load()) {
      // Alg. 6 l. 5-10: the cancellation itself failed somewhere -> the
      // transaction *fails*; every site is told so.
      for (SiteId site : remote) {
        ctx_.send(site, net::FailNotice{txn->id()});
      }
      fail_transaction(txn);
      return;
    }
  }
  // Alg. 6 l. 13-14: undo and release locally.
  std::vector<WakeNotice> wakes;
  ctx_.locks().abort(txn->id(), wakes);
  ctx_.send_wakes(wakes);
  finish_transaction(txn, TxnState::kAborted);
}

void Coordinator::fail_transaction(const TransactionPtr& txn) {
  // Local best-effort cleanup so this site's locks do not leak, then report
  // failure to the application (paper §2.2: "In case of failure, DTX alerts
  // the application stating that the transaction has failed").
  txn->set_abort_reason(txn::AbortReason::kSiteFailure);
  std::vector<WakeNotice> wakes;
  ctx_.locks().abort(txn->id(), wakes);
  ctx_.send_wakes(wakes);
  finish_transaction(txn, TxnState::kFailed);
}

void Coordinator::finish_transaction(const TransactionPtr& txn,
                                     TxnState state) {
  txn->set_state(state);
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    ctx_.waiting.erase(txn->id());
    ctx_.pending_wakes.erase(txn->id());
    ctx_.deferred_victims.erase(txn->id());
    ctx_.executing.erase(txn->id());
    drop_from_ready(ctx_.ready, txn);
    ctx_.transactions.erase(txn->id());
    // Feed the presumed-abort status probes: participants that lost
    // contact ask for exactly this record (first write wins, so a commit
    // decision recorded in commit_transaction is never downgraded).
    ctx_.record_outcome(txn->id(), state == TxnState::kCommitted);
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    switch (state) {
      case TxnState::kCommitted: ++ctx_.stats.committed; break;
      case TxnState::kAborted: ++ctx_.stats.aborted; break;
      case TxnState::kFailed: ++ctx_.stats.failed; break;
      default: break;
    }
    if (txn->deadlock_victim()) ++ctx_.stats.deadlock_aborts;
  }

  txn::TxnResult result;
  result.id = txn->id();
  result.state = state;
  result.deadlock_victim = txn->deadlock_victim();
  result.wait_episodes = txn->wait_episodes();
  result.response_ms =
      static_cast<double>(steady_now_micros() -
                          txn::txn_begin_micros(txn->id())) /
      1000.0;
  if (state != TxnState::kCommitted) {
    result.reason = txn->deadlock_victim()
                        ? txn::AbortReason::kDeadlockVictim
                        : txn->abort_reason();
    if (result.reason == txn::AbortReason::kNone) {
      // Audited unreachable: every abort path records a reason first —
      // local/remote structural failures and parse errors set it inline,
      // deadlock outcomes mark the victim flag, lock-wait exhaustion and
      // every commit/ack failure set kSiteFailure, and stop()/crash()
      // complete transactions without passing through here. Keep a typed
      // fallback rather than asserting (a silent misclassification beats
      // a crash in release), but count it so the regression test in
      // chaos_test.cpp can prove the path stays dead.
      result.reason = txn::AbortReason::kSiteFailure;
      DTX_ERROR() << "txn " << txn->id() << ": abort without a recorded "
                  << "reason (state " << txn::txn_state_name(state) << ")";
      sync::MutexLock lock(ctx_.stats_mutex);
      ++ctx_.stats.unclassified_aborts;
    }
  }
  result.rows.reserve(txn->op_count());
  for (std::size_t i = 0; i < txn->op_count(); ++i) {
    result.rows.push_back(txn->state_of(i).rows);
    if (result.detail.empty() && !txn->state_of(i).error.empty()) {
      result.detail = "operation " + std::to_string(i) + ": " +
                      txn->state_of(i).error;
    }
  }
  if (result.detail.empty() && state != TxnState::kCommitted) {
    result.detail = txn::abort_reason_name(result.reason);
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ctx_.stats.response_ms.add(result.response_ms);
  }
  txn->complete(std::move(result));
}

}  // namespace dtx::core
