// One DTX instance (paper Fig. 1): Listener + TransactionManager (Scheduler
// + LockManager) + DataManager, attached to a storage backend and the
// network. The engine is staged across three units sharing one SiteContext:
//
//  * dispatcher (this file)      — drains the mailbox and routes messages;
//                                  also fires the periodic distributed
//                                  deadlock detector (Alg. 4);
//  * Coordinator (coordinator.*) — the scheduler of Alg. 1, run by a pool of
//                                  `coordinator_workers` threads pulling
//                                  ready transactions from a shared queue;
//  * Participant (participant.*) — the loop of Alg. 2, run by
//                                  `participant_workers` threads ("this
//                                  procedure is also common to the
//                                  coordinator" — every site runs both
//                                  roles).
//
// The client-facing submit() is the Listener: it accepts a transaction and
// hands back a handle whose await() blocks until commit / abort / fail.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dtx/coordinator.hpp"
#include "dtx/participant.hpp"
#include "dtx/site_context.hpp"

namespace dtx::core {

class Site {
 public:
  /// `catalog` is this site's own mutable catalog replica — membership
  /// changes install newer epochs into it at runtime (CatalogUpdate), so
  /// the referenced object must outlive the Site and must not be shared
  /// with another site (each member evolves its replica independently).
  Site(SiteOptions options, net::Network& network, Catalog& catalog,
       storage::StorageBackend& store);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Loads documents from storage and spawns the dispatcher plus the
  /// coordinator / participant worker pools.
  util::Status start();

  /// Stops and joins the threads. Unfinished transactions abort.
  void stop();

  /// Simulated site crash: the site drops off the network (messages in
  /// both directions are discarded, the mailbox is emptied), every
  /// in-flight transaction coordinated here completes as aborted with
  /// txn::AbortReason::kSiteFailure, and all volatile engine state —
  /// documents, locks, undo logs, plan cache, scheduler queues — is
  /// wiped. Remote participants holding state for this site's
  /// transactions recover through the presumed-abort orphan sweep.
  ///
  /// Lifecycle vs. observation: crash()/restart() swap the engine
  /// components, so stats() and the component accessors below must not
  /// race them — observe a site either while it is up or after the
  /// restart returned (the chaos runner checks invariants only between
  /// recovery and the next fault for exactly this reason).
  void crash();

  /// Rejoins after stop() or crash(): rebuilds the DataManager /
  /// LockManager / plan cache from the storage backend (committed state
  /// only — exactly what a crash leaves behind), clears the mailbox and
  /// re-spawns the worker threads.
  util::Status restart();

  [[nodiscard]] bool running() const noexcept { return ctx_.running.load(); }

  [[nodiscard]] SiteId id() const noexcept { return ctx_.options.id; }

  /// The Listener: accepts a client transaction for coordination at this
  /// site. Returns the handle; await() blocks until termination.
  std::shared_ptr<txn::Transaction> submit(std::vector<txn::Operation> ops);

  /// Aggregated counters. Safe to call from any thread at any time — this
  /// is the sanctioned way to observe a running site (the lock-table
  /// counters are per-shard and aggregated here on read).
  [[nodiscard]] SiteStats stats();

  /// True once a decommission (a JoinRequest naming this site, or
  /// begin_leave via the daemon's signal handler) fully drained: every
  /// replica shipped to its new hosts and dropped here. The admin polls
  /// this before stopping the site for good.
  [[nodiscard]] bool decommissioned() const noexcept {
    return decommissioned_.load();
  }

  /// Direct component access for tests / benches / the inspector.
  ///
  /// QUIESCENCE CONTRACT: the DataManager is only internally consistent
  /// between operations; reading it while coordinator or participant
  /// workers are executing races with document mutation. Call these only
  /// when the site is quiescent — before start(), after stop(), or when
  /// every submitted transaction has completed and no remote traffic is in
  /// flight. For live monitoring use stats() instead. The LockManager's
  /// own entry points (stats, wfg_edges, lock_entries) are internally
  /// synchronized and safe at any time.
  DataManager& data_manager() noexcept { return ctx_.data(); }
  LockManager& lock_manager() noexcept { return ctx_.locks(); }

 private:
  using Clock = SiteContext::Clock;

  void dispatcher_loop();
  void run_deadlock_detection(Clock::time_point now);
  void act_on_victim(lock::TxnId victim);
  /// Joins the worker threads and completes in-flight transactions as
  /// kSiteFailure aborts (shared by stop() and crash()).
  void halt();
  /// Clears scheduler queues, response/ack slots, participant tracking
  /// and the outcome cache (crash, and restart-after-stop — new workers
  /// must never re-execute transactions halt() already completed).
  void wipe_volatile_state();
  /// Answers a presumed-abort status probe from the coordinator-side
  /// transaction table / outcome cache (dispatcher thread).
  void answer_status_request(const net::TxnStatusRequest& request);
  /// Presumed-abort sweep over remote transactions that went silent:
  /// probes their coordinators, rolls back after orphan_query_limit
  /// unanswered probes (dispatcher thread).
  void sweep_orphans(Clock::time_point now);
  /// The Listener's network face: accepts a remote client's transaction
  /// and wires its completion back into a ClientReply (dispatcher thread).
  void handle_client_submit(SiteId client, net::ClientSubmit submit);
  /// Serves a restarting peer's recovery pull with this site's stable
  /// durable state of the document (dispatcher thread).
  void answer_recovery_pull(const net::RecoveryPullRequest& request);

  lock::TxnId next_txn_id();  // expects coord_mutex held

  // --- placement & membership (src/placement) ------------------------------
  // All handlers and the tick run on the dispatcher thread only; the one
  // cross-thread signal is the decommissioned_ atomic. The protocol is
  // push+pull convergent: sources of a rehomed document ship MigrateDoc
  // until every gaining host acked, gaining hosts pull (RecoveryPull) while
  // fenced — either side alone completes a migration, which is what makes a
  // kill -9 on any single site restartable.

  /// Installs a newer epoch: catalog replica + durable ~catalog record,
  /// address book, importing fences for newly-gained documents, ship states
  /// for documents this site must hand off. Queues the drained CatalogAck.
  void handle_catalog_update(const net::CatalogUpdate& update);
  /// The install itself (shared with the JoinReply anti-entropy path):
  /// no-op unless `next` is strictly newer than the current epoch.
  void install_epoch(placement::CatalogEpoch next);
  void handle_catalog_ack(const net::CatalogAck& ack);
  /// Seed side of a join — or, when `request.site` names this site, the
  /// decommission order (begin_leave).
  void handle_join_request(net::SiteId from, const net::JoinRequest& request);
  void handle_migrate_doc(net::SiteId from, const net::MigrateDoc& migrate);
  void handle_migrate_ack(const net::MigrateAck& ack);
  void handle_drop_doc(const net::DropDoc& drop);
  /// Periodic membership work (dispatcher cadence): send drained
  /// CatalogAcks, time out a pending join, reconcile replicas (ship /
  /// pull / drop), complete a decommission.
  void membership_tick(Clock::time_point now);
  /// True when no transaction routed under an epoch older than `epoch`
  /// still has state at this site (coordinator table + remote_txns).
  [[nodiscard]] bool epoch_drained(std::uint64_t epoch);
  void maybe_send_catalog_acks();
  /// Computes the post-departure epoch and broadcasts it; reconcile then
  /// ships every replica away and flips decommissioned_.
  void begin_leave();
  /// Ship / pull / drop pass: resends MigrateDoc for pending handoffs,
  /// scans the store for replicas this site no longer hosts (restart
  /// resume), pulls fenced imports from current hosts.
  void reconcile_replicas(Clock::time_point now);
  /// Adopts a shipped durable state for a fenced document: write it (or
  /// keep the fresher local bytes), load into the engine, unfence.
  /// Returns the adopted durable version, or nullopt on failure.
  std::optional<std::uint64_t> adopt_replica(const std::string& doc,
                                             std::uint64_t version,
                                             const std::string& snapshot,
                                             const std::string& log);
  /// Removes a replica end to end: engine, snapshots, store bytes + log.
  void drop_replica(const std::string& doc);
  /// Loads the durable ~catalog record (if any) into the catalog replica
  /// and derives the membership resume state (leaving_). start() only.
  void load_durable_catalog();

  /// One handoff in flight: gaining hosts that have not acked durability,
  /// with per-target resend pacing.
  struct ShipState {
    std::set<net::SiteId> pending;
    std::map<net::SiteId, Clock::time_point> last_sent;
    bool drop_when_done = false;  ///< this site leaves the hosting set
  };

  /// Drained-ack debt: epoch -> admin that wants the CatalogAck.
  std::map<std::uint64_t, net::SiteId> pending_acks_;
  /// Seed-side state of one admission in progress.
  struct PendingJoin {
    std::uint64_t epoch = 0;
    net::SiteId joiner = 0;
    net::SiteId reply_to = 0;
    std::set<net::SiteId> waiting;  ///< old members yet to ack the drain
    std::string catalog;            ///< epoch text, for update resends
    Clock::time_point deadline{};
    Clock::time_point next_resend{};
  };
  std::optional<PendingJoin> pending_join_;
  std::map<std::string, ShipState> ship_states_;
  /// Pull pacing per fenced document.
  std::map<std::string, Clock::time_point> last_pull_;
  Clock::time_point last_reconcile_{};
  bool leaving_ = false;
  std::atomic<bool> decommissioned_{false};

  SiteContext ctx_;
  Coordinator coordinator_;
  Participant participant_;

  std::thread dispatcher_;
  std::vector<std::thread> coordinator_threads_;
  std::vector<std::thread> participant_threads_;
};

}  // namespace dtx::core
