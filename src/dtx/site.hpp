// One DTX instance (paper Fig. 1): Listener + TransactionManager (Scheduler
// + LockManager) + DataManager, attached to a storage backend and the
// network.
//
// Threads per site:
//  * dispatcher  — drains the mailbox and routes messages; also fires the
//                  periodic distributed deadlock detector (Alg. 4);
//  * coordinator — the scheduler loop of Alg. 1: one operation of one
//                  available transaction at a time, round-robin, with remote
//                  fan-out and wait handling;
//  * participant — the loop of Alg. 2: executes remote operations and the
//                  commit / abort / fail messages of distributed
//                  transactions ("this procedure is also common to the
//                  coordinator" — every site runs both roles).
//
// The client-facing submit() is the Listener: it accepts a transaction and
// hands back a handle whose await() blocks until commit / abort / fail.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "dtx/catalog.hpp"
#include "dtx/data_manager.hpp"
#include "dtx/deadlock_detector.hpp"
#include "dtx/lock_manager.hpp"
#include "net/sim_network.hpp"
#include "storage/storage.hpp"
#include "txn/transaction.hpp"

namespace dtx::core {

struct SiteOptions {
  SiteId id = 0;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;
  /// Distributed deadlock detection period (Alg. 4 cadence).
  std::chrono::microseconds detect_period{20'000};
  /// Probe reply collection timeout.
  std::chrono::microseconds detect_reply_timeout{200'000};
  /// Fallback retry interval for waiting transactions (wake messages are
  /// the fast path; this is the lost-wakeup backstop).
  std::chrono::microseconds retry_interval{50'000};
  /// How long the coordinator waits for participant replies / acks before
  /// treating the operation as failed.
  std::chrono::microseconds response_timeout{10'000'000};
  /// Mailbox / queue poll granularity.
  std::chrono::microseconds poll_interval{2'000};
};

struct SiteStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t failed = 0;
  /// Deadlocks this site resolved: victim aborts executed by this
  /// coordinator (distributed cycles) + local-cycle aborts.
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t distributed_cycles_found = 0;
  std::uint64_t wait_episodes = 0;
  std::uint64_t remote_ops_processed = 0;
  LockManagerStats lock_manager;
};

class Site {
 public:
  Site(SiteOptions options, net::SimNetwork& network, const Catalog& catalog,
       storage::StorageBackend& store);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// Loads documents from storage and spawns the three threads.
  util::Status start();

  /// Stops and joins the threads. Unfinished transactions abort.
  void stop();

  [[nodiscard]] SiteId id() const noexcept { return options_.id; }

  /// The Listener: accepts a client transaction for coordination at this
  /// site. Returns the handle; await() blocks until termination.
  std::shared_ptr<txn::Transaction> submit(std::vector<txn::Operation> ops);

  [[nodiscard]] SiteStats stats();

  /// Direct component access for tests / benches (use only when quiescent).
  DataManager& data_manager() noexcept { return data_; }
  LockManager& lock_manager() noexcept { return locks_; }

 private:
  using Clock = std::chrono::steady_clock;

  // --- thread bodies ---------------------------------------------------------
  void dispatcher_loop();
  void coordinator_loop();
  void participant_loop();

  // --- coordinator (Alg. 1) ----------------------------------------------------
  void execute_one_operation(const std::shared_ptr<txn::Transaction>& txn);
  void execute_local(const std::shared_ptr<txn::Transaction>& txn,
                     std::size_t op_index);
  void execute_remote(const std::shared_ptr<txn::Transaction>& txn,
                      std::size_t op_index, const std::vector<SiteId>& sites);
  void commit_transaction(const std::shared_ptr<txn::Transaction>& txn);
  void abort_transaction(const std::shared_ptr<txn::Transaction>& txn,
                         bool deadlock_victim);
  void fail_transaction(const std::shared_ptr<txn::Transaction>& txn);
  void finish_transaction(const std::shared_ptr<txn::Transaction>& txn,
                          txn::TxnState state);
  void enter_wait(const std::shared_ptr<txn::Transaction>& txn);
  void requeue(const std::shared_ptr<txn::Transaction>& txn);

  // --- participant (Alg. 2) -----------------------------------------------------
  void handle_execute(const net::ExecuteOperation& request);
  void handle_undo(const net::UndoOperation& request);
  void handle_commit(const net::CommitRequest& request, SiteId from);
  void handle_abort(const net::AbortRequest& request, SiteId from);
  void handle_fail(const net::FailNotice& request);

  // --- messaging helpers ----------------------------------------------------------
  void send(SiteId to, net::Payload payload);
  void send_wakes(const std::vector<WakeNotice>& wakes);

  /// Blocks until every site in `expected` answered (txn, op, attempt) or
  /// the response timeout elapsed. Returns the replies collected.
  std::map<SiteId, net::OperationResult> await_responses(
      lock::TxnId txn, std::uint32_t op_index, std::uint32_t attempt,
      const std::set<SiteId>& expected);

  /// Blocks for commit/abort acks from `expected`. Returns site -> ok.
  std::map<SiteId, bool> await_acks(lock::TxnId txn,
                                    const std::set<SiteId>& expected,
                                    bool commit);

  void run_deadlock_detection(Clock::time_point now);
  void act_on_victim(lock::TxnId victim);

  lock::TxnId next_txn_id();

  SiteOptions options_;
  net::SimNetwork& network_;
  net::Mailbox& mailbox_;
  const Catalog& catalog_;
  DataManager data_;
  LockManager locks_;
  DeadlockDetector detector_;

  std::atomic<bool> running_{false};
  std::thread dispatcher_;
  std::thread coordinator_;
  std::thread participant_;

  // Coordinator state.
  mutable std::mutex coord_mutex_;
  std::condition_variable coord_cv_;
  std::deque<std::shared_ptr<txn::Transaction>> ready_;
  std::map<lock::TxnId, std::shared_ptr<txn::Transaction>> transactions_;
  std::map<lock::TxnId, Clock::time_point> waiting_;
  std::set<lock::TxnId> pending_wakes_;
  std::deque<lock::TxnId> victim_aborts_;
  std::uint64_t last_begin_micros_ = 0;

  // Participant work queue.
  std::mutex part_mutex_;
  std::condition_variable part_cv_;
  std::deque<net::Message> participant_queue_;

  // Remote-operation response collection.
  struct ResponseSlot {
    std::uint32_t attempt = 0;
    std::map<SiteId, net::OperationResult> replies;
  };
  std::mutex resp_mutex_;
  std::condition_variable resp_cv_;
  std::map<std::pair<lock::TxnId, std::uint32_t>, ResponseSlot> responses_;

  // Commit / abort ack collection.
  struct AckSlot {
    bool commit = false;
    std::map<SiteId, bool> acks;
  };
  std::mutex ack_mutex_;
  std::condition_variable ack_cv_;
  std::map<lock::TxnId, AckSlot> acks_;

  // Stats.
  mutable std::mutex stats_mutex_;
  SiteStats stats_;
};

}  // namespace dtx::core
