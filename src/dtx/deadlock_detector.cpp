#include "dtx/deadlock_detector.hpp"

namespace dtx::core {

DeadlockDetector::DeadlockDetector(std::chrono::microseconds period,
                                   std::chrono::microseconds reply_timeout)
    : period_(period), reply_timeout_(reply_timeout) {}

bool DeadlockDetector::should_start(Clock::time_point now) const {
  return !active_ && now - last_probe_ >= period_;
}

std::uint64_t DeadlockDetector::begin_probe(
    const std::vector<wfg::Edge>& local_edges,
    const std::vector<SiteId>& other_sites, Clock::time_point now) {
  active_ = true;
  last_probe_ = now;
  probe_started_ = now;
  probe_id_ = next_probe_id_++;
  awaiting_.clear();
  awaiting_.insert(other_sites.begin(), other_sites.end());
  merged_ = wfg::WaitForGraph::from_edges(local_edges);
  return probe_id_;
}

std::optional<lock::TxnId> DeadlockDetector::add_reply(
    std::uint64_t probe, SiteId from, const std::vector<wfg::Edge>& edges) {
  if (!active_ || probe != probe_id_) return std::nullopt;  // stale reply
  merged_.merge(wfg::WaitForGraph::from_edges(edges));
  awaiting_.erase(from);
  if (!awaiting_.empty()) return std::nullopt;
  return resolve();
}

std::optional<lock::TxnId> DeadlockDetector::resolve_if_expired(
    Clock::time_point now) {
  if (!active_ || now - probe_started_ < reply_timeout_) return std::nullopt;
  return resolve();
}

lock::TxnId DeadlockDetector::resolve() {
  active_ = false;
  const lock::TxnId victim = merged_.newest_on_cycle();
  if (victim != 0) ++cycles_found_;
  return victim;
}

}  // namespace dtx::core
