#include "dtx/lock_manager.hpp"

#include <cassert>

#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using util::Code;
using util::Status;

LockManager::LockManager(lock::ProtocolKind protocol, DataManager& data,
                         std::size_t lock_shards)
    : protocol_(lock::make_protocol(protocol)),
      data_(data),
      table_(lock_shards) {}

OpOutcome LockManager::process_operation(TxnId txn, std::uint32_t op_index,
                                         const query::Plan& plan,
                                         SiteId waiter_coordinator) {
  OpOutcome outcome;

  // A fresh attempt supersedes any recorded wait state of this transaction.
  {
    sync::MutexLock wfg_lock(wfg_mutex_);
    graph_.clear_waiter(txn);
    unsubscribe_waiter_locked(txn);
  }

  // Queries latch the data shared (parallel reads); updates exclusive —
  // the latch spans lock-set computation AND execution so the tree the
  // protocol walked is the tree the operation runs on.
  const sync::ConditionalLatch latch(
      data_latch_, plan.is_update() ? sync::ConditionalLatch::Mode::kExclusive
                                    : sync::ConditionalLatch::Mode::kShared);

  auto context = data_.context_of(plan.doc());
  if (!context) {
    outcome.kind = OpOutcome::Kind::kFailed;
    outcome.error = context.status().to_string();
    return outcome;
  }

  // Compute the lock set under the protocol's rules. The plan's pre-match
  // hook spares insert lock-sets the per-execution fragment parse.
  auto requests =
      plan.is_update()
          ? protocol_->locks_for_update(plan.update(), context.value(),
                                        plan.prematch())
          : protocol_->locks_for_query(plan.query(), context.value());
  if (!requests) {
    outcome.kind = OpOutcome::Kind::kFailed;
    outcome.error = requests.status().to_string();
    return outcome;
  }

  // Acquire all-or-nothing (Alg. 3 l. 4). The table synchronizes itself.
  OpRecord record;
  record.doc = plan.doc();
  lock::AcquireOutcome acquired =
      table_.try_acquire_all(txn, requests.value(), &record.journal);
  if (!acquired.granted) {
    // Alg. 3 l. 8-13: record the wait-for edges; deadlock check; undo.
    conflicts_.fetch_add(1, std::memory_order_relaxed);
    sync::MutexLock wfg_lock(wfg_mutex_);
    graph_.add_edges(txn, acquired.conflicts);
    if (graph_.has_cycle()) {
      // Granting would deadlock locally; the operation reports it and the
      // scheduler aborts the transaction (Alg. 1 l. 19-20).
      local_deadlocks_.fetch_add(1, std::memory_order_relaxed);
      graph_.clear_waiter(txn);
      outcome.kind = OpOutcome::Kind::kDeadlock;
      outcome.blockers = std::move(acquired.conflicts);
      return outcome;
    }
    for (TxnId blocker : acquired.conflicts) {
      wake_subscriptions_.emplace(blocker,
                                  WakeNotice{txn, waiter_coordinator});
    }
    outcome.kind = OpOutcome::Kind::kConflict;
    outcome.blockers = std::move(acquired.conflicts);
    return outcome;
  }

  // Locks held: execute (Alg. 3 l. 6).
  if (plan.is_update()) {
    record.undo_token = data_.undo_checkpoint(txn, plan.doc());
    auto applied = data_.run_update(txn, plan);
    if (!applied) {
      // Structural failure: release this operation's locks and report.
      table_.rollback(txn, record.journal);
      outcome.kind = OpOutcome::Kind::kFailed;
      outcome.error = applied.status().to_string();
      return outcome;
    }
    record.did_update = true;
  } else {
    auto rows = data_.run_query(plan);
    if (!rows) {
      table_.rollback(txn, record.journal);
      outcome.kind = OpOutcome::Kind::kFailed;
      outcome.error = rows.status().to_string();
      return outcome;
    }
    outcome.rows = std::move(rows).value();
  }
  {
    sync::MutexLock records_lock(records_mutex_);
    op_records_[{txn, op_index}] = std::move(record);
  }
  operations_executed_.fetch_add(1, std::memory_order_relaxed);
  outcome.kind = OpOutcome::Kind::kExecuted;
  return outcome;
}

void LockManager::undo_operation(TxnId txn, std::uint32_t op_index) {
  OpRecord record;
  {
    sync::MutexLock records_lock(records_mutex_);
    const auto it = op_records_.find({txn, op_index});
    if (it == op_records_.end()) return;  // never executed here
    record = std::move(it->second);
    op_records_.erase(it);
  }
  if (record.did_update) {
    sync::ExclusiveLock write_latch(data_latch_);
    data_.undo_to(txn, record.doc, record.undo_token);
  }
  table_.rollback(txn, record.journal);
}

Status LockManager::commit(TxnId txn, std::vector<WakeNotice>& wakes) {
  std::vector<std::string> checkpoints;
  {
    sync::ExclusiveLock write_latch(data_latch_);
    Status status = data_.persist(txn, &checkpoints);
    if (!status) return status;
  }
  if (!checkpoints.empty()) {
    // Compaction runs under the *shared* latch: updates are excluded (the
    // committed tree is stable while it serializes) but same-site readers
    // proceed — the commit hot path itself stays O(delta).
    sync::SharedLock read_latch(data_latch_);
    data_.run_checkpoints(checkpoints);
  }
  table_.release_all(txn);
  drop_op_records(txn);
  sync::MutexLock wfg_lock(wfg_mutex_);
  graph_.remove_txn(txn);
  unsubscribe_waiter_locked(txn);
  collect_wakes_locked(txn, wakes);
  return Status::ok();
}

void LockManager::abort(TxnId txn, std::vector<WakeNotice>& wakes) {
  std::vector<std::string> checkpoints;
  {
    sync::ExclusiveLock write_latch(data_latch_);
    data_.undo_all(txn, &checkpoints);
  }
  if (!checkpoints.empty()) {
    // This rollback may have been the last live writer blocking a
    // deferred compaction.
    sync::SharedLock read_latch(data_latch_);
    data_.run_checkpoints(checkpoints);
  }
  table_.release_all(txn);
  drop_op_records(txn);
  sync::MutexLock wfg_lock(wfg_mutex_);
  graph_.remove_txn(txn);
  unsubscribe_waiter_locked(txn);
  collect_wakes_locked(txn, wakes);
}

void LockManager::clear_waiter(TxnId txn) {
  sync::MutexLock wfg_lock(wfg_mutex_);
  graph_.clear_waiter(txn);
  unsubscribe_waiter_locked(txn);
}

std::vector<wfg::Edge> LockManager::wfg_edges() {
  sync::MutexLock wfg_lock(wfg_mutex_);
  return graph_.edges();
}

LockManagerStats LockManager::stats() {
  LockManagerStats out;
  out.operations_executed =
      operations_executed_.load(std::memory_order_relaxed);
  out.conflicts = conflicts_.load(std::memory_order_relaxed);
  out.local_deadlocks = local_deadlocks_.load(std::memory_order_relaxed);
  out.lock_acquisitions = table_.acquisition_count();
  return out;
}

std::size_t LockManager::lock_entries() { return table_.entry_count(); }

std::size_t LockManager::undo_log_count() {
  sync::SharedLock latch(data_latch_);
  return data_.undo_log_count();
}

void LockManager::drop_op_records(TxnId txn) {
  sync::MutexLock records_lock(records_mutex_);
  // Keyed (txn, op_index): the transaction's records are one contiguous
  // range — O(log + own ops), not a scan of every live record.
  const auto begin = op_records_.lower_bound({txn, 0});
  auto end = begin;
  while (end != op_records_.end() && end->first.first == txn) ++end;
  op_records_.erase(begin, end);
}

void LockManager::collect_wakes_locked(TxnId released,
                                       std::vector<WakeNotice>& wakes) {
  const auto [begin, end] = wake_subscriptions_.equal_range(released);
  for (auto it = begin; it != end; ++it) wakes.push_back(it->second);
  wake_subscriptions_.erase(begin, end);
}

void LockManager::unsubscribe_waiter_locked(TxnId waiter) {
  for (auto it = wake_subscriptions_.begin();
       it != wake_subscriptions_.end();) {
    if (it->second.waiter == waiter) {
      it = wake_subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dtx::core
