#include "dtx/lock_manager.hpp"

#include <cassert>

#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using util::Code;
using util::Status;

LockManager::LockManager(lock::ProtocolKind protocol, DataManager& data)
    : protocol_(lock::make_protocol(protocol)), data_(data) {}

OpOutcome LockManager::process_operation(TxnId txn, std::uint32_t op_index,
                                         const txn::Operation& op,
                                         SiteId waiter_coordinator) {
  std::lock_guard<std::mutex> lock(mutex_);
  OpOutcome outcome;

  // A fresh attempt supersedes any recorded wait state of this transaction.
  graph_.clear_waiter(txn);
  unsubscribe_waiter(txn);

  auto context = data_.context_of(op.doc);
  if (!context) {
    outcome.kind = OpOutcome::Kind::kFailed;
    outcome.error = context.status().to_string();
    return outcome;
  }

  // Compute the lock set under the protocol's rules.
  auto requests =
      op.is_update()
          ? protocol_->locks_for_update(op.update, context.value())
          : protocol_->locks_for_query(op.query, context.value());
  if (!requests) {
    outcome.kind = OpOutcome::Kind::kFailed;
    outcome.error = requests.status().to_string();
    return outcome;
  }

  // Acquire all-or-nothing (Alg. 3 l. 4).
  OpRecord record;
  record.doc = op.doc;
  lock::AcquireOutcome acquired =
      table_.try_acquire_all(txn, requests.value(), &record.journal);
  if (!acquired.granted) {
    // Alg. 3 l. 8-13: record the wait-for edges; deadlock check; undo.
    ++stats_.conflicts;
    graph_.add_edges(txn, acquired.conflicts);
    if (graph_.has_cycle()) {
      // Granting would deadlock locally; the operation reports it and the
      // scheduler aborts the transaction (Alg. 1 l. 19-20).
      ++stats_.local_deadlocks;
      graph_.clear_waiter(txn);
      outcome.kind = OpOutcome::Kind::kDeadlock;
      outcome.blockers = std::move(acquired.conflicts);
      return outcome;
    }
    for (TxnId blocker : acquired.conflicts) {
      wake_subscriptions_.emplace(blocker,
                                  WakeNotice{txn, waiter_coordinator});
    }
    outcome.kind = OpOutcome::Kind::kConflict;
    outcome.blockers = std::move(acquired.conflicts);
    return outcome;
  }

  // Locks held: execute (Alg. 3 l. 6).
  record.undo_token = data_.undo_checkpoint(txn, op.doc);
  if (op.is_update()) {
    auto applied = data_.run_update(txn, op.doc, op.update);
    if (!applied) {
      // Structural failure: release this operation's locks and report.
      table_.rollback(txn, record.journal);
      outcome.kind = OpOutcome::Kind::kFailed;
      outcome.error = applied.status().to_string();
      return outcome;
    }
    record.did_update = true;
  } else {
    auto rows = data_.run_query(op.doc, op.query);
    if (!rows) {
      table_.rollback(txn, record.journal);
      outcome.kind = OpOutcome::Kind::kFailed;
      outcome.error = rows.status().to_string();
      return outcome;
    }
    outcome.rows = std::move(rows).value();
  }
  op_records_[{txn, op_index}] = std::move(record);
  ++stats_.operations_executed;
  stats_.lock_acquisitions = table_.acquisition_count();
  outcome.kind = OpOutcome::Kind::kExecuted;
  return outcome;
}

void LockManager::undo_operation(TxnId txn, std::uint32_t op_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = op_records_.find({txn, op_index});
  if (it == op_records_.end()) return;  // never executed here
  OpRecord& record = it->second;
  if (record.did_update) {
    data_.undo_to(txn, record.doc, record.undo_token);
  }
  table_.rollback(txn, record.journal);
  op_records_.erase(it);
}

Status LockManager::commit(TxnId txn, std::vector<WakeNotice>& wakes) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status status = data_.persist(txn);
  if (!status) return status;
  table_.release_all(txn);
  graph_.remove_txn(txn);
  drop_op_records(txn);
  unsubscribe_waiter(txn);
  collect_wakes(txn, wakes);
  return Status::ok();
}

void LockManager::abort(TxnId txn, std::vector<WakeNotice>& wakes) {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.undo_all(txn);
  table_.release_all(txn);
  graph_.remove_txn(txn);
  drop_op_records(txn);
  unsubscribe_waiter(txn);
  collect_wakes(txn, wakes);
}

void LockManager::clear_waiter(TxnId txn) {
  std::lock_guard<std::mutex> lock(mutex_);
  graph_.clear_waiter(txn);
  unsubscribe_waiter(txn);
}

std::vector<wfg::Edge> LockManager::wfg_edges() {
  std::lock_guard<std::mutex> lock(mutex_);
  return graph_.edges();
}

LockManagerStats LockManager::stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.lock_acquisitions = table_.acquisition_count();
  return stats_;
}

std::size_t LockManager::lock_entries() {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_.entry_count();
}

void LockManager::drop_op_records(TxnId txn) {
  for (auto it = op_records_.begin(); it != op_records_.end();) {
    if (it->first.first == txn) {
      it = op_records_.erase(it);
    } else {
      ++it;
    }
  }
}

void LockManager::collect_wakes(TxnId released,
                                std::vector<WakeNotice>& wakes) {
  const auto [begin, end] = wake_subscriptions_.equal_range(released);
  for (auto it = begin; it != end; ++it) wakes.push_back(it->second);
  wake_subscriptions_.erase(begin, end);
}

void LockManager::unsubscribe_waiter(TxnId waiter) {
  for (auto it = wake_subscriptions_.begin();
       it != wake_subscriptions_.end();) {
    if (it->second.waiter == waiter) {
      it = wake_subscriptions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dtx::core
