// Per-document redo log (WAL) with checkpoint markers — the durability
// format of the DataManager.
//
// Storage layout per document `d`:
//
//   d       — checkpoint snapshot: serialized XML of some committed version
//             (initially the bytes load_document placed = version 0).
//   d.~log  — append-only redo log. Two entry kinds:
//
//               R <version> <txn> <op_count> <payload_len> <payload_hash>\n
//               <payload>                  (one commit's update operations)
//
//               C <version> <snapshot_hash> <id_count> <id...>\n
//                                                  (checkpoint marker)
//
//             A commit record's payload is `<len> <op_text>\n` per
//             operation (the txn::Operation textual form, round-trippable
//             through txn::parse_operation); payload_len/payload_hash
//             frame it so a torn append is detected and dropped. A marker
//             carries the transaction ids of *every* commit inside the
//             snapshot, so compaction never erases commit identity.
//
// There is deliberately NO separate version sidecar: the version of the
// snapshot bytes is resolved by hashing them and finding the *last*
// checkpoint marker in the log with that hash. A checkpoint therefore is
// three ordered writes — append C marker, atomically replace the
// snapshot, compact the log down to the marker — and a crash between any
// two of them leaves a state this module resolves exactly:
//
//   * after the marker, before the snapshot: the bytes still hash to an
//     older marker (or to no marker = the initial version-0 load), so the
//     records between that older version and the log tail replay;
//   * after the snapshot, before compaction: the bytes hash to the new
//     marker; every record at or below it is skipped and the next repair
//     compacts them away.
//
// Commit durability is a single append of one R record — O(delta), never
// O(document) — and only *committed* operations are ever written, so no
// store state can capture a concurrent transaction's uncommitted changes
// (the bug class the former abort-time snapshot scrub existed to undo).
//
// The committed state of a document is snapshot + replayed log tail.
// Commits of *conflicting* transactions are ordered identically at every
// replica by strict 2PL; commits of non-conflicting ones (disjoint lock
// sets on the same document — their operations commute) may land in
// different orders, so a record's version number is a per-replica
// position, NOT a cross-replica identity. Cross-replica comparison is by
// committed-transaction-id *set*: the marker ids plus the tail record
// ids enumerate exactly which commits a replica holds, and recovery sync
// ships the records a rejoining replica is missing (renumbered onto its
// own tail — Cluster::restart_site).
//
// Known scale trade-off: a marker carries the document's full commit-id
// history, so marker size grows linearly with lifetime commits (8-20
// bytes per commit). Exact set membership is what makes full adoption
// able to re-apply a local-unique record without double-applying it; a
// production deployment would bound this with a pruning horizon (ids
// older than any replica could be lagging) and fall back to full
// adoption across the horizon. At this reproduction's scale (thousands
// of commits per document) the exact history is the right simplicity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataguide/dataguide.hpp"
#include "lock/lock_table.hpp"
#include "storage/storage.hpp"
#include "util/status.hpp"
#include "xml/document.hpp"

namespace dtx::core::wal {

/// Storage key of a document's redo log.
[[nodiscard]] inline std::string log_key(const std::string& doc) {
  return doc + ".~log";
}

/// Deterministic FNV-1a 64 of a byte string (snapshot + payload hashes).
[[nodiscard]] std::uint64_t fnv1a(const std::string& text) noexcept;

/// One parsed log entry: a commit record (kind kRecord, carrying the
/// committed update operations) or a checkpoint marker (kind kCheckpoint,
/// carrying the snapshot hash).
struct LogEntry {
  enum class Kind : std::uint8_t { kRecord, kCheckpoint };
  Kind kind = Kind::kRecord;
  std::uint64_t version = 0;  ///< post-commit / snapshot version
  std::uint64_t hash = 0;     ///< kCheckpoint: snapshot-bytes hash
  lock::TxnId txn = 0;        ///< kRecord: committing transaction
  std::vector<std::string> ops;  ///< kRecord: serialized update operations
  std::vector<lock::TxnId> ids;  ///< kCheckpoint: commits in the snapshot
  std::string raw;  ///< exact encoded bytes (repair / adoption re-writes)
};

/// Encodes a commit record (one append = one commit).
[[nodiscard]] std::string encode_record(std::uint64_t version,
                                        lock::TxnId txn,
                                        const std::vector<std::string>& ops);

/// Encodes a checkpoint marker line; `ids` are the transaction ids of
/// every commit the snapshot contains, in this replica's commit order.
[[nodiscard]] std::string encode_checkpoint(
    std::uint64_t version, std::uint64_t snapshot_hash,
    const std::vector<lock::TxnId>& ids);

/// Result of validating a raw log: the longest valid entry prefix. `torn`
/// is true when trailing bytes failed validation (torn append / garbage);
/// they are excluded and `valid_bytes` marks where the good prefix ends.
struct LogScan {
  std::vector<LogEntry> entries;
  std::size_t valid_bytes = 0;
  bool torn = false;
};
[[nodiscard]] LogScan scan_log(const std::string& raw);

/// The resolved durable state of one document: snapshot + the record tail
/// that replays on top of it.
struct DurableDoc {
  std::string snapshot;  ///< checkpoint bytes (version `checkpoint_version`)
  std::uint64_t checkpoint_version = 0;
  /// Transaction ids of the commits inside the snapshot (marker ids).
  std::vector<lock::TxnId> checkpoint_ids;
  std::string marker_raw;      ///< matched marker's exact bytes ("" = none)
  std::vector<LogEntry> tail;  ///< records checkpoint_version+1.., in order
  std::uint64_t version = 0;   ///< checkpoint_version + tail.size()
  bool torn_tail = false;      ///< log ended in a torn / invalid append
  /// Log holds entries the snapshot already covers (interrupted
  /// checkpoint) or invalid bytes — repair() compacts them away.
  bool needs_repair = false;
  /// False when snapshot and log disagree (bytes match no marker but the
  /// log starts past version 1) — only observable when racing a live
  /// writer's checkpoint; re-read.
  bool consistent = true;
};

/// Loads snapshot + log and resolves the crash windows documented above.
/// kNotFound when the document was never stored.
[[nodiscard]] util::Result<DurableDoc> read_durable_doc(
    storage::StorageBackend& store, const std::string& doc);

/// Rewrites the log to exactly match the resolved view: the checkpoint
/// marker (when one exists) followed by the valid record tail. Drops torn
/// bytes and already-checkpointed entries. No-op when nothing needs it.
util::Status repair(storage::StorageBackend& store, const std::string& doc,
                    const DurableDoc& durable);

/// Replays record operations onto a document through the normal update
/// applier, maintaining `guide` when given (the DataManager passes its
/// incrementally-maintained one; nullptr rebuilds none). Non-update
/// operations in a record are skipped — queries are never logged, and a
/// stray one has no effect to redo. `doc` labels error messages.
util::Status apply_records(const std::vector<LogEntry>& records,
                           xml::Document& document,
                           dataguide::DataGuide* guide,
                           const std::string& doc);

/// Parses the snapshot and replays the record tail: the committed
/// document. The parsed tree is what a restarted DataManager rebuilds.
[[nodiscard]] util::Result<std::unique_ptr<xml::Document>> replay(
    const DurableDoc& durable, const std::string& doc);

/// Committed document, materialized from the store (snapshot + replayed
/// tail) and re-serialized. The read-side counterpart of the O(delta)
/// commit path — used by replica audits and tests.
[[nodiscard]] util::Result<std::string> materialize(
    storage::StorageBackend& store, const std::string& doc);

/// Like replay(), but stops at commit `version`: parses the snapshot and
/// replays only the tail records at or below it — the document exactly as
/// it stood after that commit. kNotFound when the state is no longer
/// durable: a checkpoint compacted past `version`, or `version` is ahead
/// of the log head (stale read of a live log).
[[nodiscard]] util::Result<std::unique_ptr<xml::Document>> replay_to(
    const DurableDoc& durable, std::uint64_t version, const std::string& doc);

/// One historical committed version rebuilt from the store: snapshot +
/// replayed records up to `version`. The MVCC fallback for snapshot reads
/// whose target aged out of the in-memory version chain
/// (dtx/snapshot_store.hpp).
[[nodiscard]] util::Result<std::unique_ptr<xml::Document>> materialize_at(
    storage::StorageBackend& store, const std::string& doc,
    std::uint64_t version);

/// Durable commit version of `doc` in `store` (0 when absent) — the
/// replica-freshness comparison of the recovery sync.
[[nodiscard]] std::uint64_t durable_version(storage::StorageBackend& store,
                                            const std::string& doc);

}  // namespace dtx::core::wal
