#include "dtx/snapshot_store.hpp"

#include <utility>

#include "dtx/wal.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

namespace {

/// Materialized trees cached per document. Small on purpose: the common
/// shape is every reader at (or near) the committed head, so one or two
/// trees absorb almost all cuts; genuine laggards fall back to the WAL.
constexpr std::size_t kTreeCacheDepth = 4;

}  // namespace

SnapshotStore::SnapshotStore(storage::StorageBackend& store, bool enabled,
                             std::size_t chain_depth, std::size_t chain_bytes)
    : store_(store),
      enabled_(enabled),
      chain_depth_(chain_depth),
      chain_bytes_(chain_bytes) {}

void SnapshotStore::register_doc(const std::string& doc,
                                 std::uint64_t version) {
  sync::MutexLock lock(mutex_);
  auto it = docs_.find(doc);
  if (it == docs_.end()) {
    it = docs_.emplace(doc, std::make_unique<DocState>()).first;
  } else {
    // Re-registration (replica adoption): the cached trees and deltas
    // describe the replaced copy's version history, not the adopted one's.
    sync::MutexLock doc_lock(it->second->mutex);
    it->second->trees.clear();
    it->second->deltas.clear();
    total_chain_bytes_ -= it->second->delta_bytes;
    it->second->delta_bytes = 0;
  }
  it->second->committed = version;
}

void SnapshotStore::drop_doc(const std::string& doc) {
  std::unique_ptr<DocState> victim;
  {
    sync::MutexLock lock(mutex_);
    const auto it = docs_.find(doc);
    if (it == docs_.end()) return;
    victim = std::move(it->second);
    docs_.erase(it);
    {
      sync::MutexLock doc_lock(victim->mutex);
      victim->trees.clear();
      victim->deltas.clear();
      total_chain_bytes_ -= victim->delta_bytes;
      victim->delta_bytes = 0;
    }
    retired_.push_back(std::move(victim));
  }
}

void SnapshotStore::publish(std::vector<Delta> deltas) {
  if (!enabled_) return;
  sync::MutexLock lock(mutex_);
  for (Delta& delta : deltas) {
    auto it = docs_.find(delta.doc);
    if (it == docs_.end()) {
      it = docs_.emplace(delta.doc, std::make_unique<DocState>()).first;
    }
    DocState& state = *it->second;
    sync::MutexLock doc_lock(state.mutex);
    std::size_t bytes = 0;
    for (const std::string& op : delta.ops) bytes += op.size();
    state.deltas[delta.version] = DeltaRec{std::move(delta.ops), bytes};
    state.delta_bytes += bytes;
    total_chain_bytes_ += bytes;
    if (delta.version > state.committed) state.committed = delta.version;
    prune_chain(state);
    if (total_chain_bytes_ > chain_bytes_peak_) {
      chain_bytes_peak_ = total_chain_bytes_;
    }
  }
}

void SnapshotStore::prune_chain(DocState& state) {
  const auto drop_oldest = [&] {
    const auto oldest = state.deltas.begin();
    state.delta_bytes -= oldest->second.bytes;
    total_chain_bytes_ -= oldest->second.bytes;
    state.deltas.erase(oldest);
  };
  if (chain_depth_ != 0) {
    while (state.deltas.size() > chain_depth_) drop_oldest();
  }
  if (chain_bytes_ != 0) {
    while (state.delta_bytes > chain_bytes_ && !state.deltas.empty()) {
      drop_oldest();
    }
  }
}

void SnapshotStore::on_checkpoint(const std::string& doc,
                                  std::uint64_t version) {
  if (!enabled_) return;
  sync::MutexLock lock(mutex_);
  const auto it = docs_.find(doc);
  if (it == docs_.end()) return;
  DocState& state = *it->second;
  sync::MutexLock doc_lock(state.mutex);
  // The log was compacted to `version`: trees below it can no longer be
  // rebuilt from the store, and deltas at or below it can only extend
  // bases that are being pruned with them — drop both. Handed-out cuts
  // are unaffected (their shared_ptrs pin the trees); a cut captured but
  // not yet resolved across this boundary re-captures.
  while (!state.deltas.empty() && state.deltas.begin()->first <= version) {
    state.delta_bytes -= state.deltas.begin()->second.bytes;
    total_chain_bytes_ -= state.deltas.begin()->second.bytes;
    state.deltas.erase(state.deltas.begin());
  }
  while (!state.trees.empty() && state.trees.begin()->first < version) {
    state.trees.erase(state.trees.begin());
  }
}

SnapshotStore::TreePtr SnapshotStore::insert_tree(
    DocState& state, std::uint64_t version,
    std::shared_ptr<xml::Document> tree) {
  state.trees[version] = tree;
  while (state.trees.size() > kTreeCacheDepth) {
    state.trees.erase(state.trees.begin());
  }
  return TreePtr(std::move(tree));
}

Result<SnapshotStore::TreePtr> SnapshotStore::resolve(const std::string& doc,
                                                      DocState& state,
                                                      std::uint64_t version) {
  sync::MutexLock lock(state.mutex);
  const auto exact = state.trees.find(version);
  if (exact != state.trees.end()) {
    chain_hits_.fetch_add(1, std::memory_order_relaxed);
    return TreePtr(exact->second);
  }

  // Nearest older cached tree. If its delta chain up to `version` is
  // incomplete, any older base needs a superset of those deltas — so this
  // is the only candidate worth checking.
  auto below = state.trees.lower_bound(version);
  if (below != state.trees.begin()) {
    --below;
    bool complete = true;
    for (std::uint64_t v = below->first + 1; v <= version; ++v) {
      if (state.deltas.find(v) == state.deltas.end()) {
        complete = false;
        break;
      }
    }
    if (complete) {
      const std::uint64_t base_version = below->first;
      std::shared_ptr<xml::Document> tree;
      if (below->second.use_count() == 1) {
        // The cache is the sole owner: no handed-out cut can reach this
        // tree (handouts only happen under this mutex), so it advances in
        // place instead of being copied.
        tree = std::move(below->second);
        state.trees.erase(below);
      } else {
        clones_.fetch_add(1, std::memory_order_relaxed);
        tree = below->second->clone(doc);
      }
      std::vector<wal::LogEntry> records;
      records.reserve(static_cast<std::size_t>(version - base_version));
      for (std::uint64_t v = base_version + 1; v <= version; ++v) {
        wal::LogEntry entry;
        entry.version = v;
        entry.ops = state.deltas[v].ops;
        records.push_back(std::move(entry));
      }
      const Status applied = wal::apply_records(records, *tree, nullptr, doc);
      if (!applied) return applied;
      chain_hits_.fetch_add(1, std::memory_order_relaxed);
      return insert_tree(state, version, std::move(tree));
    }
  }

  // The chain cannot produce this version: rebuild from the durable log
  // (checkpoint snapshot + record prefix). kNotFound here means a
  // checkpoint compacted past `version` while the cut was in flight — the
  // caller re-captures a fresher cut.
  auto rebuilt = wal::materialize_at(store_, doc, version);
  if (!rebuilt) return rebuilt.status();
  materializes_.fetch_add(1, std::memory_order_relaxed);
  return insert_tree(state, version,
                     std::shared_ptr<xml::Document>(
                         std::move(rebuilt).value()));
}

Result<SnapshotStore::Cut> SnapshotStore::snapshot(
    const std::vector<std::string>& docs) {
  for (int attempt = 0;; ++attempt) {
    // Phase 1: capture every target version atomically. persist publishes
    // a whole transaction under the same mutex, so the captured vector is
    // a transaction-consistent cut.
    std::map<std::string, std::pair<DocState*, std::uint64_t>> targets;
    {
      sync::MutexLock lock(mutex_);
      for (const std::string& doc : docs) {
        const auto it = docs_.find(doc);
        if (it == docs_.end()) {
          return Status(Code::kNotFound,
                        "document '" + doc + "' is not stored at this site");
        }
        targets.emplace(
            doc, std::make_pair(it->second.get(), it->second->committed));
      }
    }
    // Phase 2: resolve each document at its captured version.
    Cut cut;
    Status error = Status::ok();
    for (auto& [doc, target] : targets) {
      auto tree = resolve(doc, *target.first, target.second);
      if (!tree) {
        error = tree.status();
        break;
      }
      cut.emplace(doc, DocView{target.second, std::move(tree).value()});
    }
    if (error) {  // Status converts to true on OK
      reads_.fetch_add(targets.size(), std::memory_order_relaxed);
      return cut;
    }
    if (attempt >= 2) return error;
    cut_retries_.fetch_add(1, std::memory_order_relaxed);
  }
}

SnapshotStats SnapshotStore::stats() const {
  SnapshotStats out;
  out.reads = reads_.load(std::memory_order_relaxed);
  out.chain_hits = chain_hits_.load(std::memory_order_relaxed);
  out.materializes = materializes_.load(std::memory_order_relaxed);
  out.clones = clones_.load(std::memory_order_relaxed);
  out.cut_retries = cut_retries_.load(std::memory_order_relaxed);
  {
    sync::MutexLock lock(mutex_);
    out.chain_bytes = total_chain_bytes_;
    out.chain_bytes_peak = chain_bytes_peak_;
  }
  return out;
}

}  // namespace dtx::core
