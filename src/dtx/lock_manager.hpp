// The site LockManager (paper §2.1): owns the lock table, the data /
// DataGuide representation and the lock-granting rules, and implements
// Algorithm 3 (process_operation): compute the protocol's lock set, acquire
// all-or-nothing, execute on success; on conflict record the wait-for edges
// and undo any partial effects.
//
// It additionally keeps:
//  * per-(transaction, operation) acquisition journals + undo checkpoints so
//    a distributed operation that failed to lock at another site can be
//    undone here alone (Alg. 1 l. 16);
//  * wake subscriptions: who must be notified when a blocking transaction
//    releases its locks (paper §2.2: waiting transactions "start executing
//    again" when the holder commits).
//
// Synchronization (multi-worker engine): the historical single monitor is
// gone. The lock table synchronizes itself (sharded — see
// lock/lock_table.hpp); this class adds three narrower locks:
//  * data_latch_   — reader/writer latch over the DataManager. Queries hold
//                    it shared across {lock-set computation + execution}, so
//                    compatible reads of the same site run in parallel;
//                    updates, undo, commit-persist (an O(delta) redo-log
//                    append) and abort hold it exclusive (the XML trees and
//                    DataGuides are not thread-safe under mutation).
//                    Checkpoint compaction — the only whole-document
//                    serialization left — runs under the *shared* latch
//                    (updates excluded, readers not), ordered internally by
//                    the DataManager's checkpoint mutex.
//  * wfg_mutex_    — wait-for graph + wake subscriptions.
//  * records_mutex_ — per-operation acquisition journals / undo tokens.
// Lock order when nested: data_latch_ -> (table shards) -> wfg_mutex_ /
// records_mutex_; the two leaf mutexes are never held together. The order
// is enforced by the lock-rank lattice in util/sync.hpp (ranks 50, 80, 90,
// 100).
//
// One semantic relaxation vs. the monitor: a release may interleave between
// a waiter's conflict detection and its wake subscription, losing that wake.
// The scheduler's retry backstop (SiteOptions::retry_interval) bounds the
// resulting stall; correctness is unaffected.
//
// MVCC bypass: read-only transactions never reach this class at all. The
// coordinator routes them to the snapshot path (dtx/snapshot_store.hpp),
// which serves immutable versioned trees published at commit — no lock-set
// computation, no table entries, no wait-for edges, so a read-only
// transaction can neither block an update nor appear in a deadlock cycle.
// Everything below concerns update transactions (and read-only ones only
// when SiteOptions::snapshot_reads is off).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtx/data_manager.hpp"
#include "lock/lock_table.hpp"
#include "lock/protocol.hpp"
#include "query/plan.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/sync.hpp"
#include "wfg/wait_for_graph.hpp"

namespace dtx::core {

using net::SiteId;

/// Outcome of Alg. 3 for one operation at one site.
struct OpOutcome {
  enum class Kind {
    kExecuted,  ///< locks granted, operation applied
    kConflict,  ///< blocked; wait-for edges recorded (transaction waits)
    kDeadlock,  ///< granting would close a local wait-for cycle
    kFailed,    ///< structural error (bad op, missing doc, apply failure)
  };
  Kind kind = Kind::kFailed;
  std::vector<std::string> rows;     ///< query results when executed
  std::vector<lock::TxnId> blockers; ///< conflicting transactions
  std::string error;                 ///< failure detail
};

/// Notification to send after a release: wake `waiter` at its coordinator.
struct WakeNotice {
  lock::TxnId waiter = 0;
  SiteId coordinator = 0;
};

struct LockManagerStats {
  std::uint64_t operations_executed = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t local_deadlocks = 0;
  std::uint64_t lock_acquisitions = 0;  // mirrors LockTable counter
};

class LockManager {
 public:
  /// `lock_shards` sizes the sharded lock table (1 = historical behavior).
  LockManager(lock::ProtocolKind protocol, DataManager& data,
              std::size_t lock_shards = 1);

  /// Algorithm 3, driven by a compiled plan (the caller resolves the
  /// operation through the site PlanCache, so retries and wait-mode
  /// re-executions never re-parse). `waiter_coordinator` is the coordinator
  /// site of the transaction (wake messages go there on conflict).
  /// Thread-safe; any number of scheduler workers may call it concurrently.
  OpOutcome process_operation(lock::TxnId txn, std::uint32_t op_index,
                              const query::Plan& plan,
                              SiteId waiter_coordinator);

  /// Undoes one operation's effects and releases the locks it acquired
  /// (Alg. 1 l. 16). Only valid for the transaction's most recent operation
  /// at this site.
  void undo_operation(lock::TxnId txn, std::uint32_t op_index);

  /// Commit at this site: persist, drop undo logs, release locks, clear
  /// wait-for state (Alg. 5 l. 10-11). Returns who to wake.
  util::Status commit(lock::TxnId txn, std::vector<WakeNotice>& wakes);

  /// Abort at this site: undo everything, release locks, clear wait-for
  /// state (Alg. 6 l. 13-14). Returns who to wake.
  void abort(lock::TxnId txn, std::vector<WakeNotice>& wakes);

  /// Drops the transaction's wait-for edges and wake subscriptions (called
  /// when it retries or terminates elsewhere).
  void clear_waiter(lock::TxnId txn);

  /// Snapshot of the local wait-for graph (Alg. 4 l. 4).
  [[nodiscard]] std::vector<wfg::Edge> wfg_edges();

  [[nodiscard]] LockManagerStats stats();

  /// Current lock-table entry count (diagnostics).
  [[nodiscard]] std::size_t lock_entries();

  /// Live undo logs in the DataManager, read under the data latch — safe
  /// at any time (the chaos invariant "undo logs drained": both this and
  /// lock_entries() must be 0 on a quiescent site).
  [[nodiscard]] std::size_t undo_log_count();

  /// The sharded lock table (internally synchronized; benches read its
  /// per-shard stats).
  [[nodiscard]] const lock::LockTable& table() const noexcept {
    return table_;
  }

  /// Exclusive hold on the data latch, for replica migration: adopting or
  /// dropping a document mutates the DataManager's document map, which no
  /// query or update may observe mid-change. The document itself is fenced
  /// (SiteContext::importing_docs) so no transaction state exists on it;
  /// the latch only excludes concurrent access to the shared containers.
  [[nodiscard]] sync::MovableExclusiveLock exclusive_data_latch() {
    return sync::MovableExclusiveLock(data_latch_);
  }

  [[nodiscard]] const char* protocol_name() const noexcept {
    return protocol_->name();
  }

 private:
  struct OpRecord {
    lock::AcquisitionJournal journal;
    std::string doc;
    std::size_t undo_token = 0;
    bool did_update = false;
  };

  std::unique_ptr<lock::LockProtocol> protocol_;
  DataManager& data_;
  lock::LockTable table_;

  /// Reader/writer latch over data_ (see file comment). The DataManager
  /// is guarded by convention, not GUARDED_BY: it is a separate class that
  /// cannot name this latch. The rank checker still orders it.
  sync::SharedMutex data_latch_{sync::LockRank::kDataLatch};

  sync::Mutex wfg_mutex_{sync::LockRank::kWaitForGraph};
  wfg::WaitForGraph graph_ DTX_GUARDED_BY(wfg_mutex_);
  // blocker -> subscribers waiting for its release.
  std::multimap<lock::TxnId, WakeNotice> wake_subscriptions_
      DTX_GUARDED_BY(wfg_mutex_);

  sync::Mutex records_mutex_{sync::LockRank::kLockRecords};
  std::map<std::pair<lock::TxnId, std::uint32_t>, OpRecord> op_records_
      DTX_GUARDED_BY(records_mutex_);

  std::atomic<std::uint64_t> operations_executed_{0};
  std::atomic<std::uint64_t> conflicts_{0};
  std::atomic<std::uint64_t> local_deadlocks_{0};

  void drop_op_records(lock::TxnId txn);
  void collect_wakes_locked(lock::TxnId released,
                            std::vector<WakeNotice>& wakes)
      DTX_REQUIRES(wfg_mutex_);
  void unsubscribe_waiter_locked(lock::TxnId waiter)
      DTX_REQUIRES(wfg_mutex_);
};

}  // namespace dtx::core
