// The DataManager (paper §2.1): "the component used by DTX to interact with
// the XML data storage structure. It is responsible for recovering XML data
// from the storage structure, converting it into a proper representation
// structure, and providing means for updating the data in the storage
// structure."
//
// Per document it keeps the in-memory tree plus its DataGuide, and per
// (transaction, document) an undo log + the transaction's committed *redo*
// operations. Durability is log-structured (dtx/wal.hpp): commit appends
// one framed record of the transaction's update operations to the
// document's redo log — O(delta) in the transaction, never O(document) —
// and a checkpoint policy (SiteOptions::checkpoint_interval /
// checkpoint_log_bytes) periodically compacts log + snapshot. The
// per-document commit version (record numbering) is replica-comparable
// under strict 2PL, which is what lets Cluster::restart_site ship a log
// suffix when a crashed site rejoins (recovery sync).
//
// Only committed operations ever reach the store, so no snapshot can
// capture a concurrent transaction's uncommitted changes: checkpoints are
// deferred while any live transaction holds an undo log on the document
// (the abort-time snapshot scrub this replaced is gone).
//
// NOT thread-safe on its own — the owning LockManager guards it behind a
// reader/writer latch (queries shared, updates / undo / persist exclusive;
// run_checkpoints is the one *shared*-latch mutator: it serializes a
// stable committed tree while readers proceed, internally ordered by a
// checkpoint mutex); see the synchronization note in dtx/lock_manager.hpp.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dataguide/dataguide.hpp"
#include "dtx/wal.hpp"
#include "lock/protocol.hpp"
#include "query/plan.hpp"
#include "storage/storage.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "xml/document.hpp"
#include "xupdate/undo_log.hpp"

namespace dtx::core {

using lock::TxnId;

class SnapshotStore;

class DataManager {
 public:
  /// `checkpoint_interval` / `checkpoint_log_bytes`: compact a document's
  /// redo log into a fresh snapshot after this many logged update
  /// operations / appended log bytes (0 disables that trigger; both 0 =
  /// never checkpoint, recovery replays the whole log). `snapshots`, when
  /// given, is the site's MVCC read layer: persist publishes every
  /// committed delta into it and checkpoints prune its version chains
  /// (dtx/snapshot_store.hpp).
  explicit DataManager(storage::StorageBackend& store,
                       std::size_t checkpoint_interval = 64,
                       std::size_t checkpoint_log_bytes = 1 << 20,
                       SnapshotStore* snapshots = nullptr);

  /// True for internal store keys (redo logs, the commit log, legacy
  /// version sidecars) — skipped by load_all / replica diffs.
  [[nodiscard]] static bool is_internal_key(const std::string& name);

  /// Recovers every document in the storage backend: repairs + parses the
  /// checkpoint snapshot, replays the redo-log tail (wal::read_durable_doc
  /// resolves every checkpoint crash window), builds the DataGuides.
  util::Status load_all();

  /// (Re)loads one document from the storage backend — the replica-adoption
  /// hook of the migration protocol. Same recovery path as load_all for a
  /// single name; an already-loaded entry is replaced (stale bytes from a
  /// pre-migration epoch). Call under the exclusive data latch with no live
  /// transaction state on the document (it must be fenced).
  util::Status load_document(const std::string& name);

  /// Drops one document from memory (replica dropped after migration).
  /// Same preconditions as load_document. The storage keys are the
  /// caller's to remove.
  void drop_document(const std::string& name);

  [[nodiscard]] bool has_document(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> documents() const;

  /// Lock-protocol view of one document (scope id, tree, guide).
  [[nodiscard]] util::Result<lock::DocContext> context_of(
      const std::string& name);

  /// Runs a compiled query plan; returns the matched string values.
  util::Result<std::vector<std::string>> run_query(const query::Plan& plan);

  /// Applies a compiled update plan on behalf of `txn`, maintaining the
  /// DataGuide, the transaction's undo log and its redo operation list.
  /// Returns the number of affected nodes.
  util::Result<std::size_t> run_update(TxnId txn, const query::Plan& plan);

  /// Checkpoint token of txn's undo log on `doc` (for per-operation undo).
  [[nodiscard]] std::size_t undo_checkpoint(TxnId txn, const std::string& doc);

  /// Rolls txn's changes on `doc` back to `token` (undo log + redo list).
  void undo_to(TxnId txn, const std::string& doc, std::size_t token);

  /// Rolls back everything txn changed at this site (Alg. 6 l. 13). Purely
  /// in-memory — no store write can contain uncommitted state. Documents
  /// whose deferred checkpoint became runnable are appended to
  /// `checkpoint_due` (run them via run_checkpoints under a shared latch).
  void undo_all(TxnId txn, std::vector<std::string>* checkpoint_due = nullptr);

  /// Commit durability (Alg. 5 l. 10): appends one redo-log record per
  /// touched document — the transaction's committed update operations,
  /// O(delta) — bumps the commit versions and drops the undo logs.
  /// Documents due for a checkpoint are appended to `checkpoint_due`.
  util::Status persist(TxnId txn,
                       std::vector<std::string>* checkpoint_due = nullptr);

  /// Compacts the named documents' logs into fresh snapshots. Call under a
  /// *shared* data latch: updates are excluded (the committed tree is
  /// stable) while same-site readers proceed — whole-document
  /// serialization never blocks queries. A document some live transaction
  /// is writing is skipped and retried at that transaction's finish.
  void run_checkpoints(const std::vector<std::string>& docs);

  /// Total number of live document nodes at this site (sizing metric).
  [[nodiscard]] std::size_t total_nodes() const;

  /// Total number of DataGuide nodes at this site.
  [[nodiscard]] std::size_t total_guide_nodes() const;

  /// Commit version of a loaded document (0 when unknown).
  [[nodiscard]] std::uint64_t version_of(const std::string& doc) const;

  /// Number of live undo logs — the chaos invariant "undo logs drained"
  /// (every one belongs to an in-flight transaction; 0 when quiescent).
  [[nodiscard]] std::size_t undo_log_count() const {
    return txn_states_.size();
  }

 private:
  struct DocEntry {
    std::uint64_t scope = 0;
    std::uint64_t version = 0;  ///< commits persisted (count; per-replica)
    /// Transaction ids of every persisted commit, in this replica's
    /// commit order — written into checkpoint markers so compaction never
    /// erases commit identity (the recovery sync compares replicas by
    /// this set, not by version position).
    std::vector<TxnId> history;
    /// Redo-log growth since the last checkpoint (the compaction policy).
    std::size_t log_ops = 0;
    std::size_t log_bytes = 0;
    /// Compaction due but deferred (store failure or live writers at the
    /// time); retried at the next commit / abort touching the document.
    bool checkpoint_pending = false;
    std::unique_ptr<xml::Document> document;
    std::unique_ptr<dataguide::DataGuide> guide;
  };

  /// Per-(transaction, document) execution state: the undo log, the redo
  /// operations committed so far (their textual form — the wire format,
  /// re-parsed on replay), and the undo-token -> redo-length marks that
  /// keep the two aligned when a single operation is undone (Alg. 1
  /// l. 16).
  struct TxnDocState {
    xupdate::UndoLog undo;
    std::vector<std::string> redo;
    std::map<std::size_t, std::size_t> redo_marks;
  };

  DocEntry* entry_of(const std::string& name);
  /// The (txn, doc) state, created on first use (tracked in docs_of_txn_
  /// and live_writers_ so per-transaction cleanup is O(touched docs) and
  /// checkpoints know which documents carry uncommitted changes).
  TxnDocState& state_of(TxnId txn, const std::string& doc);
  /// Serialize + checkpoint one entry (marker append, snapshot replace,
  /// log compaction). Caller must hold checkpoint_mutex_ or be
  /// single-threaded (load_all).
  void checkpoint_doc(const std::string& doc, DocEntry& entry);
  /// Flags the entry when the compaction policy triggers; appends to
  /// `due` when the checkpoint can run now (no live writers).
  void note_checkpoint_policy(const std::string& doc, DocEntry& entry,
                              std::vector<std::string>* due);

  storage::StorageBackend& store_;
  const std::size_t checkpoint_interval_;
  const std::size_t checkpoint_log_bytes_;
  SnapshotStore* const snapshots_;  ///< MVCC read layer; may be null
  std::map<std::string, DocEntry> documents_;
  std::uint64_t next_scope_ = 1;
  std::map<std::pair<TxnId, std::string>, TxnDocState> txn_states_;
  /// Reverse indexes of txn_states_: by transaction (O(touched-docs)
  /// cleanup at commit / abort) and by document (live-writer counts — a
  /// document with any is not checkpointable yet).
  std::map<TxnId, std::set<std::string>> docs_of_txn_;
  std::map<std::string, std::size_t> live_writers_;
  /// Orders concurrent run_checkpoints callers (each holds the data latch
  /// shared). Storage and snapshot-store mutexes are acquired under it
  /// (checkpoint_doc compacts the log and prunes the version chains).
  sync::Mutex checkpoint_mutex_{sync::LockRank::kCheckpoint};
};

}  // namespace dtx::core
