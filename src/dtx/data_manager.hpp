// The DataManager (paper §2.1): "the component used by DTX to interact with
// the XML data storage structure. It is responsible for recovering XML data
// from the storage structure, converting it into a proper representation
// structure, and providing means for updating the data in the storage
// structure."
//
// Per document it keeps the in-memory tree plus its DataGuide, and per
// (transaction, document) an undo log. Committed state is written through to
// the storage backend at commit time (Alg. 5 l. 10), together with a
// monotonically increasing per-document *commit version* (a sidecar entry,
// version_key()). Strict 2PL serializes commits per document identically at
// every replica, so equal versions mean equal bytes — which is what lets
// Cluster::restart_site pick the freshest replica when a crashed site
// rejoins (recovery sync).
//
// NOT thread-safe on its own — the owning LockManager guards it behind a
// reader/writer latch (queries shared, updates / undo / persist exclusive);
// see the synchronization note in dtx/lock_manager.hpp.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "dataguide/dataguide.hpp"
#include "lock/protocol.hpp"
#include "query/plan.hpp"
#include "storage/storage.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/status.hpp"
#include "xml/document.hpp"
#include "xupdate/undo_log.hpp"

namespace dtx::core {

using lock::TxnId;

class DataManager {
 public:
  explicit DataManager(storage::StorageBackend& store);

  /// Storage key of a document's commit-stamp sidecar ("<version> <hash>";
  /// the hash is of the document bytes, letting the recovery sync verify
  /// it read a consistent version/bytes pair from a live peer).
  [[nodiscard]] static std::string version_key(const std::string& doc) {
    return doc + ".~v";
  }
  /// True for internal sidecar keys (skipped by load_all / replica diffs).
  [[nodiscard]] static bool is_internal_key(const std::string& name);
  /// Commit version recorded in a store for `doc` (0 when absent) — usable
  /// without loading the document (recovery sync reads peers this way).
  [[nodiscard]] static std::uint64_t stored_version(
      storage::StorageBackend& store, const std::string& doc);
  /// Full sidecar stamp; `has_hash` is false for pre-stamp sidecars and
  /// missing entries.
  struct StoredStamp {
    std::uint64_t version = 0;
    std::uint64_t hash = 0;
    bool has_hash = false;
  };
  [[nodiscard]] static StoredStamp stored_stamp(
      storage::StorageBackend& store, const std::string& doc);
  /// Deterministic FNV-1a of the serialized bytes (stable across runs).
  [[nodiscard]] static std::uint64_t content_hash(
      const std::string& text) noexcept;

  /// Loads and parses every document in the storage backend, building the
  /// DataGuides.
  util::Status load_all();

  [[nodiscard]] bool has_document(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> documents() const;

  /// Lock-protocol view of one document (scope id, tree, guide).
  [[nodiscard]] util::Result<lock::DocContext> context_of(
      const std::string& name);

  /// Runs a compiled query plan; returns the matched string values.
  util::Result<std::vector<std::string>> run_query(const query::Plan& plan);

  /// Applies a compiled update plan on behalf of `txn`, maintaining the
  /// DataGuide and the transaction's undo log. Returns the number of
  /// affected nodes.
  util::Result<std::size_t> run_update(TxnId txn, const query::Plan& plan);

  /// Checkpoint token of txn's undo log on `doc` (for per-operation undo).
  [[nodiscard]] std::size_t undo_checkpoint(TxnId txn, const std::string& doc);

  /// Rolls txn's changes on `doc` back to `token`.
  void undo_to(TxnId txn, const std::string& doc, std::size_t token);

  /// Rolls back everything txn changed at this site (Alg. 6 l. 13).
  void undo_all(TxnId txn);

  /// Persists every document txn touched and drops its undo logs
  /// (Alg. 5 l. 10).
  util::Status persist(TxnId txn);

  /// Total number of live document nodes at this site (sizing metric).
  [[nodiscard]] std::size_t total_nodes() const;

  /// Total number of DataGuide nodes at this site.
  [[nodiscard]] std::size_t total_guide_nodes() const;

  /// Commit version of a loaded document (0 when unknown).
  [[nodiscard]] std::uint64_t version_of(const std::string& doc) const;

  /// Number of live undo logs — the chaos invariant "undo logs drained"
  /// (every one belongs to an in-flight transaction; 0 when quiescent).
  [[nodiscard]] std::size_t undo_log_count() const {
    return undo_logs_.size();
  }

 private:
  struct DocEntry {
    std::uint64_t scope = 0;
    std::uint64_t version = 0;  ///< commits persisted (replica-identical)
    /// Store writes of this document (commits + scrub re-writes): lets an
    /// undo know whether a snapshot taken since the transaction's first
    /// update might contain its now-rolled-back changes.
    std::uint64_t persist_serial = 0;
    std::unique_ptr<xml::Document> document;
    std::unique_ptr<dataguide::DataGuide> guide;
  };

  DocEntry* entry_of(const std::string& name);

  /// Re-writes the current tree to the store without bumping the commit
  /// version: scrubs rolled-back changes out of a snapshot that another
  /// transaction's whole-document persist captured while they were live.
  void scrub_snapshot(const std::string& doc, DocEntry& entry);
  /// Scrub when any store write of `doc` happened since `txn` first
  /// changed it (otherwise no snapshot can contain the undone changes).
  void maybe_scrub(TxnId txn, const std::string& doc);

  storage::StorageBackend& store_;
  std::map<std::string, DocEntry> documents_;
  std::uint64_t next_scope_ = 1;
  // Undo logs per (transaction, document); dirty set drives persist().
  std::map<std::pair<TxnId, std::string>, xupdate::UndoLog> undo_logs_;
  std::map<TxnId, std::set<std::string>> touched_;
  /// persist_serial of the document when the transaction first updated it.
  std::map<std::pair<TxnId, std::string>, std::uint64_t> first_update_serial_;
};

}  // namespace dtx::core
