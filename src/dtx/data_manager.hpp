// The DataManager (paper §2.1): "the component used by DTX to interact with
// the XML data storage structure. It is responsible for recovering XML data
// from the storage structure, converting it into a proper representation
// structure, and providing means for updating the data in the storage
// structure."
//
// Per document it keeps the in-memory tree plus its DataGuide, and per
// (transaction, document) an undo log. Committed state is written through to
// the storage backend at commit time (Alg. 5 l. 10).
//
// NOT thread-safe on its own — the owning LockManager guards it behind a
// reader/writer latch (queries shared, updates / undo / persist exclusive);
// see the synchronization note in dtx/lock_manager.hpp.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "dataguide/dataguide.hpp"
#include "lock/protocol.hpp"
#include "query/plan.hpp"
#include "storage/storage.hpp"
#include "txn/operation.hpp"
#include "txn/transaction.hpp"
#include "util/status.hpp"
#include "xml/document.hpp"
#include "xupdate/undo_log.hpp"

namespace dtx::core {

using lock::TxnId;

class DataManager {
 public:
  explicit DataManager(storage::StorageBackend& store);

  /// Loads and parses every document in the storage backend, building the
  /// DataGuides.
  util::Status load_all();

  [[nodiscard]] bool has_document(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> documents() const;

  /// Lock-protocol view of one document (scope id, tree, guide).
  [[nodiscard]] util::Result<lock::DocContext> context_of(
      const std::string& name);

  /// Runs a compiled query plan; returns the matched string values.
  util::Result<std::vector<std::string>> run_query(const query::Plan& plan);

  /// Applies a compiled update plan on behalf of `txn`, maintaining the
  /// DataGuide and the transaction's undo log. Returns the number of
  /// affected nodes.
  util::Result<std::size_t> run_update(TxnId txn, const query::Plan& plan);

  /// Checkpoint token of txn's undo log on `doc` (for per-operation undo).
  [[nodiscard]] std::size_t undo_checkpoint(TxnId txn, const std::string& doc);

  /// Rolls txn's changes on `doc` back to `token`.
  void undo_to(TxnId txn, const std::string& doc, std::size_t token);

  /// Rolls back everything txn changed at this site (Alg. 6 l. 13).
  void undo_all(TxnId txn);

  /// Persists every document txn touched and drops its undo logs
  /// (Alg. 5 l. 10).
  util::Status persist(TxnId txn);

  /// Total number of live document nodes at this site (sizing metric).
  [[nodiscard]] std::size_t total_nodes() const;

  /// Total number of DataGuide nodes at this site.
  [[nodiscard]] std::size_t total_guide_nodes() const;

 private:
  struct DocEntry {
    std::uint64_t scope = 0;
    std::unique_ptr<xml::Document> document;
    std::unique_ptr<dataguide::DataGuide> guide;
  };

  DocEntry* entry_of(const std::string& name);

  storage::StorageBackend& store_;
  std::map<std::string, DocEntry> documents_;
  std::uint64_t next_scope_ = 1;
  // Undo logs per (transaction, document); dirty set drives persist().
  std::map<std::pair<TxnId, std::string>, xupdate::UndoLog> undo_logs_;
  std::map<TxnId, std::set<std::string>> touched_;
};

}  // namespace dtx::core
