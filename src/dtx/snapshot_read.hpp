// Site-side execution of one snapshot-read request: resolve the query
// plans through the site plan cache, capture one consistent cut from the
// SnapshotStore and evaluate every query against the immutable trees.
// Zero LockManager involvement — no locks, no wait-for entries, no undo
// logs. Shared by the Participant handler (remote serving) and the
// Coordinator's local snapshot path, so both execute identically.
#pragma once

#include "dtx/site_context.hpp"

namespace dtx::core {

/// Serves `ops` (all queries, positions `op_indices` in transaction `txn`)
/// against this site's versioned snapshots. `epoch` is the catalog epoch
/// the coordinator routed under — a mismatch with the local catalog, a
/// document this site no longer hosts, or a replica still importing all
/// reject with retryable kStaleCatalog. Never throws; failures come back
/// as `ok = false` with a typed reason.
[[nodiscard]] net::SnapshotReadReply serve_snapshot_read(
    SiteContext& ctx, lock::TxnId txn, std::uint64_t epoch,
    const std::vector<std::uint32_t>& op_indices,
    const std::vector<txn::Operation>& ops);

}  // namespace dtx::core
