#include "dtx/participant.hpp"

#include "util/log.hpp"

namespace dtx::core {

using net::Message;

namespace {

/// Transaction a participant request belongs to (all five request kinds
/// carry one).
lock::TxnId request_txn(const Message& message) {
  return std::visit(
      [](const auto& payload) -> lock::TxnId {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                      std::is_same_v<T, net::UndoOperation> ||
                      std::is_same_v<T, net::CommitRequest> ||
                      std::is_same_v<T, net::AbortRequest> ||
                      std::is_same_v<T, net::FailNotice>) {
          return payload.txn;
        } else {
          return 0;
        }
      },
      message.payload);
}

}  // namespace

void Participant::run() {
  while (ctx_.running.load()) {
    Message message;
    lock::TxnId txn = 0;
    {
      std::unique_lock<std::mutex> lock(ctx_.part_mutex);
      // First message whose transaction no other worker is on: serving in
      // this order keeps per-transaction requests serial and in arrival
      // order (see SiteContext::participant_active).
      const auto serviceable = [&] {
        auto it = ctx_.participant_queue.begin();
        for (; it != ctx_.participant_queue.end(); ++it) {
          if (ctx_.participant_active.count(request_txn(*it)) == 0) break;
        }
        return it;
      };
      ctx_.part_cv.wait_for(lock, ctx_.options.poll_interval, [&] {
        return !ctx_.running.load() ||
               serviceable() != ctx_.participant_queue.end();
      });
      if (!ctx_.running.load()) return;
      const auto it = serviceable();
      if (it == ctx_.participant_queue.end()) continue;
      txn = request_txn(*it);
      message = std::move(*it);
      ctx_.participant_queue.erase(it);
      ctx_.participant_active.insert(txn);
    }
    std::visit(
        [&](auto&& payload) {
          using T = std::decay_t<decltype(payload)>;
          if constexpr (std::is_same_v<T, net::ExecuteOperation>) {
            handle_execute(payload);
          } else if constexpr (std::is_same_v<T, net::UndoOperation>) {
            handle_undo(payload);
          } else if constexpr (std::is_same_v<T, net::CommitRequest>) {
            handle_commit(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::AbortRequest>) {
            handle_abort(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::FailNotice>) {
            handle_fail(payload);
          }
        },
        message.payload);
    {
      std::lock_guard<std::mutex> lock(ctx_.part_mutex);
      ctx_.participant_active.erase(txn);
    }
    ctx_.part_cv.notify_all();
  }
}

void Participant::handle_execute(const net::ExecuteOperation& request) {
  // Alg. 2 l. 4-13.
  {
    std::lock_guard<std::mutex> lock(ctx_.stats_mutex);
    ++ctx_.stats.remote_ops_processed;
  }
  net::OperationResult reply;
  reply.txn = request.txn;
  reply.op_index = request.op_index;
  reply.attempt = request.attempt;

  // Resolve the typed operation through the site plan cache: wait-mode
  // re-executions (attempt > 1) and repeated workload operations run the
  // cached plan — no parsing happens on this path.
  auto plan = ctx_.plans.resolve(request.op);
  if (!plan) {
    reply.failed = true;
    reply.reason = txn::AbortReason::kParseError;
    reply.error = plan.status().to_string();
  } else {
    OpOutcome outcome = ctx_.locks.process_operation(
        request.txn, request.op_index, *plan.value(), request.coordinator);
    switch (outcome.kind) {
      case OpOutcome::Kind::kExecuted:
        reply.executed = true;
        reply.rows = std::move(outcome.rows);
        break;
      case OpOutcome::Kind::kConflict:
        reply.lock_conflict = true;
        break;
      case OpOutcome::Kind::kDeadlock:
        reply.deadlock = true;
        break;
      case OpOutcome::Kind::kFailed:
        reply.failed = true;
        reply.reason = txn::AbortReason::kUnprocessableUpdate;
        reply.error = std::move(outcome.error);
        break;
    }
  }
  ctx_.send(request.coordinator, std::move(reply));
}

void Participant::handle_undo(const net::UndoOperation& request) {
  ctx_.locks.undo_operation(request.txn, request.op_index);
}

void Participant::handle_commit(const net::CommitRequest& request,
                                SiteId from) {
  std::vector<WakeNotice> wakes;
  const util::Status status = ctx_.locks.commit(request.txn, wakes);
  ctx_.send(from, net::CommitAck{request.txn, status.is_ok()});
  ctx_.send_wakes(wakes);
}

void Participant::handle_abort(const net::AbortRequest& request, SiteId from) {
  std::vector<WakeNotice> wakes;
  ctx_.locks.abort(request.txn, wakes);
  ctx_.send(from, net::AbortAck{request.txn, true});
  ctx_.send_wakes(wakes);
}

void Participant::handle_fail(const net::FailNotice& request) {
  std::vector<WakeNotice> wakes;
  ctx_.locks.abort(request.txn, wakes);
  ctx_.send_wakes(wakes);
}

}  // namespace dtx::core
