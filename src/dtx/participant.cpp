#include "dtx/participant.hpp"

#include "dtx/snapshot_read.hpp"
#include "util/log.hpp"

namespace dtx::core {

using net::Message;

namespace {

/// Transaction a participant request belongs to (all six request kinds
/// carry one).
lock::TxnId request_txn(const Message& message) {
  return std::visit(
      [](const auto& payload) -> lock::TxnId {
        using T = std::decay_t<decltype(payload)>;
        if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                      std::is_same_v<T, net::SnapshotReadRequest> ||
                      std::is_same_v<T, net::UndoOperation> ||
                      std::is_same_v<T, net::CommitRequest> ||
                      std::is_same_v<T, net::AbortRequest> ||
                      std::is_same_v<T, net::FailNotice> ||
                      std::is_same_v<T, net::TxnStatusReply>) {
          return payload.txn;
        } else {
          return 0;
        }
      },
      message.payload);
}

}  // namespace

void Participant::run() {
  while (ctx_.running.load()) {
    Message message;
    lock::TxnId txn = 0;
    {
      sync::UniqueLock lock(ctx_.part_mutex);
      // First message whose transaction no other worker is on: serving in
      // this order keeps per-transaction requests serial and in arrival
      // order (see SiteContext::participant_active).
      const auto serviceable = [&] {
        auto it = ctx_.participant_queue.begin();
        for (; it != ctx_.participant_queue.end(); ++it) {
          if (ctx_.participant_active.count(request_txn(*it)) == 0) break;
        }
        return it;
      };
      ctx_.part_cv.wait_for(ctx_.part_mutex, ctx_.options.poll_interval, [&] {
        return !ctx_.running.load() ||
               serviceable() != ctx_.participant_queue.end();
      });
      if (!ctx_.running.load()) return;
      const auto it = serviceable();
      if (it == ctx_.participant_queue.end()) continue;
      txn = request_txn(*it);
      message = std::move(*it);
      ctx_.participant_queue.erase(it);
      ctx_.participant_active.insert(txn);
    }
    std::visit(
        [&](auto&& payload) {
          using T = std::decay_t<decltype(payload)>;
          if constexpr (std::is_same_v<T, net::ExecuteOperation>) {
            handle_execute(payload);
          } else if constexpr (std::is_same_v<T, net::SnapshotReadRequest>) {
            handle_snapshot_read(payload);
          } else if constexpr (std::is_same_v<T, net::UndoOperation>) {
            handle_undo(payload);
          } else if constexpr (std::is_same_v<T, net::CommitRequest>) {
            handle_commit(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::AbortRequest>) {
            handle_abort(payload, message.from);
          } else if constexpr (std::is_same_v<T, net::FailNotice>) {
            handle_fail(payload);
          } else if constexpr (std::is_same_v<T, net::TxnStatusReply>) {
            handle_status_reply(payload);
          }
        },
        message.payload);
    {
      sync::MutexLock lock(ctx_.part_mutex);
      ctx_.participant_active.erase(txn);
    }
    ctx_.part_cv.notify_all();
  }
}

void Participant::handle_snapshot_read(const net::SnapshotReadRequest& request) {
  gossip_catalog(request.coordinator, request.epoch);
  // No remote_txns entry and no reply cache: the read leaves no state at
  // this site, so there is nothing for a lost reply to double-apply — the
  // coordinator simply times out and aborts (retryable, kSiteFailure).
  ctx_.send(request.coordinator,
            serve_snapshot_read(ctx_, request.txn, request.epoch,
                                request.op_indices, request.ops));
}

void Participant::gossip_catalog(SiteId peer, std::uint64_t peer_epoch) {
  const std::uint64_t local = ctx_.catalog.epoch();
  if (peer_epoch == local || net::is_client_id(peer) ||
      peer == ctx_.options.id) {
    return;
  }
  if (peer_epoch < local) {
    const Catalog::View view = ctx_.catalog.view();
    ctx_.send(peer, net::CatalogUpdate{view->epoch, view->to_text(),
                                       ctx_.options.id});
  } else {
    ctx_.send(peer, net::JoinRequest{ctx_.options.id, ""});
  }
}

void Participant::handle_execute(const net::ExecuteOperation& request) {
  // Alg. 2 l. 4-13.
  // Membership fence first, before any state is created for the
  // transaction: a request routed under a different catalog epoch — or one
  // targeting a replica this site is still importing — is rejected
  // retryably, leaving nothing for the orphan sweep to clean up.
  if (request.epoch != ctx_.catalog.epoch() ||
      ctx_.is_importing(request.op.doc)) {
    net::OperationResult reply;
    reply.txn = request.txn;
    reply.op_index = request.op_index;
    reply.attempt = request.attempt;
    reply.failed = true;
    reply.reason = txn::AbortReason::kStaleCatalog;
    reply.error = "catalog epoch " + std::to_string(request.epoch) +
                  " is stale at site " + std::to_string(ctx_.options.id);
    {
      sync::MutexLock lock(ctx_.stats_mutex);
      ++ctx_.stats.stale_catalog_aborts;
    }
    ctx_.send(request.coordinator, std::move(reply));
    gossip_catalog(request.coordinator, request.epoch);
    return;
  }
  {
    // Track the transaction for the presumed-abort orphan sweep, and
    // answer duplicated deliveries (FaultPlan duplication) from the reply
    // cache: re-running an already-executed update would apply its effects
    // twice. Only a *newer* attempt (wait-mode re-execution after an undo)
    // reaches the lock manager again.
    sync::MutexLock lock(ctx_.part_mutex);
    SiteContext::RemoteTxn& record = ctx_.remote_txns[request.txn];
    record.coordinator = request.coordinator;
    record.epoch = request.epoch;
    record.last_seen = SiteContext::Clock::now();
    record.unanswered_probes = 0;
    const auto cached = record.last_replies.find(request.op_index);
    if (cached != record.last_replies.end() &&
        cached->second.attempt >= request.attempt) {
      ctx_.send(request.coordinator, cached->second);
      return;
    }
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.remote_ops_processed;
  }
  // A newer attempt supersedes whatever the previous one left here. The
  // coordinator does send UndoOperation before re-executing (Alg. 1
  // l. 16), but that message can be lost — re-applying on top of the
  // un-undone first attempt would double the operation's effects at this
  // replica only.
  ctx_.locks().undo_operation(request.txn, request.op_index);
  net::OperationResult reply;
  reply.txn = request.txn;
  reply.op_index = request.op_index;
  reply.attempt = request.attempt;

  // Resolve the typed operation through the site plan cache: wait-mode
  // re-executions (attempt > 1) and repeated workload operations run the
  // cached plan — no parsing happens on this path.
  auto plan = ctx_.plans().resolve(request.op);
  if (!plan) {
    reply.failed = true;
    reply.reason = txn::AbortReason::kParseError;
    reply.error = plan.status().to_string();
  } else {
    OpOutcome outcome = ctx_.locks().process_operation(
        request.txn, request.op_index, *plan.value(), request.coordinator);
    switch (outcome.kind) {
      case OpOutcome::Kind::kExecuted:
        reply.executed = true;
        reply.rows = std::move(outcome.rows);
        break;
      case OpOutcome::Kind::kConflict:
        reply.lock_conflict = true;
        break;
      case OpOutcome::Kind::kDeadlock:
        reply.deadlock = true;
        break;
      case OpOutcome::Kind::kFailed:
        reply.failed = true;
        reply.reason = txn::AbortReason::kUnprocessableUpdate;
        reply.error = std::move(outcome.error);
        break;
    }
  }
  {
    sync::MutexLock lock(ctx_.part_mutex);
    const auto it = ctx_.remote_txns.find(request.txn);
    if (it != ctx_.remote_txns.end()) {
      it->second.last_seen = SiteContext::Clock::now();
      it->second.last_replies[request.op_index] = reply;
    }
  }
  ctx_.send(request.coordinator, std::move(reply));
}

void Participant::handle_undo(const net::UndoOperation& request) {
  touch_remote_txn(request.txn);
  ctx_.locks().undo_operation(request.txn, request.op_index);
}

void Participant::handle_commit(const net::CommitRequest& request,
                                SiteId from) {
  // Idempotent: a duplicated or resent CommitRequest for a transaction
  // with no state here (already committed, or lost to a crash+restart)
  // persists nothing and acks ok — the coordinator's commit decision is
  // final either way.
  std::vector<WakeNotice> wakes;
  const util::Status status = ctx_.locks().commit(request.txn, wakes);
  ctx_.send(from, net::CommitAck{request.txn, status.is_ok()});
  ctx_.send_wakes(wakes);
  if (status.is_ok()) {
    forget_remote_txn(request.txn);
  } else {
    // Persist failed: locks and undo log are still held. Keep the
    // tracking record so the orphan sweep retries the consolidation
    // (probe -> kCommitted -> commit again) instead of leaking them.
    touch_remote_txn(request.txn);
  }
}

void Participant::handle_abort(const net::AbortRequest& request, SiteId from) {
  std::vector<WakeNotice> wakes;
  ctx_.locks().abort(request.txn, wakes);
  ctx_.send(from, net::AbortAck{request.txn, true});
  ctx_.send_wakes(wakes);
  forget_remote_txn(request.txn);
}

void Participant::handle_fail(const net::FailNotice& request) {
  std::vector<WakeNotice> wakes;
  ctx_.locks().abort(request.txn, wakes);
  ctx_.send_wakes(wakes);
  forget_remote_txn(request.txn);
}

void Participant::handle_status_reply(const net::TxnStatusReply& reply) {
  // Presumed-abort resolution for an orphaned transaction. Ignore replies
  // for transactions no longer tracked (the real commit / abort arrived
  // while the probe was in flight — those paths already cleaned up).
  {
    sync::MutexLock lock(ctx_.part_mutex);
    const auto it = ctx_.remote_txns.find(reply.txn);
    if (it == ctx_.remote_txns.end()) return;
    if (reply.outcome == net::TxnOutcome::kActive) {
      // Coordinator is alive and still working: reset the orphan clock.
      it->second.last_seen = SiteContext::Clock::now();
      it->second.unanswered_probes = 0;
      return;
    }
  }
  std::vector<WakeNotice> wakes;
  if (reply.outcome == net::TxnOutcome::kCommitted) {
    // The decision was commit and this site missed the CommitRequest:
    // consolidate now (persist + release), exactly what the lost message
    // would have done.
    const util::Status status = ctx_.locks().commit(reply.txn, wakes);
    if (!status) {
      DTX_ERROR() << "orphan commit failed: " << status.to_string();
    }
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.orphans_committed;
  } else {
    // kAborted or kUnknown (coordinator lost its state): presumed abort —
    // undo-log rollback and lock release.
    ctx_.locks().abort(reply.txn, wakes);
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.orphans_aborted;
  }
  ctx_.send_wakes(wakes);
  forget_remote_txn(reply.txn);
}

void Participant::touch_remote_txn(lock::TxnId txn) {
  sync::MutexLock lock(ctx_.part_mutex);
  const auto it = ctx_.remote_txns.find(txn);
  if (it != ctx_.remote_txns.end()) {
    it->second.last_seen = SiteContext::Clock::now();
  }
}

void Participant::forget_remote_txn(lock::TxnId txn) {
  sync::MutexLock lock(ctx_.part_mutex);
  ctx_.remote_txns.erase(txn);
}

}  // namespace dtx::core
