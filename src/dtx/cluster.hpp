// Cluster: builds a complete DTX deployment — N sites, the simulated LAN,
// the placement catalog and per-site storage backends — and exposes the
// client API (connect to a site, submit a transaction, await the result).
// This is the top-level object examples, tests and benches instantiate; a
// paper deployment would run one Site per machine instead.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "dtx/catalog.hpp"
#include "dtx/site.hpp"
#include "net/sim_network.hpp"
#include "query/plan_cache.hpp"
#include "storage/memory_store.hpp"
#include "util/histogram.hpp"
#include "util/sync.hpp"

namespace dtx::core {

struct ClusterOptions {
  std::size_t site_count = 2;
  lock::ProtocolKind protocol = lock::ProtocolKind::kXdgl;
  net::NetworkOptions network;
  /// Per-site scheduler knobs (id is filled in per site).
  SiteOptions site;
  /// When non-empty, each site persists its documents to
  /// `<storage_dir>/site<N>/` (storage::FileStore) instead of memory —
  /// committed state then survives cluster restarts (see
  /// declare_document()).
  std::string storage_dir;
};

struct ClusterStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t failed = 0;
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t wait_episodes = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_conflicts = 0;
  std::uint64_t remote_ops = 0;
  /// Crash-recovery accounting summed over all sites (presumed-abort
  /// orphan resolutions, commit-request resends, completed restarts).
  std::uint64_t orphans_committed = 0;
  std::uint64_t orphans_aborted = 0;
  std::uint64_t commit_resends = 0;
  std::uint64_t restarts = 0;
  std::uint64_t unclassified_aborts = 0;
  /// Placement & membership: the newest installed catalog epoch across
  /// sites, retryable stale-catalog rejections, and replica migrations
  /// (adoptions + bytes shipped) summed over all sites.
  std::uint64_t catalog_epoch = 0;
  std::uint64_t stale_catalog_aborts = 0;
  std::uint64_t migrations = 0;
  std::uint64_t migrated_bytes = 0;
  /// Recovery-sync accounting: documents caught up by shipping a peer's
  /// redo-log suffix (the O(missed commits) path) vs. by adopting a whole
  /// peer checkpoint (the peer had compacted past the local version).
  std::uint64_t log_suffix_syncs = 0;
  std::uint64_t full_syncs = 0;
  /// Fault-injection counters of the simulated network.
  net::FaultStats faults;
  /// Plan-cache counters summed over all sites (compiled-operation reuse).
  query::PlanCacheStats plan_cache;
  /// Read-only transactions served by the MVCC snapshot path (no locks, no
  /// wait-for entries, no 2PC), summed over all coordinators.
  std::uint64_t snapshot_txns = 0;
  /// Snapshot-store counters summed over all sites; the byte gauges add up
  /// to the cluster-wide version-chain memory (see dtx/snapshot_store.hpp).
  SnapshotStats snapshots;
  /// Client-observed response times across all sites (every terminated
  /// transaction); percentile() gives p50/p95/p99.
  util::Histogram response_ms;
  net::NetworkStats network;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Places a document: the XML is stored at every listed site and entered
  /// into the catalog. Must be called before start().
  util::Status load_document(const std::string& name, const std::string& xml,
                             const std::vector<SiteId>& sites);

  /// Registers an *already stored* document (file-backed clusters being
  /// restarted): verifies each listed site's store holds it and enters the
  /// placement into the catalog. Must be called before start().
  util::Status declare_document(const std::string& name,
                                const std::vector<SiteId>& sites);

  /// Spawns every site's threads. Call after all documents are loaded.
  util::Status start();

  /// Stops all sites (idempotent; also run by the destructor).
  void stop();

  /// Crashes one site (see Site::crash): it drops off the network and
  /// loses all volatile state. Traffic to the remaining sites continues;
  /// transactions touching this site abort with kSiteFailure until it
  /// restarts.
  util::Status crash_site(SiteId site);

  /// Restarts a stopped / crashed site. Before the site reloads, its
  /// redo logs are caught up from the freshest peer replica of every
  /// document it hosts: normally by appending the peer's record *suffix*
  /// after the local commit version (O(missed commits)), falling back to
  /// whole checkpoint + log adoption only when the peer already compacted
  /// past it. Commits that finished while the site was down are therefore
  /// never resurrected stale.
  util::Status restart_site(SiteId site);

  /// True when the site's engine threads are running.
  [[nodiscard]] bool site_running(SiteId site) const;

  /// Elastic membership: admits a brand-new site into the running cluster.
  /// Creates its store and Site, runs the join protocol against a seed
  /// member (catalog rebalance under SiteOptions::placement_policy /
  /// replication, drain of the old epoch, replica migration) and blocks
  /// until every document the new epoch hosts at the joiner is durable
  /// there. Returns the new site's id.
  util::Result<SiteId> add_site();

  /// Decommissions a member: orders it to leave (rebalance without it),
  /// blocks until every replica it held migrated to the surviving hosts,
  /// then stops it. The slot stays (site ids are stable); the site can not
  /// be restarted.
  util::Status remove_site(SiteId site);

  [[nodiscard]] std::size_t site_count() const {
    sync::SharedLock lock(membership_mutex_);
    return sites_.size();
  }
  [[nodiscard]] Site& site(SiteId id) {
    sync::SharedLock lock(membership_mutex_);
    return *sites_.at(id);
  }
  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] net::SimNetwork& network() noexcept { return network_; }
  [[nodiscard]] storage::StorageBackend& store_of(SiteId id) {
    sync::SharedLock lock(membership_mutex_);
    return *stores_.at(id);
  }

  /// Submits pre-parsed operations at `site` (the Listener) and returns the
  /// transaction handle. This is the canonical entry point — the typed
  /// client layer (dtx::client) parses once via TxnBuilder and feeds
  /// operations here, so retries never re-parse text.
  util::Result<std::shared_ptr<txn::Transaction>> submit(
      SiteId site, std::vector<txn::Operation> ops);

  /// Blocking convenience over submit(): awaits the result.
  util::Result<txn::TxnResult> execute(SiteId site,
                                       std::vector<txn::Operation> ops);

  /// Textual adapters ("query d1 /people/..."): parse each operation, then
  /// delegate to the typed entry points. Kept for dtxsh, workload files and
  /// legacy call sites — application code should use dtx::client instead.
  /// (Distinct names, not overloads: a braced list of exactly two string
  /// literals would otherwise ambiguously match vector<Operation>'s
  /// iterator-pair constructor.)
  util::Result<txn::TxnResult> execute_text(
      SiteId site, const std::vector<std::string>& op_texts);
  util::Result<std::shared_ptr<txn::Transaction>> submit_text(
      SiteId site, const std::vector<std::string>& op_texts);

  [[nodiscard]] ClusterStats stats();

 private:
  /// First admin endpoint id used for the join / decommission protocol
  /// (one transient mailbox per membership operation, in the client range).
  static constexpr SiteId kAdminIdBase = net::kClientIdBase + 0x100u;

  /// Site pointer by id, or nullptr when out of range. The membership lock
  /// only covers the vector lookup — the Site itself is internally
  /// synchronized and lives until the Cluster dies (remove_site stops a
  /// site but keeps the slot), so the returned pointer stays valid.
  [[nodiscard]] Site* site_ptr(SiteId site) const;

  ClusterOptions options_;
  net::SimNetwork network_;
  /// The admin's own view: seeded by load_document/declare_document,
  /// refreshed after every membership change. Site routing never reads it —
  /// each site owns a replica in catalogs_ (membership changes evolve the
  /// replicas independently, exactly like real daemons).
  Catalog catalog_;
  /// Guards the three membership vectors below: add_site() grows them at
  /// runtime (exclusive) while client threads resolve site ids (shared).
  /// Elements themselves never move or die before the Cluster does.
  mutable sync::SharedMutex membership_mutex_{
      sync::LockRank::kClusterMembership};
  std::vector<std::unique_ptr<storage::StorageBackend>> stores_
      DTX_GUARDED_BY(membership_mutex_);
  /// Per-site catalog replicas; must outlive sites_ (declared before it).
  std::vector<std::unique_ptr<Catalog>> catalogs_
      DTX_GUARDED_BY(membership_mutex_);
  std::vector<std::unique_ptr<Site>> sites_
      DTX_GUARDED_BY(membership_mutex_);
  bool started_ DTX_GUARDED_BY(membership_mutex_) = false;
  /// Recovery-sync counters (restart_site; read concurrently by stats()).
  std::atomic<std::uint64_t> log_suffix_syncs_{0};
  std::atomic<std::uint64_t> full_syncs_{0};
};

}  // namespace dtx::core
