#include "dtx/data_manager.hpp"

#include <cstdlib>

#include "util/log.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xupdate/applier.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

DataManager::DataManager(storage::StorageBackend& store) : store_(store) {}

bool DataManager::is_internal_key(const std::string& name) {
  constexpr const char* kSuffix = ".~v";
  constexpr std::size_t kSuffixLen = 3;
  if (name.size() > kSuffixLen &&
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
    return true;  // commit-version sidecar
  }
  return !name.empty() && name.front() == '~';  // e.g. "~outcomes"
}

std::uint64_t DataManager::stored_version(storage::StorageBackend& store,
                                          const std::string& doc) {
  return stored_stamp(store, doc).version;
}

DataManager::StoredStamp DataManager::stored_stamp(
    storage::StorageBackend& store, const std::string& doc) {
  StoredStamp stamp;
  auto text = store.load(version_key(doc));
  if (!text) return stamp;
  char* rest = nullptr;
  stamp.version = std::strtoull(text.value().c_str(), &rest, 10);
  if (rest != nullptr && *rest == ' ') {
    stamp.hash = std::strtoull(rest + 1, nullptr, 10);
    stamp.has_hash = true;
  }
  return stamp;
}

std::uint64_t DataManager::content_hash(const std::string& text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64
  for (const unsigned char byte : text) {
    hash ^= byte;
    hash *= 1099511628211ULL;
  }
  return hash;
}

Status DataManager::load_all() {
  for (const std::string& name : store_.list()) {
    if (is_internal_key(name)) continue;  // version sidecars
    auto xml_text = store_.load(name);
    if (!xml_text) return xml_text.status();
    auto document = xml::parse(xml_text.value(), name);
    if (!document) return document.status();
    DocEntry entry;
    entry.scope = next_scope_++;
    entry.version = stored_version(store_, name);
    entry.document = std::move(document).value();
    entry.guide = dataguide::DataGuide::build(*entry.document);
    documents_[name] = std::move(entry);
  }
  return Status::ok();
}

bool DataManager::has_document(const std::string& name) const {
  return documents_.count(name) != 0;
}

std::vector<std::string> DataManager::documents() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, entry] : documents_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

DataManager::DocEntry* DataManager::entry_of(const std::string& name) {
  const auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : &it->second;
}

Result<lock::DocContext> DataManager::context_of(const std::string& name) {
  DocEntry* entry = entry_of(name);
  if (entry == nullptr) {
    return Status(Code::kNotFound, "document '" + name + "' not at this site");
  }
  return lock::DocContext{entry->scope, *entry->document, *entry->guide};
}

Result<std::vector<std::string>> DataManager::run_query(
    const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  return xpath::evaluate_strings(plan.query(), *entry->document);
}

Result<std::size_t> DataManager::run_update(TxnId txn,
                                            const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  xupdate::UndoLog& undo = undo_logs_[{txn, plan.doc()}];
  auto result = xupdate::apply(plan.update(), *entry->document, undo,
                               entry->guide.get());
  if (!result) return result.status();
  touched_[txn].insert(plan.doc());
  first_update_serial_.emplace(std::make_pair(txn, plan.doc()),
                               entry->persist_serial);
  return result.value().affected;
}

std::size_t DataManager::undo_checkpoint(TxnId txn, const std::string& doc) {
  return undo_logs_[{txn, doc}].checkpoint();
}

void DataManager::scrub_snapshot(const std::string& doc, DocEntry& entry) {
  // No version bump: this is not a commit, it removes rolled-back changes
  // that a concurrent transaction's whole-document persist captured (the
  // store must never be able to resurrect aborted state on reload). The
  // stamp's content hash is refreshed so sync readers still verify.
  const std::string bytes = xml::serialize(*entry.document);
  Status stored = store_.store(doc, bytes);
  if (stored) {
    stored = store_.store(version_key(doc),
                          std::to_string(entry.version) + " " +
                              std::to_string(content_hash(bytes)));
  }
  if (!stored) {
    DTX_ERROR() << "snapshot scrub of '" << doc
                << "' failed: " << stored.to_string();
    return;
  }
  ++entry.persist_serial;
}

void DataManager::maybe_scrub(TxnId txn, const std::string& doc) {
  DocEntry* entry = entry_of(doc);
  if (entry == nullptr) return;
  const auto it = first_update_serial_.find({txn, doc});
  if (it == first_update_serial_.end()) return;
  if (entry->persist_serial > it->second) scrub_snapshot(doc, *entry);
}

void DataManager::undo_to(TxnId txn, const std::string& doc,
                          std::size_t token) {
  DocEntry* entry = entry_of(doc);
  const auto it = undo_logs_.find({txn, doc});
  if (entry == nullptr || it == undo_logs_.end()) return;
  it->second.undo_to(token, *entry->document, entry->guide.get());
  maybe_scrub(txn, doc);
}

void DataManager::undo_all(TxnId txn) {
  const auto touched_it = touched_.find(txn);
  if (touched_it != touched_.end()) {
    for (const std::string& doc : touched_it->second) {
      undo_to(txn, doc, 0);
    }
    touched_.erase(touched_it);
  }
  // Drop any (possibly empty) undo logs of this transaction.
  for (auto it = undo_logs_.begin(); it != undo_logs_.end();) {
    if (it->first.first == txn) {
      it = undo_logs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = first_update_serial_.begin();
       it != first_update_serial_.end();) {
    if (it->first.first == txn) {
      it = first_update_serial_.erase(it);
    } else {
      ++it;
    }
  }
}

Status DataManager::persist(TxnId txn) {
  const auto touched_it = touched_.find(txn);
  if (touched_it != touched_.end()) {
    for (const std::string& doc : touched_it->second) {
      DocEntry* entry = entry_of(doc);
      if (entry == nullptr) continue;
      const std::string bytes = xml::serialize(*entry->document);
      Status status = store_.store(doc, bytes);
      if (!status) return status;
      // Bump the commit version alongside the bytes. Strict 2PL orders
      // commits per document identically at every replica, so the counter
      // is a replica-comparable freshness stamp (recovery sync); the
      // content hash lets a concurrent sync reader detect a torn
      // version/bytes pair and retry.
      ++entry->version;
      ++entry->persist_serial;
      status = store_.store(version_key(doc),
                            std::to_string(entry->version) + " " +
                                std::to_string(content_hash(bytes)));
      if (!status) return status;
      const auto log_it = undo_logs_.find({txn, doc});
      if (log_it != undo_logs_.end()) {
        log_it->second.commit(*entry->document);
      }
    }
    touched_.erase(touched_it);
  }
  for (auto it = undo_logs_.begin(); it != undo_logs_.end();) {
    if (it->first.first == txn) {
      it = undo_logs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = first_update_serial_.begin();
       it != first_update_serial_.end();) {
    if (it->first.first == txn) {
      it = first_update_serial_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::ok();
}

std::size_t DataManager::total_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.document->node_count();
  }
  return total;
}

std::size_t DataManager::total_guide_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.guide->node_count();
  }
  return total;
}

std::uint64_t DataManager::version_of(const std::string& doc) const {
  const auto it = documents_.find(doc);
  return it == documents_.end() ? 0 : it->second.version;
}

}  // namespace dtx::core
