#include "dtx/data_manager.hpp"

#include "util/log.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xupdate/applier.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

DataManager::DataManager(storage::StorageBackend& store) : store_(store) {}

Status DataManager::load_all() {
  for (const std::string& name : store_.list()) {
    auto xml_text = store_.load(name);
    if (!xml_text) return xml_text.status();
    auto document = xml::parse(xml_text.value(), name);
    if (!document) return document.status();
    DocEntry entry;
    entry.scope = next_scope_++;
    entry.document = std::move(document).value();
    entry.guide = dataguide::DataGuide::build(*entry.document);
    documents_[name] = std::move(entry);
  }
  return Status::ok();
}

bool DataManager::has_document(const std::string& name) const {
  return documents_.count(name) != 0;
}

std::vector<std::string> DataManager::documents() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, entry] : documents_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

DataManager::DocEntry* DataManager::entry_of(const std::string& name) {
  const auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : &it->second;
}

Result<lock::DocContext> DataManager::context_of(const std::string& name) {
  DocEntry* entry = entry_of(name);
  if (entry == nullptr) {
    return Status(Code::kNotFound, "document '" + name + "' not at this site");
  }
  return lock::DocContext{entry->scope, *entry->document, *entry->guide};
}

Result<std::vector<std::string>> DataManager::run_query(
    const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  return xpath::evaluate_strings(plan.query(), *entry->document);
}

Result<std::size_t> DataManager::run_update(TxnId txn,
                                            const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  xupdate::UndoLog& undo = undo_logs_[{txn, plan.doc()}];
  auto result = xupdate::apply(plan.update(), *entry->document, undo,
                               entry->guide.get());
  if (!result) return result.status();
  touched_[txn].insert(plan.doc());
  return result.value().affected;
}

std::size_t DataManager::undo_checkpoint(TxnId txn, const std::string& doc) {
  return undo_logs_[{txn, doc}].checkpoint();
}

void DataManager::undo_to(TxnId txn, const std::string& doc,
                          std::size_t token) {
  DocEntry* entry = entry_of(doc);
  const auto it = undo_logs_.find({txn, doc});
  if (entry == nullptr || it == undo_logs_.end()) return;
  it->second.undo_to(token, *entry->document, entry->guide.get());
}

void DataManager::undo_all(TxnId txn) {
  const auto touched_it = touched_.find(txn);
  if (touched_it != touched_.end()) {
    for (const std::string& doc : touched_it->second) {
      undo_to(txn, doc, 0);
    }
    touched_.erase(touched_it);
  }
  // Drop any (possibly empty) undo logs of this transaction.
  for (auto it = undo_logs_.begin(); it != undo_logs_.end();) {
    if (it->first.first == txn) {
      it = undo_logs_.erase(it);
    } else {
      ++it;
    }
  }
}

Status DataManager::persist(TxnId txn) {
  const auto touched_it = touched_.find(txn);
  if (touched_it != touched_.end()) {
    for (const std::string& doc : touched_it->second) {
      DocEntry* entry = entry_of(doc);
      if (entry == nullptr) continue;
      Status status = store_.store(doc, xml::serialize(*entry->document));
      if (!status) return status;
      const auto log_it = undo_logs_.find({txn, doc});
      if (log_it != undo_logs_.end()) {
        log_it->second.commit(*entry->document);
      }
    }
    touched_.erase(touched_it);
  }
  for (auto it = undo_logs_.begin(); it != undo_logs_.end();) {
    if (it->first.first == txn) {
      it = undo_logs_.erase(it);
    } else {
      ++it;
    }
  }
  return Status::ok();
}

std::size_t DataManager::total_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.document->node_count();
  }
  return total;
}

std::size_t DataManager::total_guide_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.guide->node_count();
  }
  return total;
}

}  // namespace dtx::core
