#include "dtx/data_manager.hpp"

#include "dtx/snapshot_store.hpp"
#include "util/log.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xpath/evaluator.hpp"
#include "xupdate/applier.hpp"

namespace dtx::core {

using util::Code;
using util::Result;
using util::Status;

DataManager::DataManager(storage::StorageBackend& store,
                         std::size_t checkpoint_interval,
                         std::size_t checkpoint_log_bytes,
                         SnapshotStore* snapshots)
    : store_(store),
      checkpoint_interval_(checkpoint_interval),
      checkpoint_log_bytes_(checkpoint_log_bytes),
      snapshots_(snapshots) {}

bool DataManager::is_internal_key(const std::string& name) {
  for (const char* suffix : {".~log", ".~v"}) {
    const std::size_t len = std::char_traits<char>::length(suffix);
    if (name.size() > len &&
        name.compare(name.size() - len, len, suffix) == 0) {
      return true;  // redo log / legacy commit-version sidecar
    }
  }
  return !name.empty() && name.front() == '~';  // e.g. "~outcomes"
}

Status DataManager::load_all() {
  for (const std::string& name : store_.list()) {
    if (is_internal_key(name)) continue;
    Status loaded = load_document(name);
    if (!loaded) return loaded;
  }
  return Status::ok();
}

Status DataManager::load_document(const std::string& name) {
  auto durable = wal::read_durable_doc(store_, name);
  if (!durable) return durable.status();
  // First reader after a crash: physically drop torn appends and
  // already-checkpointed entries before anything new is logged (the
  // snapshot-version resolution is only exact while the log still ends
  // where the crash left it).
  if (durable.value().needs_repair) {
    Status repaired = wal::repair(store_, name, durable.value());
    if (!repaired) return repaired;
    if (durable.value().torn_tail) {
      DTX_WARN() << "redo log of '" << name
                 << "' had a torn tail; recovered to v"
                 << durable.value().version;
    }
  }
  auto document = xml::parse(durable.value().snapshot, name);
  if (!document) return document.status();
  DocEntry entry;
  entry.scope = next_scope_++;
  entry.document = std::move(document).value();
  entry.guide = dataguide::DataGuide::build(*entry.document);
  entry.history = durable.value().checkpoint_ids;
  // Replay the record tail exactly as run_update applied it, guide
  // maintained incrementally (the same replay the store-side
  // materialization runs — one implementation, wal::apply_records).
  Status replayed = wal::apply_records(durable.value().tail,
                                       *entry.document, entry.guide.get(),
                                       name);
  if (!replayed) return replayed;
  for (const wal::LogEntry& record : durable.value().tail) {
    entry.history.push_back(record.txn);
    entry.log_ops += record.ops.size();
    entry.log_bytes += record.raw.size();
  }
  entry.version = durable.value().version;
  // Replace any stale entry (replica re-adoption after a migration).
  documents_.erase(name);
  auto [it, inserted] = documents_.emplace(name, std::move(entry));
  (void)inserted;
  // Bound the next recovery's replay: compact a long tail right here,
  // while nothing runs concurrently.
  DocEntry& loaded = it->second;
  note_checkpoint_policy(name, loaded, nullptr);
  if (loaded.checkpoint_pending) checkpoint_doc(name, loaded);
  if (snapshots_ != nullptr) {
    snapshots_->register_doc(name, loaded.version);
  }
  return Status::ok();
}

void DataManager::drop_document(const std::string& name) {
  documents_.erase(name);
}

bool DataManager::has_document(const std::string& name) const {
  return documents_.count(name) != 0;
}

std::vector<std::string> DataManager::documents() const {
  std::vector<std::string> names;
  names.reserve(documents_.size());
  for (const auto& [name, entry] : documents_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

DataManager::DocEntry* DataManager::entry_of(const std::string& name) {
  const auto it = documents_.find(name);
  return it == documents_.end() ? nullptr : &it->second;
}

DataManager::TxnDocState& DataManager::state_of(TxnId txn,
                                                const std::string& doc) {
  auto [it, inserted] = txn_states_.try_emplace({txn, doc});
  if (inserted) {
    docs_of_txn_[txn].insert(doc);
    ++live_writers_[doc];
  }
  return it->second;
}

Result<lock::DocContext> DataManager::context_of(const std::string& name) {
  DocEntry* entry = entry_of(name);
  if (entry == nullptr) {
    return Status(Code::kNotFound, "document '" + name + "' not at this site");
  }
  return lock::DocContext{entry->scope, *entry->document, *entry->guide};
}

Result<std::vector<std::string>> DataManager::run_query(
    const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  return xpath::evaluate_strings(plan.query(), *entry->document);
}

Result<std::size_t> DataManager::run_update(TxnId txn,
                                            const query::Plan& plan) {
  DocEntry* entry = entry_of(plan.doc());
  if (entry == nullptr) {
    return Status(Code::kNotFound,
                  "document '" + plan.doc() + "' not at this site");
  }
  TxnDocState& state = state_of(txn, plan.doc());
  auto result = xupdate::apply(plan.update(), *entry->document, state.undo,
                               entry->guide.get());
  if (!result) return result.status();
  state.redo.push_back(plan.text());  // committed-at-commit redo delta
  return result.value().affected;
}

std::size_t DataManager::undo_checkpoint(TxnId txn, const std::string& doc) {
  TxnDocState& state = state_of(txn, doc);
  const std::size_t token = state.undo.checkpoint();
  // Last-wins on purpose: only the most recent operation is individually
  // undoable, and a no-effect predecessor can share its undo position.
  state.redo_marks[token] = state.redo.size();
  return token;
}

void DataManager::undo_to(TxnId txn, const std::string& doc,
                          std::size_t token) {
  DocEntry* entry = entry_of(doc);
  const auto it = txn_states_.find({txn, doc});
  if (entry == nullptr || it == txn_states_.end()) return;
  TxnDocState& state = it->second;
  state.undo.undo_to(token, *entry->document, entry->guide.get());
  const auto mark = state.redo_marks.find(token);
  const std::size_t redo_len = mark != state.redo_marks.end()
                                   ? mark->second
                                   : (token == 0 ? 0 : state.redo.size());
  if (redo_len < state.redo.size()) state.redo.resize(redo_len);
  state.redo_marks.erase(state.redo_marks.upper_bound(token),
                         state.redo_marks.end());
}

void DataManager::undo_all(TxnId txn,
                           std::vector<std::string>* checkpoint_due) {
  const auto docs_it = docs_of_txn_.find(txn);
  if (docs_it == docs_of_txn_.end()) return;
  for (const std::string& doc : docs_it->second) {
    const auto state_it = txn_states_.find({txn, doc});
    if (state_it == txn_states_.end()) continue;
    DocEntry* entry = entry_of(doc);
    if (entry != nullptr) {
      state_it->second.undo.undo_to(0, *entry->document, entry->guide.get());
    }
    txn_states_.erase(state_it);
    const auto writers = live_writers_.find(doc);
    if (writers != live_writers_.end() && --writers->second == 0) {
      live_writers_.erase(writers);
      if (entry != nullptr && entry->checkpoint_pending &&
          checkpoint_due != nullptr) {
        checkpoint_due->push_back(doc);  // deferred compaction unblocked
      }
    }
  }
  docs_of_txn_.erase(docs_it);
}

Status DataManager::persist(TxnId txn,
                            std::vector<std::string>* checkpoint_due) {
  const auto docs_it = docs_of_txn_.find(txn);
  if (docs_it == docs_of_txn_.end()) return Status::ok();
  // The transaction's committed deltas, published into the MVCC layer in
  // one atomic batch after the appends — snapshot cuts either see all of
  // this commit or none of it.
  std::vector<SnapshotStore::Delta> published;
  for (const std::string& doc : docs_it->second) {
    const auto state_it = txn_states_.find({txn, doc});
    if (state_it == txn_states_.end()) continue;
    TxnDocState& state = state_it->second;
    DocEntry* entry = entry_of(doc);
    if (entry != nullptr && !state.redo.empty()) {
      // The durability point: one O(delta) append of the transaction's
      // committed operations. Append-before-bookkeeping so a store
      // failure leaves memory unchanged and the abort path rolls back.
      const std::string record =
          wal::encode_record(entry->version + 1, txn, state.redo);
      Status appended = store_.append(wal::log_key(doc), record);
      if (!appended) {
        // Publish what was durably appended so far: those versions exist.
        if (snapshots_ != nullptr && !published.empty()) {
          snapshots_->publish(std::move(published));
        }
        return appended;
      }
      ++entry->version;
      entry->history.push_back(txn);
      entry->log_ops += state.redo.size();
      entry->log_bytes += record.size();
      note_checkpoint_policy(doc, *entry, nullptr);
      if (snapshots_ != nullptr && snapshots_->enabled()) {
        published.push_back(
            SnapshotStore::Delta{doc, entry->version, state.redo});
      }
    }
    if (entry != nullptr) state.undo.commit(*entry->document);
    txn_states_.erase(state_it);
    const auto writers = live_writers_.find(doc);
    if (writers != live_writers_.end() && --writers->second == 0) {
      live_writers_.erase(writers);
      if (entry != nullptr && entry->checkpoint_pending &&
          checkpoint_due != nullptr) {
        checkpoint_due->push_back(doc);
      }
    }
  }
  docs_of_txn_.erase(docs_it);
  if (snapshots_ != nullptr && !published.empty()) {
    snapshots_->publish(std::move(published));
  }
  return Status::ok();
}

void DataManager::note_checkpoint_policy(const std::string& doc,
                                         DocEntry& entry,
                                         std::vector<std::string>* due) {
  const bool over_ops =
      checkpoint_interval_ != 0 && entry.log_ops >= checkpoint_interval_;
  const bool over_bytes =
      checkpoint_log_bytes_ != 0 && entry.log_bytes >= checkpoint_log_bytes_;
  if (!over_ops && !over_bytes) return;
  entry.checkpoint_pending = true;
  if (due != nullptr && live_writers_.count(doc) == 0) due->push_back(doc);
}

void DataManager::run_checkpoints(const std::vector<std::string>& docs) {
  sync::MutexLock lock(checkpoint_mutex_);
  for (const std::string& doc : docs) {
    DocEntry* entry = entry_of(doc);
    if (entry == nullptr || !entry->checkpoint_pending) continue;
    // Deferred while any live transaction holds an undo log on the
    // document: the snapshot must only ever contain committed state.
    // (live_writers_ is stable here: its writers hold the data latch
    // exclusive, the caller holds it shared.)
    if (live_writers_.count(doc) != 0) continue;
    checkpoint_doc(doc, *entry);
  }
}

void DataManager::checkpoint_doc(const std::string& doc, DocEntry& entry) {
  // Three ordered writes; every crash window between them resolves (see
  // dtx/wal.hpp): 1. marker append ties version+hash to the coming
  // snapshot, 2. atomic snapshot replace, 3. log compaction to the
  // marker.
  const std::string bytes = xml::serialize(*entry.document);
  const std::uint64_t hash = wal::fnv1a(bytes);
  const std::string marker =
      wal::encode_checkpoint(entry.version, hash, entry.history);
  Status status = store_.append(wal::log_key(doc), marker);
  if (status) status = store_.store(doc, bytes);
  if (status) status = store_.store(wal::log_key(doc), marker);
  if (!status) {
    // checkpoint_pending stays set; the next commit/abort retries. The
    // log remains authoritative whichever write failed.
    DTX_ERROR() << "checkpoint of '" << doc
                << "' failed: " << status.to_string();
    return;
  }
  entry.checkpoint_pending = false;
  entry.log_ops = 0;
  entry.log_bytes = 0;
  if (snapshots_ != nullptr) {
    snapshots_->on_checkpoint(doc, entry.version);
  }
}

std::size_t DataManager::total_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.document->node_count();
  }
  return total;
}

std::size_t DataManager::total_guide_nodes() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : documents_) {
    (void)name;
    total += entry.guide->node_count();
  }
  return total;
}

std::uint64_t DataManager::version_of(const std::string& doc) const {
  const auto it = documents_.find(doc);
  return it == documents_.end() ? 0 : it->second.version;
}

}  // namespace dtx::core
