// Distributed deadlock detection bookkeeping (Algorithm 4). A site's
// scheduler periodically starts a *probe*: it snapshots its own wait-for
// graph, requests every other site's graph, unions the replies and — if the
// union contains a cycle — selects the newest transaction on it as the
// victim. The Site owns the messaging; this class owns probe state.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <set>
#include <vector>

#include "net/message.hpp"
#include "wfg/wait_for_graph.hpp"

namespace dtx::core {

using net::SiteId;

class DeadlockDetector {
 public:
  using Clock = std::chrono::steady_clock;

  /// `period`: how often a probe starts; `reply_timeout`: how long to wait
  /// for all graphs before resolving with what arrived (a slow site must not
  /// wedge detection).
  DeadlockDetector(std::chrono::microseconds period,
                   std::chrono::microseconds reply_timeout);

  /// True when a new probe should start now (period elapsed, none active).
  [[nodiscard]] bool should_start(Clock::time_point now) const;

  /// Starts a probe seeded with the local graph; returns its id.
  std::uint64_t begin_probe(const std::vector<wfg::Edge>& local_edges,
                            const std::vector<SiteId>& other_sites,
                            Clock::time_point now);

  /// Integrates one site's reply. Returns the victim transaction when the
  /// probe just completed and found a cycle; 0 when it completed clean;
  /// nullopt while still collecting.
  std::optional<lock::TxnId> add_reply(std::uint64_t probe, SiteId from,
                                       const std::vector<wfg::Edge>& edges);

  /// Resolves an overdue probe with the replies collected so far. Same
  /// return convention as add_reply, and nullopt when no probe is overdue.
  std::optional<lock::TxnId> resolve_if_expired(Clock::time_point now);

  [[nodiscard]] bool probe_active() const noexcept { return active_; }

  /// Number of probes that found a cycle (readable from any thread).
  [[nodiscard]] std::uint64_t cycles_found() const noexcept {
    return cycles_found_.load(std::memory_order_relaxed);
  }

 private:
  lock::TxnId resolve();

  std::chrono::microseconds period_;
  std::chrono::microseconds reply_timeout_;
  Clock::time_point last_probe_{};
  bool active_ = false;
  std::uint64_t next_probe_id_ = 1;
  std::uint64_t probe_id_ = 0;
  Clock::time_point probe_started_{};
  std::set<SiteId> awaiting_;
  wfg::WaitForGraph merged_;
  std::atomic<std::uint64_t> cycles_found_{0};
};

}  // namespace dtx::core
