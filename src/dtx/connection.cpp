#include "dtx/connection.hpp"

namespace dtx::core {

#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif

util::Result<txn::TxnResult> Connection::execute(
    const std::vector<std::string>& op_texts) {
  auto prepared = client::PreparedTxn::parse(op_texts);
  if (!prepared) return prepared.status();
  return session_.execute(prepared.value());
}

#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

}  // namespace dtx::core
