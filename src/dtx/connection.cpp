#include "dtx/connection.hpp"

#include <thread>

namespace dtx::core {

util::Result<txn::TxnResult> Connection::execute(
    const std::vector<std::string>& op_texts) {
  retries_ = 0;
  for (;;) {
    auto result = cluster_.execute(site_, op_texts);
    if (!result) return result;
    const txn::TxnResult& txn = result.value();
    const bool retryable_abort =
        txn.state == txn::TxnState::kAborted &&
        (txn.deadlock_victim ? retries_ < policy_.max_deadlock_retries
                             : (policy_.retry_all_aborts &&
                                retries_ < policy_.max_deadlock_retries));
    if (!retryable_abort) return result;
    ++retries_;
    if (policy_.backoff.count() > 0) {
      std::this_thread::sleep_for(policy_.backoff * retries_);
    }
  }
}

}  // namespace dtx::core
