#include "dtx/wal.hpp"

#include <algorithm>
#include <charconv>

#include "txn/operation.hpp"
#include "util/hash.hpp"
#include "xml/parser.hpp"
#include "xml/serializer.hpp"
#include "xupdate/applier.hpp"
#include "xupdate/undo_log.hpp"

namespace dtx::core::wal {

using util::Code;
using util::Result;
using util::Status;

std::uint64_t fnv1a(const std::string& text) noexcept {
  return util::fnv1a64(text);
}

namespace {

/// Parses an unsigned decimal at `pos`, advancing it. False on no digits.
bool parse_u64(const std::string& raw, std::size_t& pos,
               std::uint64_t& out) {
  const char* begin = raw.data() + pos;
  const char* end = raw.data() + raw.size();
  const auto [next, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || next == begin) return false;
  pos += static_cast<std::size_t>(next - begin);
  return true;
}

bool skip_char(const std::string& raw, std::size_t& pos, char expected) {
  if (pos >= raw.size() || raw[pos] != expected) return false;
  ++pos;
  return true;
}

/// Parses one entry at `pos`. On success advances `pos` past it and fills
/// `entry` (including `raw`); on failure leaves `pos` untouched.
bool parse_entry(const std::string& raw, std::size_t& pos, LogEntry& entry) {
  std::size_t p = pos;
  if (p >= raw.size()) return false;
  const char kind = raw[p];
  if (kind != 'R' && kind != 'C') return false;
  ++p;
  if (!skip_char(raw, p, ' ')) return false;
  if (kind == 'C') {
    entry.kind = LogEntry::Kind::kCheckpoint;
    std::uint64_t id_count = 0;
    if (!parse_u64(raw, p, entry.version)) return false;
    if (!skip_char(raw, p, ' ')) return false;
    if (!parse_u64(raw, p, entry.hash)) return false;
    if (!skip_char(raw, p, ' ')) return false;
    if (!parse_u64(raw, p, id_count)) return false;
    entry.ids.clear();
    for (std::uint64_t i = 0; i < id_count; ++i) {
      std::uint64_t id = 0;
      if (!skip_char(raw, p, ' ')) return false;
      if (!parse_u64(raw, p, id)) return false;
      entry.ids.push_back(id);
    }
    if (!skip_char(raw, p, '\n')) return false;
    entry.txn = 0;
    entry.ops.clear();
    entry.raw = raw.substr(pos, p - pos);
    pos = p;
    return true;
  }
  entry.kind = LogEntry::Kind::kRecord;
  std::uint64_t op_count = 0;
  std::uint64_t payload_len = 0;
  std::uint64_t payload_hash = 0;
  if (!parse_u64(raw, p, entry.version)) return false;
  if (!skip_char(raw, p, ' ')) return false;
  if (!parse_u64(raw, p, entry.txn)) return false;
  if (!skip_char(raw, p, ' ')) return false;
  if (!parse_u64(raw, p, op_count)) return false;
  if (!skip_char(raw, p, ' ')) return false;
  if (!parse_u64(raw, p, payload_len)) return false;
  if (!skip_char(raw, p, ' ')) return false;
  if (!parse_u64(raw, p, payload_hash)) return false;
  if (!skip_char(raw, p, '\n')) return false;
  if (payload_len > raw.size() - p) return false;  // torn payload
  const std::string payload = raw.substr(p, payload_len);
  if (fnv1a(payload) != payload_hash) return false;
  // Payload: op_count entries of "<len> <bytes>\n".
  entry.ops.clear();
  std::size_t q = 0;
  for (std::uint64_t i = 0; i < op_count; ++i) {
    std::uint64_t len = 0;
    if (!parse_u64(payload, q, len)) return false;
    if (!skip_char(payload, q, ' ')) return false;
    if (len > payload.size() - q) return false;
    entry.ops.push_back(payload.substr(q, len));
    q += len;
    if (!skip_char(payload, q, '\n')) return false;
  }
  if (q != payload.size()) return false;  // trailing bytes inside the frame
  entry.hash = payload_hash;
  p += payload_len;
  entry.raw = raw.substr(pos, p - pos);
  pos = p;
  return true;
}

}  // namespace

std::string encode_record(std::uint64_t version, lock::TxnId txn,
                          const std::vector<std::string>& ops) {
  std::string payload;
  for (const std::string& op : ops) {
    payload += std::to_string(op.size());
    payload += ' ';
    payload += op;
    payload += '\n';
  }
  std::string out = "R ";
  out += std::to_string(version);
  out += ' ';
  out += std::to_string(txn);
  out += ' ';
  out += std::to_string(ops.size());
  out += ' ';
  out += std::to_string(payload.size());
  out += ' ';
  out += std::to_string(fnv1a(payload));
  out += '\n';
  out += payload;
  return out;
}

std::string encode_checkpoint(std::uint64_t version,
                              std::uint64_t snapshot_hash,
                              const std::vector<lock::TxnId>& ids) {
  std::string out = "C ";
  out += std::to_string(version);
  out += ' ';
  out += std::to_string(snapshot_hash);
  out += ' ';
  out += std::to_string(ids.size());
  for (const lock::TxnId id : ids) {
    out += ' ';
    out += std::to_string(id);
  }
  out += '\n';
  return out;
}

LogScan scan_log(const std::string& raw) {
  LogScan scan;
  std::size_t pos = 0;
  LogEntry entry;
  while (parse_entry(raw, pos, entry)) {
    scan.entries.push_back(std::move(entry));
    entry = LogEntry{};
  }
  scan.valid_bytes = pos;
  scan.torn = pos != raw.size();
  return scan;
}

Result<DurableDoc> read_durable_doc(storage::StorageBackend& store,
                                    const std::string& doc) {
  auto bytes = store.load(doc);
  if (!bytes) return bytes.status();
  auto raw_log = store.read_log(log_key(doc));
  if (!raw_log) return raw_log.status();
  const LogScan scan = scan_log(raw_log.value());

  DurableDoc out;
  out.snapshot = std::move(bytes).value();
  out.torn_tail = scan.torn;

  // Resolve the snapshot's version: the *last* checkpoint marker whose
  // hash matches the bytes. Matching the last one is correct even when
  // two checkpoints hashed identically (commits of no-effect updates):
  // skipping the records between byte-identical snapshots replays to the
  // same bytes.
  const std::uint64_t snapshot_hash = fnv1a(out.snapshot);
  std::size_t base_index = scan.entries.size();  // = no marker matched
  std::uint64_t max_marker_version = 0;
  for (std::size_t i = 0; i < scan.entries.size(); ++i) {
    if (scan.entries[i].kind != LogEntry::Kind::kCheckpoint) continue;
    max_marker_version =
        std::max(max_marker_version, scan.entries[i].version);
    if (scan.entries[i].hash == snapshot_hash) {
      base_index = i;
      out.checkpoint_version = scan.entries[i].version;
      out.checkpoint_ids = scan.entries[i].ids;
      out.marker_raw = scan.entries[i].raw;
    }
  }

  // Collect the record tail: contiguous versions after the base. Anything
  // else — records the snapshot already covers, markers of interrupted
  // checkpoints, everything past a version gap — is dropped here and
  // physically removed by repair().
  const std::size_t first =
      base_index == scan.entries.size() ? 0 : base_index + 1;
  std::uint64_t next = out.checkpoint_version + 1;
  for (std::size_t i = first; i < scan.entries.size(); ++i) {
    const LogEntry& entry = scan.entries[i];
    if (entry.kind == LogEntry::Kind::kCheckpoint) continue;
    if (entry.version < next) continue;  // already in the snapshot
    if (entry.version != next) break;    // gap: the rest is unusable
    out.tail.push_back(entry);
    ++next;
  }
  out.version = out.checkpoint_version + out.tail.size();

  // Repair is needed exactly when the stored log differs from its
  // canonical compacted form (marker + tail): torn bytes, entries below
  // the base, an unfulfilled checkpoint intent.
  std::string canonical = out.marker_raw;
  for (const LogEntry& entry : out.tail) canonical += entry.raw;
  out.needs_repair = canonical != raw_log.value();

  // Consistency vs a concurrent writer: a snapshot matching no marker is
  // valid when the records still reach every marker's version (the
  // crash-between-marker-and-snapshot window of a version-0 base). If
  // they don't, the snapshot read raced a live checkpoint whose
  // compaction already dropped the records — the caller re-reads.
  if (base_index == scan.entries.size() &&
      out.version < max_marker_version) {
    out.consistent = false;
  }
  return out;
}

Status repair(storage::StorageBackend& store, const std::string& doc,
              const DurableDoc& durable) {
  if (!durable.needs_repair) return Status::ok();
  // Re-anchor the snapshot version + commit ids for future reads (a
  // version-0 snapshot that never checkpointed has no marker; absence
  // reads as 0 / empty).
  std::string compacted = durable.marker_raw;
  for (const LogEntry& entry : durable.tail) compacted += entry.raw;
  if (compacted.empty()) return store.truncate(log_key(doc));
  return store.store(log_key(doc), compacted);
}

Status apply_records(const std::vector<LogEntry>& records,
                     xml::Document& document, dataguide::DataGuide* guide,
                     const std::string& doc) {
  for (const LogEntry& entry : records) {
    for (const std::string& text : entry.ops) {
      auto op = txn::parse_operation(text);
      if (!op) {
        return Status(Code::kInternal,
                      "redo log of '" + doc + "' record v" +
                          std::to_string(entry.version) +
                          " holds an unparsable operation: " +
                          op.status().to_string());
      }
      if (!op.value().is_update()) continue;  // queries are never logged
      xupdate::UndoLog scratch;
      auto applied =
          xupdate::apply(op.value().update, document, scratch, guide);
      if (!applied) {
        return Status(Code::kInternal,
                      "redo replay of '" + doc + "' record v" +
                          std::to_string(entry.version) +
                          " failed: " + applied.status().to_string());
      }
      scratch.commit(document);
    }
  }
  return Status::ok();
}

Result<std::unique_ptr<xml::Document>> replay(const DurableDoc& durable,
                                              const std::string& doc) {
  auto document = xml::parse(durable.snapshot, doc);
  if (!document) return document.status();
  Status applied =
      apply_records(durable.tail, *document.value(), nullptr, doc);
  if (!applied) return applied;
  return document;
}

Result<std::string> materialize(storage::StorageBackend& store,
                                const std::string& doc) {
  auto durable = read_durable_doc(store, doc);
  if (!durable) return durable.status();
  auto document = replay(durable.value(), doc);
  if (!document) return document.status();
  return xml::serialize(*document.value());
}

Result<std::unique_ptr<xml::Document>> replay_to(const DurableDoc& durable,
                                                 std::uint64_t version,
                                                 const std::string& doc) {
  if (durable.checkpoint_version > version || durable.version < version) {
    return Status(Code::kNotFound,
                  "version " + std::to_string(version) + " of '" + doc +
                      "' is not durable (checkpoint v" +
                      std::to_string(durable.checkpoint_version) + ", head v" +
                      std::to_string(durable.version) + ")");
  }
  auto document = xml::parse(durable.snapshot, doc);
  if (!document) return document.status();
  // The tail is contiguous from checkpoint_version + 1, so the prefix that
  // replays to `version` is exactly its first version - checkpoint_version
  // records.
  const auto count =
      static_cast<std::size_t>(version - durable.checkpoint_version);
  const std::vector<LogEntry> prefix(durable.tail.begin(),
                                     durable.tail.begin() +
                                         static_cast<std::ptrdiff_t>(count));
  Status applied = apply_records(prefix, *document.value(), nullptr, doc);
  if (!applied) return applied;
  return document;
}

Result<std::unique_ptr<xml::Document>> materialize_at(
    storage::StorageBackend& store, const std::string& doc,
    std::uint64_t version) {
  auto durable = read_durable_doc(store, doc);
  if (!durable) return durable.status();
  return replay_to(durable.value(), version, doc);
}

std::uint64_t durable_version(storage::StorageBackend& store,
                              const std::string& doc) {
  auto durable = read_durable_doc(store, doc);
  return durable ? durable.value().version : 0;
}

}  // namespace dtx::core::wal
