// Human-readable snapshots of a running DTX deployment, for the dtxsh shell
// and for debugging examples. Everything funnels through the synchronized
// accessors, so inspection is safe while transactions run.
#pragma once

#include <string>

#include "dtx/cluster.hpp"

namespace dtx::core {

/// Multi-line description of one site: role counters, lock-manager state,
/// current wait-for edges.
std::string describe_site(Site& site);

/// Multi-line description of the whole cluster: per-site summaries plus the
/// aggregate statistics and network counters.
std::string describe_cluster(Cluster& cluster);

}  // namespace dtx::core
