// Human-readable snapshots of a running DTX deployment, for the dtxsh shell
// and for debugging examples. Everything funnels through the synchronized
// accessors, so inspection is safe while transactions run.
#pragma once

#include <string>

#include "dtx/cluster.hpp"
#include "net/tcp_network.hpp"

namespace dtx::core {

/// Multi-line description of one site: role counters, lock-manager state,
/// current wait-for edges.
std::string describe_site(Site& site);

/// Multi-line description of the whole cluster: per-site summaries plus the
/// aggregate statistics and network counters.
std::string describe_cluster(Cluster& cluster);

/// One-line summary of a real-transport site's socket counters (dials,
/// connects, reconnects, rejected frames) — what dtxd logs at shutdown.
std::string describe_tcp(const net::TcpStats& stats);

}  // namespace dtx::core
