// SnapshotStore: the multi-version read layer of one site (MVCC).
//
// Read-only transactions are served from immutable versioned document
// snapshots instead of the locked live tree: they acquire no locks, add no
// wait-for edges and can never deadlock (dtx/coordinator.cpp routes them
// down the snapshot-read path). The store keeps, per document,
//
//   * the committed version counter, advanced by DataManager::persist.
//     publish() runs inside persist, under the same exclusive data latch
//     that serializes commits, so publish order == commit order == WAL
//     record order, and one committing transaction's documents land in a
//     single publish() call — a cut can never observe half a commit;
//   * a bounded delta chain: the committed update operations of the most
//     recent commits (copy-on-commit of the O(delta) redo text, the same
//     bytes the WAL logs), so a cached tree advances to a newer version by
//     replaying a few deltas instead of re-parsing the document;
//   * a small cache of materialized immutable trees, handed out as
//     shared_ptr<const Document>. The handout IS the pin: a reader's cut
//     keeps its trees alive for the life of the transaction, so a
//     long-running read-only transaction keeps a stable, never-torn view
//     no matter how far the chain moves on or what pruning drops.
//
// A consistent cut is captured in two phases. Under the store mutex the
// target version of every requested document is recorded atomically; then,
// per document, an immutable tree at exactly that version is resolved:
// exact cache hit, or the nearest older cached tree advanced through chain
// deltas (cloned first when other readers still pin it), or — when the
// target aged out of the chain — wal::materialize_at rebuilds it from the
// checkpoint snapshot + log tail. A checkpoint can compact the durable log
// past a captured version inside the capture→resolve window; snapshot()
// then re-captures a fresher cut (counted in cut_retries).
//
// Versions are this replica's commit positions (see dtx/wal.hpp): a cut is
// consistent per serving site. The write path's strict 2PL orders
// conflicting commits identically at every replica, so a per-site cut is
// a snapshot-isolation view of the data that site serves.
//
// Thread-safe; internally synchronized. Lock order: store mutex_ → one
// per-document mutex; nothing here calls back into the engine, so the
// mutexes are leaves of the site's lock graph.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage.hpp"
#include "util/status.hpp"
#include "util/sync.hpp"
#include "xml/document.hpp"

namespace dtx::core {

/// MVCC accounting, surfaced via SiteStats / ClusterStats / inspector.
struct SnapshotStats {
  std::uint64_t reads = 0;         ///< document views served into cuts
  std::uint64_t chain_hits = 0;    ///< exact cache hit or delta advance
  std::uint64_t materializes = 0;  ///< WAL fallback rebuilds
  std::uint64_t clones = 0;        ///< copy-on-advance (base was pinned)
  std::uint64_t cut_retries = 0;   ///< cut re-captures (checkpoint race)
  std::uint64_t chain_bytes = 0;       ///< current delta-chain memory
  std::uint64_t chain_bytes_peak = 0;  ///< high-water mark

  /// Cluster aggregation: counters sum; the byte gauges sum too, i.e. the
  /// cluster-wide chain memory (per-site peaks are in the site stats).
  void merge(const SnapshotStats& other) {
    reads += other.reads;
    chain_hits += other.chain_hits;
    materializes += other.materializes;
    clones += other.clones;
    cut_retries += other.cut_retries;
    chain_bytes += other.chain_bytes;
    chain_bytes_peak += other.chain_bytes_peak;
  }
};

class SnapshotStore {
 public:
  using TreePtr = std::shared_ptr<const xml::Document>;

  /// One document of a cut: an immutable tree at exactly `version`.
  struct DocView {
    std::uint64_t version = 0;
    TreePtr tree;
  };
  /// A consistent cut: every requested document at the committed version
  /// the capture observed atomically.
  using Cut = std::map<std::string, DocView>;

  /// One committed transaction's updates to one document — the redo
  /// operation texts the WAL logged, at the post-commit version.
  struct Delta {
    std::string doc;
    std::uint64_t version = 0;
    std::vector<std::string> ops;
  };

  /// `chain_depth` / `chain_bytes` bound the per-document delta chain
  /// (0 = unbounded). When `enabled` is false the store is inert: publish
  /// is a no-op and the locked baseline pays zero chain maintenance.
  SnapshotStore(storage::StorageBackend& store, bool enabled,
                std::size_t chain_depth, std::size_t chain_bytes);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  /// Registers a loaded document at its recovered version (DataManager::
  /// load_all). Trees are materialized lazily on first read. Re-registering
  /// an adopted replica resets its chain (the old deltas belong to the
  /// dropped copy).
  void register_doc(const std::string& doc, std::uint64_t version);

  /// Unregisters a dropped replica. The state shell is retired, not
  /// destroyed — snapshot() captures raw DocState pointers outside the
  /// store mutex, so an in-flight cut may still resolve against it (and
  /// falls back to the WAL when the cleared cache misses). Trees and
  /// deltas are released immediately.
  void drop_doc(const std::string& doc);

  /// Publishes one committed transaction's deltas — every document it
  /// updated, in one atomic step. Called by DataManager::persist under the
  /// exclusive data latch, after the WAL append.
  void publish(std::vector<Delta> deltas);

  /// Checkpoint hook: versions below `version` are no longer durable in
  /// the log, so their deltas and cached trees are pruned. Cuts already
  /// handed out keep their pinned trees; a cut captured-but-unresolved
  /// across this boundary re-captures.
  void on_checkpoint(const std::string& doc, std::uint64_t version);

  /// Captures and resolves a consistent cut over `docs` (duplicates are
  /// fine). kNotFound when a document is not stored at this site.
  [[nodiscard]] util::Result<Cut> snapshot(const std::vector<std::string>& docs);

  [[nodiscard]] SnapshotStats stats() const;

 private:
  struct DeltaRec {
    std::vector<std::string> ops;
    std::size_t bytes = 0;
  };
  struct DocState {
    /// Committed version — guarded by the store-wide mutex_ so a cut's
    /// capture phase sees every document at one instant. (Annotated at
    /// the use sites: a nested struct cannot name the owner's mutex_.)
    std::uint64_t committed = 0;
    /// Guards trees / deltas below. Taken after mutex_ (or alone).
    sync::Mutex mutex{sync::LockRank::kSnapshotDoc};
    /// Materialized immutable trees by version. Mutable only while the
    /// map is the sole owner; once handed out a tree is frozen.
    std::map<std::uint64_t, std::shared_ptr<xml::Document>> trees
        DTX_GUARDED_BY(mutex);
    std::map<std::uint64_t, DeltaRec> deltas DTX_GUARDED_BY(mutex);
    std::size_t delta_bytes DTX_GUARDED_BY(mutex) = 0;
  };

  /// Resolves an immutable tree of `doc` at exactly `version`; takes the
  /// doc mutex. Caches the result.
  util::Result<TreePtr> resolve(const std::string& doc, DocState& state,
                                std::uint64_t version)
      DTX_EXCLUDES(mutex_);
  /// Inserts a resolved tree into the cache, evicting the oldest versions
  /// past the cache cap, and returns the handout pointer.
  TreePtr insert_tree(DocState& state, std::uint64_t version,
                      std::shared_ptr<xml::Document> tree)
      DTX_REQUIRES(state.mutex);
  /// Drops the oldest deltas until the depth / byte bounds hold. Both
  /// mutexes held.
  void prune_chain(DocState& state)
      DTX_REQUIRES(mutex_, state.mutex);

  storage::StorageBackend& store_;
  const bool enabled_;
  const std::size_t chain_depth_;
  const std::size_t chain_bytes_;

  mutable sync::Mutex mutex_{
      sync::LockRank::kSnapshotStore};  ///< doc map + every committed counter
  std::map<std::string, std::unique_ptr<DocState>> docs_
      DTX_GUARDED_BY(mutex_);
  /// Dropped replicas' state shells, kept alive for stray in-flight cuts
  /// (see drop_doc). Cleared of trees/deltas, so each is a few hundred
  /// bytes; membership changes are rare enough that this never matters.
  std::vector<std::unique_ptr<DocState>> retired_ DTX_GUARDED_BY(mutex_);
  std::uint64_t total_chain_bytes_ DTX_GUARDED_BY(mutex_) = 0;
  std::uint64_t chain_bytes_peak_ DTX_GUARDED_BY(mutex_) = 0;

  std::atomic<std::uint64_t> reads_{0};
  std::atomic<std::uint64_t> chain_hits_{0};
  std::atomic<std::uint64_t> materializes_{0};
  std::atomic<std::uint64_t> clones_{0};
  std::atomic<std::uint64_t> cut_retries_{0};
};

}  // namespace dtx::core
