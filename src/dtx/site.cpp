#include "dtx/site.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using net::Message;
using net::Payload;
using txn::Transaction;
using txn::TxnState;

Site::Site(SiteOptions options, net::SimNetwork& network,
           const Catalog& catalog, storage::StorageBackend& store)
    : ctx_(options, network, catalog, store),
      coordinator_(ctx_),
      participant_(ctx_) {}

Site::~Site() { stop(); }

util::Status Site::start() {
  util::Status status = ctx_.data.load_all();
  if (!status) return status;
  ctx_.running.store(true);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  const std::size_t coordinators =
      std::max<std::size_t>(1, ctx_.options.coordinator_workers);
  coordinator_threads_.reserve(coordinators);
  for (std::size_t i = 0; i < coordinators; ++i) {
    coordinator_threads_.emplace_back([this] { coordinator_.run(); });
  }
  const std::size_t participants =
      std::max<std::size_t>(1, ctx_.options.participant_workers);
  participant_threads_.reserve(participants);
  for (std::size_t i = 0; i < participants; ++i) {
    participant_threads_.emplace_back([this] { participant_.run(); });
  }
  return util::Status::ok();
}

void Site::stop() {
  if (!ctx_.running.exchange(false)) return;
  ctx_.mailbox.interrupt();
  ctx_.coord_cv.notify_all();
  ctx_.part_cv.notify_all();
  ctx_.resp_cv.notify_all();
  ctx_.ack_cv.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : coordinator_threads_) {
    if (worker.joinable()) worker.join();
  }
  coordinator_threads_.clear();
  for (std::thread& worker : participant_threads_) {
    if (worker.joinable()) worker.join();
  }
  participant_threads_.clear();
  // Unblock any clients still waiting on unfinished transactions.
  std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
  for (auto& [id, txn] : ctx_.transactions) {
    if (!txn->completed()) {
      txn::TxnResult result;
      result.id = id;
      result.state = TxnState::kAborted;
      result.reason = txn::AbortReason::kSiteFailure;
      result.detail = "site shut down";
      txn->complete(std::move(result));
    }
  }
}

TxnId Site::next_txn_id() {
  std::uint64_t begin = steady_now_micros();
  if (begin <= ctx_.last_begin_micros) begin = ctx_.last_begin_micros + 1;
  ctx_.last_begin_micros = begin;
  return txn::make_txn_id(begin, ctx_.options.id);
}

std::shared_ptr<Transaction> Site::submit(std::vector<txn::Operation> ops) {
  std::shared_ptr<Transaction> txn;
  {
    std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
    txn = std::make_shared<Transaction>(next_txn_id(), std::move(ops));
    ctx_.transactions[txn->id()] = txn;
    ctx_.ready.push_back(txn);
  }
  ctx_.coord_cv.notify_all();
  return txn;
}

SiteStats Site::stats() {
  std::lock_guard<std::mutex> lock(ctx_.stats_mutex);
  SiteStats out = ctx_.stats;
  out.lock_manager = ctx_.locks.stats();
  out.plan_cache = ctx_.plans.stats();
  out.distributed_cycles_found = ctx_.detector.cycles_found();
  return out;
}

// ---------------------------------------------------------------------------
// Dispatcher: mailbox routing + deadlock-detector cadence.
// ---------------------------------------------------------------------------

void Site::dispatcher_loop() {
  while (ctx_.running.load()) {
    std::optional<Message> message =
        ctx_.mailbox.pop(ctx_.options.poll_interval);
    const auto now = Clock::now();
    if (message.has_value()) {
      Message& m = *message;
      std::visit(
          [&](auto&& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                          std::is_same_v<T, net::UndoOperation> ||
                          std::is_same_v<T, net::CommitRequest> ||
                          std::is_same_v<T, net::AbortRequest> ||
                          std::is_same_v<T, net::FailNotice>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.part_mutex);
                ctx_.participant_queue.push_back(std::move(m));
              }
              ctx_.part_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::OperationResult>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.resp_mutex);
                const auto it =
                    ctx_.responses.find({payload.txn, payload.op_index});
                if (it != ctx_.responses.end() &&
                    it->second.attempt == payload.attempt) {
                  it->second.replies[m.from] = std::move(payload);
                }
              }
              ctx_.resp_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::CommitAck> ||
                                 std::is_same_v<T, net::AbortAck>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.ack_mutex);
                const auto it = ctx_.acks.find(payload.txn);
                if (it != ctx_.acks.end()) {
                  it->second.acks[m.from] = payload.ok;
                }
              }
              ctx_.ack_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::WfgRequest>) {
              ctx_.send(payload.requester,
                        net::WfgReply{payload.probe, ctx_.locks.wfg_edges()});
            } else if constexpr (std::is_same_v<T, net::WfgReply>) {
              const auto victim = ctx_.detector.add_reply(payload.probe,
                                                          m.from,
                                                          payload.edges);
              if (victim.has_value() && *victim != 0) act_on_victim(*victim);
            } else if constexpr (std::is_same_v<T, net::VictimAbort>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
                ctx_.victim_aborts.push_back(payload.txn);
              }
              ctx_.coord_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::WakeTxn>) {
              {
                std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
                const auto it = ctx_.transactions.find(payload.txn);
                if (it != ctx_.transactions.end() &&
                    ctx_.waiting.count(payload.txn) != 0) {
                  ctx_.waiting.erase(payload.txn);
                  it->second->set_state(TxnState::kActive);
                  ctx_.ready.push_back(it->second);
                } else {
                  // Wake raced the conflict reply: remember it so the
                  // transaction re-queues instead of parking.
                  ctx_.pending_wakes.insert(payload.txn);
                }
              }
              ctx_.coord_cv.notify_all();
            }
          },
          m.payload);
    }
    run_deadlock_detection(now);
  }
}

void Site::run_deadlock_detection(Clock::time_point now) {
  if (const auto victim = ctx_.detector.resolve_if_expired(now);
      victim.has_value() && *victim != 0) {
    act_on_victim(*victim);
  }
  if (!ctx_.detector.should_start(now)) return;
  std::vector<SiteId> others;
  for (SiteId site : ctx_.network.sites()) {
    if (site != ctx_.options.id) others.push_back(site);
  }
  const std::uint64_t probe =
      ctx_.detector.begin_probe(ctx_.locks.wfg_edges(), others, now);
  if (others.empty()) {
    // Single-site system: the probe resolves on the local graph alone.
    const auto victim = ctx_.detector.add_reply(probe, ctx_.options.id, {});
    if (victim.has_value() && *victim != 0) act_on_victim(*victim);
    return;
  }
  for (SiteId site : others) {
    ctx_.send(site, net::WfgRequest{probe, ctx_.options.id});
  }
}

void Site::act_on_victim(TxnId victim) {
  // Alg. 4 l. 7-8: the newest transaction on the cycle is rolled back by
  // its coordinator.
  const SiteId coordinator = txn::txn_coordinator(victim);
  if (coordinator == ctx_.options.id) {
    {
      std::lock_guard<std::mutex> lock(ctx_.coord_mutex);
      ctx_.victim_aborts.push_back(victim);
    }
    ctx_.coord_cv.notify_all();
  } else {
    ctx_.send(coordinator, net::VictimAbort{victim});
  }
}

}  // namespace dtx::core
