#include "dtx/site.hpp"

#include <algorithm>
#include <cassert>

#include "dtx/recovery.hpp"
#include "util/log.hpp"

namespace dtx::core {

using lock::TxnId;
using net::Message;
using net::Payload;
using txn::Transaction;
using txn::TxnState;

Site::Site(SiteOptions options, net::Network& network,
           Catalog& catalog, storage::StorageBackend& store)
    : ctx_(options, network, catalog, store),
      coordinator_(ctx_),
      participant_(ctx_) {}

Site::~Site() { stop(); }

util::Status Site::start() {
  // Membership resume: the durable ~catalog record wins over the configured
  // bootstrap catalog, and an interrupted departure continues (leaving_).
  // Everything else of the membership machinery is derived fresh — ship
  // states reappear through the reconcile scan, fences through the
  // hosted-but-absent check below.
  pending_acks_.clear();
  pending_join_.reset();
  ship_states_.clear();
  last_pull_.clear();
  decommissioned_.store(false);
  load_durable_catalog();
  util::Status status = ctx_.data().load_all();
  if (!status) return status;
  // Presumed-abort commit log: repopulate the outcome cache with the
  // durable commit decisions (no-op on a fresh store).
  ctx_.load_commit_log();
  {
    // Importing fence: documents this epoch hosts here whose replica never
    // arrived (join, or a kill -9 before the migration push landed) reject
    // traffic until adopted via MigrateDoc / a recovery pull.
    const Catalog::View view = ctx_.catalog.view();
    sync::MutexLock lock(ctx_.part_mutex);
    ctx_.importing_docs.clear();
    for (const std::string& doc : view->documents_at(ctx_.options.id)) {
      if (!ctx_.store.exists(doc)) ctx_.importing_docs.insert(doc);
    }
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ctx_.stats.catalog_epoch = ctx_.catalog.epoch();
  }
  ctx_.running.store(true);
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
  const std::size_t coordinators =
      std::max<std::size_t>(1, ctx_.options.coordinator_workers);
  coordinator_threads_.reserve(coordinators);
  for (std::size_t i = 0; i < coordinators; ++i) {
    coordinator_threads_.emplace_back([this] { coordinator_.run(); });
  }
  const std::size_t participants =
      std::max<std::size_t>(1, ctx_.options.participant_workers);
  participant_threads_.reserve(participants);
  for (std::size_t i = 0; i < participants; ++i) {
    participant_threads_.emplace_back([this] { participant_.run(); });
  }
  return util::Status::ok();
}

void Site::halt() {
  ctx_.mailbox.interrupt();
  ctx_.coord_cv.notify_all();
  ctx_.part_cv.notify_all();
  ctx_.resp_cv.notify_all();
  ctx_.ack_cv.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (std::thread& worker : coordinator_threads_) {
    if (worker.joinable()) worker.join();
  }
  coordinator_threads_.clear();
  for (std::thread& worker : participant_threads_) {
    if (worker.joinable()) worker.join();
  }
  participant_threads_.clear();
  // Unblock any clients still waiting on unfinished transactions. Their
  // outcome is indeterminate: a transaction may have passed its commit
  // decision moments before the site went down, so callers must treat
  // kSiteFailure as "maybe committed", not "rolled back".
  sync::MutexLock lock(ctx_.coord_mutex);
  for (auto& [id, txn] : ctx_.transactions) {
    if (!txn->completed()) {
      txn::TxnResult result;
      result.id = id;
      result.state = TxnState::kAborted;
      result.reason = txn::AbortReason::kSiteFailure;
      result.detail = "site shut down";
      txn->complete(std::move(result));
    }
  }
}

void Site::stop() {
  if (!ctx_.running.exchange(false)) return;
  halt();
}

void Site::wipe_volatile_state() {
  // Scheduler queues, response/ack collection, participant tracking and
  // the outcome cache — everything a process crash loses (the durable
  // commit log is reloaded by start()). Also run before a restart after a
  // graceful stop(): the queues may still hold transactions that halt()
  // completed, and new workers must never re-execute those.
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    ctx_.ready.clear();
    ctx_.transactions.clear();
    ctx_.waiting.clear();
    ctx_.pending_wakes.clear();
    ctx_.victim_aborts.clear();
    ctx_.executing.clear();
    ctx_.deferred_victims.clear();
    ctx_.recent_outcomes.clear();
    ctx_.outcome_fifo.clear();
  }
  {
    sync::MutexLock lock(ctx_.part_mutex);
    ctx_.participant_queue.clear();
    ctx_.participant_active.clear();
    ctx_.remote_txns.clear();
    ctx_.importing_docs.clear();  // recomputed from the store by start()
  }
  {
    sync::MutexLock lock(ctx_.resp_mutex);
    ctx_.responses.clear();
    ctx_.snapshot_replies.clear();
  }
  {
    sync::MutexLock lock(ctx_.ack_mutex);
    ctx_.acks.clear();
  }
}

void Site::crash() {
  // Drop off the network first: anything sent from now on is lost, as are
  // the messages still queued in the mailbox.
  ctx_.network.set_site_down(ctx_.options.id, true);
  if (ctx_.running.exchange(false)) halt();
  ctx_.mailbox.reset();
  ctx_.mailbox.interrupt();  // stay un-poppable until restart()
  // Committed state lives only in the storage backend.
  wipe_volatile_state();
  ctx_.rebuild_engine();
}

util::Status Site::restart() {
  if (ctx_.running.load()) {
    return util::Status(util::Code::kInternal, "site is running");
  }
  // Rebuild from the storage backend: committed documents only (a graceful
  // stop() restart takes the same path — the engine is always rebuilt and
  // stale queue entries are dropped, exactly as after a crash).
  wipe_volatile_state();
  ctx_.rebuild_engine();
  ctx_.mailbox.reset();
  ctx_.network.set_site_down(ctx_.options.id, false);
  util::Status status = start();
  if (status) {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.restarts;
  }
  return status;
}

TxnId Site::next_txn_id() {
  std::uint64_t begin = steady_now_micros();
  if (begin <= ctx_.last_begin_micros) begin = ctx_.last_begin_micros + 1;
  ctx_.last_begin_micros = begin;
  return txn::make_txn_id(begin, ctx_.options.id);
}

std::shared_ptr<Transaction> Site::submit(std::vector<txn::Operation> ops) {
  std::shared_ptr<Transaction> txn;
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    txn = std::make_shared<Transaction>(next_txn_id(), std::move(ops));
    // The routing generation is fixed at admission and never re-stamped: a
    // catalog flip mid-transaction aborts it (kStaleCatalog, retryable)
    // rather than tearing it across two placements.
    txn->set_catalog_epoch(ctx_.catalog.epoch());
    if (!ctx_.running.load()) {
      // The site is down (stopped or crashed): refuse instead of parking
      // the transaction on a queue no worker will ever drain.
      txn::TxnResult result;
      result.id = txn->id();
      result.state = TxnState::kAborted;
      result.reason = txn::AbortReason::kSiteFailure;
      result.detail = "site is down";
      txn->complete(std::move(result));
      return txn;
    }
    ctx_.transactions[txn->id()] = txn;
    ctx_.ready.push_back(txn);
  }
  ctx_.coord_cv.notify_all();
  return txn;
}

SiteStats Site::stats() {
  sync::MutexLock lock(ctx_.stats_mutex);
  SiteStats out = ctx_.stats;
  out.lock_manager = ctx_.locks().stats();
  out.plan_cache = ctx_.plans().stats();
  out.snapshots = ctx_.snaps().stats();
  out.distributed_cycles_found = ctx_.detector.cycles_found();
  return out;
}

// ---------------------------------------------------------------------------
// Dispatcher: mailbox routing, deadlock-detector cadence and the
// presumed-abort orphan sweep.
// ---------------------------------------------------------------------------

void Site::dispatcher_loop() {
  while (ctx_.running.load()) {
    std::optional<Message> message =
        ctx_.mailbox.pop(ctx_.options.poll_interval);
    const auto now = Clock::now();
    if (message.has_value()) {
      Message& m = *message;
      std::visit(
          [&](auto&& payload) {
            using T = std::decay_t<decltype(payload)>;
            if constexpr (std::is_same_v<T, net::ExecuteOperation> ||
                          std::is_same_v<T, net::SnapshotReadRequest> ||
                          std::is_same_v<T, net::UndoOperation> ||
                          std::is_same_v<T, net::CommitRequest> ||
                          std::is_same_v<T, net::AbortRequest> ||
                          std::is_same_v<T, net::FailNotice> ||
                          std::is_same_v<T, net::TxnStatusReply>) {
              {
                sync::MutexLock lock(ctx_.part_mutex);
                ctx_.participant_queue.push_back(std::move(m));
              }
              ctx_.part_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::OperationResult>) {
              {
                sync::MutexLock lock(ctx_.resp_mutex);
                const auto it =
                    ctx_.responses.find({payload.txn, payload.op_index});
                if (it != ctx_.responses.end() &&
                    it->second.attempt == payload.attempt) {
                  it->second.replies[m.from] = std::move(payload);
                }
              }
              ctx_.resp_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::SnapshotReadReply>) {
              {
                sync::MutexLock lock(ctx_.resp_mutex);
                const auto it = ctx_.snapshot_replies.find(payload.txn);
                if (it != ctx_.snapshot_replies.end()) {
                  it->second[m.from] = std::move(payload);
                }
              }
              ctx_.resp_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::CommitAck> ||
                                 std::is_same_v<T, net::AbortAck>) {
              {
                sync::MutexLock lock(ctx_.ack_mutex);
                const auto it = ctx_.acks.find(payload.txn);
                if (it != ctx_.acks.end()) {
                  it->second.acks[m.from] = payload.ok;
                }
              }
              ctx_.ack_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::ClientSubmit>) {
              handle_client_submit(m.from, std::move(payload));
            } else if constexpr (std::is_same_v<T, net::RecoveryPullRequest>) {
              answer_recovery_pull(payload);
            } else if constexpr (std::is_same_v<T, net::TxnStatusRequest>) {
              answer_status_request(payload);
            } else if constexpr (std::is_same_v<T, net::WfgRequest>) {
              ctx_.send(payload.requester,
                        net::WfgReply{payload.probe, ctx_.locks().wfg_edges()});
            } else if constexpr (std::is_same_v<T, net::WfgReply>) {
              const auto victim = ctx_.detector.add_reply(payload.probe,
                                                          m.from,
                                                          payload.edges);
              if (victim.has_value() && *victim != 0) act_on_victim(*victim);
            } else if constexpr (std::is_same_v<T, net::VictimAbort>) {
              {
                sync::MutexLock lock(ctx_.coord_mutex);
                ctx_.victim_aborts.push_back(payload.txn);
              }
              ctx_.coord_cv.notify_all();
            } else if constexpr (std::is_same_v<T, net::CatalogUpdate>) {
              handle_catalog_update(payload);
            } else if constexpr (std::is_same_v<T, net::CatalogAck>) {
              handle_catalog_ack(payload);
            } else if constexpr (std::is_same_v<T, net::JoinRequest>) {
              handle_join_request(m.from, payload);
            } else if constexpr (std::is_same_v<T, net::JoinReply>) {
              // Anti-entropy: a catalog fetched from a fresher member (see
              // Participant::gossip_catalog). Joins proper consume their
              // JoinReply before Site::start, never here.
              if (payload.ok && payload.epoch > ctx_.catalog.epoch()) {
                auto parsed = placement::CatalogEpoch::parse(payload.catalog);
                if (parsed) install_epoch(std::move(parsed).value());
              }
            } else if constexpr (std::is_same_v<T, net::MigrateDoc>) {
              handle_migrate_doc(m.from, payload);
            } else if constexpr (std::is_same_v<T, net::MigrateAck>) {
              handle_migrate_ack(payload);
            } else if constexpr (std::is_same_v<T, net::DropDoc>) {
              handle_drop_doc(payload);
            } else if constexpr (std::is_same_v<T, net::RecoveryPullReply>) {
              // Import pull answered: adopt if the fence is still up (a
              // concurrent MigrateDoc push may have won — idempotent).
              if (payload.ok && ctx_.is_importing(payload.doc)) {
                adopt_replica(payload.doc, payload.version, payload.snapshot,
                              payload.log);
              }
            } else if constexpr (std::is_same_v<T, net::WakeTxn>) {
              {
                sync::MutexLock lock(ctx_.coord_mutex);
                const auto it = ctx_.transactions.find(payload.txn);
                if (it != ctx_.transactions.end() &&
                    ctx_.waiting.count(payload.txn) != 0) {
                  ctx_.waiting.erase(payload.txn);
                  it->second->set_state(TxnState::kActive);
                  ctx_.ready.push_back(it->second);
                } else {
                  // Wake raced the conflict reply: remember it so the
                  // transaction re-queues instead of parking.
                  ctx_.pending_wakes.insert(payload.txn);
                }
              }
              ctx_.coord_cv.notify_all();
            }
          },
          m.payload);
    }
    run_deadlock_detection(now);
    sweep_orphans(now);
    membership_tick(now);
  }
}

void Site::handle_client_submit(SiteId client, net::ClientSubmit submit) {
  const std::uint64_t seq = submit.seq;
  if (submit.ops.empty()) {
    net::ClientReply reply;
    reply.seq = seq;
    reply.accepted = false;
    reply.detail = "transaction needs at least one operation";
    ctx_.send(client, std::move(reply));
    return;
  }
  std::shared_ptr<Transaction> txn = this->submit(std::move(submit.ops));
  // The hook fires on whichever thread completes the transaction (a
  // coordinator worker, or halt() on shutdown) — ctx_ outlives every
  // transaction, so capturing it is safe.
  SiteContext* ctx = &ctx_;
  txn->set_on_complete([ctx, client, seq](const txn::TxnResult& result) {
    net::ClientReply reply;
    reply.seq = seq;
    reply.accepted = true;
    reply.txn = result.id;
    reply.state = static_cast<std::uint8_t>(result.state);
    reply.reason = static_cast<std::uint8_t>(result.reason);
    reply.deadlock_victim = result.deadlock_victim;
    reply.wait_episodes = result.wait_episodes;
    reply.response_ms = result.response_ms;
    reply.detail = result.detail;
    reply.rows = result.rows;
    ctx->send(client, std::move(reply));
  });
}

void Site::answer_recovery_pull(const net::RecoveryPullRequest& request) {
  net::RecoveryPullReply reply;
  reply.doc = request.doc;
  // Serve from the store, not the catalog: after a placement flip the old
  // hosts keep their bytes until every gaining replica acked — exactly the
  // copies a mid-migration puller needs. A fenced import never serves (its
  // bytes, if any, are the stale pre-adoption ones).
  if (ctx_.store.exists(request.doc) && !ctx_.is_importing(request.doc)) {
    auto durable = recovery::read_stable(ctx_.store, request.doc);
    if (durable) {
      reply.ok = true;
      reply.version = durable.value().version;
      reply.snapshot = std::move(durable.value().snapshot);
      reply.log = recovery::flatten_log(durable.value());
    }
  }
  ctx_.send(request.requester, std::move(reply));
}

void Site::answer_status_request(const net::TxnStatusRequest& request) {
  net::TxnOutcome outcome = net::TxnOutcome::kUnknown;
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    if (ctx_.transactions.count(request.txn) != 0) {
      outcome = net::TxnOutcome::kActive;
    } else {
      const auto it = ctx_.recent_outcomes.find(request.txn);
      if (it != ctx_.recent_outcomes.end()) {
        outcome = it->second ? net::TxnOutcome::kCommitted
                             : net::TxnOutcome::kAborted;
      }
      // else: no record — never coordinated here, or the record died with
      // a crash. kUnknown; the participant presumes abort.
    }
  }
  ctx_.send(request.requester, net::TxnStatusReply{request.txn, outcome});
}

void Site::sweep_orphans(Clock::time_point now) {
  if (ctx_.options.orphan_txn_timeout.count() == 0) return;
  std::vector<std::pair<TxnId, SiteId>> probes;
  std::size_t rollbacks = 0;
  {
    sync::MutexLock lock(ctx_.part_mutex);
    for (auto& [txn, record] : ctx_.remote_txns) {
      if (ctx_.participant_active.count(txn) != 0) continue;  // in service
      if (now - record.last_seen < ctx_.options.orphan_txn_timeout) continue;
      if (record.unanswered_probes >= ctx_.options.orphan_query_limit) {
        // Presumed abort: enqueue a local FailNotice so the rollback runs
        // on a participant worker under the per-transaction serialization
        // rule (never concurrently with a late Execute / Commit of the
        // same transaction).
        record.last_seen = now;  // don't re-enqueue while this one is queued
        ctx_.participant_queue.push_back(Message{
            ctx_.options.id, ctx_.options.id, net::FailNotice{txn}});
        ++rollbacks;
      } else {
        ++record.unanswered_probes;
        record.last_seen = now;  // next probe one orphan timeout from now
        probes.push_back({txn, record.coordinator});
      }
    }
  }
  if (rollbacks != 0) {
    {
      sync::MutexLock lock(ctx_.stats_mutex);
      ctx_.stats.orphans_aborted += rollbacks;
    }
    ctx_.part_cv.notify_all();
  }
  for (const auto& [txn, coordinator] : probes) {
    ctx_.send(coordinator, net::TxnStatusRequest{txn, ctx_.options.id});
  }
}

void Site::run_deadlock_detection(Clock::time_point now) {
  if (const auto victim = ctx_.detector.resolve_if_expired(now);
      victim.has_value() && *victim != 0) {
    act_on_victim(*victim);
  }
  if (!ctx_.detector.should_start(now)) return;
  std::vector<SiteId> others;
  for (SiteId site : ctx_.network.sites()) {
    if (site != ctx_.options.id) others.push_back(site);
  }
  const std::uint64_t probe =
      ctx_.detector.begin_probe(ctx_.locks().wfg_edges(), others, now);
  if (others.empty()) {
    // Single-site system: the probe resolves on the local graph alone.
    const auto victim = ctx_.detector.add_reply(probe, ctx_.options.id, {});
    if (victim.has_value() && *victim != 0) act_on_victim(*victim);
    return;
  }
  for (SiteId site : others) {
    ctx_.send(site, net::WfgRequest{probe, ctx_.options.id});
  }
}

// ---------------------------------------------------------------------------
// Placement & membership (src/placement). Dispatcher thread only.
//
// Correctness rests on two orderings:
//  * Epoch fences — every remote request carries the epoch its coordinator
//    routed under, participants reject mismatches, and newly-gained
//    replicas stay fenced until adopted. So no transaction's effects ever
//    straddle two placements.
//  * Local drain before shipping — a source ships a replica only once no
//    transaction of an older epoch still has state *at this site*
//    (pending_acks_ empty). That local condition suffices: any commit
//    reaching this replica must first execute here (creating remote_txns
//    state the drain observes), new old-epoch executes are fenced out, and
//    new-epoch writes also land on the gaining hosts (which are fenced
//    until they adopt a shipped state at least this fresh).
// ---------------------------------------------------------------------------

void Site::load_durable_catalog() {
  leaving_ = false;
  auto text = ctx_.store.load(SiteContext::kCatalogKey);
  if (!text) return;  // fresh store — the configured bootstrap catalog stands
  auto parsed = placement::CatalogEpoch::parse(text.value());
  if (!parsed) {
    DTX_ERROR() << "site " << ctx_.options.id << ": durable catalog unreadable: "
                << parsed.status().to_string();
    return;
  }
  placement::CatalogEpoch durable = std::move(parsed).value();
  const bool member = durable.is_member(ctx_.options.id);
  const bool empty = durable.members.empty();
  ctx_.catalog.install(std::move(durable));  // no-op if the bootstrap is newer
  // A durable epoch that excludes this site is a departure that a crash
  // interrupted: resume shipping replicas away instead of serving.
  leaving_ = !member && !empty;
}

void Site::install_epoch(placement::CatalogEpoch next) {
  const Catalog::View before = ctx_.catalog.view();
  if (!ctx_.catalog.install(std::move(next))) return;  // not strictly newer
  const Catalog::View view = ctx_.catalog.view();
  if (util::Status saved =
          ctx_.store.store(SiteContext::kCatalogKey, view->to_text());
      !saved) {
    DTX_ERROR() << "site " << ctx_.options.id
                << ": persisting catalog epoch " << view->epoch
                << " failed: " << saved.to_string();
  }
  for (const auto& [site, address] : view->addresses) {
    if (site != ctx_.options.id && !address.empty()) {
      ctx_.network.add_peer(site, address);
    }
  }
  const placement::MigrationPlan plan = placement::plan_migration(*before,
                                                                 *view);
  for (const placement::MigrationPlan::Move& move : plan.moves) {
    const bool gaining =
        std::find(move.gains.begin(), move.gains.end(), ctx_.options.id) !=
        move.gains.end();
    const bool source =
        std::find(move.sources.begin(), move.sources.end(), ctx_.options.id) !=
        move.sources.end();
    const bool dropping =
        std::find(move.drops.begin(), move.drops.end(), ctx_.options.id) !=
        move.drops.end();
    if (gaining) {
      // Fence unconditionally, even over lingering local bytes: only an
      // adoption (which merges any local-unique commits) may unfence.
      sync::MutexLock lock(ctx_.part_mutex);
      ctx_.importing_docs.insert(move.doc);
    }
    if (source && (dropping || !move.gains.empty())) {
      ShipState& state = ship_states_[move.doc];
      state.drop_when_done = dropping;
      for (SiteId gain : move.gains) state.pending.insert(gain);
    }
  }
  if (leaving_ && view->is_member(ctx_.options.id)) {
    // Re-admitted while departing (an operator reversal): serve again.
    leaving_ = false;
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ctx_.stats.catalog_epoch = view->epoch;
  }
}

void Site::handle_catalog_update(const net::CatalogUpdate& update) {
  auto parsed = placement::CatalogEpoch::parse(update.catalog);
  if (!parsed) {
    DTX_ERROR() << "site " << ctx_.options.id << ": bad catalog update: "
                << parsed.status().to_string();
    return;
  }
  // Record the ack debt before installing: duplicates re-ack (the admin
  // resends updates it never got an ack for), and the ack only leaves once
  // every older-epoch transaction at this site terminated.
  pending_acks_[update.epoch] = update.admin;
  install_epoch(std::move(parsed).value());
}

bool Site::epoch_drained(std::uint64_t epoch) {
  {
    sync::MutexLock lock(ctx_.coord_mutex);
    for (const auto& [id, txn] : ctx_.transactions) {
      if (!txn->completed() && txn->catalog_epoch() < epoch) return false;
    }
  }
  {
    sync::MutexLock lock(ctx_.part_mutex);
    for (const auto& [id, record] : ctx_.remote_txns) {
      if (record.epoch < epoch) return false;
    }
  }
  return true;
}

void Site::maybe_send_catalog_acks() {
  for (auto it = pending_acks_.begin(); it != pending_acks_.end();) {
    if (epoch_drained(it->first)) {
      ctx_.send(it->second, net::CatalogAck{it->first, ctx_.options.id});
      it = pending_acks_.erase(it);
    } else {
      ++it;
    }
  }
}

void Site::handle_catalog_ack(const net::CatalogAck& ack) {
  if (!pending_join_ || ack.epoch != pending_join_->epoch) return;
  pending_join_->waiting.erase(ack.site);
  if (!pending_join_->waiting.empty()) return;
  // Every old member drained the pre-join epoch: admit the joiner. The
  // JoinReply carries the catalog — the joiner installs it and pulls any
  // replica the migration pushes have not delivered yet.
  const Catalog::View view = ctx_.catalog.view();
  ctx_.send(pending_join_->reply_to,
            net::JoinReply{true, view->epoch, view->to_text(), ""});
  pending_join_.reset();
}

void Site::handle_join_request(net::SiteId from,
                               const net::JoinRequest& request) {
  if (request.site == ctx_.options.id) {
    // A JoinRequest naming the receiving site is the decommission order.
    begin_leave();
    return;
  }
  const Catalog::View view = ctx_.catalog.view();
  if (view->is_member(request.site)) {
    // Idempotent admit — also the catalog-fetch path of a lagging member
    // (Participant::gossip_catalog sends JoinRequest{self} to refresh).
    if (!request.address.empty()) {
      ctx_.network.add_peer(request.site, request.address);
    }
    ctx_.send(from, net::JoinReply{true, view->epoch, view->to_text(), ""});
    return;
  }
  const auto refuse = [&](const char* why) {
    ctx_.send(from, net::JoinReply{false, view->epoch, "", why});
  };
  if (leaving_) return refuse("seed site is decommissioning");
  if (pending_join_ && pending_join_->joiner == request.site) {
    // The joiner's own retry while its admission drains — the eventual
    // JoinReply answers it; refusing here would fail a join that is
    // actually progressing.
    pending_join_->reply_to = from;
    return;
  }
  if (pending_join_) return refuse("another membership change is in flight");
  std::vector<SiteId> members = view->members;
  members.push_back(request.site);
  std::map<SiteId, std::string> addresses;
  if (!request.address.empty()) addresses[request.site] = request.address;
  const placement::CatalogEpoch next =
      placement::rebalance(*view, std::move(members), addresses,
                           ctx_.options.placement_policy,
                           ctx_.options.replication);
  const std::string text = next.to_text();
  PendingJoin pending;
  pending.epoch = next.epoch;
  pending.joiner = request.site;
  pending.reply_to = from;
  pending.catalog = text;
  pending.deadline = Clock::now() + 4 * ctx_.options.response_timeout;
  pending.next_resend = Clock::now() + ctx_.options.response_timeout;
  pending.waiting.insert(view->members.begin(), view->members.end());
  pending_join_ = std::move(pending);
  if (!request.address.empty()) {
    ctx_.network.add_peer(request.site, request.address);
  }
  // Broadcast to every OLD member, this site included (the self-send keeps
  // the install path uniform). The joiner is told via the JoinReply once
  // the old epoch drained everywhere.
  for (SiteId member : pending_join_->waiting) {
    ctx_.send(member, net::CatalogUpdate{next.epoch, text, ctx_.options.id});
  }
}

void Site::begin_leave() {
  if (leaving_) return;
  const Catalog::View view = ctx_.catalog.view();
  if (!view->is_member(ctx_.options.id)) {
    leaving_ = true;  // epoch already excludes us — just finish shipping
    return;
  }
  if (view->members.size() <= 1) {
    DTX_ERROR() << "site " << ctx_.options.id
                << ": refusing to decommission the last member";
    return;
  }
  std::vector<SiteId> members;
  for (SiteId member : view->members) {
    if (member != ctx_.options.id) members.push_back(member);
  }
  const placement::CatalogEpoch next =
      placement::rebalance(*view, std::move(members), {},
                           ctx_.options.placement_policy,
                           ctx_.options.replication);
  const std::string text = next.to_text();
  leaving_ = true;
  for (SiteId member : view->members) {  // includes self
    ctx_.send(member, net::CatalogUpdate{next.epoch, text, ctx_.options.id});
  }
}

std::optional<std::uint64_t> Site::adopt_replica(const std::string& doc,
                                                 std::uint64_t /*version*/,
                                                 const std::string& snapshot,
                                                 const std::string& log) {
  const Catalog::View view = ctx_.catalog.view();
  if (!view->hosts(ctx_.options.id, doc)) return std::nullopt;
  if (!ctx_.is_importing(doc) && ctx_.data().has_document(doc)) {
    // Already serving a replica (duplicate ship) — durable as-is.
    return wal::durable_version(ctx_.store, doc);
  }
  auto shipped = recovery::from_wire(doc, snapshot, log);
  if (!shipped) {
    DTX_ERROR() << "site " << ctx_.options.id << ": shipped replica of '"
                << doc << "' invalid: " << shipped.status().to_string();
    return std::nullopt;
  }
  util::Status durable = util::Status::ok();
  if (ctx_.store.exists(doc)) {
    // Lingering pre-migration bytes: merge by committed-id set, so any
    // local-unique commit survives the adoption.
    recovery::SyncStats sync_stats;
    durable = recovery::sync_document(ctx_.store, doc, {shipped.value()},
                                      sync_stats);
  } else {
    // Fresh replica. Log before snapshot: a crash between the two leaves
    // no document key, which restart re-fences and re-pulls — never a
    // snapshot whose log (and thus version identity) is missing.
    durable = ctx_.store.truncate(wal::log_key(doc));
    if (durable) durable = ctx_.store.append(wal::log_key(doc), log);
    if (durable) durable = ctx_.store.store(doc, snapshot);
  }
  if (!durable) {
    DTX_ERROR() << "site " << ctx_.options.id << ": adopting '" << doc
                << "' failed: " << durable.to_string();
    return std::nullopt;
  }
  {
    // The fence guarantees no engine activity on the document; the
    // exclusive latch orders the (re)load against concurrent readers of
    // *other* documents walking the DataManager.
    auto latch = ctx_.locks().exclusive_data_latch();
    if (util::Status loaded = ctx_.data().load_document(doc); !loaded) {
      DTX_ERROR() << "site " << ctx_.options.id << ": loading adopted '"
                  << doc << "' failed: " << loaded.to_string();
      return std::nullopt;
    }
  }
  {
    sync::MutexLock lock(ctx_.part_mutex);
    ctx_.importing_docs.erase(doc);
  }
  {
    sync::MutexLock lock(ctx_.stats_mutex);
    ++ctx_.stats.migrations;
    ctx_.stats.migrated_bytes += snapshot.size() + log.size();
  }
  last_pull_.erase(doc);
  return wal::durable_version(ctx_.store, doc);
}

void Site::handle_migrate_doc(net::SiteId from, const net::MigrateDoc& migrate) {
  net::MigrateAck ack;
  ack.doc = migrate.doc;
  ack.site = ctx_.options.id;
  if (const auto adopted = adopt_replica(migrate.doc, migrate.version,
                                         migrate.snapshot, migrate.log)) {
    ack.ok = true;
    ack.version = *adopted;
  }
  ctx_.send(from, std::move(ack));
}

void Site::handle_migrate_ack(const net::MigrateAck& ack) {
  const auto it = ship_states_.find(ack.doc);
  if (it == ship_states_.end() || !ack.ok) return;
  it->second.pending.erase(ack.site);
  // An empty pending set is resolved by the next reconcile pass (drop the
  // replica if this site left the hosting set).
}

void Site::handle_drop_doc(const net::DropDoc& drop) {
  const Catalog::View view = ctx_.catalog.view();
  if (drop.epoch != view->epoch) return;
  if (view->hosts(ctx_.options.id, drop.doc)) return;
  ship_states_.erase(drop.doc);
  drop_replica(drop.doc);
}

void Site::drop_replica(const std::string& doc) {
  {
    auto latch = ctx_.locks().exclusive_data_latch();
    ctx_.data().drop_document(doc);
  }
  ctx_.snaps().drop_doc(doc);
  if (ctx_.store.exists(doc)) {
    if (util::Status removed = ctx_.store.remove(doc); !removed) {
      DTX_ERROR() << "site " << ctx_.options.id << ": dropping '" << doc
                  << "' failed: " << removed.to_string();
    }
  }
  if (ctx_.store.exists(wal::log_key(doc))) {
    (void)ctx_.store.remove(wal::log_key(doc));
  }
  sync::MutexLock lock(ctx_.part_mutex);
  ctx_.importing_docs.erase(doc);
}

void Site::reconcile_replicas(Clock::time_point now) {
  // Local drain gates every ship (see the block comment above): while an
  // older-epoch transaction still has state here, this replica may yet
  // change.
  if (!pending_acks_.empty()) return;
  if (now - last_reconcile_ < std::chrono::milliseconds(25)) return;
  last_reconcile_ = now;
  const auto retry = std::min<Clock::duration>(
      ctx_.options.response_timeout, std::chrono::milliseconds(250));
  const Catalog::View view = ctx_.catalog.view();

  // Restart resume / lingering cleanup: any stored replica this epoch
  // hosts elsewhere must be shipped to the current hosts, even when the
  // install-time diff died with the process.
  for (const std::string& key : ctx_.store.list()) {
    if (DataManager::is_internal_key(key)) continue;
    if (!view->has_document(key)) continue;
    if (view->hosts(ctx_.options.id, key)) continue;
    if (ship_states_.count(key) != 0) continue;
    ShipState state;
    state.drop_when_done = true;
    for (SiteId host : view->sites_of(key)) state.pending.insert(host);
    ship_states_.emplace(key, std::move(state));
  }

  for (auto it = ship_states_.begin(); it != ship_states_.end();) {
    const std::string& doc = it->first;
    ShipState& state = it->second;
    // Targets that left the hosting set in a later epoch never ack.
    for (auto target = state.pending.begin(); target != state.pending.end();) {
      if (view->hosts(*target, doc)) {
        ++target;
      } else {
        target = state.pending.erase(target);
      }
    }
    if (state.pending.empty()) {
      if (state.drop_when_done && !view->hosts(ctx_.options.id, doc)) {
        drop_replica(doc);
      }
      it = ship_states_.erase(it);
      continue;
    }
    if (!ctx_.store.exists(doc)) {  // bytes already gone — nothing to ship
      it = ship_states_.erase(it);
      continue;
    }
    auto durable = recovery::read_stable(ctx_.store, doc);
    if (durable) {
      const std::string log = recovery::flatten_log(durable.value());
      for (SiteId target : state.pending) {
        Clock::time_point& last = state.last_sent[target];
        if (now - last < retry) continue;
        last = now;
        ctx_.send(target, net::MigrateDoc{doc, view->epoch,
                                          durable.value().version,
                                          durable.value().snapshot, log});
      }
    }
    ++it;
  }

  // Fenced imports pull from the other current hosts — the push may have
  // died with a crashed source, and either side alone completes the move.
  std::vector<std::string> importing;
  {
    sync::MutexLock lock(ctx_.part_mutex);
    importing.assign(ctx_.importing_docs.begin(), ctx_.importing_docs.end());
  }
  for (const std::string& doc : importing) {
    Clock::time_point& last = last_pull_[doc];
    if (now - last < retry) continue;
    last = now;
    for (SiteId host : view->sites_of(doc)) {
      if (host != ctx_.options.id) {
        ctx_.send(host, net::RecoveryPullRequest{doc, ctx_.options.id});
      }
    }
  }

  if (leaving_ && ship_states_.empty() && !decommissioned_.load()) {
    // Departure complete once no catalog document remains in the store.
    bool replicas_left = false;
    for (const std::string& key : ctx_.store.list()) {
      if (!DataManager::is_internal_key(key) && view->has_document(key)) {
        replicas_left = true;
        break;
      }
    }
    if (!replicas_left) decommissioned_.store(true);
  }
}

void Site::membership_tick(Clock::time_point now) {
  if (!pending_acks_.empty()) maybe_send_catalog_acks();
  if (pending_join_ && now >= pending_join_->deadline) {
    ctx_.send(pending_join_->reply_to,
              net::JoinReply{false, ctx_.catalog.epoch(), "",
                             "catalog drain timed out"});
    pending_join_.reset();
  }
  if (pending_join_ && now >= pending_join_->next_resend) {
    // The update and its acks travel over the lossy transport with no
    // other retry path — re-push to every member still owing a drain ack
    // (handle_catalog_update re-acks duplicates).
    pending_join_->next_resend = now + ctx_.options.response_timeout;
    for (const SiteId member : pending_join_->waiting) {
      ctx_.send(member, net::CatalogUpdate{pending_join_->epoch,
                                           pending_join_->catalog,
                                           ctx_.options.id});
    }
  }
  reconcile_replicas(now);
}

void Site::act_on_victim(TxnId victim) {
  // Alg. 4 l. 7-8: the newest transaction on the cycle is rolled back by
  // its coordinator.
  const SiteId coordinator = txn::txn_coordinator(victim);
  if (coordinator == ctx_.options.id) {
    {
      sync::MutexLock lock(ctx_.coord_mutex);
      ctx_.victim_aborts.push_back(victim);
    }
    ctx_.coord_cv.notify_all();
  } else {
    ctx_.send(coordinator, net::VictimAbort{victim});
  }
}

}  // namespace dtx::core
